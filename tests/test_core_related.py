"""Related-work baseline algorithms."""

import pytest

from repro import units
from repro.core.related import BufferTuningAlgorithm, PCPAlgorithm


class TestBufferTuning:
    def test_completes(self, small_testbed):
        ds = small_testbed.dataset()
        outcome = BufferTuningAlgorithm().run(small_testbed, ds)
        assert outcome.bytes_moved == pytest.approx(ds.total_size)
        assert outcome.algorithm == "BufTune"

    def test_buffer_clamped_to_bdp(self, small_testbed):
        # small testbed BDP = 1.25 MB < 8 MB max buffer
        algo = BufferTuningAlgorithm()
        assert algo.tuned_buffer(small_testbed) == pytest.approx(small_testbed.path.bdp)

    def test_buffer_clamped_to_os_ceiling(self, small_testbed):
        algo = BufferTuningAlgorithm(os_max_buffer=512 * units.KB)
        assert algo.tuned_buffer(small_testbed) == pytest.approx(512 * units.KB)

    def test_records_tuned_buffer(self, small_testbed):
        outcome = BufferTuningAlgorithm().run(small_testbed, small_testbed.dataset())
        assert outcome.extra["tuned_buffer"] == pytest.approx(small_testbed.path.bdp)

    def test_single_channel_single_stream(self, small_testbed):
        outcome = BufferTuningAlgorithm().run(small_testbed, small_testbed.dataset())
        assert outcome.max_channels == 1


class TestPCP:
    def test_completes(self, small_testbed):
        ds = small_testbed.dataset()
        outcome = PCPAlgorithm().run(small_testbed, ds, 4)
        assert outcome.bytes_moved == pytest.approx(ds.total_size)
        assert outcome.final_concurrency >= 1

    def test_probe_levels_double(self, small_testbed):
        outcome = PCPAlgorithm().run(small_testbed, ds := small_testbed.dataset(), 8)
        levels = [p[0] for p in outcome.extra["probes"]]
        for a, b in zip(levels, levels[1:]):
            assert b == min(a * 2, 8)

    def test_picks_best_throughput_level(self, small_testbed):
        outcome = PCPAlgorithm().run(small_testbed, small_testbed.dataset(), 8)
        probes = outcome.extra["probes"]
        assert outcome.final_concurrency == max(probes, key=lambda p: p[1])[0]

    def test_invalid_channels(self, small_testbed):
        with pytest.raises(ValueError):
            PCPAlgorithm().run(small_testbed, small_testbed.dataset(), 0)
