"""The service fast path: event-horizon macro-stepping must be an
*exact* re-implementation of the dt-grid reference loop.

The contract under test (DESIGN.md §5e): with ``fast=True`` (the
default) the service day jumps from service event to service event —
arrival, deferred release, completion, tariff plateau boundary — and
bills each jump's energy against the single plateau it provably lies
in. The grid loop (``fast=False``) is kept as the golden reference;
every admission decision and every job timestamp must be *bit-equal*
between the two, and energy/cost/carbon equal to fp round-off.
"""

import math

import pytest

from repro import units
from repro.datasets.files import Dataset
from repro.obs.observer import Observer
from repro.service import (
    BALANCED,
    CarbonAware,
    DeadlineEDF,
    PriceThreshold,
    RunNow,
    ServiceSimulator,
    TariffTrace,
    TransferRequest,
    diurnal_workload,
    green_midday_tariff,
    peak_offpeak_tariff,
    plan_for,
    poisson_workload,
)
from repro.service.policies import plan_cache_clear, plan_cache_info
from repro.service.simulate import ServiceReport
from repro.service.tariff import JOULES_PER_KWH

DAY = 600.0  # compressed test day (seconds)

POLICIES = {
    "run-now": RunNow,
    "deadline-edf": DeadlineEDF,
    "price-threshold": PriceThreshold,
    "carbon-aware": CarbonAware,
}
TARIFFS = {
    "peak-offpeak": peak_offpeak_tariff,
    "green-midday": green_midday_tariff,
}

#: fields that must be *bit-equal* between fast and grid
EXACT_FIELDS = ("submitted_at", "released_at", "admitted_at", "completed_at")
#: fields that must agree to fp round-off (different summation order)
CLOSE_FIELDS = ("energy_j", "cost_usd", "kg_co2")
REL_TOL = 1e-9


def run_both(testbed, requests, *, policy=None, tariff=None, **kwargs):
    """One workload through the fast and the grid loop; returns
    ``(fast_report, grid_report)`` with the plan cache cleared before
    each run so memoization cannot couple the two."""
    reports = {}
    for fast in (True, False):
        plan_cache_clear()
        sim = ServiceSimulator(
            testbed,
            policy=policy if policy is not None else RunNow(),
            tariff=tariff if tariff is not None else peak_offpeak_tariff(period_s=DAY),
            fast=fast,
            **kwargs,
        )
        reports[fast] = sim.run(requests)
    return reports[True], reports[False]


def assert_equivalent(fast: ServiceReport, grid: ServiceReport) -> None:
    assert [j.name for j in fast.jobs] == [j.name for j in grid.jobs]
    for jf, jg in zip(fast.jobs, grid.jobs, strict=True):
        for attr in EXACT_FIELDS:
            assert getattr(jf, attr) == getattr(jg, attr), (jf.name, attr)
        for attr in CLOSE_FIELDS:
            a, b = getattr(jf, attr), getattr(jg, attr)
            assert a == pytest.approx(b, rel=REL_TOL, abs=1e-15), (jf.name, attr)
    assert fast.makespan_s == grid.makespan_s
    for attr in ("total_energy_j", "total_cost_usd", "total_kg_co2"):
        a, b = getattr(fast, attr), getattr(grid, attr)
        assert a == pytest.approx(b, rel=REL_TOL, abs=1e-15), attr


# ----------------------------------------------------------------------
# fast vs grid: every policy x every shaped tariff
# ----------------------------------------------------------------------


class TestFastGridEquivalence:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("tariff_name", sorted(TARIFFS))
    def test_policies_and_tariffs(self, small_testbed, policy_name, tariff_name):
        requests = diurnal_workload(10, day_s=DAY, seed=7, size_scale=0.02)
        fast, grid = run_both(
            small_testbed,
            requests,
            policy=POLICIES[policy_name](),
            tariff=TARIFFS[tariff_name](period_s=DAY),
            max_concurrent_jobs=3,
        )
        assert_equivalent(fast, grid)

    def test_contended_slots_and_tenant_caps(self, small_testbed):
        """Admission order under pressure — the heap-based fast
        admission must pick exactly the jobs the sorted-scan picks."""
        requests = poisson_workload(12, day_s=DAY, seed=3, size_scale=0.02)
        fast, grid = run_both(
            small_testbed,
            requests,
            policy=DeadlineEDF(),
            max_concurrent_jobs=2,
            max_per_tenant=1,
        )
        assert_equivalent(fast, grid)

    def test_boundary_straddling_job(self, small_testbed):
        """A job whose transfer spans a tariff edge must be billed on
        both plateaus by the fast path, not flat-rated at its start."""
        tariff = TariffTrace(
            name="two",
            points=((0.0, 0.10, 0.40), (50.0, 0.02, 0.10)),
            period_s=DAY,
        )
        ds = Dataset.from_sizes([20 * units.MB] * 16, name="straddle")
        req = TransferRequest(
            name="straddle", tenant="t", dataset=ds, sla=BALANCED,
            submit_time=49.0,
        )
        fast, grid = run_both(small_testbed, [req], tariff=tariff)
        assert_equivalent(fast, grid)
        job = fast.jobs[0]
        # the job really does straddle the 50 s edge...
        assert job.admitted_at < 50.0 < job.completed_at
        # ...and is visibly cheaper than an all-at-0.10 flat rate.
        assert job.cost_usd < job.energy_j / JOULES_PER_KWH * 0.10

    def test_plateau_edge_epsilon_sliver(self, small_testbed):
        """A tariff edge that is *not* on the dt grid: the step whose
        start sits in the epsilon sliver below the edge must be billed
        at the old plateau in both loops (regression for the
        ``plateau()`` / ``next_change`` epsilon mismatch)."""
        # 50.03 is not a multiple of engine_dt=0.1.
        tariff = TariffTrace(
            name="offgrid",
            points=((0.0, 0.10, 0.40), (50.03, 0.02, 0.10)),
            period_s=DAY,
        )
        ds = Dataset.from_sizes([20 * units.MB] * 16, name="sliver")
        req = TransferRequest(
            name="sliver", tenant="t", dataset=ds, sla=BALANCED,
            submit_time=49.0,
        )
        fast, grid = run_both(small_testbed, [req], tariff=tariff)
        assert_equivalent(fast, grid)

    def test_plateau_consistent_at_epsilon_edge(self):
        """``plateau()`` must price and bound from the *same* segment
        even when ``t`` sits within ``next_change``'s 1e-12 guard of an
        edge — otherwise the fast path crosses the edge at the old
        price."""
        tariff = peak_offpeak_tariff(period_s=DAY)
        for edge in (150.0, 300.0, 500.0, 550.0):
            t = edge - 5e-13  # inside next_change's epsilon guard
            price, carbon, boundary = tariff.plateau(t)
            assert price == tariff.price_at(t)
            assert carbon == tariff.carbon_at(t)
            assert t < boundary <= edge + 1e-9
        # a flat trace never changes: the horizon must be open-ended
        flat = TariffTrace(name="one", points=((0.0, 0.08, 0.37),))
        assert flat.plateau(123.0) == (0.08, 0.37, math.inf)

    def test_grid_mode_opt_out(self, small_testbed):
        """``fast=False`` really runs the reference loop (macro
        counters untouched), ``fast=True`` really macro-steps."""
        requests = diurnal_workload(6, day_s=DAY, seed=5, size_scale=0.02)
        for fast in (True, False):
            plan_cache_clear()
            observer = Observer()
            sim = ServiceSimulator(
                small_testbed,
                policy=RunNow(),
                tariff=peak_offpeak_tariff(period_s=DAY),
                observer=observer,
                fast=fast,
            )
            sim.run(requests)
            macro = observer.metrics.counter("service.macro_steps").value
            if fast:
                assert macro > 0
                kinds = observer.events.kinds()
                assert kinds.get("service_macro_step", 0) > 0
            else:
                assert macro == 0


# ----------------------------------------------------------------------
# plan memoization
# ----------------------------------------------------------------------


def _request(name="job", sla_class=BALANCED, n_files=8, file_mb=5):
    ds = Dataset.from_sizes([file_mb * units.MB] * n_files, name=name)
    return TransferRequest(name=name, tenant="t", dataset=ds, sla=sla_class)


class TestPlanCache:
    def setup_method(self):
        plan_cache_clear()

    def teardown_method(self):
        plan_cache_clear()

    def test_hit_returns_identical_numerics(self, small_testbed):
        a = plan_for(small_testbed, _request("a"))
        info = plan_cache_info()
        assert (info["hits"], info["misses"]) == (0, 1)
        b = plan_for(small_testbed, _request("b"))  # same shape, new name
        info = plan_cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)
        # the hit wraps *this* request but shares the cached chunk plans
        assert b.request.name == "b"
        assert b.plans is a.plans
        assert b.est_duration_s == a.est_duration_s
        assert b.est_energy_j == a.est_energy_j

    def test_distinct_shapes_and_classes_miss(self, small_testbed):
        plan_for(small_testbed, _request("a"))
        plan_for(small_testbed, _request("bigger", n_files=9))
        plan_for(small_testbed, _request("cls", sla_class=BALANCED), max_channels=2)
        info = plan_cache_info()
        assert info["misses"] == 3 and info["hits"] == 0

    def test_bypass_and_invalidation(self, small_testbed):
        plan_for(small_testbed, _request("a"))
        plan_for(small_testbed, _request("a"), use_cache=False)
        info = plan_cache_info()
        assert (info["hits"], info["misses"]) == (0, 1)  # bypass untracked
        plan_cache_clear()
        info = plan_cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0,
                        "maxsize": info["maxsize"]}
        plan_for(small_testbed, _request("a"))
        assert plan_cache_info()["misses"] == 1  # really recomputed

    def test_observer_counts_service_cache_traffic(self, small_testbed):
        requests = [
            TransferRequest(
                name=f"j{i}", tenant="t",
                dataset=Dataset.from_sizes([5 * units.MB] * 4, name=f"j{i}"),
                sla=BALANCED, submit_time=float(i),
            )
            for i in range(4)
        ]
        observer = Observer()
        sim = ServiceSimulator(
            small_testbed,
            policy=RunNow(),
            tariff=peak_offpeak_tariff(period_s=DAY),
            observer=observer,
        )
        sim.run(requests)
        snap = observer.metrics.snapshot()
        assert snap["counters"]["service.plan_cache_misses"] == 1
        assert snap["counters"]["service.plan_cache_hits"] == 3


# ----------------------------------------------------------------------
# workload dataset pools
# ----------------------------------------------------------------------


class TestDatasetPool:
    def test_pool_reuses_shapes(self):
        reqs = poisson_workload(40, day_s=DAY, seed=9, size_scale=0.02,
                                dataset_pool=4)
        shapes = {tuple(f.size for f in r.dataset.files) for r in reqs}
        tenants = {r.tenant for r in reqs}
        # at most 4 shapes per tenant, and far fewer than 40 overall
        assert len(shapes) <= 4 * len(tenants)
        assert all("-pool" in r.dataset.name for r in reqs)

    def test_pool_is_deterministic(self):
        a = poisson_workload(10, day_s=DAY, seed=9, size_scale=0.02,
                             dataset_pool=3)
        b = poisson_workload(10, day_s=DAY, seed=9, size_scale=0.02,
                             dataset_pool=3)
        for x, y in zip(a, b, strict=True):
            assert x.dataset.name == y.dataset.name
            assert [f.size for f in x.dataset.files] == [
                f.size for f in y.dataset.files
            ]

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            poisson_workload(4, dataset_pool=0)


# ----------------------------------------------------------------------
# report aggregates are cached (and still correct)
# ----------------------------------------------------------------------


class TestReportCaching:
    def test_render_and_to_dict_agree_with_recomputation(self, small_testbed):
        requests = diurnal_workload(6, day_s=DAY, seed=5, size_scale=0.02)
        plan_cache_clear()
        sim = ServiceSimulator(
            small_testbed,
            policy=RunNow(),
            tariff=peak_offpeak_tariff(period_s=DAY),
        )
        report = sim.run(requests)
        # first access computes and caches ...
        payload = report.to_dict()
        text = report.render()
        # ... and the cached values still equal a by-hand recomputation
        assert payload["total_kwh"] == sum(
            j.energy_j for j in report.jobs
        ) / JOULES_PER_KWH
        assert payload["total_cost_usd"] == sum(j.cost_usd for j in report.jobs)
        assert payload["jobs"] == len(report.jobs)
        assert "Service day" in text
        assert payload["p95_slowdown"] == report.p95_slowdown

    def test_aggregates_computed_once(self, small_testbed):
        requests = diurnal_workload(4, day_s=DAY, seed=5, size_scale=0.02)
        plan_cache_clear()
        sim = ServiceSimulator(
            small_testbed,
            policy=RunNow(),
            tariff=peak_offpeak_tariff(period_s=DAY),
        )
        report = sim.run(requests)
        first = report.per_tenant
        assert report.per_tenant is first          # cached: same object
        assert report.slowdowns is report.slowdowns
        # cached_property stores on the instance dict
        assert "per_tenant" in report.__dict__
        assert "total_energy_j" not in report.__dict__
        _ = report.total_energy_j
        assert "total_energy_j" in report.__dict__
