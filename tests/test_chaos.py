"""Chaos & SLO harness: scenario determinism, fault consistency
between the fast path and the dt-grid, recovery hooks, the SLO
oracle's burn-rate semantics, and the satellite regressions
(percentile-of-nothing, fleet tenant re-averaging, mid-file channel
resume)."""

import json
import math
from dataclasses import dataclass, replace
from typing import ClassVar, Optional

import pytest

from repro import units
from repro.chaos import (
    AmbientTraffic,
    ChannelCut,
    LinkScale,
    SCENARIO_PRESETS,
    SLOBudget,
    SLORule,
    ScenarioScript,
    ServerOutage,
    TariffSwap,
    run_scenario,
    scenario_by_name,
    strip_wall,
)
from repro.datasets.files import Dataset, FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan
from repro.netsim.link import NetworkPath
from repro.netsim.multi import MultiTransferSimulator
from repro.netsim.params import TransferParams
from repro.obs.observer import Observer
from repro.power.coefficients import CoefficientSet
from repro.service.fleet import FleetReport, ShardResult
from repro.service.requests import BALANCED, TransferRequest
from repro.service.scheduler import RunNow, policy_by_name
from repro.service.simulate import (
    JobResult,
    ServiceReport,
    ServiceSimulator,
    _percentile,
)
from repro.service.tariff import tariff_by_name
from repro.testbeds.specs import Testbed as TestbedSpec
from repro.testbeds.specs import testbed_by_name as _testbed_by_name

XSEDE = _testbed_by_name("xsede")
DAY = 900.0
TARIFF = tariff_by_name("peak-offpeak", period_s=DAY)

#: One shared kwargs set for scenario runs: small enough for CI, big
#: enough that faults land while jobs are in flight.
RUN_KW = dict(testbed=XSEDE, tariff=TARIFF, jobs=6, day_s=DAY, seed=5)


def _pack_json(result, include_jobs=True) -> str:
    return json.dumps(
        strip_wall(result.to_dict(include_jobs=include_jobs)),
        sort_keys=True,
    )


@pytest.fixture
def slow_testbed() -> TestbedSpec:
    """Link-bound two-server-per-site path: jobs run long enough for
    mid-transfer fault injection, and one server per side can die."""
    server = ServerSpec(
        name="host", cores=8, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(
            per_accessor_rate=100 * units.MB, array_rate=800 * units.MB
        ),
        per_channel_rate=60 * units.MB, core_rate=400 * units.MB,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 2)
    return TestbedSpec(
        name="SlowPair",
        path=NetworkPath(
            bandwidth=units.gbps(1), rtt=units.ms(5),
            tcp_buffer=16 * units.MB, protocol_efficiency=1.0,
            congestion_knee=64,
        ),
        source=site,
        destination=site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: Dataset.from_sizes([50 * units.MB] * 20),
        engine_dt=0.1,
    )


def _plan(name: str, n_files=20, size=50 * units.MB, cc=2) -> list[ChunkPlan]:
    files = tuple(FileInfo(f"{name}-{i}", int(size)) for i in range(n_files))
    return [ChunkPlan(name, files, TransferParams(concurrency=cc))]


# ----------------------------------------------------------------------
# satellite 1: percentile-of-nothing
# ----------------------------------------------------------------------


class TestPercentileRegression:
    def test_empty_percentile_is_none(self):
        assert _percentile([], 50.0) is None
        assert _percentile([], 95.0) is None

    def test_nonempty_percentile_still_works(self):
        assert _percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_all_miss_day_reports_na_not_zero(self):
        """A truncated day where nothing finished must render its
        slowdown percentiles as n/a, not a perfect-looking 0.00."""
        result = run_scenario(
            "brownout", policy="run-now", max_time=2.0, **RUN_KW
        )
        report = result.report
        assert report.truncated
        assert report.finished_jobs == 0
        assert report.p50_slowdown is None
        assert report.p95_slowdown is None
        rendered = report.render()
        assert "n/a" in rendered
        assert "TRUNCATED" in rendered


# ----------------------------------------------------------------------
# actions: validation + tariff scaling
# ----------------------------------------------------------------------


class TestActions:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkScale(time=-1.0, scale=0.5)
        with pytest.raises(ValueError):
            LinkScale(time=0.0, scale=0.0)
        with pytest.raises(ValueError):
            AmbientTraffic(time=0.0, streams=-1.0)
        with pytest.raises(ValueError):
            ServerOutage(time=0.0, side="up", index=0, downtime=10.0)
        with pytest.raises(ValueError):
            ServerOutage(time=0.0, side="src", index=0, downtime=0.0)
        with pytest.raises(ValueError):
            ChannelCut(time=0.0, per_job=0)

    def test_tariff_scaled(self):
        spiked = TARIFF.scaled(price_factor=3.0, carbon_factor=2.0)
        for (o0, p0, c0), (o1, p1, c1) in zip(TARIFF.points, spiked.points):
            assert o1 == o0
            assert p1 == pytest.approx(3.0 * p0)
            assert c1 == pytest.approx(2.0 * c0)
        assert spiked.name != TARIFF.name
        with pytest.raises(ValueError):
            TARIFF.scaled(price_factor=-1.0)

    def test_scenario_actions_must_be_sorted(self):
        with pytest.raises(ValueError):
            ScenarioScript(
                name="x", description="",
                actions=(LinkScale(time=10.0, scale=0.5),
                         LinkScale(time=5.0, scale=1.0)),
                slo=SLOBudget("x", (SLORule("miss_rate", 1.0),)),
            )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario_by_name(
                "meteor-strike", day_s=DAY, seed=1, tariff=TARIFF,
                testbed=XSEDE,
            )


# ----------------------------------------------------------------------
# tentpole: scenario determinism + fast-vs-grid under faults
# ----------------------------------------------------------------------


class TestScenarioDeterminism:
    @pytest.mark.parametrize("scenario", sorted(SCENARIO_PRESETS))
    def test_same_seed_byte_identical(self, scenario):
        a = run_scenario(scenario, policy="run-now", **RUN_KW)
        b = run_scenario(scenario, policy="run-now", **RUN_KW)
        assert _pack_json(a) == _pack_json(b)

    @pytest.mark.parametrize("scenario", sorted(SCENARIO_PRESETS))
    def test_fast_matches_grid_under_faults(self, scenario):
        fast = run_scenario(scenario, policy="run-now", fast=True, **RUN_KW)
        grid = run_scenario(scenario, policy="run-now", fast=False, **RUN_KW)
        fr, gr = fast.report, grid.report
        assert len(fr.jobs) == len(gr.jobs)
        for a, b in zip(fr.jobs, gr.jobs):
            assert a.name == b.name
            assert a.admitted_at == b.admitted_at
            assert a.completed_at == b.completed_at
        rel = lambda x, y: abs(x - y) / max(abs(y), 1e-12)  # noqa: E731
        assert rel(fr.total_energy_j, gr.total_energy_j) <= 1e-9
        assert rel(fr.total_cost_usd, gr.total_cost_usd) <= 1e-9
        assert fr.makespan_s == gr.makespan_s

    def test_fleet_inline_matches_process_pool(self):
        kw = dict(RUN_KW, shards=2, jobs=8)
        inline = run_scenario(
            "traffic-surge", policy="run-now", workers=1, **kw
        )
        pooled = run_scenario(
            "traffic-surge", policy="run-now", workers=2, **kw
        )
        assert _pack_json(inline, include_jobs=False) == _pack_json(
            pooled, include_jobs=False
        )

    def test_different_seed_changes_the_timeline(self):
        a = scenario_by_name("crash-storm", day_s=DAY, seed=1,
                             tariff=TARIFF, testbed=XSEDE)
        b = scenario_by_name("crash-storm", day_s=DAY, seed=2,
                             tariff=TARIFF, testbed=XSEDE)
        assert [x.time for x in a.actions] != [x.time for x in b.actions]

    def test_every_preset_has_faults_or_extras(self):
        for name in SCENARIO_PRESETS:
            script = scenario_by_name(name, day_s=DAY, seed=5,
                                      tariff=TARIFF, testbed=XSEDE)
            assert script.actions or script.extra_requests
            assert script.slo.rules


# ----------------------------------------------------------------------
# intervention timing: both drivers apply at the same grid point, once
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Probe:
    time: float
    kind: ClassVar[str] = "probe"

    def apply(self, service, sim) -> dict:
        return {"at": sim.time}


class TestInterventionTiming:
    @pytest.mark.parametrize("fast", [True, False])
    def test_applied_once_at_a_grid_point(self, fast, slow_testbed):
        observer = Observer()
        service = ServiceSimulator(
            slow_testbed, policy=policy_by_name("run-now"),
            tariff=tariff_by_name("flat", period_s=DAY),
            observer=observer, fast=fast,
        )
        request = TransferRequest(
            name="big", tenant="t",
            dataset=Dataset.from_sizes([50 * units.MB] * 40), sla=BALANCED,
        )
        service.run([request], interventions=(_Probe(time=5.05),))
        fired = observer.events.filter(kind="fault_injected")
        assert len(fired) == 1
        at = fired[0].detail["detail"]["at"]
        # applied at the first grid point >= 5.05 (dt = 0.1)
        assert at == pytest.approx(5.1, abs=1e-9)

    def test_fast_and_grid_see_the_same_instant(self, slow_testbed):
        ats = []
        for fast in (True, False):
            observer = Observer()
            service = ServiceSimulator(
                slow_testbed, policy=policy_by_name("run-now"),
                tariff=tariff_by_name("flat", period_s=DAY),
                observer=observer, fast=fast,
            )
            request = TransferRequest(
                name="big", tenant="t",
                dataset=Dataset.from_sizes([50 * units.MB] * 40),
                sla=BALANCED,
            )
            service.run([request], interventions=(_Probe(time=7.77),))
            fired = observer.events.filter(kind="fault_injected")
            ats.append(fired[0].detail["detail"]["at"])
        assert ats[0] == ats[1]


# ----------------------------------------------------------------------
# satellite 2: mid-file channel-cut resume, fast vs fixed-dt
# ----------------------------------------------------------------------


class TestChannelCutResume:
    @pytest.mark.parametrize("restart_file", [False, True])
    def test_fast_matches_grid_through_mid_file_cut(
        self, restart_file, slow_testbed
    ):
        """A channel cut mid-transfer (resuming the in-flight file
        with ``restart_file=False``, or restarting it) must leave the
        fast path bit-consistent with the grid loop."""
        reports = []
        for fast in (True, False):
            service = ServiceSimulator(
                slow_testbed, policy=policy_by_name("run-now"),
                tariff=tariff_by_name("flat", period_s=DAY), fast=fast,
            )
            request = TransferRequest(
                name="big", tenant="t",
                dataset=Dataset.from_sizes([50 * units.MB] * 40),
                sla=BALANCED,
            )
            cut = ChannelCut(time=5.0, per_job=1, restart_file=restart_file)
            reports.append(service.run([request], interventions=(cut,)))
        fr, gr = reports
        assert fr.jobs[0].completed_at == gr.jobs[0].completed_at
        rel = abs(fr.total_energy_j - gr.total_energy_j) / max(
            gr.total_energy_j, 1e-12
        )
        assert rel <= 1e-9

    def test_restarting_the_file_costs_time(self, slow_testbed):
        """Losing mid-file progress must never finish earlier than
        resuming it."""
        done = {}
        for restart in (False, True):
            service = ServiceSimulator(
                slow_testbed, policy=policy_by_name("run-now"),
                tariff=tariff_by_name("flat", period_s=DAY),
            )
            request = TransferRequest(
                name="big", tenant="t",
                dataset=Dataset.from_sizes([200 * units.MB] * 8),
                sla=BALANCED,
            )
            cut = ChannelCut(time=6.0, per_job=2, restart_file=restart)
            done[restart] = service.run(
                [request], interventions=(cut,)
            ).jobs[0].completed_at
        assert done[True] >= done[False]


# ----------------------------------------------------------------------
# recovery: stranded jobs and the re-admission hook
# ----------------------------------------------------------------------


class TestRecovery:
    def test_multi_readmit_stranded(self, slow_testbed):
        sim = MultiTransferSimulator(slow_testbed)
        sim.submit("a", _plan("a"))
        sim.run_until(3.0)
        engine = sim._jobs[0][1]
        assert engine.channels
        sim.inject_channel_failures(per_job=len(engine.channels))
        assert not engine.channels
        assert sim.readmit_stranded() == ["a"]
        assert engine.channels
        records = sim.run()
        assert all(r.finished for r in records)

    def test_service_reroutes_stranded_job(self, slow_testbed):
        observer = Observer()
        service = ServiceSimulator(
            slow_testbed, policy=policy_by_name("run-now"),
            tariff=tariff_by_name("flat", period_s=DAY), observer=observer,
        )
        request = TransferRequest(
            name="big", tenant="t",
            dataset=Dataset.from_sizes([50 * units.MB] * 40), sla=BALANCED,
        )
        cut = ChannelCut(time=5.0, per_job=64)
        report = service.run([request], interventions=(cut,))
        assert report.jobs[0].finished
        assert observer.metrics.counter("chaos.jobs_readmitted").value >= 1
        assert observer.metrics.counter("chaos.faults_injected").value == 1

    def test_policy_can_opt_out_of_rerouting(self, slow_testbed):
        class NoReroute(RunNow):
            reroute_on_failure = False

        service = ServiceSimulator(
            slow_testbed, policy=NoReroute(),
            tariff=tariff_by_name("flat", period_s=DAY),
        )
        request = TransferRequest(
            name="big", tenant="t",
            dataset=Dataset.from_sizes([50 * units.MB] * 40), sla=BALANCED,
        )
        cut = ChannelCut(time=5.0, per_job=64)
        report = service.run(
            [request], interventions=(cut,), max_time=120.0,
            on_timeout="report",
        )
        assert report.truncated
        assert not report.jobs[0].finished

    def test_server_outage_refuses_last_server(self, slow_testbed):
        sim = MultiTransferSimulator(slow_testbed)
        sim.submit("a", _plan("a"))
        sim.run_until(1.0)
        sim.inject_server_failure("src", 0, downtime=30.0)
        with pytest.raises(RuntimeError):
            sim.inject_server_failure("src", 1, downtime=30.0)

    def test_jobs_admitted_during_outage_inherit_it(self, slow_testbed):
        sim = MultiTransferSimulator(slow_testbed)
        # "a" is long-running, so the coordinator is still stepping
        # (and admitting arrivals) when "late" shows up at t=2.
        sim.submit("a", _plan("a"))
        sim.run_until(1.0)
        sim.inject_server_failure("src", 0, downtime=500.0)
        sim.submit("late", _plan("late", n_files=4), arrival_time=2.0)
        sim.run_until(5.0)
        late_engine = next(
            engine for record, engine in sim._jobs if record.name == "late"
        )
        assert ("src", 0) in late_engine.down_servers


# ----------------------------------------------------------------------
# SLO oracle
# ----------------------------------------------------------------------


@dataclass
class _StubReport:
    """Duck-typed report slice the oracle reads."""

    deadline_miss_rate: float = 0.0
    p95_slowdown: Optional[float] = 1.0
    total_cost_usd: float = 1.0
    total_bytes: int = 10**9
    unfinished_jobs: int = 0
    jobs_total: int = 10
    mean_queue_wait_s: float = 1.0


class TestSLOOracle:
    @pytest.mark.parametrize("metric,stub,budget", [
        ("miss_rate", _StubReport(deadline_miss_rate=0.8), 0.5),
        ("p95_slowdown", _StubReport(p95_slowdown=100.0), 40.0),
        ("cost_per_gb", _StubReport(total_cost_usd=20.0), 10.0),
        ("unfinished_rate", _StubReport(unfinished_jobs=5), 0.25),
        ("mean_queue_wait_s", _StubReport(mean_queue_wait_s=1000.0), 100.0),
    ])
    def test_each_rule_can_fail(self, metric, stub, budget):
        verdict = SLOBudget(
            "fixture", (SLORule(metric, budget),)
        ).evaluate(stub)
        assert not verdict.passed
        (check,) = verdict.breaches
        assert check.metric == metric
        assert check.burn > 1.0

    @pytest.mark.parametrize("stub,metric", [
        (_StubReport(p95_slowdown=None), "p95_slowdown"),
        (_StubReport(total_bytes=0), "cost_per_gb"),
        (_StubReport(jobs_total=0), "unfinished_rate"),
    ])
    def test_unmeasurable_metric_is_infinite_burn(self, stub, metric):
        verdict = SLOBudget(
            "fixture", (SLORule(metric, 10.0),)
        ).evaluate(stub)
        assert not verdict.passed
        assert math.isinf(verdict.max_burn)
        assert verdict.to_dict()["checks"][0]["burn"] is None

    def test_passing_budget(self):
        verdict = SLOBudget(
            "fixture",
            (SLORule("miss_rate", 0.5), SLORule("cost_per_gb", 10.0)),
        ).evaluate(_StubReport(deadline_miss_rate=0.1))
        assert verdict.passed
        assert verdict.max_burn <= 1.0

    def test_breaches_reach_the_observer(self):
        observer = Observer()
        SLOBudget("fixture", (SLORule("miss_rate", 0.5),)).evaluate(
            _StubReport(deadline_miss_rate=1.0), observer=observer,
            time=42.0,
        )
        events = observer.events.filter(kind="slo_breach")
        assert len(events) == 1
        assert events[0].detail["metric"] == "miss_rate"
        assert observer.metrics.counter("chaos.slo_breaches").value == 1

    def test_bad_rules_rejected(self):
        with pytest.raises(ValueError):
            SLORule("latency_p999", 1.0)
        with pytest.raises(ValueError):
            SLORule("miss_rate", 0.0)
        with pytest.raises(ValueError):
            SLOBudget("dup", (SLORule("miss_rate", 0.5),
                              SLORule("miss_rate", 0.6)))
        with pytest.raises(ValueError):
            SLOBudget("empty", ())

    def test_truncated_day_fails_its_budget(self):
        result = run_scenario(
            "brownout", policy="run-now", max_time=2.0, **RUN_KW
        )
        assert result.report.truncated
        assert not result.passed
        assert math.isinf(result.verdict.max_burn)


# ----------------------------------------------------------------------
# satellite 3: fleet per-tenant re-averaging
# ----------------------------------------------------------------------


def _job(name, tenant, *, submitted=0.0, admitted=None, completed=None):
    return JobResult(
        name=name, tenant=tenant, sla="BALANCED", algorithm="HTEE",
        submitted_at=submitted, released_at=submitted,
        admitted_at=admitted, completed_at=completed,
        total_bytes=units.MB, energy_j=1.0, cost_usd=0.0, kg_co2=0.0,
    )


def _shard(name, report):
    return ShardResult(name=name, weight=1.0, routed_jobs=len(report.jobs),
                       stolen_in=0, stolen_out=0, wall_s=0.0, report=report)


class TestFleetTenantMerge:
    def _report(self, jobs):
        return ServiceReport(testbed="t", policy="run-now", tariff="flat",
                             jobs=jobs, makespan_s=100.0)

    def test_disjoint_tenants_merge_without_nan(self):
        """Shards with disjoint tenants — including one whose job was
        never admitted — must merge to finite per-tenant waits."""
        shard_a = self._report([
            _job("a1", "alpha", admitted=10.0, completed=20.0),
            _job("a2", "alpha", submitted=0.0, admitted=30.0,
                 completed=40.0),
        ])
        shard_b = self._report([
            _job("b1", "beta", admitted=5.0, completed=6.0),
            _job("z1", "zero"),  # never admitted
        ])
        fleet = FleetReport(routing="tenant-hash", policy="run-now",
                            tariff="flat",
                            shards=[_shard("s0", shard_a),
                                    _shard("s1", shard_b)])
        tenants = fleet.per_tenant
        assert set(tenants) == {"alpha", "beta", "zero"}
        assert tenants["alpha"]["mean_queue_wait_s"] == pytest.approx(20.0)
        assert tenants["alpha"]["admitted"] == 2
        assert tenants["beta"]["mean_queue_wait_s"] == pytest.approx(5.0)
        assert tenants["zero"]["admitted"] == 0
        assert tenants["zero"]["mean_queue_wait_s"] == 0.0
        for row in tenants.values():
            assert math.isfinite(row["mean_queue_wait_s"])

    def test_cross_shard_wait_is_admitted_weighted(self):
        """Re-averaging across shards must weight by each shard's
        *admitted* count, not its job count."""
        shard_a = self._report([
            _job("a1", "alpha", admitted=10.0, completed=20.0),
            _job("a2", "alpha", admitted=20.0, completed=30.0),
            _job("a3", "alpha"),  # submitted, never admitted
        ])
        shard_b = self._report([
            _job("b1", "alpha", admitted=60.0, completed=70.0),
        ])
        fleet = FleetReport(routing="tenant-hash", policy="run-now",
                            tariff="flat",
                            shards=[_shard("s0", shard_a),
                                    _shard("s1", shard_b)])
        # waits 10, 20 (shard a) and 60 (shard b): mean over the three
        # admitted jobs, not diluted by the never-admitted one.
        assert fleet.per_tenant["alpha"]["mean_queue_wait_s"] == (
            pytest.approx(30.0)
        )


# ----------------------------------------------------------------------
# flash-crowd extras + CLI
# ----------------------------------------------------------------------


class TestFlashCrowd:
    def test_extras_are_disjoint_and_in_window(self):
        script = scenario_by_name("flash-crowd", day_s=DAY, seed=5,
                                  tariff=TARIFF, testbed=XSEDE)
        names = [r.name for r in script.extra_requests]
        assert len(names) == len(set(names))
        assert all(r.tenant == "flash" for r in script.extra_requests)
        assert all(0 <= r.submit_time <= DAY for r in script.extra_requests)

    def test_flash_tenant_shows_up_in_the_report(self):
        result = run_scenario("flash-crowd", policy="run-now", **RUN_KW)
        assert "flash" in result.report.per_tenant


class TestChaosCLI:
    def test_single_cell_json(self, capsys):
        from repro.cli import main

        code = main(["chaos", "-s", "brownout", "-p", "run-now",
                     "--jobs", "4", "--day", "600", "--json", "-"])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["results"][0]["scenario"] == "brownout"
        assert "verdict" in payload["results"][0]

    def test_unknown_scenario_exits_2(self, capsys):
        from repro.cli import main

        assert main(["chaos", "-s", "nope"]) == 2
