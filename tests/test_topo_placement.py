"""Placement scheduling: policy behaviour, seeded determinism, and
load bookkeeping of the :class:`~repro.topo.placement.Placer`."""

import pytest

from repro.topo import PLACEMENT_POLICIES, Placer, from_edges, leaf_spine


def two_route_topology():
    """Two disjoint routes between the same endpoints, one of them on
    a half-capacity bottleneck."""
    return from_edges(
        [("wide", 10.0), ("narrow", 5.0)],
        {
            "via-wide": ("a", "b", ["wide"]),
            "via-narrow": ("a", "b", ["narrow"]),
        },
    )


class TestConstruction:
    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            Placer(two_route_topology(), "round-robin")

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            Placer(two_route_topology(), "random-k", k=0)

    def test_pin_requires_both_endpoints(self):
        topo = two_route_topology()
        with pytest.raises(ValueError, match="pin both"):
            Placer(topo, src="a")
        with pytest.raises(ValueError, match="no candidate paths"):
            Placer(topo, src="b", dst="a")  # routes are a -> b only

    def test_policies_registry(self):
        assert PLACEMENT_POLICIES == (
            "least-congested",
            "ecmp-hash",
            "random-k",
        )


class TestLeastCongested:
    def test_prefers_spare_capacity(self):
        """Empty network: the wide route scores 1/10 vs 1/5, so the
        first flow lands wide; the second ties (2/10 == 1/5) and goes
        narrow by name; the third sees 2/10 < 2/5 and goes wide."""
        placer = Placer(two_route_topology(), "least-congested")
        assert placer.place("j1").name == "via-wide"
        assert placer.place("j2").name == "via-narrow"
        assert placer.place("j3").name == "via-wide"

    def test_release_restores_preference(self):
        placer = Placer(two_route_topology(), "least-congested")
        first = placer.place("j1")
        second = placer.place("j2")
        placer.release(first)
        placer.release(second)
        assert placer.loads() == {}
        assert placer.place("j3").name == "via-wide"

    def test_congestion_is_capacity_relative(self):
        topo = two_route_topology()
        placer = Placer(topo, "least-congested")
        wide, narrow = topo.path("via-wide"), topo.path("via-narrow")
        assert placer.congestion(wide) == pytest.approx(1 / 10.0)
        assert placer.congestion(narrow) == pytest.approx(1 / 5.0)
        # a brownout on the wide hop flips the preference
        topo.scale_bottleneck("wide", 0.25)
        assert placer.congestion(wide) > placer.congestion(narrow)
        assert placer.place("j1").name == "via-narrow"


class TestEcmpHash:
    def test_stable_across_instances(self):
        topo = leaf_spine(2, 4, leaf_capacity=10.0)
        a = Placer(topo, "ecmp-hash")
        b = Placer(topo, "ecmp-hash", seed=999)  # seed is irrelevant
        names = [f"job-{i}" for i in range(20)]
        assert [a.place(n).name for n in names] == [
            b.place(n).name for n in names
        ]

    def test_load_blind(self):
        placer = Placer(leaf_spine(2, 4, leaf_capacity=10.0), "ecmp-hash")
        assert placer.place("x").name == placer.place("x").name


class TestRandomK:
    def test_deterministic_under_seed(self):
        topo = leaf_spine(2, 4, leaf_capacity=10.0)
        names = [f"job-{i}" for i in range(20)]
        runs = []
        for _ in range(2):
            placer = Placer(topo, "random-k", seed=42)
            runs.append([placer.place(n).name for n in names])
        assert runs[0] == runs[1]

    def test_seed_changes_draws(self):
        topo = leaf_spine(2, 4, leaf_capacity=10.0)
        names = [f"job-{i}" for i in range(40)]
        one = Placer(topo, "random-k", seed=1)
        two = Placer(topo, "random-k", seed=2)
        assert [one.place(n).name for n in names] != [
            two.place(n).name for n in names
        ]

    def test_picks_least_congested_of_sample(self):
        """With k covering every candidate, random-k degenerates to
        least-congested exactly."""
        topo = two_route_topology()
        sampler = Placer(topo, "random-k", k=2, seed=0)
        informed = Placer(topo, "least-congested")
        for i in range(6):
            assert (
                sampler.place(f"j{i}").name == informed.place(f"j{i}").name
            )


class TestBookkeeping:
    def test_loads_accumulate_per_hop(self):
        topo = leaf_spine(1, 2, leaf_capacity=10.0)
        placer = Placer(topo, "ecmp-hash")
        paths = [placer.place(f"j{i}") for i in range(4)]
        loads = placer.loads()
        assert sum(loads.values()) == sum(len(p.bottlenecks) for p in paths)
        assert placer.placements == 4
        for path in paths:
            placer.release(path)
        assert placer.loads() == {}

    def test_pinned_endpoints_restrict_candidates(self):
        topo = leaf_spine(2, 4, leaf_capacity=10.0)
        placer = Placer(topo, "least-congested", src="leaf0", dst="leaf1")
        for i in range(8):
            path = placer.place(f"j{i}")
            assert (path.src, path.dst) == ("leaf0", "leaf1")
