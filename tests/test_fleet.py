"""Fleet-scale projection model."""

import pytest

from repro.fleet import (
    WORLD_TRANSFER_TWH_PER_YEAR,
    FleetModel,
    JobClass,
    PolicyReport,
    TariffModel,
    global_projection_twh,
)


@pytest.fixture
def fleet(small_testbed):
    jobs = [
        JobClass("nightly", small_testbed.dataset_factory, jobs_per_day=2.0),
        JobClass("hourly", small_testbed.dataset_factory, jobs_per_day=24.0,
                 sla_level=0.7),
    ]
    return FleetModel(small_testbed, jobs, max_channels=4)


class TestTariffModel:
    def test_dollars(self):
        tariff = TariffModel(dollars_per_kwh=0.10)
        assert tariff.dollars(3.6e6) == pytest.approx(0.10)

    def test_co2(self):
        tariff = TariffModel(kg_co2_per_kwh=0.5)
        assert tariff.kg_co2(7.2e6) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TariffModel(dollars_per_kwh=-1)


class TestJobClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobClass("x", lambda: None, jobs_per_day=-1)
        with pytest.raises(ValueError):
            JobClass("x", lambda: None, jobs_per_day=1, sla_level=0.0)


class TestFleetModel:
    def test_needs_jobs(self, small_testbed):
        with pytest.raises(ValueError):
            FleetModel(small_testbed, [])

    def test_report_annualizes(self, fleet):
        report = fleet.report("promc")
        assert report.annual_jobs == pytest.approx((2.0 + 24.0) * 365)
        assert report.annual_energy_kwh > 0
        assert report.annual_cost_dollars > 0
        assert report.annual_transfer_hours > 0

    def test_mine_policy_never_meaningfully_worse(self, fleet):
        promc = fleet.report("promc")
        mine = fleet.report("mine")
        assert mine.savings_vs(promc) > -0.05

    def test_htee_policy_produces_sane_report(self, fleet):
        # on a tiny job HTEE's probe phase dominates, so it may cost
        # more than ProMC here — the XSEDE-scale comparison lives in
        # examples/provider_fleet.py and the integration suite
        report = fleet.report("htee")
        assert report.annual_energy_kwh > 0
        assert report.annual_transfer_hours > 0

    def test_slaee_uses_job_sla_levels(self, fleet):
        report = fleet.report("slaee")
        assert report.annual_energy_kwh > 0

    def test_unknown_policy(self, fleet):
        with pytest.raises(KeyError):
            fleet.report("carrier-pigeon")

    def test_runs_are_cached(self, fleet):
        fleet.report("mine")
        cached = dict(fleet._run_cache)
        fleet.report("mine")
        assert fleet._run_cache == cached

    def test_render_comparison(self, fleet):
        text = fleet.render_comparison(["promc", "mine"])
        assert "promc" in text and "mine" in text
        assert "vs ProMC" in text

    def test_savings_vs_requires_positive_baseline(self):
        a = PolicyReport("a", 1, 0.0, 1, 1, 1)
        b = PolicyReport("b", 1, 10.0, 1, 1, 1)
        with pytest.raises(ValueError):
            b.savings_vs(a)
        assert b.savings_vs(b) == 0.0


class TestGlobalProjection:
    def test_paper_constants(self):
        assert WORLD_TRANSFER_TWH_PER_YEAR == 450.0

    def test_30pct_of_end_system_quarter(self):
        # the paper's headline: 30% savings on the end-system quarter
        saved = global_projection_twh(0.30)
        assert saved == pytest.approx(450.0 * 0.25 * 0.30)

    def test_validation(self):
        with pytest.raises(ValueError):
            global_projection_twh(1.5)
        with pytest.raises(ValueError):
            global_projection_twh(0.5, end_system_share=0.0)
