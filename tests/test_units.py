"""Unit-conversion sanity — the one true unit system."""


import pytest

from repro import units


class TestSizeConstants:
    def test_decimal_multipliers(self):
        assert units.KB == 1_000
        assert units.MB == 1_000_000
        assert units.GB == 1_000_000_000
        assert units.TB == 1_000_000_000_000

    def test_multipliers_are_consistent(self):
        assert units.MB == 1000 * units.KB
        assert units.GB == 1000 * units.MB
        assert units.TB == 1000 * units.GB


class TestRateConversions:
    def test_mbps_is_bytes_per_second(self):
        # 8 Mbit/s == 1 MB/s
        assert units.mbps(8) == pytest.approx(1_000_000)

    def test_gbps(self):
        assert units.gbps(1) == pytest.approx(125_000_000)

    def test_kbps(self):
        assert units.kbps(8) == pytest.approx(1_000)

    def test_round_trip_mbps(self):
        for value in (0.0, 1.0, 9.5, 10_000.0):
            assert units.to_mbps(units.mbps(value)) == pytest.approx(value)

    def test_round_trip_gbps(self):
        assert units.to_gbps(units.gbps(10)) == pytest.approx(10)

    def test_gbps_is_1000_mbps(self):
        assert units.gbps(1) == pytest.approx(units.mbps(1000))


class TestTimeAndSize:
    def test_ms(self):
        assert units.ms(40) == pytest.approx(0.040)

    def test_to_MB_GB(self):
        assert units.to_MB(5 * units.MB) == pytest.approx(5)
        assert units.to_GB(2.5 * units.GB) == pytest.approx(2.5)

    def test_kilojoules(self):
        assert units.kilojoules(21_000) == pytest.approx(21.0)


class TestBdp:
    def test_xsede_bdp_is_50_megabytes(self):
        # 10 Gbps x 40 ms, the paper's headline BDP.
        bdp = units.bdp_bytes(units.gbps(10), units.ms(40))
        assert bdp == pytest.approx(50 * units.MB)

    def test_futuregrid_bdp(self):
        bdp = units.bdp_bytes(units.gbps(1), units.ms(28))
        assert bdp == pytest.approx(3.5 * units.MB)

    def test_zero_rtt_gives_zero_bdp(self):
        assert units.bdp_bytes(units.gbps(1), 0.0) == 0.0

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.bdp_bytes(-1.0, 0.01)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            units.bdp_bytes(1.0, -0.01)
