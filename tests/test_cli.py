"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_transfer_defaults(self):
        args = build_parser().parse_args(["transfer"])
        assert args.testbed == "xsede"
        assert args.algorithm == "HTEE"
        assert args.max_channels == 12

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transfer", "-a", "bogus"])


class TestCommands:
    def test_testbeds(self, capsys):
        assert main(["testbeds"]) == 0
        out = capsys.readouterr().out
        assert "XSEDE" in out and "DIDCLAB" in out

    def test_dataset(self, capsys):
        assert main(["dataset", "-t", "didclab"]) == 0
        assert "40.00 GB" in capsys.readouterr().out

    def test_transfer_didclab(self, capsys):
        assert main(["transfer", "-t", "didclab", "-a", "MinE", "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "MinE" in out
        assert "Mbps" in out

    def test_transfer_json_and_trace(self, tmp_path, capsys):
        json_path = tmp_path / "out.json"
        trace_path = tmp_path / "trace.csv"
        code = main(
            [
                "transfer", "-t", "didclab", "-a", "GUC",
                "--json", str(json_path), "--trace", str(trace_path),
            ]
        )
        assert code == 0
        data = json.loads(json_path.read_text())
        assert data[0]["algorithm"] == "GUC"
        assert trace_path.read_text().startswith("time_s,")

    def test_transfer_sparkline(self, capsys):
        assert main(["transfer", "-t", "didclab", "-a", "GUC", "--sparkline"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_sweep(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        code = main(
            ["sweep", "-t", "didclab", "-a", "GUC", "MinE", "-l", "1", "2",
             "--json", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Throughput vs concurrency" in out
        assert len(json.loads(json_path.read_text())) == 4

    def test_sla(self, capsys):
        assert main(["sla", "-t", "didclab", "--targets", "80"]) == 0
        assert "80%" in capsys.readouterr().out

    def test_figures_single(self, capsys):
        assert main(["figures", "fig01", "table1"]) == 0
        out = capsys.readouterr().out
        assert "===== fig01 =====" in out
        assert "===== table1 =====" in out

    def test_figures_unknown(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_validate(self, capsys):
        assert main(["validate"]) == 0
        assert "validate: OK" in capsys.readouterr().out

    def test_advise_default_dataset(self, capsys):
        assert main(["advise", "-t", "didclab", "-c", "4"]) == 0
        out = capsys.readouterr().out
        assert "Transfer plan" in out
        assert "single-spindle" in out

    def test_advise_workload_preset(self, capsys):
        assert main(["advise", "-t", "xsede", "-w", "logs"]) == 0
        assert "predicted:" in capsys.readouterr().out

    def test_advise_unknown_workload(self, capsys):
        assert main(["advise", "-w", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("genomics", "climate", "video", "logs", "vm-images"):
            assert name in out

    def test_fleet(self, capsys):
        assert main(["fleet", "-t", "didclab", "--jobs-per-day", "1"]) == 0
        out = capsys.readouterr().out
        assert "vs ProMC" in out
        assert "slaee" in out

    def test_pareto(self, capsys):
        assert main(["pareto", "-t", "didclab", "-l", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out
        assert "MinE@" in out

    def test_history_summary_and_best(self, tmp_path, capsys):
        json_path = tmp_path / "runs.jsonl"
        from repro.harness.store import ResultStore
        from repro.core.scheduler import TransferOutcome

        store = ResultStore(json_path)
        store.append(TransferOutcome("HTEE", "XSEDE", 4, 10.0, 1e9, 100.0))
        assert main(["history", str(json_path)]) == 0
        assert "1 runs" in capsys.readouterr().out
        assert main(["history", str(json_path), "--best", "efficiency"]) == 0
        assert "HTEE" in capsys.readouterr().out

    def test_history_empty_best(self, tmp_path, capsys):
        assert main(["history", str(tmp_path / "none.jsonl"), "--best", "efficiency"]) == 1


class TestReportObservability:
    def test_events_and_metrics_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--events", "--metrics"])

    def test_report_events(self, capsys):
        assert main(["report", "--events", "-t", "didclab", "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "probe_window" in out
        assert "kind" in out

    def test_report_events_kind_filter_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "events.json"
        code = main(["report", "--events", "-t", "didclab", "-c", "2",
                     "--kind", "probe_window", "--json", str(json_path)])
        assert code == 0
        events = json.loads(json_path.read_text())
        assert events and all("kind" in e for e in events)

    def test_report_metrics(self, capsys):
        assert main(["report", "--metrics", "-t", "didclab", "-a", "MinE",
                     "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "events_total:" in out

    def test_report_metrics_from_store(self, tmp_path, capsys):
        from repro.core.scheduler import engine_options
        from repro.harness.campaign import Campaign
        from repro.testbeds import testbed_by_name

        store = tmp_path / "cells.jsonl"
        campaign = Campaign("cli", store, [testbed_by_name("didclab")],
                            algorithms=("GUC",))
        with engine_options(observe=True):
            campaign.run()
        assert main(["report", "--metrics", "--store", str(store),
                     "--campaign", "cli"]) == 0
        out = capsys.readouterr().out
        assert "archived cell summaries" in out
        assert "counters:" in out

    def test_report_metrics_from_empty_store(self, tmp_path, capsys):
        (tmp_path / "empty.jsonl").write_text("")
        assert main(["report", "--metrics",
                     "--store", str(tmp_path / "empty.jsonl")]) == 1

    def test_report_events_from_store_rejected(self, tmp_path, capsys):
        assert main(["report", "--events",
                     "--store", str(tmp_path / "s.jsonl")]) == 2
        assert "process-local" in capsys.readouterr().err
