"""Background cross-traffic and SLAEE's adaptive-monitoring extension."""

import pytest

from repro import units
from repro.core.scheduler import engine_options
from repro.core.slaee import SLAEEAlgorithm
from repro.datasets.files import Dataset, FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams
from repro.testbeds.specs import Testbed as TestbedSpec
from repro.power.coefficients import CoefficientSet


def link_bound_testbed() -> TestbedSpec:
    """A path where the link (not disk/host) is the bottleneck, so
    stream share against cross-traffic is what matters."""
    server = ServerSpec(
        name="fat-host",
        cores=8,
        tdp_watts=100.0,
        nic_rate=units.gbps(1),
        disk=ParallelDisk(per_accessor_rate=100 * units.MB, array_rate=800 * units.MB),
        per_channel_rate=40 * units.MB,
        core_rate=400 * units.MB,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 1)
    path = NetworkPath(
        bandwidth=units.gbps(1),
        rtt=units.ms(5),
        tcp_buffer=16 * units.MB,
        protocol_efficiency=1.0,
        congestion_knee=64,
    )
    dataset = Dataset.from_sizes([40 * units.MB] * 100, name="link-bound-4GB")
    return TestbedSpec(
        name="LinkBound",
        path=path,
        source=site,
        destination=site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: dataset,
        engine_dt=0.1,
    )


class TestBackgroundTraffic:
    def _engine(self, background=None) -> TransferEngine:
        tb = link_bound_testbed()
        return TransferEngine(
            tb.path, tb.source, tb.destination, lambda s, u: 10.0,
            dt=0.1, background_traffic=background,
        )

    def test_no_background_matches_plain(self):
        plain = self._engine(None)
        zero = self._engine(lambda t: 0.0)
        files = tuple(FileInfo(f"f{i}", 40 * units.MB) for i in range(20))
        for engine in (plain, zero):
            engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2)))
            engine.run()
        assert plain.time == zero.time

    def test_competing_streams_cut_our_share(self):
        files = tuple(FileInfo(f"f{i}", 40 * units.MB) for i in range(20))
        free = self._engine(None)
        busy = self._engine(lambda t: 2.0)  # two competing streams
        for engine in (free, busy):
            engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2)))
            engine.run()
        # uncontended, the 2x40 MB/s channels are host-bound (80 MB/s);
        # contended, our 2-of-4 stream share (62.5 MB/s) binds instead
        assert busy.time > 1.2 * free.time

    def test_more_channels_reclaim_share(self):
        files = tuple(FileInfo(f"f{i}", 40 * units.MB) for i in range(25))
        few = self._engine(lambda t: 4.0)
        many = self._engine(lambda t: 4.0)
        few.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2)))
        many.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=8)))
        few.run()
        many.run()
        assert many.time < few.time

    def test_time_varying_traffic(self):
        # traffic appears at t=5s; early progress is faster than late
        engine = self._engine(lambda t: 0.0 if t < 5.0 else 8.0)
        files = tuple(FileInfo(f"f{i}", 40 * units.MB) for i in range(40))
        engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2)))
        engine.run(5.0)
        early = engine.total_bytes
        engine.run(5.0)
        late = engine.total_bytes - early
        assert late < early


class TestSlaeeMonitoring:
    def test_monitoring_defends_sla_against_traffic_surge(self):
        tb = link_bound_testbed()
        ds = tb.dataset()
        # competing streams appear after SLAEE's initial convergence
        surge = lambda t: 0.0 if t < 30.0 else 6.0
        max_thr = 125 * units.MB  # the uncontended link
        kwargs = dict(sla_level=0.5, max_throughput=max_thr)

        with engine_options(background_traffic=surge):
            open_loop = SLAEEAlgorithm().run(tb, ds, 16, **kwargs)
            closed_loop = SLAEEAlgorithm(adaptive_monitoring=True).run(tb, ds, 16, **kwargs)

        # the monitor reacts to the surge with extra channels
        adjustments = closed_loop.extra["monitor_adjustments"]
        assert adjustments["up"] > 0
        assert closed_loop.final_concurrency > open_loop.final_concurrency
        # and delivers more of the promised rate over the disturbed tail
        assert closed_loop.throughput > open_loop.throughput

    def test_monitoring_sheds_channels_on_overshoot(self):
        tb = link_bound_testbed()
        ds = tb.dataset()
        # ask for very little; the converged level overshoots wildly once
        # the competing traffic that was present at the start disappears
        fade = lambda t: 6.0 if t < 20.0 else 0.0
        with engine_options(background_traffic=fade):
            outcome = SLAEEAlgorithm(adaptive_monitoring=True).run(
                tb, ds, 16, sla_level=0.3, max_throughput=125 * units.MB
            )
        assert outcome.extra["monitor_adjustments"]["down"] > 0

    def test_monitoring_noop_on_stable_path(self, small_testbed):
        ds = small_testbed.dataset()
        outcome = SLAEEAlgorithm(adaptive_monitoring=True).run(
            small_testbed, ds, 6, sla_level=0.6,
            max_throughput=100 * units.MB,
        )
        assert outcome.bytes_moved == pytest.approx(ds.total_size)

    def test_default_algorithm_unchanged(self):
        algo = SLAEEAlgorithm()
        assert not algo.adaptive_monitoring
