"""Channel state machine: gaps, pipelining amortization, advancement."""

from collections import deque

import pytest

from repro.datasets.files import FileInfo
from repro.netsim.channel import Channel, FileProgress


def make_channel(pp=1, p=1, rtt=0.0, file_overhead=0.0, factor=2.5) -> Channel:
    return Channel(
        chunk_name="c",
        parallelism=p,
        pipelining=pp,
        src_server=0,
        dst_server=0,
        rtt=rtt,
        file_overhead=file_overhead,
        control_rtt_factor=factor,
    )


def queue_of(*sizes) -> deque:
    return deque(FileProgress.fresh(FileInfo(f"f{i}", s)) for i, s in enumerate(sizes))


class TestGapModel:
    def test_per_file_gap_without_pipelining(self):
        ch = make_channel(pp=1, rtt=0.040)
        assert ch.per_file_gap == pytest.approx(2.5 * 0.040)

    def test_pipelining_amortizes_control_rtts(self):
        ch = make_channel(pp=10, rtt=0.040)
        assert ch.per_file_gap == pytest.approx(2.5 * 0.040 / 10)

    def test_file_overhead_not_amortized(self):
        ch = make_channel(pp=10, rtt=0.040, file_overhead=0.02)
        assert ch.per_file_gap == pytest.approx(0.010 + 0.02)

    def test_initial_setup_gap_is_one_rtt(self):
        ch = make_channel(rtt=0.040)
        assert ch.gap_remaining == pytest.approx(0.040)

    def test_zero_rtt_no_gaps(self):
        ch = make_channel(rtt=0.0)
        assert ch.gap_remaining == 0.0
        assert ch.per_file_gap == 0.0


class TestAdvance:
    def test_transfers_bytes_at_rate(self):
        ch = make_channel()
        q = queue_of(1000)
        out = ch.advance(rate=100.0, dt=1.0, queue=q)
        assert out.bytes_moved == pytest.approx(100.0)
        assert ch.current.remaining == pytest.approx(900.0)

    def test_completes_file_exactly(self):
        ch = make_channel()
        q = queue_of(100)
        out = ch.advance(rate=100.0, dt=2.0, queue=q)
        assert out.bytes_moved == pytest.approx(100.0)
        assert out.files_completed == 1
        assert ch.current is None

    def test_multiple_small_files_per_step(self):
        ch = make_channel()
        q = queue_of(*([10] * 20))
        out = ch.advance(rate=100.0, dt=1.0, queue=q)
        assert out.files_completed == 10
        assert out.bytes_moved == pytest.approx(100.0)

    def test_gap_consumes_time_before_transfer(self):
        ch = make_channel(rtt=0.5)  # setup gap 0.5 s
        q = queue_of(1000)
        out = ch.advance(rate=100.0, dt=1.0, queue=q)
        assert out.bytes_moved == pytest.approx(50.0)  # only half the step moved bytes

    def test_gaps_between_files(self):
        # rtt 0.1 -> per-file gap 0.25 with factor 2.5, pp=1
        ch = make_channel(rtt=0.1)
        ch.gap_remaining = 0.0  # skip setup for clarity
        q = queue_of(100, 100)
        out = ch.advance(rate=100.0, dt=2.25, queue=q)
        # 1s file + 0.25 gap + 1s file = 2.25s
        assert out.files_completed == 2
        assert out.bytes_moved == pytest.approx(200.0)

    def test_zero_rate_stalls(self):
        ch = make_channel()
        q = queue_of(100)
        out = ch.advance(rate=0.0, dt=1.0, queue=q)
        assert out.bytes_moved == 0.0
        assert ch.busy

    def test_empty_queue_idles(self):
        ch = make_channel()
        out = ch.advance(rate=100.0, dt=1.0, queue=deque())
        assert out.bytes_moved == 0.0
        assert not ch.busy

    def test_zero_size_files_complete(self):
        ch = make_channel()
        q = queue_of(0, 0, 100)
        out = ch.advance(rate=100.0, dt=1.0, queue=q)
        assert out.files_completed >= 2

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            make_channel().advance(-1.0, 1.0, deque())


class TestReleaseAndTake:
    def test_release_returns_file_to_front(self):
        ch = make_channel()
        q = queue_of(100, 200)
        ch.take_from(q)
        ch.advance(rate=10.0, dt=1.0, queue=q)
        ch.release_to(q)
        assert not ch.busy
        assert q[0].remaining == pytest.approx(90.0)
        assert len(q) == 2

    def test_take_from_empty_returns_false(self):
        assert make_channel().take_from(deque()) is False

    def test_take_keeps_existing_file(self):
        ch = make_channel()
        q = queue_of(100, 200)
        ch.take_from(q)
        first = ch.current
        ch.take_from(q)
        assert ch.current is first
        assert len(q) == 1

    def test_transferring_flag(self):
        ch = make_channel(rtt=1.0)
        q = queue_of(100)
        ch.take_from(q)
        assert ch.busy and not ch.transferring  # still in setup gap
        ch.advance(rate=100.0, dt=1.0, queue=q)
        assert ch.transferring


class TestValidation:
    def test_bad_parallelism(self):
        with pytest.raises(ValueError):
            make_channel(p=0)

    def test_bad_pipelining(self):
        with pytest.raises(ValueError):
            make_channel(pp=0)

    def test_negative_rtt(self):
        with pytest.raises(ValueError):
            Channel("c", 1, 1, 0, 0, rtt=-1.0)
