"""Network-wide max-min allocation: the progressive-filling allocator
must match the analytic (weighted, demand-capped) max-min fair shares
on graphs small enough to solve by hand, attribute each throttled flow
to its binding bottleneck, never over-subscribe a hop, and be
bit-deterministic across calls."""

import pytest

from repro.topo import (
    AllocationResult,
    FlowDemand,
    allocate,
    from_edges,
    water_fill,
)


def topo2():
    """b1 (cap 10) and b2 (cap 6) in series: the textbook two-hop
    example where iterating registered rates under-allocates but true
    max-min gives the b1-only flow the capacity f2 cannot use."""
    return from_edges(
        [("b1", 10.0), ("b2", 6.0)],
        {
            "p1": ("a", "b", ["b1"]),
            "p2": ("a", "c", ["b1", "b2"]),
            "p3": ("b", "c", ["b2"]),
        },
    )


class TestWaterFill:
    def test_demand_capped_shares(self):
        assert water_fill(12.0, {"a": 2.0, "b": 5.0, "c": 10.0}) == {
            "a": 2.0,
            "b": 5.0,
            "c": 5.0,
        }

    def test_weighted_shares(self):
        shares = water_fill(
            8.0, {"a": 10.0, "b": 10.0}, {"a": 1.0, "b": 3.0}
        )
        assert shares == {"a": 2.0, "b": 6.0}

    def test_all_satisfied_below_capacity(self):
        assert water_fill(100.0, {"a": 3.0, "b": 4.0}) == {
            "a": 3.0,
            "b": 4.0,
        }

    def test_empty_and_invalid(self):
        assert water_fill(5.0, {}) == {}
        with pytest.raises(ValueError):
            water_fill(-1.0, {"a": 1.0})


class TestAllocateAnalytic:
    def test_two_bottleneck_max_min(self):
        """f1 on b1 only, f2 on b1+b2, f3 on b2 only, all demanding 8:
        the level rises to 3 (b2 saturates, freezing f2 and f3), then
        f1 takes the rest of b1 -> (7, 3, 3)."""
        result = allocate(
            topo2(),
            [
                FlowDemand("f1", ("b1",), 8.0),
                FlowDemand("f2", ("b1", "b2"), 8.0),
                FlowDemand("f3", ("b2",), 8.0),
            ],
        )
        assert result.rates == {"f1": 7.0, "f2": 3.0, "f3": 3.0}
        assert result.binding == {"f1": "b1", "f2": "b2", "f3": "b2"}
        assert result.bottleneck_load == {"b1": 10.0, "b2": 6.0}
        assert result.congested_flows == ["f1", "f2", "f3"]

    def test_parking_lot_symmetric(self):
        """Three hops of capacity 9, one long flow over all of them
        plus one short flow per hop: every flow gets 4.5."""
        topo = from_edges(
            [("L1", 9.0), ("L2", 9.0), ("L3", 9.0)],
            {"p": ("a", "d", ["L1", "L2", "L3"])},
        )
        result = allocate(
            topo,
            [
                FlowDemand("long", ("L1", "L2", "L3"), 100.0),
                FlowDemand("s1", ("L1",), 100.0),
                FlowDemand("s2", ("L2",), 100.0),
                FlowDemand("s3", ("L3",), 100.0),
            ],
        )
        assert result.rates == {
            "long": 4.5,
            "s1": 4.5,
            "s2": 4.5,
            "s3": 4.5,
        }

    def test_parking_lot_asymmetric(self):
        """L1=10, L2=4: the long flow is pinned at 2 by the thin hop,
        and the L1-only short flow *must* inherit the freed capacity
        (8, not 5) — the case a registered-rate iteration gets wrong."""
        topo = from_edges(
            [("L1", 10.0), ("L2", 4.0)],
            {"p": ("a", "c", ["L1", "L2"])},
        )
        result = allocate(
            topo,
            [
                FlowDemand("long", ("L1", "L2"), 100.0),
                FlowDemand("s1", ("L1",), 100.0),
                FlowDemand("s2", ("L2",), 100.0),
            ],
        )
        assert result.rates == {"long": 2.0, "s1": 8.0, "s2": 2.0}
        assert result.binding["long"] == "L2"
        assert result.binding["s1"] == "L1"

    def test_weighted_single_hop(self):
        topo = from_edges([("b", 8.0)], {"p": ("a", "c", ["b"])})
        result = allocate(
            topo,
            [
                FlowDemand("a", ("b",), 10.0, weight=1.0),
                FlowDemand("b", ("b",), 10.0, weight=3.0),
            ],
        )
        assert result.rates == {"a": 2.0, "b": 6.0}

    def test_demand_limited_flows_bind_nowhere(self):
        topo = from_edges([("b", 8.0)], {"p": ("a", "c", ["b"])})
        result = allocate(
            topo,
            [FlowDemand("a", ("b",), 2.0), FlowDemand("b", ("b",), 3.0)],
        )
        assert result.rates == {"a": 2.0, "b": 3.0}
        assert result.binding == {"a": None, "b": None}
        assert result.congested_flows == []

    def test_zero_demand_flow(self):
        result = allocate(topo2(), [FlowDemand("idle", ("b1",), 0.0)])
        assert result.rates == {"idle": 0.0}
        assert result.binding == {"idle": None}


class TestAllocateProperties:
    def flows(self, n=12):
        routes = [("b1",), ("b1", "b2"), ("b2",)]
        return [
            FlowDemand(f"f{i:02d}", routes[i % 3], 1.0 + (i % 5))
            for i in range(n)
        ]

    def test_no_bottleneck_over_subscribed(self):
        topo = topo2()
        result = allocate(topo, self.flows())
        for hop, load in result.bottleneck_load.items():
            assert load <= topo.capacity(hop) * (1 + 1e-9)

    def test_rate_never_exceeds_demand(self):
        result = allocate(topo2(), self.flows())
        for flow, rate in result.rates.items():
            assert rate <= result.demands[flow] + 1e-12

    def test_deterministic_and_order_independent(self):
        topo = topo2()
        forward = allocate(topo, self.flows())
        backward = allocate(topo, list(reversed(self.flows())))
        assert forward == backward

    def test_utilization(self):
        topo = topo2()
        result = allocate(
            topo,
            [
                FlowDemand("f1", ("b1",), 8.0),
                FlowDemand("f2", ("b1", "b2"), 8.0),
                FlowDemand("f3", ("b2",), 8.0),
            ],
        )
        assert result.utilization(topo) == {"b1": 1.0, "b2": 1.0}

    def test_bottleneck_flow_counts(self):
        result = allocate(topo2(), self.flows(6))
        assert result.bottleneck_flows == {"b1": 4, "b2": 4}

    def test_empty_flows(self):
        result = allocate(topo2(), [])
        assert result == AllocationResult(
            rates={}, demands={}, binding={}, bottleneck_load={}, rounds=0
        )

    def test_duplicate_flow_id_raises(self):
        with pytest.raises(ValueError, match="duplicate flow id"):
            allocate(
                topo2(),
                [
                    FlowDemand("f", ("b1",), 1.0),
                    FlowDemand("f", ("b2",), 1.0),
                ],
            )

    def test_flow_demand_validation(self):
        with pytest.raises(ValueError, match="empty path"):
            FlowDemand("f", (), 1.0)
        with pytest.raises(ValueError, match="demand"):
            FlowDemand("f", ("b1",), -1.0)
        with pytest.raises(ValueError, match="weight"):
            FlowDemand("f", ("b1",), 1.0, weight=0.0)
