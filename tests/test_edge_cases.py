"""Edge cases across modules: boundary values, error paths, invariants
not covered by the per-module suites."""

import pytest

from repro import units
from repro.core.baselines import GlobusOnlineAlgorithm
from repro.core.chunks import Chunk, ChunkClass, PartitionPolicy, merge_chunks
from repro.datasets.files import Dataset, FileInfo
from repro.netsim.multi import JobRecord
from repro.netsim.params import TransferParams


class TestGoBucketBoundaries:
    GO = GlobusOnlineAlgorithm()

    def test_exactly_50mb_is_medium(self):
        ds = Dataset([FileInfo("f", 50 * units.MB)])
        (bucket,) = self.GO.buckets(ds)
        assert bucket[0] == "go-medium"

    def test_exactly_250mb_is_medium(self):
        ds = Dataset([FileInfo("f", 250 * units.MB)])
        (bucket,) = self.GO.buckets(ds)
        assert bucket[0] == "go-medium"

    def test_just_above_250mb_is_large(self):
        ds = Dataset([FileInfo("f", 250 * units.MB + 1)])
        (bucket,) = self.GO.buckets(ds)
        assert bucket[0] == "go-large"

    def test_empty_buckets_dropped(self):
        ds = Dataset([FileInfo("f", units.MB)])
        buckets = self.GO.buckets(ds)
        assert [b[0] for b in buckets] == ["go-small"]

    def test_empty_dataset_no_buckets(self):
        assert self.GO.buckets(Dataset([])) == []


class TestMergeThresholds:
    def chunk(self, cls, count, size):
        return Chunk(cls, tuple(FileInfo(f"{cls.name}{i}", size) for i in range(count)))

    def test_count_alone_does_not_merge_if_bytes_substantial(self):
        # one file, but it holds half the dataset's bytes
        small = self.chunk(ChunkClass.SMALL, 10, units.MB)
        large = self.chunk(ChunkClass.LARGE, 1, 10 * units.MB)
        total = small.total_size + large.total_size
        policy = PartitionPolicy(min_files=2, min_bytes_fraction=0.02)
        assert len(merge_chunks([small, large], total, policy)) == 2

    def test_bytes_alone_does_not_merge_if_count_substantial(self):
        many_tiny = self.chunk(ChunkClass.SMALL, 100, 1)
        large = self.chunk(ChunkClass.LARGE, 2, units.GB)
        total = many_tiny.total_size + large.total_size
        policy = PartitionPolicy(min_files=2, min_bytes_fraction=0.02)
        assert len(merge_chunks([many_tiny, large], total, policy)) == 2

    def test_both_thresholds_triggers_merge(self):
        lone = self.chunk(ChunkClass.SMALL, 1, 1)
        large = self.chunk(ChunkClass.LARGE, 5, units.GB)
        total = lone.total_size + large.total_size
        merged = merge_chunks([lone, large], total)
        assert len(merged) == 1

    def test_cascading_merges_terminate(self):
        chunks = [
            self.chunk(ChunkClass.SMALL, 1, 1),
            self.chunk(ChunkClass.MEDIUM, 1, 2),
            self.chunk(ChunkClass.LARGE, 1, 3),
        ]
        # an aggressive policy keeps merging until survivors are big
        policy = PartitionPolicy(min_files=2, min_bytes_fraction=0.5)
        merged = merge_chunks(chunks, 6, policy)
        assert 1 <= len(merged) < 3  # terminated, actually merged
        assert sum(c.file_count for c in merged) == 3  # nothing lost


class TestJobRecord:
    def test_turnaround_requires_completion(self):
        record = JobRecord("j", arrival_time=0.0, total_bytes=1.0)
        with pytest.raises(ValueError):
            record.turnaround_s

    def test_throughput_zero_before_completion(self):
        record = JobRecord("j", arrival_time=0.0, total_bytes=1.0)
        assert record.throughput == 0.0

    def test_throughput_after_completion(self):
        record = JobRecord(
            "j", arrival_time=1.0, total_bytes=100.0,
            start_time=2.0, completion_time=12.0,
        )
        assert record.turnaround_s == pytest.approx(11.0)
        assert record.throughput == pytest.approx(10.0)


class TestTransferParamsEdge:
    def test_zero_concurrency_total_streams(self):
        assert TransferParams(parallelism=4, concurrency=0).total_streams == 0

    def test_str(self):
        assert "pp=2" in str(TransferParams(pipelining=2))


class TestDatasetEdge:
    def test_dataset_factory_determinism(self, small_testbed):
        a = small_testbed.dataset()
        b = small_testbed.dataset()
        assert [f.size for f in a] == [f.size for f in b]

    def test_sorted_by_size_stable_for_ties(self):
        ds = Dataset([FileInfo("b", 5), FileInfo("a", 5)])
        assert [f.name for f in ds.sorted_by_size()] == ["a", "b"]


class TestSweepGuards:
    def test_run_algorithm_requires_known_name(self, small_testbed):
        from repro.harness.sweeps import concurrency_sweep

        with pytest.raises(KeyError):
            concurrency_sweep(small_testbed, algorithms=("HAL9000",), levels=(1,))

    def test_best_efficiency_requires_outcomes(self):
        from repro.harness.sweeps import best_efficiency

        with pytest.raises(ValueError):
            best_efficiency([])
