"""``dataset_for`` caching semantics.

Regression for a cache-poisoning bug: the dataset cache was keyed only
on ``testbed.name``, so a custom/JSON testbed that reused a built-in
name ("xsede", "futuregrid", "didclab") silently received the built-in
dataset. The cache must only serve the *registered* testbed instances.
"""

from __future__ import annotations

import dataclasses

from repro import units
from repro.datasets.files import Dataset
from repro.harness.runner import dataset_for
from repro.testbeds.specs import ALL_TESTBEDS, XSEDE


def _custom_clone(testbed, dataset: Dataset):
    """A look-alike testbed reusing the built-in name but with its own data."""
    return dataclasses.replace(testbed, dataset_factory=lambda: dataset)


class TestDatasetForCache:
    def test_builtin_testbeds_are_cached(self):
        for testbed in ALL_TESTBEDS:
            first = dataset_for(testbed)
            second = dataset_for(testbed)
            assert first is second  # registry instances hit the cache

    def test_custom_testbed_reusing_builtin_name_gets_own_dataset(self):
        own = Dataset.from_sizes([units.MB] * 3, name="tiny-own")
        clone = _custom_clone(XSEDE, own)
        assert clone.name == XSEDE.name
        # the clone must get its own data, not the cached built-in set
        got = dataset_for(clone)
        assert got is own
        assert got.total_size != dataset_for(XSEDE).total_size

    def test_cache_not_poisoned_by_custom_clone(self):
        own = Dataset.from_sizes([units.MB] * 2, name="tiny-own")
        clone = _custom_clone(XSEDE, own)
        dataset_for(clone)  # must not write into the built-in cache slot
        builtin = dataset_for(XSEDE)
        assert builtin is not own
        assert builtin.total_size > own.total_size

    def test_unknown_name_builds_directly(self):
        own = Dataset.from_sizes([units.MB] * 4, name="tiny-own")
        custom = dataclasses.replace(
            XSEDE, name="my-lab", dataset_factory=lambda: own
        )
        assert dataset_for(custom) is own
