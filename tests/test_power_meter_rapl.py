"""Energy meter and RAPL/powercap counter semantics."""

import pytest

from repro.power.meter import EnergyMeter
from repro.power.rapl import (
    DEFAULT_MAX_ENERGY_RANGE_UJ,
    PowercapReader,
    SimulatedPowercapTree,
    SimulatedRaplDomain,
)


class TestEnergyMeter:
    def test_integrates_power(self):
        meter = EnergyMeter()
        meter.record(100.0, 2.0)
        meter.record(50.0, 1.0)
        assert meter.total_joules == pytest.approx(250.0)
        assert meter.elapsed == pytest.approx(3.0)

    def test_average_power(self):
        meter = EnergyMeter()
        meter.record(100.0, 2.0)
        meter.record(200.0, 2.0)
        assert meter.average_power == pytest.approx(150.0)

    def test_average_power_before_samples(self):
        assert EnergyMeter().average_power == 0.0

    def test_marks(self):
        meter = EnergyMeter()
        meter.record(10.0, 1.0)
        meter.mark("window")
        meter.record(20.0, 2.0)
        joules, elapsed = meter.since_mark("window")
        assert joules == pytest.approx(40.0)
        assert elapsed == pytest.approx(2.0)

    def test_unknown_mark(self):
        with pytest.raises(KeyError):
            EnergyMeter().since_mark("nope")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyMeter().record(-1.0, 1.0)
        with pytest.raises(ValueError):
            EnergyMeter().record(1.0, -1.0)


class TestSimulatedRaplDomain:
    def test_feed_accumulates_microjoules(self):
        d = SimulatedRaplDomain("package-0")
        d.feed(power_watts=50.0, dt=2.0)
        assert d.energy_uj == 100_000_000  # 100 J

    def test_counter_wraps_like_hardware(self):
        d = SimulatedRaplDomain("package-0", max_energy_range_uj=1000)
        d.energy_uj = 900
        d.feed(power_watts=1.0, dt=0.0002)  # 200 uJ
        assert d.energy_uj == (900 + 200) % 1001

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedRaplDomain("x", max_energy_range_uj=0)
        with pytest.raises(ValueError):
            SimulatedRaplDomain("x").feed(-1.0, 1.0)


class TestPowercapTreeAndReader:
    def test_tree_layout_matches_sysfs(self, tmp_path):
        tree = SimulatedPowercapTree(root=tmp_path / "powercap")
        tree.add_domain(SimulatedRaplDomain("package-0"))
        tree.sync()
        domain_dir = tmp_path / "powercap" / "intel-rapl:0"
        assert (domain_dir / "name").read_text().strip() == "package-0"
        assert (domain_dir / "energy_uj").read_text().strip() == "0"
        assert (
            int((domain_dir / "max_energy_range_uj").read_text())
            == DEFAULT_MAX_ENERGY_RANGE_UJ
        )

    def test_reader_computes_joule_deltas(self, tmp_path):
        tree = SimulatedPowercapTree(root=tmp_path)
        tree.add_domain(SimulatedRaplDomain("package-0"))
        tree.sync()
        reader = PowercapReader(tmp_path)
        assert reader.sample() == []  # priming call
        tree.feed_all(power_watts=100.0, dt=1.5)
        deltas = reader.sample()
        assert len(deltas) == 1
        assert deltas[0].domain == "package-0"
        assert deltas[0].joules == pytest.approx(150.0)
        assert not deltas[0].wrapped

    def test_reader_handles_wraparound(self, tmp_path):
        domain = SimulatedRaplDomain("package-0", max_energy_range_uj=10_000_000)  # 10 J
        domain.energy_uj = 9_000_000
        tree = SimulatedPowercapTree(root=tmp_path, domains=[domain])
        tree.sync()
        reader = PowercapReader(tmp_path)
        reader.sample()
        tree.feed_all(power_watts=2.0, dt=1.0)  # +2 J wraps past 10 J
        deltas = reader.sample()
        assert deltas[0].wrapped
        assert deltas[0].joules == pytest.approx(2.0, rel=1e-3)

    def test_reader_multiple_domains(self, tmp_path):
        tree = SimulatedPowercapTree(root=tmp_path)
        tree.add_domain(SimulatedRaplDomain("package-0"))
        tree.add_domain(SimulatedRaplDomain("dram"))
        tree.sync()
        reader = PowercapReader(tmp_path)
        reader.sample()
        tree.feed_all(10.0, 1.0)
        deltas = reader.sample()
        assert {d.domain for d in deltas} == {"package-0", "dram"}
        assert reader.total_joules(deltas) == pytest.approx(20.0)

    def test_reader_missing_tree(self, tmp_path):
        reader = PowercapReader(tmp_path / "nonexistent")
        assert not reader.available()
        assert reader.sample() == []

    def test_available(self, tmp_path):
        tree = SimulatedPowercapTree(root=tmp_path)
        tree.add_domain(SimulatedRaplDomain("package-0"))
        tree.sync()
        assert PowercapReader(tmp_path).available()

    def test_engine_power_feeds_rapl_tree(self, tmp_path, make_small_engine, small_dataset):
        """End-to-end: simulated transfer power lands in powercap counters."""
        from repro.netsim.engine import ChunkPlan
        from repro.netsim.params import TransferParams

        tree = SimulatedPowercapTree(root=tmp_path)
        tree.add_domain(SimulatedRaplDomain("package-0"))
        tree.sync()
        reader = PowercapReader(tmp_path)
        reader.sample()

        engine = make_small_engine()
        engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=2)))
        while not engine.finished:
            before = engine.total_energy
            engine.step()
            tree.feed_all((engine.total_energy - before) / engine.dt, engine.dt)
        total = reader.total_joules()
        assert total == pytest.approx(engine.total_energy, rel=1e-3)
