"""Paper-dataset-level details of the algorithms' decisions."""

import pytest

from repro.core.mine import MinEAlgorithm
from repro.core.htee import HTEEAlgorithm
from repro.core.slaee import SLAEEAlgorithm
from repro.core.baselines import SingleChunkAlgorithm
from repro.harness.runner import dataset_for
from repro.testbeds import DIDCLAB, FUTUREGRID, XSEDE


class TestMinEPlanOnXsede:
    @pytest.fixture(scope="class")
    def plans(self):
        return MinEAlgorithm().plan(XSEDE, dataset_for(XSEDE), 12)

    def test_three_chunks(self, plans):
        assert [p.name for p in plans] == ["small", "medium", "large"]

    def test_small_chunk_has_deep_pipeline(self, plans):
        small = plans[0]
        # avg small file ~17 MB against a 50 MB BDP -> pipelining ~3
        assert small.params.pipelining >= 2

    def test_large_chunk_single_channel_shallow_pipeline(self, plans):
        large = plans[2]
        assert large.params.concurrency == 1
        assert large.params.pipelining == 1

    def test_large_files_use_parallel_streams(self, plans):
        # buffer (32 MB) < BDP (50 MB): ceil(50/32) = 2 streams
        assert plans[2].params.parallelism == 2

    def test_small_files_use_single_stream(self, plans):
        # avg small file < buffer -> no benefit from splitting
        assert plans[0].params.parallelism == 1

    def test_small_chunk_gets_most_channels(self, plans):
        cc = [p.params.concurrency for p in plans]
        assert cc[0] == max(cc)


class TestMinEPlanOnFuturegrid:
    def test_low_bdp_starves_channel_counts(self):
        """FutureGrid's 3.5 MB BDP barely exceeds the small chunk's
        average file size, so ceil(BDP/avg) caps MinE at a couple of
        channels per chunk — the published formula gives MinE very few
        channels on this path regardless of the budget."""
        plans = MinEAlgorithm().plan(FUTUREGRID, dataset_for(FUTUREGRID), 12)
        assert sum(p.params.concurrency for p in plans) <= 4
        medium_and_large = [p for p in plans if p.name in ("medium", "large")]
        assert all(p.params.concurrency == 1 for p in medium_and_large)

    def test_no_parallelism_below_bdp(self):
        # 32 MB buffer >> 3.5 MB BDP: parallelism is pointless
        plans = MinEAlgorithm().plan(FUTUREGRID, dataset_for(FUTUREGRID), 12)
        assert all(p.params.parallelism == 1 for p in plans)


class TestHteeSearchAccounting:
    def test_probe_windows_are_five_seconds(self):
        outcome = HTEEAlgorithm().run(XSEDE, dataset_for(XSEDE), 8)
        probes = outcome.extra["probes"]
        # each probe moved ~5 s of data at its window throughput
        for level, throughput, joules, score in probes:
            assert throughput > 0
            assert joules > 0
            assert score == pytest.approx(
                (throughput * 8 / 1e6) ** 2 / joules, rel=1e-6
            )

    def test_search_capped_by_budget(self):
        outcome = HTEEAlgorithm().run(XSEDE, dataset_for(XSEDE), 4)
        assert max(p[0] for p in outcome.extra["probes"]) <= 4
        assert outcome.final_concurrency <= 4

    def test_didclab_search_picks_one(self):
        outcome = HTEEAlgorithm().run(DIDCLAB, dataset_for(DIDCLAB), 12)
        assert outcome.final_concurrency == 1


class TestSlaeeDetails:
    @pytest.fixture(scope="class")
    def max_throughput(self):
        from repro.core.baselines import ProMCAlgorithm

        return ProMCAlgorithm().run(XSEDE, dataset_for(XSEDE), 12).throughput

    def test_infeasible_target_stops_at_cap(self, max_throughput):
        outcome = SLAEEAlgorithm().run(
            XSEDE, dataset_for(XSEDE), 6,
            sla_level=1.0, max_throughput=max_throughput * 1.5,
        )
        # unreachable: SLAEE does its best and completes anyway
        assert outcome.bytes_moved == pytest.approx(dataset_for(XSEDE).total_size)
        assert outcome.final_concurrency == 6

    def test_target_recorded(self, max_throughput):
        outcome = SLAEEAlgorithm().run(
            XSEDE, dataset_for(XSEDE), 20,
            sla_level=0.7, max_throughput=max_throughput,
        )
        assert outcome.extra["target_throughput"] == pytest.approx(0.7 * max_throughput)
        assert outcome.extra["sla_level"] == 0.7

    def test_lower_target_less_energy(self, max_throughput):
        low = SLAEEAlgorithm().run(
            XSEDE, dataset_for(XSEDE), 20, sla_level=0.5,
            max_throughput=max_throughput,
        )
        high = SLAEEAlgorithm().run(
            XSEDE, dataset_for(XSEDE), 20, sla_level=0.9,
            max_throughput=max_throughput,
        )
        assert low.energy_joules <= high.energy_joules * 1.02


class TestSequentialScheduleDetails:
    def test_sc_transfers_chunks_one_by_one(self, small_testbed):
        """While a chunk is in flight, no other chunk moves."""
        from repro.core.scheduler import engine_options

        ds = small_testbed.dataset()
        with engine_options(record_trace=True):
            outcome = SingleChunkAlgorithm().run(small_testbed, ds, 2)
        assert outcome.bytes_moved == pytest.approx(ds.total_size)
        # sequentiality is structural; at minimum the run completed with
        # the per-chunk parameter sets applied
        plans = SingleChunkAlgorithm().plan(small_testbed, ds, 2)
        assert all(p.params.concurrency == 2 for p in plans)
