"""Additional property-based suites: multi-transfer conservation,
testbed-definition fuzzing, store round-trips, advisor bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.advisor import advise
from repro.core.scheduler import TransferOutcome
from repro.datasets.files import Dataset, FileInfo
from repro.harness.reporting import outcome_from_dict, outcome_to_dict
from repro.harness.store import ResultStore
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan
from repro.netsim.link import NetworkPath
from repro.netsim.multi import MultiTransferSimulator
from repro.netsim.params import TransferParams
from repro.power.coefficients import CoefficientSet
from repro.testbeds.io import testbed_from_dict as build_testbed
from repro.testbeds.specs import Testbed as TestbedSpec


def shared_testbed() -> TestbedSpec:
    server = ServerSpec(
        name="s", cores=8, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(50e6, 400e6), per_channel_rate=50e6, core_rate=200e6,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 1)
    return TestbedSpec(
        name="Shared",
        path=NetworkPath(bandwidth=units.gbps(1), rtt=units.ms(2),
                         tcp_buffer=8 * units.MB, protocol_efficiency=1.0),
        source=site,
        destination=site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: Dataset([]),
        engine_dt=0.1,
    )


class TestMultiTransferProperties:
    @given(
        jobs=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),   # files
                st.integers(min_value=1, max_value=3),   # cc
                st.floats(min_value=0.0, max_value=3.0),  # arrival
            ),
            min_size=1,
            max_size=4,
        ),
        cap=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_job_finishes_with_exact_bytes(self, jobs, cap):
        sim = MultiTransferSimulator(shared_testbed(), max_concurrent_jobs=cap)
        expected = {}
        for i, (n, cc, arrival) in enumerate(jobs):
            files = tuple(FileInfo(f"j{i}f{k}", 5 * units.MB) for k in range(n))
            plans = [ChunkPlan(f"j{i}", files, TransferParams(concurrency=cc))]
            sim.submit(f"job{i}", plans, arrival_time=arrival)
            expected[f"job{i}"] = n * 5 * units.MB
        records = sim.run()
        for record in records:
            assert record.finished
            assert record.total_bytes == expected[record.name]
            assert record.start_time >= record.arrival_time - 1e-9
            assert record.completion_time > record.start_time
            assert record.energy_joules > 0

    @given(cap=st.integers(min_value=1, max_value=3))
    @settings(max_examples=6, deadline=None)
    def test_admission_cap_never_exceeded(self, cap):
        sim = MultiTransferSimulator(shared_testbed(), max_concurrent_jobs=cap)
        for i in range(5):
            files = tuple(FileInfo(f"j{i}f{k}", 5 * units.MB) for k in range(4))
            sim.submit(f"job{i}", [ChunkPlan(f"j{i}", files, TransferParams(concurrency=2))])
        max_running = 0
        while not all(r.finished for r in sim.records()):
            sim.step()
            running = sum(
                1 for r in sim.records()
                if r.start_time is not None and not r.finished
            )
            max_running = max(max_running, running)
        assert max_running <= cap


class TestTestbedDefinitionFuzz:
    @given(
        bandwidth=st.floats(min_value=0.1, max_value=100.0),
        rtt=st.floats(min_value=0.1, max_value=300.0),
        buffer_mb=st.floats(min_value=0.5, max_value=256.0),
        cores=st.integers(min_value=1, max_value=64),
        servers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_sane_definition_builds_and_runs(self, bandwidth, rtt, buffer_mb,
                                                 cores, servers):
        definition = {
            "name": "Fuzz",
            "path": {"bandwidth_gbps": bandwidth, "rtt_ms": rtt,
                     "tcp_buffer_mb": buffer_mb},
            "server": {
                "cores": cores, "tdp_watts": 100, "nic_gbps": bandwidth,
                "per_channel_rate_mbytes": 50, "core_rate_mbytes": 200,
                "disk": {"type": "parallel", "per_accessor_mbytes": 50,
                         "array_mbytes": 200},
            },
            "server_count": servers,
            "dataset": {"type": "uniform", "file_count": 2, "file_mb": 5},
            "engine_dt": 0.1,
        }
        testbed = build_testbed(definition)
        from repro.core.mine import MinEAlgorithm

        outcome = MinEAlgorithm().run(testbed, testbed.dataset(), 2)
        assert outcome.bytes_moved == pytest.approx(10 * units.MB)


class TestStoreFuzz:
    @given(
        records=st.lists(
            st.tuples(
                st.text(min_size=1, max_size=20),
                st.text(min_size=1, max_size=20),
                st.floats(min_value=0.1, max_value=1e6),
                st.floats(min_value=0.1, max_value=1e9),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_any_names(self, records, tmp_path_factory):
        store = ResultStore(tmp_path_factory.mktemp("store") / "s.jsonl")
        for alg, testbed, joules, bytes_moved in records:
            store.append(
                TransferOutcome(alg, testbed, 1, 10.0, bytes_moved, joules)
            )
        loaded = store.load()
        assert len(loaded) == len(records)
        for (alg, testbed, joules, bytes_moved), outcome in zip(records, loaded):
            assert outcome.algorithm == alg
            assert outcome.testbed == testbed
            assert outcome.energy_joules == pytest.approx(joules)

    @given(
        data=st.fixed_dictionaries(
            {
                "algorithm": st.text(min_size=1, max_size=10),
                "testbed": st.text(min_size=1, max_size=10),
                "max_channels": st.integers(min_value=0, max_value=100),
                "duration_s": st.floats(min_value=0, max_value=1e6),
                "bytes_moved": st.floats(min_value=0, max_value=1e15),
                "energy_joules": st.floats(min_value=0, max_value=1e9),
            }
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_outcome_dict_round_trip(self, data):
        outcome = outcome_from_dict(data)
        again = outcome_from_dict(outcome_to_dict(outcome))
        assert again.algorithm == outcome.algorithm
        assert again.bytes_moved == pytest.approx(outcome.bytes_moved)


class TestAdvisorProperties:
    @given(
        sizes=st.lists(
            st.integers(min_value=units.MB, max_value=2 * units.GB),
            min_size=1,
            max_size=40,
        ),
        channels=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_prediction_bounded_by_physics(self, sizes, channels):
        from repro.testbeds import XSEDE

        dataset = Dataset.from_sizes(sizes)
        advice = advise(XSEDE, dataset, channels)
        # never above the link or the storage array
        assert advice.predicted_throughput <= XSEDE.path.bandwidth + 1e-6
        array = XSEDE.source.server.disk.aggregate_capacity(max(1, channels))
        assert advice.predicted_throughput <= array * 1.001 + 1e-6
        assert advice.predicted_energy_j >= 0
