"""Shared fixtures: small, fast synthetic environments for unit and
integration tests (the full paper testbeds are exercised separately in
the benchmark harness and in a few targeted integration tests)."""

from __future__ import annotations

import pytest

from repro import units
from repro.datasets.files import Dataset
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import TransferEngine
from repro.netsim.link import NetworkPath
from repro.power.coefficients import CoefficientSet
from repro.power.models import FineGrainedPowerModel
from repro.testbeds.specs import Testbed


@pytest.fixture
def small_path() -> NetworkPath:
    """A 1 Gbps / 10 ms / 8 MB-buffer path (BDP = 1.25 MB)."""
    return NetworkPath(
        bandwidth=units.gbps(1),
        rtt=units.ms(10),
        tcp_buffer=8 * units.MB,
        protocol_efficiency=0.95,
        congestion_knee=8,
        congestion_slope=0.02,
    )


@pytest.fixture
def small_server() -> ServerSpec:
    return ServerSpec(
        name="test-server",
        cores=4,
        tdp_watts=100.0,
        nic_rate=units.gbps(1),
        disk=ParallelDisk(per_accessor_rate=50 * units.MB, array_rate=200 * units.MB),
        per_channel_rate=50 * units.MB,
        core_rate=200 * units.MB,
        per_file_overhead=0.0,
    )


@pytest.fixture
def small_site(small_server) -> EndSystem:
    return EndSystem(name="site", server=small_server, server_count=2)


@pytest.fixture
def small_dataset() -> Dataset:
    """100 MB across a mix of file sizes."""
    sizes = [1 * units.MB] * 20 + [10 * units.MB] * 4 + [40 * units.MB]
    return Dataset.from_sizes(sizes, name="test-100MB")


@pytest.fixture
def make_small_engine(small_path, small_site):
    """Factory for engines over the small synthetic environment."""

    def factory(**kwargs) -> TransferEngine:
        model = FineGrainedPowerModel(CoefficientSet())
        defaults = dict(dt=0.1)
        defaults.update(kwargs)
        return TransferEngine(small_path, small_site, small_site, model.power, **defaults)

    return factory


@pytest.fixture
def small_testbed(small_path, small_site, small_dataset) -> Testbed:
    """A complete miniature testbed for algorithm-level tests."""
    return Testbed(
        name="TestBed",
        path=small_path,
        source=small_site,
        destination=small_site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: small_dataset,
        concurrency_levels=(1, 2, 4),
        brute_force_max_concurrency=6,
        sla_reference_concurrency=4,
        engine_dt=0.1,
    )
