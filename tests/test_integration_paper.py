"""End-to-end integration: the paper's headline qualitative claims must
hold on the full testbeds with the paper datasets.

These are the statements EXPERIMENTS.md tracks; each test cites the
paper text it verifies. Runs use the real (seeded) datasets, so they
are slower than unit tests but still land well under a minute total.
"""

import pytest

from repro.harness.sweeps import concurrency_sweep, energy_decomposition, sla_sweep
from repro.testbeds import DIDCLAB, FUTUREGRID, XSEDE


@pytest.fixture(scope="module")
def xsede_sweep():
    return concurrency_sweep(XSEDE)


@pytest.fixture(scope="module")
def futuregrid_sweep():
    return concurrency_sweep(FUTUREGRID)


@pytest.fixture(scope="module")
def didclab_sweep():
    return concurrency_sweep(DIDCLAB)


class TestXsedeFigure2:
    def test_promc_reaches_highest_throughput(self, xsede_sweep):
        """'ProMC ... outperforms all other algorithms in terms of
        achieved transfer throughput.'"""
        best_promc = max(xsede_sweep.throughputs_mbps("ProMC"))
        for alg in ("GUC", "GO", "SC", "MinE", "HTEE"):
            assert best_promc >= max(xsede_sweep.throughputs_mbps(alg))

    def test_promc_peak_near_7_5_gbps(self, xsede_sweep):
        """'ProMC can reach up to 7.5 Gbps transfer throughput.'"""
        assert max(xsede_sweep.throughputs_mbps("ProMC")) == pytest.approx(7500, rel=0.12)

    def test_promc_throughput_rises_with_concurrency(self, xsede_sweep):
        thr = xsede_sweep.throughputs_mbps("ProMC")
        assert all(b >= a * 0.93 for a, b in zip(thr, thr[1:]))  # near-monotone
        assert thr[-1] > 3 * thr[0]

    def test_mine_consumes_least_energy(self, xsede_sweep):
        """'MinE achieves lowest energy consumption almost at all
        concurrency levels.'"""
        for idx in range(2, len(xsede_sweep.levels)):  # cc >= 4
            mine = xsede_sweep.energies_joules("MinE")[idx]
            for alg in ("GUC", "GO", "SC", "ProMC"):
                assert mine <= xsede_sweep.energies_joules(alg)[idx] * 1.02

    def test_mine_close_to_sc_throughput(self, xsede_sweep):
        """'MinE and SC yield close transfer throughput in all
        concurrency levels.'"""
        for m, s in zip(
            xsede_sweep.throughputs_mbps("MinE"), xsede_sweep.throughputs_mbps("SC")
        ):
            assert m == pytest.approx(s, rel=0.25)

    def test_sc_consumes_up_to_20pct_more_than_mine(self, xsede_sweep):
        """'SC consumes as much as 20% more energy than MinE.'"""
        ratios = [
            s / m
            for s, m in zip(
                xsede_sweep.energies_joules("SC"), xsede_sweep.energies_joules("MinE")
            )
        ]
        assert max(ratios) >= 1.15

    def test_go_similar_throughput_much_more_energy_than_sc_at_2(self, xsede_sweep):
        """'SC and GO achieve very close transfer throughput in
        concurrency level 2, however, GO consumes around 60% more
        energy.'"""
        idx = xsede_sweep.levels.index(2)
        go_thr = xsede_sweep.throughputs_mbps("GO")[idx]
        sc_thr = xsede_sweep.throughputs_mbps("SC")[idx]
        assert go_thr == pytest.approx(sc_thr, rel=0.25)
        go_energy = xsede_sweep.energies_joules("GO")[idx]
        sc_energy = xsede_sweep.energies_joules("SC")[idx]
        assert go_energy > 1.2 * sc_energy

    def test_guc_lowest_throughput(self, xsede_sweep):
        """'GUC yields less transfer throughput than SC for concurrency
        level one.'"""
        guc = xsede_sweep.throughputs_mbps("GUC")[0]
        assert guc < xsede_sweep.throughputs_mbps("SC")[0]

    def test_promc_energy_parabola_minimum_at_four_cores(self, xsede_sweep):
        """'power consumption follows parabolic pattern and reaches
        minimum value at concurrency level 4' (4-core servers)."""
        energies = dict(zip(xsede_sweep.levels, xsede_sweep.energies_joules("ProMC")))
        argmin = min(energies, key=energies.get)
        assert argmin in (4, 6)
        assert energies[1] > energies[argmin]
        assert energies[12] > energies[argmin]

    def test_htee_saves_energy_vs_promc_at_12(self, xsede_sweep):
        """'HTEE consumes 17% less energy in trade off 10% less
        throughput for concurrency level 12.'"""
        idx = xsede_sweep.levels.index(12)
        htee_e = xsede_sweep.energies_joules("HTEE")[idx]
        promc_e = xsede_sweep.energies_joules("ProMC")[idx]
        htee_t = xsede_sweep.throughputs_mbps("HTEE")[idx]
        promc_t = xsede_sweep.throughputs_mbps("ProMC")[idx]
        assert htee_e < 0.9 * promc_e  # meaningfully less energy
        assert htee_t > 0.6 * promc_t  # at a bounded throughput cost

    def test_energies_in_paper_band(self, xsede_sweep):
        """Figure 2(b) plots 15-30 kJ."""
        for alg in ("GO", "SC", "MinE", "ProMC", "HTEE"):
            for energy in xsede_sweep.energies_joules(alg)[2:]:
                assert 10_000 < energy < 35_000


class TestFuturegridFigure3:
    def test_guc_lowest_throughput(self, futuregrid_sweep):
        """'GUC again yields the lowest throughput due to lack of
        parameter tuning.'"""
        guc = max(futuregrid_sweep.throughputs_mbps("GUC"))
        for alg in ("SC", "MinE", "ProMC", "HTEE"):
            assert guc <= max(futuregrid_sweep.throughputs_mbps(alg))

    def test_promc_mine_htee_comparable(self, futuregrid_sweep):
        """'ProMC, MinE, and HTEE algorithms yield comparable data
        transfer throughput.'"""
        bests = [
            max(futuregrid_sweep.throughputs_mbps(alg))
            for alg in ("ProMC", "MinE", "HTEE")
        ]
        assert max(bests) / min(bests) < 1.35

    def test_promc_peak_near_800_mbps(self, futuregrid_sweep):
        assert max(futuregrid_sweep.throughputs_mbps("ProMC")) == pytest.approx(
            800, rel=0.15
        )

    def test_energy_minimum_at_moderate_concurrency(self, futuregrid_sweep):
        """'ProMC and MinE consume the least amount of energy when
        concurrency level is set to 6' (ours lands at 4-6)."""
        energies = dict(
            zip(futuregrid_sweep.levels, futuregrid_sweep.energies_joules("ProMC"))
        )
        argmin = min(energies, key=energies.get)
        assert argmin in (4, 6, 8)

    def test_energies_in_paper_band(self, futuregrid_sweep):
        """Figure 3(b) plots ~1.5-3 kJ."""
        for alg in ("SC", "MinE", "ProMC", "HTEE"):
            for energy in futuregrid_sweep.energies_joules(alg)[2:]:
                assert 1_200 < energy < 3_500


class TestDidclabFigure4:
    def test_concurrency_degrades_throughput(self, didclab_sweep):
        """'increasing the concurrency level in the local area degrades
        the transfer throughput and increases the energy consumption.'"""
        thr = didclab_sweep.throughputs_mbps("ProMC")
        assert thr[-1] < thr[0]
        energy = didclab_sweep.energies_joules("ProMC")
        assert energy[-1] > energy[0]

    def test_best_at_concurrency_one(self, didclab_sweep):
        """'All algorithms achieve their best throughput/energy ratio at
        concurrency level 1 in the local area.'"""
        for alg in ("SC", "ProMC"):
            effs = didclab_sweep.efficiencies(alg)
            assert effs[0] == max(effs)

    def test_htee_pays_search_overhead(self, didclab_sweep):
        """'HTEE performs little worse than other algorithms in the
        local area since it spends some time in large concurrency levels
        during its search phase.'"""
        idx = didclab_sweep.levels.index(12)
        htee_at_12 = didclab_sweep.throughputs_mbps("HTEE")[idx]
        best_at_one = didclab_sweep.throughputs_mbps("SC")[0]
        assert htee_at_12 < best_at_one

    def test_mine_matches_single_channel_optimum(self, didclab_sweep):
        mine = didclab_sweep.throughputs_mbps("MinE")
        sc_at_one = didclab_sweep.throughputs_mbps("SC")[0]
        assert max(mine) == pytest.approx(sc_at_one, rel=0.05)


class TestSlaFigures:
    def test_xsede_95_unreachable_others_met(self):
        """'SLAEE is able to deliver all SLA throughput requests except
        95% target throughput percentage at the XSEDE network.'"""
        records = sla_sweep(XSEDE)
        by_target = {r.target_pct: r for r in records}
        assert by_target[95.0].deviation_pct < 0
        for target in (90.0, 80.0, 70.0, 50.0):
            assert by_target[target].deviation_pct > -8.0

    def test_xsede_energy_savings_up_to_30pct(self):
        """'SLAEE can deliver requested throughput while decreasing the
        energy consumption by up to 30%.'"""
        records = sla_sweep(XSEDE)
        best = max(r.energy_saving_vs_reference_pct for r in records)
        assert 15.0 < best < 40.0

    def test_futuregrid_accuracy_profile(self):
        """'SLAEE can deliver requested throughput with as low as 5%
        deviation ratio for most cases in FutureGrid', with the jump at
        the 50% target."""
        records = sla_sweep(FUTUREGRID)
        by_target = {r.target_pct: r for r in records}
        assert abs(by_target[95.0].deviation_pct) < 8.0
        assert abs(by_target[90.0].deviation_pct) < 8.0
        assert by_target[50.0].deviation_pct > 15.0

    def test_futuregrid_energy_savings_band(self):
        """'The saving in energy consumption ranges between 11% to 19%.'"""
        records = sla_sweep(FUTUREGRID)
        savings = [r.energy_saving_vs_reference_pct for r in records]
        assert max(savings) > 10.0
        assert all(s > -5.0 for s in savings)

    def test_didclab_deviation_reaches_100pct(self):
        """'deviation ratio reaches up to 100%' on the LAN, where
        concurrency 1 is optimal for everything."""
        records = sla_sweep(DIDCLAB)
        by_target = {r.target_pct: r for r in records}
        assert by_target[50.0].deviation_pct == pytest.approx(100.0, abs=12.0)
        assert all(r.final_concurrency == 1 for r in records)


class TestFigure10Decomposition:
    def test_end_system_dominates_everywhere(self):
        """'At all testbeds, the end-systems consume much more power
        than the network infrastructure.'"""
        for tb in (XSEDE, FUTUREGRID, DIDCLAB):
            rec = energy_decomposition(tb)
            assert rec.end_system_joules > 4 * rec.network_joules

    def test_futuregrid_has_largest_network_share(self):
        """'As the number of metro routers in the path increases, the
        proportion of the network infrastructure energy consumption
        increases too, as in the FutureGrid case.'"""
        shares = {
            tb.name: energy_decomposition(tb).network_share_pct
            for tb in (XSEDE, FUTUREGRID, DIDCLAB)
        }
        assert shares["FutureGrid"] > shares["XSEDE"] > shares["DIDCLAB"]
