"""Resumable experiment campaigns."""

import pytest

from repro.harness.campaign import Campaign


@pytest.fixture
def campaign(small_testbed, tmp_path) -> Campaign:
    return Campaign(
        name="unit",
        store_path=tmp_path / "campaign.jsonl",
        testbeds=[small_testbed],
        algorithms=("GUC", "MinE"),
        levels=(1, 2),
    )


class TestGrid:
    def test_cells_enumerate_grid(self, campaign):
        cells = list(campaign.cells())
        # GUC is concurrency-independent (1 cell), MinE gets 2 levels
        assert len(cells) == 3
        algorithms = [alg for _, alg, _ in cells]
        assert algorithms.count("GUC") == 1
        assert algorithms.count("MinE") == 2

    def test_validation(self, small_testbed, tmp_path):
        with pytest.raises(ValueError):
            Campaign("x", tmp_path / "s.jsonl", testbeds=[])
        with pytest.raises(ValueError):
            Campaign("x", tmp_path / "s.jsonl", testbeds=[small_testbed],
                     algorithms=("nope",))


class TestRunAndResume:
    def test_full_run(self, campaign):
        progress = campaign.run()
        assert progress.completed == progress.total == 3
        assert progress.fraction_done == 1.0
        assert len(campaign.results()) == 3

    def test_resume_skips_archived_cells(self, campaign):
        first = campaign.run(max_cells=1)
        assert first.completed == 1
        second = campaign.run()
        assert second.skipped == 1
        assert second.completed == 3
        # no duplicates in the archive
        assert len(campaign.results()) == 3

    def test_rerun_is_noop(self, campaign):
        campaign.run()
        again = campaign.run()
        assert again.skipped == again.total
        assert len(campaign.results()) == 3

    def test_progress_before_and_after(self, campaign):
        assert campaign.progress().completed == 0
        campaign.run()
        assert campaign.progress().completed == 3
        assert campaign.progress().remaining == 0

    def test_on_result_hook(self, small_testbed, tmp_path):
        seen = []
        campaign = Campaign(
            name="hooked",
            store_path=tmp_path / "c.jsonl",
            testbeds=[small_testbed],
            algorithms=("GUC",),
            on_result=seen.append,
        )
        campaign.run()
        assert len(seen) == 1
        assert seen[0].algorithm == "GUC"

    def test_campaigns_share_a_store_independently(self, small_testbed, tmp_path):
        store = tmp_path / "shared.jsonl"
        a = Campaign("a", store, [small_testbed], algorithms=("GUC",))
        b = Campaign("b", store, [small_testbed], algorithms=("GUC",))
        a.run()
        assert b.progress().completed == 0  # b's cells not covered by a
        b.run()
        assert len(a.results()) == 1
        assert len(b.results()) == 1

    def test_results_filters(self, campaign):
        campaign.run()
        assert len(campaign.results(algorithm="MinE")) == 2
        assert len(campaign.results(testbed="TestBed")) == 3
        assert campaign.results(algorithm="HTEE") == []
