"""Resumable experiment campaigns."""

import pytest

from repro.core.scheduler import engine_options
from repro.harness.campaign import Campaign


@pytest.fixture
def campaign(small_testbed, tmp_path) -> Campaign:
    return Campaign(
        name="unit",
        store_path=tmp_path / "campaign.jsonl",
        testbeds=[small_testbed],
        algorithms=("GUC", "MinE"),
        levels=(1, 2),
    )


class TestGrid:
    def test_cells_enumerate_grid(self, campaign):
        cells = list(campaign.cells())
        # GUC is concurrency-independent (1 cell), MinE gets 2 levels
        assert len(cells) == 3
        algorithms = [alg for _, alg, _ in cells]
        assert algorithms.count("GUC") == 1
        assert algorithms.count("MinE") == 2

    def test_validation(self, small_testbed, tmp_path):
        with pytest.raises(ValueError):
            Campaign("x", tmp_path / "s.jsonl", testbeds=[])
        with pytest.raises(ValueError):
            Campaign("x", tmp_path / "s.jsonl", testbeds=[small_testbed],
                     algorithms=("nope",))


class TestRunAndResume:
    def test_full_run(self, campaign):
        progress = campaign.run()
        assert progress.completed == progress.total == 3
        assert progress.fraction_done == 1.0
        assert len(campaign.results()) == 3

    def test_resume_skips_archived_cells(self, campaign):
        first = campaign.run(max_cells=1)
        assert first.completed == 1
        second = campaign.run()
        assert second.skipped == 1
        assert second.completed == 3
        # no duplicates in the archive
        assert len(campaign.results()) == 3

    def test_rerun_is_noop(self, campaign):
        campaign.run()
        again = campaign.run()
        assert again.skipped == again.total
        assert len(campaign.results()) == 3

    def test_progress_before_and_after(self, campaign):
        assert campaign.progress().completed == 0
        campaign.run()
        assert campaign.progress().completed == 3
        assert campaign.progress().remaining == 0

    def test_on_result_hook(self, small_testbed, tmp_path):
        seen = []
        campaign = Campaign(
            name="hooked",
            store_path=tmp_path / "c.jsonl",
            testbeds=[small_testbed],
            algorithms=("GUC",),
            on_result=seen.append,
        )
        campaign.run()
        assert len(seen) == 1
        assert seen[0].algorithm == "GUC"

    def test_campaigns_share_a_store_independently(self, small_testbed, tmp_path):
        store = tmp_path / "shared.jsonl"
        a = Campaign("a", store, [small_testbed], algorithms=("GUC",))
        b = Campaign("b", store, [small_testbed], algorithms=("GUC",))
        a.run()
        assert b.progress().completed == 0  # b's cells not covered by a
        b.run()
        assert len(a.results()) == 1
        assert len(b.results()) == 1

    def test_results_filters(self, campaign):
        campaign.run()
        assert len(campaign.results(algorithm="MinE")) == 2
        assert len(campaign.results(testbed="TestBed")) == 3
        assert campaign.results(algorithm="HTEE") == []


class TestDoneIndex:
    def test_progress_does_not_rescan_store(self, campaign, monkeypatch):
        campaign.run()
        scans = []
        original = campaign.store.records

        def counting_records():
            scans.append(1)
            return original()

        monkeypatch.setattr(campaign.store, "records", counting_records)
        campaign.progress()
        campaign.progress()
        campaign.run()  # everything archived: skip via the index
        assert scans == []  # index was built during run(); never rebuilt

    def test_refresh_index_picks_up_external_appends(self, small_testbed, tmp_path):
        store = tmp_path / "shared.jsonl"
        a = Campaign("same", store, [small_testbed], algorithms=("GUC",))
        b = Campaign("same", store, [small_testbed], algorithms=("GUC",))
        assert a.progress().completed == 0  # builds a's (empty) index
        b.run()
        assert a.progress().completed == 0  # stale by design
        a.refresh_index()
        assert a.progress().completed == 1


class TestParallelRun:
    def test_parallel_matches_serial_result_set(self, small_testbed, tmp_path):
        serial = Campaign(
            "par", tmp_path / "serial.jsonl", [small_testbed],
            algorithms=("GUC", "SC"), levels=(1, 2),
        )
        parallel = Campaign(
            "par", tmp_path / "parallel.jsonl", [small_testbed],
            algorithms=("GUC", "SC"), levels=(1, 2),
        )
        p_serial = serial.run()
        p_parallel = parallel.run(workers=4)
        assert p_parallel.total == p_serial.total
        assert p_parallel.completed == p_serial.completed == 3

        def keyed(campaign):
            return sorted(
                (r["testbed"], r["algorithm"], r["max_channels"],
                 r["duration_s"], r["bytes_moved"], r["energy_joules"])
                for r in campaign.store.records()
            )

        assert keyed(parallel) == keyed(serial)

    def test_parallel_resume_skips_completed_cells(self, small_testbed, tmp_path):
        store = tmp_path / "resume.jsonl"
        first = Campaign("par", store, [small_testbed], algorithms=("GUC", "SC"), levels=(1, 2))
        partial = first.run(workers=2, max_cells=2)
        assert partial.completed == 2
        # a fresh Campaign (fresh index) resumes and skips the archive
        second = Campaign("par", store, [small_testbed], algorithms=("GUC", "SC"), levels=(1, 2))
        final = second.run(workers=2)
        assert final.skipped == 2
        assert final.completed == final.total == 3
        keys = [
            (r["algorithm"], r["max_channels"]) for r in second.store.records()
        ]
        assert len(keys) == len(set(keys)) == 3  # no duplicates

    def test_parallel_on_result_hook_fires(self, small_testbed, tmp_path):
        seen = []
        campaign = Campaign(
            "par", tmp_path / "hook.jsonl", [small_testbed],
            algorithms=("GUC",), on_result=seen.append,
        )
        campaign.run(workers=2)
        assert len(seen) == 1
        assert seen[0].algorithm == "GUC"

    def test_workers_one_is_serial(self, campaign):
        progress = campaign.run(workers=1)
        assert progress.completed == progress.total == 3


class TestEngineOptionsAcrossWorkers:
    """Regression: ``engine_options`` mutates a module-global defaults
    dict that never crosses the ProcessPoolExecutor boundary, so a
    surrounding ``with engine_options(...):`` block was silently
    ignored by every parallel cell."""

    def test_record_trace_reaches_workers(self, small_testbed, tmp_path):
        seen = []
        campaign = Campaign(
            "opts", tmp_path / "opts.jsonl", [small_testbed],
            algorithms=("GUC", "SC"), levels=(1,), on_result=seen.append,
        )
        with engine_options(record_trace=True):
            campaign.run(workers=2)
        assert seen, "parallel run produced no outcomes"
        for outcome in seen:
            assert "trace" in outcome.extra, (
                f"{outcome.algorithm}: record_trace was dropped at the "
                "process boundary"
            )

    def test_parallel_matches_serial_under_fast_path_off(self, small_testbed, tmp_path):
        def keyed(campaign):
            return sorted(
                (r["testbed"], r["algorithm"], r["max_channels"],
                 r["duration_s"], r["bytes_moved"], r["energy_joules"])
                for r in campaign.store.records()
            )

        serial = Campaign(
            "fp", tmp_path / "fp-serial.jsonl", [small_testbed],
            algorithms=("GUC", "SC"), levels=(1, 2),
        )
        parallel = Campaign(
            "fp", tmp_path / "fp-parallel.jsonl", [small_testbed],
            algorithms=("GUC", "SC"), levels=(1, 2),
        )
        with engine_options(fast_path=False):
            serial.run()
            parallel.run(workers=2)
        assert keyed(parallel) == keyed(serial)

    def test_observe_archives_metrics_tags(self, small_testbed, tmp_path):
        campaign = Campaign(
            "obs", tmp_path / "obs.jsonl", [small_testbed],
            algorithms=("MinE",), levels=(1, 2),
        )
        with engine_options(observe=True):
            campaign.run(workers=2)
        summaries = campaign.store.metrics_summaries("obs")
        assert len(summaries) == 2
        for summary in summaries:
            assert summary["metrics"]["counters"]  # non-empty per cell
        merged = campaign.last_metrics
        assert merged is not None
        fixed = merged["metrics"]["counters"].get("engine.fixed_steps", 0)
        macro = merged["metrics"]["counters"].get("engine.macro_stepped_dts", 0)
        assert fixed + macro > 0
