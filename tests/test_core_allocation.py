"""Parameter formulas of Algorithms 1-2, line by line."""

import math

import pytest

from repro import units
from repro.core.allocation import (
    chunk_params,
    htee_channel_allocation,
    htee_weights,
    mine_concurrency,
    mine_walk,
    parallelism_level,
    pipelining_level,
    proportional_allocation,
)
from repro.core.chunks import Chunk, ChunkClass
from repro.datasets.files import FileInfo

BDP = 50 * units.MB
BUF = 32 * units.MB


def chunk(cls, count, size):
    return Chunk(cls, tuple(FileInfo(f"{cls.name}{i}", int(size)) for i in range(count)))


class TestPipelining:
    def test_line8_formula(self):
        # pipelining = ceil(BDP / avgFileSize)
        assert pipelining_level(BDP, 10 * units.MB) == 5
        assert pipelining_level(BDP, 3 * units.MB) == math.ceil(50 / 3)

    def test_large_files_get_one(self):
        assert pipelining_level(BDP, 5 * units.GB) == 1

    def test_exact_division(self):
        assert pipelining_level(BDP, 25 * units.MB) == 2

    def test_zero_avg_degenerates_to_one(self):
        assert pipelining_level(BDP, 0) == 1

    def test_zero_bdp(self):
        assert pipelining_level(0, units.MB) == 1


class TestParallelism:
    def test_line9_formula_xsede(self):
        # max(min(ceil(BDP/buf), ceil(avg/buf)), 1) with BDP 50, buf 32
        assert parallelism_level(BDP, 500 * units.MB, BUF) == 2  # min(2, 16)
        assert parallelism_level(BDP, 10 * units.MB, BUF) == 1  # min(2, 1)

    def test_buffer_larger_than_bdp_gives_one(self):
        assert parallelism_level(3.5 * units.MB, units.GB, BUF) == 1

    def test_never_below_one(self):
        assert parallelism_level(0, 0, BUF) == 1

    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            parallelism_level(BDP, units.MB, 0)


class TestMineConcurrency:
    def test_line10_small_files_capped_by_half_pool(self):
        # min(ceil(BDP/avg), ceil((avail+1)/2))
        assert mine_concurrency(BDP, 3 * units.MB, 12) == min(17, 7)

    def test_large_files_get_one(self):
        assert mine_concurrency(BDP, 5 * units.GB, 12) == 1

    def test_capped_by_available(self):
        assert mine_concurrency(BDP, units.MB, 1) == 1

    def test_zero_pool_gives_zero(self):
        assert mine_concurrency(BDP, units.MB, 0) == 0

    def test_negative_pool_rejected(self):
        with pytest.raises(ValueError):
            mine_concurrency(BDP, units.MB, -1)


class TestMineWalk:
    CHUNKS = [
        chunk(ChunkClass.SMALL, 100, 10 * units.MB),
        chunk(ChunkClass.MEDIUM, 20, 300 * units.MB),
        chunk(ChunkClass.LARGE, 5, 4 * units.GB),
    ]

    def test_walk_respects_budget(self):
        for max_channels in (1, 2, 4, 6, 12):
            params = mine_walk(self.CHUNKS, BDP, BUF, max_channels)
            assert sum(p.concurrency for p in params) <= max_channels

    def test_large_chunk_gets_at_most_one_channel(self):
        params = mine_walk(self.CHUNKS, BDP, BUF, 12)
        assert params[2].concurrency <= 1

    def test_small_chunk_gets_most_channels(self):
        params = mine_walk(self.CHUNKS, BDP, BUF, 12)
        assert params[0].concurrency >= params[1].concurrency
        assert params[0].concurrency >= params[2].concurrency

    def test_small_files_get_deep_pipelines(self):
        params = mine_walk(self.CHUNKS, BDP, BUF, 12)
        assert params[0].pipelining == 5  # ceil(50/10)
        assert params[2].pipelining == 1

    def test_parameters_match_formulas(self):
        params = mine_walk(self.CHUNKS, BDP, BUF, 12)
        for c, p in zip(self.CHUNKS, params):
            assert p.pipelining == pipelining_level(BDP, c.average_file_size)
            assert p.parallelism == parallelism_level(BDP, c.average_file_size, BUF)

    def test_single_channel_budget(self):
        params = mine_walk(self.CHUNKS, BDP, BUF, 1)
        assert sum(p.concurrency for p in params) == 1
        assert params[0].concurrency == 1  # smallest chunk served first

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            mine_walk(self.CHUNKS, BDP, BUF, 0)


class TestHteeWeights:
    CHUNKS = [
        chunk(ChunkClass.SMALL, 1000, units.MB),
        chunk(ChunkClass.MEDIUM, 100, 100 * units.MB),
        chunk(ChunkClass.LARGE, 10, 4 * units.GB),
    ]

    def test_weights_normalized(self):
        weights = htee_weights(self.CHUNKS)
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)

    def test_weight_formula(self):
        # weight = log(size) * log(count), normalized
        raws = [
            math.log(c.total_size) * math.log(c.file_count) for c in self.CHUNKS
        ]
        expected = [r / sum(raws) for r in raws]
        assert htee_weights(self.CHUNKS) == pytest.approx(expected)

    def test_empty(self):
        assert htee_weights([]) == []

    def test_degenerate_chunk_gets_floor_weight(self):
        tiny = [chunk(ChunkClass.SMALL, 1, 1)]
        assert htee_weights(tiny) == [1.0]


class TestHteeAllocation:
    CHUNKS = TestHteeWeights.CHUNKS

    def test_respects_budget(self):
        for budget in range(1, 20):
            allocation = htee_channel_allocation(self.CHUNKS, budget)
            assert sum(allocation) <= budget

    def test_every_chunk_served_when_budget_allows(self):
        allocation = htee_channel_allocation(self.CHUNKS, 12)
        assert all(a >= 1 for a in allocation)

    def test_budget_below_chunk_count(self):
        allocation = htee_channel_allocation(self.CHUNKS, 2)
        assert sum(allocation) == 2
        assert max(allocation) == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            htee_channel_allocation(self.CHUNKS, 0)


class TestProportionalAllocation:
    CHUNKS = TestHteeWeights.CHUNKS

    def test_sums_exactly_to_budget(self):
        for budget in range(1, 25):
            allocation = proportional_allocation(self.CHUNKS, budget)
            assert sum(allocation) == budget

    def test_largest_chunk_gets_most(self):
        allocation = proportional_allocation(self.CHUNKS, 12)
        assert allocation[2] == max(allocation)

    def test_small_budget_prefers_large_chunks(self):
        allocation = proportional_allocation(self.CHUNKS, 1)
        assert allocation == [0, 0, 1]

    def test_every_chunk_served_with_ample_budget(self):
        allocation = proportional_allocation(self.CHUNKS, 12)
        assert all(a >= 1 for a in allocation)

    def test_empty_chunks(self):
        assert proportional_allocation([], 4) == []

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            proportional_allocation(self.CHUNKS, 0)


class TestChunkParams:
    def test_combines_formulas(self):
        c = chunk(ChunkClass.SMALL, 10, 10 * units.MB)
        p = chunk_params(c, BDP, BUF, 3)
        assert p.pipelining == 5
        assert p.parallelism == 1
        assert p.concurrency == 3
