"""Figure renderers: structural assertions on the generated text."""

import re

import pytest

from repro import units
from repro.core.scheduler import TransferOutcome
from repro.harness.figures import (
    render_concurrency_charts,
    render_concurrency_figure,
    render_device_model_curves,
    render_efficiency_panel,
    render_sla_figure,
    render_table1,
    render_testbed_specs,
)
from repro.harness.metrics import SlaRecord
from repro.harness.sweeps import ConcurrencySweep


def outcome(alg, cc, thr_mbps, joules):
    rate = units.mbps(thr_mbps)
    return TransferOutcome(
        algorithm=alg, testbed="T", max_channels=cc,
        duration_s=10.0, bytes_moved=rate * 10.0, energy_joules=joules,
    )


@pytest.fixture
def sweep():
    s = ConcurrencySweep(testbed="T", levels=(1, 2, 4))
    s.series["A"] = [outcome("A", c, 100 * c, 50 * c) for c in (1, 2, 4)]
    s.series["B"] = [outcome("B", c, 80 * c, 40 * c) for c in (1, 2, 4)]
    return s


class TestConcurrencyFigure:
    def test_row_per_level(self, sweep):
        text = render_concurrency_figure(sweep)
        throughput_part = text.split("(b)")[0]
        data_rows = [
            line for line in throughput_part.splitlines() if re.match(r"\s*\d+\s", line)
        ]
        assert len(data_rows) == 3

    def test_values_present(self, sweep):
        text = render_concurrency_figure(sweep)
        assert "400" in text  # A at cc=4
        assert "320" in text  # B at cc=4

    def test_column_per_algorithm(self, sweep):
        text = render_concurrency_figure(sweep)
        assert "A Mbps" in text and "B Mbps" in text
        assert "A J" in text and "B J" in text


class TestEfficiencyPanel:
    def test_normalization_against_best_bf(self, sweep):
        bf = [outcome("BF", c, 100 * c, 50 * c) for c in (1, 2)]
        text = render_efficiency_panel(sweep, bf)
        # the best BF point normalizes to exactly 1.000
        assert "1.000" in text

    def test_bf_rows(self, sweep):
        bf = [outcome("BF", c, 100, 50) for c in (1, 2, 3)]
        text = render_efficiency_panel(sweep, bf)
        bf_section = text.split("Brute-force sweep")[1]
        rows = [line for line in bf_section.splitlines() if re.match(r"\s*\d+\s", line)]
        assert len(rows) == 3


class TestSlaFigure:
    def test_columns(self):
        rec = SlaRecord(
            target_pct=80.0,
            target_throughput=units.mbps(800),
            achieved_throughput=units.mbps(760),
            energy_joules=900.0,
            reference_throughput=units.mbps(1000),
            reference_energy_joules=1200.0,
            final_concurrency=5,
        )
        text = render_sla_figure("T", [rec])
        assert "80%" in text
        assert "-5.0%" in text  # deviation
        assert "+25.0%" in text  # energy saved


class TestStaticRenderers:
    def test_device_model_curves_monotone_columns(self):
        text = render_device_model_curves(points=5)
        rows = [l for l in text.splitlines() if l.strip().endswith(("0", "5"))]
        assert "non-linear" in text

    def test_device_curves_endpoints(self):
        text = render_device_model_curves(points=3)
        assert "0%" in text and "100%" in text

    def test_table1_all_devices(self):
        text = render_table1()
        for name in ("Enterprise", "Edge Ethernet", "Metro IP", "Edge IP"):
            assert name in text

    def test_testbed_specs_units(self):
        text = render_testbed_specs()
        assert "Gbps" in text and "ms" in text and "MB" in text


class TestConcurrencyCharts:
    def test_charts_contain_both_panels(self, sweep):
        text = render_concurrency_charts(sweep)
        assert "throughput (Mbps)" in text
        assert "energy (J)" in text
        assert "o=A" in text and "x=B" in text
