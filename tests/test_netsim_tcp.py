"""TCP throughput model: buffer-limited streams and the congestion knee."""

import pytest

from repro import units
from repro.netsim.link import NetworkPath
from repro.netsim.tcp import aggregate_goodput, channel_network_cap, stream_throughput


def path(bw_gbps=10, rtt_ms=40, buf_mb=32, eff=1.0, knee=10, slope=0.02) -> NetworkPath:
    return NetworkPath(
        bandwidth=units.gbps(bw_gbps),
        rtt=units.ms(rtt_ms),
        tcp_buffer=buf_mb * units.MB,
        protocol_efficiency=eff,
        congestion_knee=knee,
        congestion_slope=slope,
    )


class TestStreamThroughput:
    def test_buffer_limited_when_buf_below_bdp(self):
        p = path()  # BDP 50 MB > buf 32 MB
        assert stream_throughput(p) == pytest.approx(32 * units.MB / 0.040)

    def test_bandwidth_limited_when_buf_above_bdp(self):
        p = path(bw_gbps=1, rtt_ms=10, buf_mb=32)  # BDP 1.25 MB << buf
        assert stream_throughput(p) == pytest.approx(units.gbps(1))

    def test_zero_rtt_gives_link_rate(self):
        p = path(rtt_ms=0)
        assert stream_throughput(p) == pytest.approx(units.gbps(10))

    def test_protocol_efficiency_scales(self):
        full = stream_throughput(path(eff=1.0))
        scaled = stream_throughput(path(eff=0.9))
        assert scaled == pytest.approx(0.9 * full)


class TestChannelNetworkCap:
    def test_parallelism_multiplies_buffer_limited_term(self):
        p = path()
        one = channel_network_cap(p, 1)
        two = channel_network_cap(p, 2)
        assert one == pytest.approx(32 * units.MB / 0.040)
        # 2 x 32 MB > BDP, so two streams fill the pipe
        assert two == pytest.approx(units.gbps(10))

    def test_never_exceeds_link(self):
        p = path()
        assert channel_network_cap(p, 100) <= units.gbps(10)

    def test_monotone_in_parallelism(self):
        p = path(buf_mb=4)
        caps = [channel_network_cap(p, k) for k in range(1, 20)]
        assert all(b >= a for a, b in zip(caps, caps[1:]))

    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            channel_network_cap(path(), 0)

    def test_zero_rtt(self):
        assert channel_network_cap(path(rtt_ms=0), 4) == pytest.approx(units.gbps(10))


class TestAggregateGoodput:
    def test_zero_streams(self):
        assert aggregate_goodput(path(), 0) == 0.0

    def test_flat_up_to_knee(self):
        p = path(knee=10)
        assert aggregate_goodput(p, 1) == aggregate_goodput(p, 10)

    def test_declines_past_knee(self):
        p = path(knee=10, slope=0.02)
        at_knee = aggregate_goodput(p, 10)
        past = aggregate_goodput(p, 15)
        assert past < at_knee
        assert past == pytest.approx(at_knee * 0.98**5)

    def test_monotone_nonincreasing(self):
        p = path(knee=5, slope=0.05)
        values = [aggregate_goodput(p, s) for s in range(1, 60)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_floor_at_ten_percent(self):
        p = path(knee=1, slope=0.5)
        assert aggregate_goodput(p, 1000) == pytest.approx(0.10 * units.gbps(10))

    def test_negative_streams_rejected(self):
        with pytest.raises(ValueError):
            aggregate_goodput(path(), -1)


class TestNetworkPathValidation:
    def test_bdp_property(self):
        assert path().bdp == pytest.approx(50 * units.MB)

    def test_describe(self):
        text = path().describe()
        assert "10.0 Gbps" in text
        assert "40.0 ms" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bandwidth=0, rtt=0.01, tcp_buffer=1),
            dict(bandwidth=1, rtt=-1, tcp_buffer=1),
            dict(bandwidth=1, rtt=0.01, tcp_buffer=0),
            dict(bandwidth=1, rtt=0.01, tcp_buffer=1, protocol_efficiency=0),
            dict(bandwidth=1, rtt=0.01, tcp_buffer=1, protocol_efficiency=1.2),
            dict(bandwidth=1, rtt=0.01, tcp_buffer=1, congestion_knee=0),
            dict(bandwidth=1, rtt=0.01, tcp_buffer=1, congestion_slope=-0.1),
        ],
    )
    def test_invalid_paths_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkPath(**kwargs)
