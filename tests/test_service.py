"""The service layer: tariffs, workloads, SLA planning, deferral
policies (and their deadline-safety invariant), and the end-to-end
service simulator — including the paper's economic claim that delayed
transfers are cheaper transfers."""

import json
import math

import pytest

from repro import units
from repro.datasets.files import Dataset
from repro.netsim.multi import TransferTimeout
from repro.obs.observer import Observer
from repro.service import (
    BALANCED,
    CarbonAware,
    DEFAULT_TENANTS,
    ENERGY,
    DeadlineEDF,
    PriceThreshold,
    RunNow,
    SLAClass,
    ServiceSimulator,
    TariffTrace,
    TransferRequest,
    bursty_workload,
    diurnal_workload,
    flat_tariff,
    green_midday_tariff,
    latest_safe_start,
    peak_offpeak_tariff,
    plan_for,
    poisson_workload,
    policy_by_name,
    sla,
    tariff_by_name,
    workload_by_name,
)
from repro.service.tariff import JOULES_PER_KWH

DAY = 600.0  # compressed test day (seconds)


# ----------------------------------------------------------------------
# tariff traces
# ----------------------------------------------------------------------


def two_plateau(period_s: float = 100.0) -> TariffTrace:
    """price 0.10/carbon 0.40 for the first half, 0.02/0.10 after."""
    return TariffTrace(
        name="two",
        points=((0.0, 0.10, 0.40), (50.0, 0.02, 0.10)),
        period_s=period_s,
    )


class TestTariffTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            TariffTrace("bad", points=())
        with pytest.raises(ValueError):
            TariffTrace("bad", points=((5.0, 0.1, 0.3),))  # first != 0
        with pytest.raises(ValueError):
            TariffTrace("bad", points=((0.0, 0.1, 0.3), (0.0, 0.2, 0.3)))
        with pytest.raises(ValueError):
            TariffTrace("bad", points=((0.0, -0.1, 0.3),))
        with pytest.raises(ValueError):
            TariffTrace("bad", points=((0.0, 0.1, 0.3),), period_s=0.0)
        with pytest.raises(ValueError):
            TariffTrace("bad", points=((0.0, 0.1, 0.3), (200.0, 0.2, 0.3)),
                        period_s=100.0)

    def test_plateau_lookup_and_wrap(self):
        trace = two_plateau()
        assert trace.price_at(10.0) == 0.10
        assert trace.price_at(60.0) == 0.02
        assert trace.price_at(160.0) == 0.02  # next period
        assert trace.carbon_at(260.0) == 0.10

    def test_next_change_walks_and_wraps(self):
        trace = two_plateau()
        assert trace.next_change(10.0) == pytest.approx(50.0)
        assert trace.next_change(60.0) == pytest.approx(100.0)
        assert trace.next_change(150.0) == pytest.approx(200.0)
        assert math.isinf(flat_tariff().next_change(0.0))

    def test_means_and_mins(self):
        trace = two_plateau()
        assert trace.mean_price == pytest.approx(0.06)
        assert trace.mean_carbon == pytest.approx(0.25)
        assert trace.min_price == 0.02
        assert trace.min_carbon == 0.10

    def test_cost_integrates_across_boundary(self):
        trace = two_plateau()
        joules = JOULES_PER_KWH  # exactly one kWh
        # 40-60 s straddles the boundary 50/50
        assert trace.cost(joules, 40.0, 20.0) == pytest.approx(0.06)
        # instantaneous pricing uses the plateau in force
        assert trace.cost(joules, 10.0) == pytest.approx(0.10)
        assert trace.carbon(joules, 60.0) == pytest.approx(0.10)
        with pytest.raises(ValueError):
            trace.cost(-1.0, 0.0)

    def test_next_window_at_or_below(self):
        trace = two_plateau()
        assert trace.next_window_at_or_below(0.02, 10.0) == pytest.approx(50.0)
        # already inside a qualifying window: now
        assert trace.next_window_at_or_below(0.05, 60.0) == pytest.approx(60.0)
        # unreachable threshold
        assert math.isinf(trace.next_window_at_or_below(0.001, 0.0))
        # carbon column
        assert trace.next_window_at_or_below(
            0.10, 10.0, carbon=True
        ) == pytest.approx(50.0)

    def test_scaled_to_preserves_shape(self):
        day = peak_offpeak_tariff()
        short = day.scaled_to(DAY)
        factor = DAY / 86400.0
        for t in (0.0, 30000.0, 50000.0, 80000.0):
            assert short.price_at(t * factor) == day.price_at(t)
        assert short.mean_price == pytest.approx(day.mean_price)

    def test_presets_by_name(self):
        assert tariff_by_name("flat").name == "flat"
        assert tariff_by_name("green-midday", period_s=DAY).period_s == DAY
        with pytest.raises(KeyError):
            tariff_by_name("nope")


# ----------------------------------------------------------------------
# SLA classes and requests
# ----------------------------------------------------------------------


class TestSLAClasses:
    def test_kinds_and_labels(self):
        assert ENERGY.deferrable and not BALANCED.deferrable
        assert sla(0.8).label == "SLA(80%)"
        assert ENERGY.label == "ENERGY"

    def test_validation(self):
        with pytest.raises(ValueError):
            SLAClass("turbo")
        with pytest.raises(ValueError):
            SLAClass("sla")  # needs a level
        with pytest.raises(ValueError):
            sla(1.5)
        with pytest.raises(ValueError):
            SLAClass("energy", level=0.5)  # takes no level

    def test_request_validation(self):
        ds = Dataset.from_sizes([units.MB])
        with pytest.raises(ValueError):
            TransferRequest("", "t", ds)
        with pytest.raises(ValueError):
            TransferRequest("r", "t", ds, submit_time=-1.0)
        with pytest.raises(ValueError):
            TransferRequest("r", "t", ds, submit_time=5.0, deadline=5.0)
        req = TransferRequest("r", "t", ds, submit_time=5.0, deadline=25.0)
        assert req.slack_s() == pytest.approx(20.0)
        assert math.isinf(TransferRequest("q", "t", ds).slack_s())


class TestWorkloads:
    def test_deterministic_under_seed(self):
        a = diurnal_workload(12, day_s=DAY, seed=3, size_scale=0.01)
        b = diurnal_workload(12, day_s=DAY, seed=3, size_scale=0.01)
        assert [(r.name, r.submit_time, r.total_bytes) for r in a] == [
            (r.name, r.submit_time, r.total_bytes) for r in b
        ]
        c = diurnal_workload(12, day_s=DAY, seed=4, size_scale=0.01)
        assert [r.submit_time for r in a] != [r.submit_time for r in c]

    def test_arrivals_inside_day_and_sorted(self):
        for gen in (poisson_workload, diurnal_workload, bursty_workload):
            reqs = gen(20, day_s=DAY, seed=1, size_scale=0.01)
            assert len(reqs) == 20
            times = [r.submit_time for r in reqs]
            assert times == sorted(times)
            assert all(0.0 <= t < DAY for t in times)

    def test_tenant_mix_and_deadlines(self):
        reqs = poisson_workload(60, day_s=DAY, seed=2, size_scale=0.01)
        tenants = {r.tenant for r in reqs}
        assert tenants == {t.name for t in DEFAULT_TENANTS}
        by_name = {t.name: t for t in DEFAULT_TENANTS}
        for r in reqs:
            profile = by_name[r.tenant]
            assert r.sla == profile.sla
            assert r.deadline == pytest.approx(
                r.submit_time + profile.deadline_slack_frac * DAY
            )

    def test_by_name_and_validation(self):
        with pytest.raises(KeyError):
            workload_by_name("nope", 4)
        with pytest.raises(ValueError):
            poisson_workload(0)
        with pytest.raises(ValueError):
            poisson_workload(1, day_s=-1.0)


# ----------------------------------------------------------------------
# SLA-class -> plan mapping
# ----------------------------------------------------------------------


def make_request(name="job", tenant="t", sla_class=BALANCED, submit=0.0,
                 deadline=None, n_files=8, file_mb=5):
    ds = Dataset.from_sizes([file_mb * units.MB] * n_files, name=name)
    return TransferRequest(
        name, tenant, ds, sla=sla_class, submit_time=submit, deadline=deadline
    )


class TestPlanFor:
    def test_algorithm_per_class(self, small_testbed):
        for sla_class, algorithm in (
            (ENERGY, "MinE"),
            (BALANCED, "HTEE-static"),
            (sla(0.8), "SLAEE-static"),
        ):
            jp = plan_for(small_testbed, make_request(sla_class=sla_class))
            assert jp.algorithm == algorithm
            assert jp.total_bytes == 40 * units.MB
            assert jp.planned_channels >= 1
            assert jp.est_duration_s > 0 and jp.est_energy_j > 0

    def test_sla_concurrency_tracks_level(self, small_testbed):
        lo = plan_for(small_testbed, make_request(sla_class=sla(0.25)))
        hi = plan_for(small_testbed, make_request(sla_class=sla(1.0)))
        assert hi.planned_channels >= lo.planned_channels
        # reference concurrency is 4 -> full SLA plans 4 channels
        assert hi.planned_channels == small_testbed.sla_reference_concurrency

    def test_bad_budget(self, small_testbed):
        with pytest.raises(ValueError):
            plan_for(small_testbed, make_request(), max_channels=0)


# ----------------------------------------------------------------------
# deferral policies
# ----------------------------------------------------------------------


class TestSchedulerPolicies:
    def test_run_now_never_defers(self):
        trace = peak_offpeak_tariff(period_s=DAY)
        req = make_request(sla_class=ENERGY, submit=DAY * 0.55,
                           deadline=DAY * 0.99)
        d = RunNow().schedule(req, 10.0, trace)
        assert d.release_time == req.submit_time
        assert not d.deferred
        assert d.priority == req.submit_time

    def test_edf_priority_is_deadline(self):
        trace = flat_tariff()
        tight = make_request(name="tight", submit=0.0, deadline=50.0)
        loose = make_request(name="loose", submit=0.0, deadline=500.0)
        none = make_request(name="none")
        policy = DeadlineEDF()
        assert policy.schedule(tight, 1.0, trace).priority < \
            policy.schedule(loose, 1.0, trace).priority
        assert math.isinf(policy.schedule(none, 1.0, trace).priority)

    def test_price_threshold_defers_to_offpeak(self):
        trace = peak_offpeak_tariff(period_s=DAY)
        peak_t = DAY * (13.0 / 24.0)  # inside the 12-20 h peak
        offpeak_t = DAY * (22.0 / 24.0)
        req = make_request(sla_class=ENERGY, submit=peak_t,
                           deadline=peak_t + 0.9 * DAY)
        d = PriceThreshold().schedule(req, 1.0, trace)
        assert d.deferred and d.reason == "peak-price"
        assert d.release_time == pytest.approx(offpeak_t)
        assert trace.price_at(d.release_time) == trace.min_price

    def test_non_deferrable_classes_run_now(self):
        trace = peak_offpeak_tariff(period_s=DAY)
        peak_t = DAY * 0.55
        for sla_class in (BALANCED, sla(0.8)):
            req = make_request(sla_class=sla_class, submit=peak_t,
                               deadline=peak_t + 0.4 * DAY)
            for policy in (PriceThreshold(), CarbonAware()):
                d = policy.schedule(req, 1.0, trace)
                assert d.release_time == req.submit_time
                assert not d.deferred

    def test_already_cheap_no_deferral(self):
        trace = peak_offpeak_tariff(period_s=DAY)
        night = DAY * 0.1  # off-peak already
        req = make_request(sla_class=ENERGY, submit=night,
                           deadline=night + 0.5 * DAY)
        d = PriceThreshold().schedule(req, 1.0, trace)
        assert d.release_time == req.submit_time and not d.deferred

    def test_carbon_aware_chases_clean_not_cheap(self):
        trace = green_midday_tariff(period_s=DAY)
        morning = DAY * (8.0 / 24.0)  # 0.09 $ / 0.40 kg plateau
        solar = DAY * (10.0 / 24.0)   # 0.08 $ / 0.18 kg plateau
        req = make_request(sla_class=ENERGY, submit=morning,
                           deadline=morning + 0.9 * DAY)
        d = CarbonAware().schedule(req, 1.0, trace)
        assert d.deferred and d.reason == "carbon"
        assert d.release_time == pytest.approx(solar)

    def test_deadline_safety_invariant(self):
        """No policy ever defers a feasible job past its latest safe
        start — over a grid of submit times, deadlines and durations."""
        traces = (
            peak_offpeak_tariff(period_s=DAY),
            green_midday_tariff(period_s=DAY),
        )
        policies = (PriceThreshold(), CarbonAware(), RunNow(), DeadlineEDF())
        for trace in traces:
            for frac in (0.05, 0.3, 0.55, 0.7, 0.95):
                submit = DAY * frac
                for slack in (0.05, 0.2, 0.5, 0.9):
                    deadline = submit + slack * DAY
                    for est in (0.5, 5.0, 50.0, 200.0):
                        req = make_request(sla_class=ENERGY, submit=submit,
                                           deadline=deadline)
                        for policy in policies:
                            d = policy.schedule(req, est, trace)
                            assert d.release_time >= submit
                            safe = latest_safe_start(req, est, policy.safety)
                            if safe >= submit:  # feasible at all
                                assert d.release_time <= safe + 1e-9

    def test_infeasible_deadline_release_clamps_to_submit(self):
        """When even starting now can't meet the deadline, the policy
        must not make it worse by waiting."""
        trace = peak_offpeak_tariff(period_s=DAY)
        submit = DAY * 0.55
        req = make_request(sla_class=ENERGY, submit=submit,
                           deadline=submit + 1.0)
        d = PriceThreshold().schedule(req, est_duration_s=100.0, tariff=trace)
        assert d.release_time == req.submit_time

    def test_policy_by_name(self):
        assert isinstance(policy_by_name("run-now"), RunNow)
        assert isinstance(policy_by_name("carbon-aware"), CarbonAware)
        with pytest.raises(KeyError):
            policy_by_name("nope")


# ----------------------------------------------------------------------
# the service simulator
# ----------------------------------------------------------------------


class TestServiceSimulator:
    def _simulator(self, testbed, **kwargs):
        defaults = dict(
            policy=RunNow(), tariff=flat_tariff(period_s=DAY),
            max_concurrent_jobs=4,
        )
        defaults.update(kwargs)
        return ServiceSimulator(testbed, **defaults)

    def test_end_to_end_accounting(self, small_testbed):
        reqs = [
            make_request(name="a", tenant="t1", submit=0.0),
            make_request(name="b", tenant="t2", sla_class=ENERGY, submit=5.0),
        ]
        report = self._simulator(small_testbed).run(reqs)
        assert len(report.jobs) == 2
        for job in report.jobs:
            assert job.finished
            assert job.energy_j > 0 and job.cost_usd > 0 and job.kg_co2 > 0
            assert job.completed_at > job.admitted_at >= job.submitted_at
        assert report.total_bytes == sum(j.total_bytes for j in report.jobs)
        assert report.makespan_s >= max(j.completed_at for j in report.jobs) - 1.0
        # flat tariff: dollars are exactly energy x rate
        flat = flat_tariff()
        for job in report.jobs:
            assert job.cost_usd == pytest.approx(
                job.energy_j / JOULES_PER_KWH * flat.price_at(0.0), rel=1e-9
            )

    def test_cap_serializes_and_accrues_queue_wait(self, small_testbed):
        reqs = [make_request(name=f"j{i}", submit=0.0) for i in range(2)]
        report = self._simulator(
            small_testbed, max_concurrent_jobs=1
        ).run(reqs)
        first, second = sorted(report.jobs, key=lambda j: j.admitted_at)
        assert second.admitted_at >= first.completed_at - 0.2
        assert second.queue_wait_s > 0
        assert report.mean_queue_wait_s > 0

    def test_edf_admission_order(self, small_testbed):
        reqs = [
            make_request(name="loose", submit=0.0, deadline=500.0),
            make_request(name="tight", submit=0.0, deadline=50.0),
        ]
        report = self._simulator(
            small_testbed, policy=DeadlineEDF(), max_concurrent_jobs=1
        ).run(reqs)
        jobs = {j.name: j for j in report.jobs}
        assert jobs["tight"].admitted_at < jobs["loose"].admitted_at

    def test_per_tenant_fairness(self, small_testbed):
        reqs = [
            make_request(name="a1", tenant="a", submit=0.0),
            make_request(name="a2", tenant="a", submit=0.0),
            make_request(name="b1", tenant="b", submit=0.0),
        ]
        report = self._simulator(
            small_testbed, max_concurrent_jobs=2, max_per_tenant=1
        ).run(reqs)
        jobs = {j.name: j for j in report.jobs}
        # tenant b's job is not starved behind tenant a's second job
        assert jobs["b1"].admitted_at == pytest.approx(0.0, abs=0.2)
        assert jobs["a2"].admitted_at > jobs["a1"].admitted_at

    def test_deferral_saves_dollars_with_zero_misses(self, small_testbed):
        """The acceptance claim, in miniature: at a peak/off-peak
        tariff, PriceThreshold bills strictly fewer dollars than
        RunNow and misses no deadline."""
        tariff = peak_offpeak_tariff(period_s=DAY)
        peak_t = DAY * (13.0 / 24.0)
        reqs = [
            make_request(name="archive", tenant="archive", sla_class=ENERGY,
                         submit=peak_t, deadline=peak_t + 0.9 * DAY),
            make_request(name="sync", tenant="analytics", submit=peak_t,
                         deadline=peak_t + 0.4 * DAY),
        ]
        reports = {}
        for policy in (RunNow(), PriceThreshold()):
            reports[policy.name] = self._simulator(
                small_testbed, policy=policy, tariff=tariff
            ).run(reqs)
        cheap = reports["price-threshold"]
        base = reports["run-now"]
        assert cheap.total_cost_usd < base.total_cost_usd
        assert cheap.deadline_miss_rate == 0.0
        assert base.deadline_miss_rate == 0.0
        assert cheap.deferred_jobs == 1
        archive = next(j for j in cheap.jobs if j.name == "archive")
        assert archive.deferral_reason == "peak-price"
        assert tariff.price_at(archive.admitted_at) == tariff.min_price
        # deferral delays money, not joules (both runs move the bytes)
        assert cheap.total_bytes == base.total_bytes

    def test_deterministic_report(self, small_testbed):
        reqs = poisson_workload(6, day_s=DAY, seed=11, size_scale=0.003)
        dumps = []
        for _ in range(2):
            report = self._simulator(
                small_testbed, policy=PriceThreshold(),
                tariff=peak_offpeak_tariff(period_s=DAY),
            ).run(reqs)
            dumps.append(json.dumps(report.to_dict(), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_deadline_miss_recorded(self, small_testbed):
        reqs = [
            make_request(name="doomed", submit=0.0, deadline=0.5,
                         n_files=20, file_mb=10)
        ]
        observer = Observer()
        report = self._simulator(small_testbed, observer=observer).run(reqs)
        assert report.jobs[0].deadline_missed
        assert report.deadline_miss_rate == 1.0
        assert observer.metrics.counter("service.deadline_misses").value == 1
        assert len(observer.events.filter(kind="deadline_missed")) == 1

    def test_observer_event_lifecycle(self, small_testbed):
        tariff = peak_offpeak_tariff(period_s=DAY)
        peak_t = DAY * 0.55
        reqs = [
            make_request(name="defer-me", sla_class=ENERGY, submit=peak_t,
                         deadline=peak_t + 0.9 * DAY),
            make_request(name="now", submit=1.0),
        ]
        observer = Observer()
        self._simulator(
            small_testbed, policy=PriceThreshold(), tariff=tariff,
            observer=observer,
        ).run(reqs)
        kinds = observer.events.kinds()
        assert kinds["job_submitted"] == 2
        assert kinds["job_admitted"] == 2
        assert kinds["job_completed"] == 2
        assert kinds["job_deferred"] == 1
        observer.events.validate()
        assert observer.metrics.counter("service.jobs_completed").value == 2
        deferred = observer.events.filter(kind="job_deferred")[0]
        assert deferred.detail["job"] == "defer-me"
        assert deferred.detail["reason"] == "peak-price"

    def test_timeout_raises(self, small_testbed):
        reqs = [make_request(name="slow", n_files=20, file_mb=10)]
        with pytest.raises(TransferTimeout, match="slow"):
            self._simulator(small_testbed).run(reqs, max_time=0.5)

    def test_duplicate_names_rejected(self, small_testbed):
        reqs = [make_request(name="dup"), make_request(name="dup")]
        with pytest.raises(ValueError, match="duplicate"):
            self._simulator(small_testbed).run(reqs)

    def test_invalid_caps_rejected(self, small_testbed):
        with pytest.raises(ValueError):
            self._simulator(small_testbed, max_concurrent_jobs=0)
        with pytest.raises(ValueError):
            self._simulator(small_testbed, max_per_tenant=0)

    def test_per_tenant_breakdown_sums_to_totals(self, small_testbed):
        reqs = [
            make_request(name="x", tenant="t1"),
            make_request(name="y", tenant="t1", submit=2.0),
            make_request(name="z", tenant="t2", submit=4.0),
        ]
        report = self._simulator(small_testbed).run(reqs)
        per = report.per_tenant
        assert set(per) == {"t1", "t2"}
        assert per["t1"]["jobs"] == 2 and per["t2"]["jobs"] == 1
        assert sum(row["cost_usd"] for row in per.values()) == pytest.approx(
            report.total_cost_usd
        )
        assert sum(row["kwh"] for row in per.values()) == pytest.approx(
            report.total_energy_j / JOULES_PER_KWH
        )

    def test_render_and_to_dict(self, small_testbed):
        report = self._simulator(small_testbed).run([make_request(name="r")])
        text = report.render()
        assert "Service day" in text and "run-now" in text
        payload = report.to_dict()
        json.dumps(payload)  # JSON-safe
        assert payload["jobs"] == 1
        assert payload["job_results"][0]["name"] == "r"


# ----------------------------------------------------------------------
# fleet TOU tariff integration
# ----------------------------------------------------------------------


class TestFleetTariffSchedule:
    def test_flat_model_unchanged(self):
        from repro.fleet import TariffModel

        tariff = TariffModel(dollars_per_kwh=0.10, kg_co2_per_kwh=0.5)
        assert tariff.dollars(JOULES_PER_KWH) == pytest.approx(0.10)
        assert tariff.kg_co2(JOULES_PER_KWH) == pytest.approx(0.5)
        assert tariff.price_at(12 * 3600.0) == 0.10

    def test_from_trace_prices_by_time(self):
        from repro.fleet import TariffModel

        model = TariffModel.from_trace(peak_offpeak_tariff())
        assert model.dollars_per_kwh == pytest.approx(
            peak_offpeak_tariff().mean_price
        )
        night, peak = 2 * 3600.0, 13 * 3600.0
        assert model.price_at(night) == 0.05
        assert model.price_at(peak) == 0.16
        assert model.dollars(JOULES_PER_KWH, start=night) == pytest.approx(0.05)
        assert model.dollars(JOULES_PER_KWH, start=peak) == pytest.approx(0.16)
        # no start -> flat mean pricing (backwards-compatible call)
        assert model.dollars(JOULES_PER_KWH) == pytest.approx(
            model.dollars_per_kwh
        )
        assert model.kg_co2(JOULES_PER_KWH, start=night) == pytest.approx(0.32)

    def test_job_class_start_hour(self, small_testbed, small_dataset):
        from repro.fleet import FleetModel, JobClass, TariffModel

        with pytest.raises(ValueError):
            JobClass("bad", lambda: small_dataset, 1.0, start_hour=24.0)

        tariff = TariffModel.from_trace(peak_offpeak_tariff())

        def fleet_at(hour):
            return FleetModel(
                small_testbed,
                [JobClass("job", lambda: small_dataset, 2.0, start_hour=hour)],
                tariff=tariff,
                max_channels=2,
            ).report("mine")

        night, peak = fleet_at(2.0), fleet_at(13.0)
        assert night.annual_energy_kwh == pytest.approx(peak.annual_energy_kwh)
        assert night.annual_cost_dollars < peak.annual_cost_dollars
        assert night.annual_kg_co2 < peak.annual_kg_co2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestServiceCLI:
    def test_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main([
            "service", "--jobs", "4", "--day", "900",
            "--workload", "steady", "--policy", "price-threshold",
            "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["policy"] == "price-threshold"
        assert payload["jobs"] == 4
        assert len(payload["job_results"]) == 4
        assert payload["deadline_miss_rate"] == 0.0
        capsys.readouterr()

    def test_events_flag(self, capsys):
        from repro.cli import main

        code = main([
            "service", "--jobs", "2", "--day", "600",
            "--workload", "steady", "--events",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "job_submitted" in captured.out

    def test_unknown_preset_exits_2(self, capsys):
        from repro.cli import main

        assert main(["service", "--policy", "nope"]) == 2
        assert main(["service", "--workload", "nope"]) == 2
        assert main(["service", "--tariff", "nope"]) == 2
        capsys.readouterr()

    def test_fleet_tariff_flag(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--tariff", "nope"]) == 2
        capsys.readouterr()
