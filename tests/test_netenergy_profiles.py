"""Device power-model profiles (Fig. 8 shapes x Table 1 magnitudes)."""

import pytest

from repro import units
from repro.netenergy.devices import EDGE_ROUTER, EDGE_SWITCH, ENTERPRISE_SWITCH
from repro.netenergy.models import (
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
)
from repro.netenergy.profiles import (
    MODEL_KINDS,
    device_model_factory,
    path_energy_under_model,
)
from repro.netenergy.topology import xsede_topology
from repro.netsim.engine import StepRecord


def trace(rates, dt=1.0):
    return [
        StepRecord(time=(i + 1) * dt, throughput=r, power=0.0, active_channels=1)
        for i, r in enumerate(rates)
    ]


class TestFactory:
    def test_kind_selects_model_shape(self):
        assert isinstance(device_model_factory("non-linear")(EDGE_SWITCH),
                          NonLinearPowerModel)
        assert isinstance(device_model_factory("linear")(EDGE_SWITCH),
                          LinearPowerModel)
        assert isinstance(device_model_factory("state-based")(EDGE_SWITCH),
                          StateBasedPowerModel)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            device_model_factory("quadratic")

    def test_budget_scales_with_per_packet_cost(self):
        build = device_model_factory("linear")
        router = build(EDGE_ROUTER)
        enterprise = build(ENTERPRISE_SWITCH)
        assert router.max_dynamic_watts > 20 * enterprise.max_dynamic_watts

    def test_reference_device_gets_reference_budget(self):
        model = device_model_factory("linear")(EDGE_SWITCH)
        assert model.max_dynamic_watts == pytest.approx(25.0)

    def test_idle_follows_catalog(self):
        model = device_model_factory("linear")(EDGE_ROUTER)
        assert model.idle_watts == EDGE_ROUTER.idle_watts


class TestPathEnergy:
    LINE = units.gbps(10)

    def test_every_device_accounted(self):
        topo = xsede_topology()
        breakdowns = path_energy_under_model(
            trace([self.LINE / 2] * 4), topo, "linear", self.LINE, dt=1.0
        )
        assert len(breakdowns) == len(topo.path_devices())

    def test_routers_dominate_switches(self):
        topo = xsede_topology()
        breakdowns = path_energy_under_model(
            trace([self.LINE / 2] * 4), topo, "linear", self.LINE, dt=1.0
        )
        by_name = {b.device_name: b.dynamic_joules for b in breakdowns}
        assert by_name["edge-router-sdsc"] > by_name["enterprise-switch-sdsc"]

    def test_nonlinear_exceeds_linear_below_full_rate(self):
        topo = xsede_topology()
        t = trace([self.LINE / 4] * 4)
        nonlinear = sum(
            b.dynamic_joules
            for b in path_energy_under_model(t, topo, "non-linear", self.LINE, dt=1.0)
        )
        linear = sum(
            b.dynamic_joules
            for b in path_energy_under_model(t, topo, "linear", self.LINE, dt=1.0)
        )
        assert nonlinear > linear

    def test_idle_inclusion(self):
        topo = xsede_topology()
        breakdowns = path_energy_under_model(
            trace([0.0] * 2), topo, "linear", self.LINE, dt=1.0, include_idle=True
        )
        assert all(b.idle_joules > 0 for b in breakdowns)
