"""PR 10 performance-layer contracts.

The allocation LRU, the vectorized progressive-filling path and
incremental re-fill must all be *bit-identical* to the from-scratch
scalar solve; the netsim round-reuse (signature skip + ``refill``)
must leave every binding decision — and therefore every timestamp of
a service day — exactly as a from-scratch ``allocate`` per round
would; the fleet's ``topology-aware`` router must carve the fabric
conservatively, route deterministically and survive the process pool;
and the new cache telemetry must flow through counters, the
``allocation_cached`` event and the renderers.
"""

import json

import pytest

from repro.obs.observer import Observer, render_events, render_metrics
from repro.service import RunNow, ServiceSimulator, bursty_workload, \
    peak_offpeak_tariff, poisson_workload
from repro.service.fleet import (
    FleetSimulator,
    ShardSpec,
    route_requests,
    topology_pair_shards,
)
from repro import units
from repro.datasets.files import Dataset
from repro.service.policies import plan_cache_clear
from repro.service.requests import BALANCED, TransferRequest
from repro.testbeds.specs import testbed_by_name as _testbed_by_name
from repro.topo import (
    FlowDemand,
    alloc_cache_clear,
    alloc_cache_info,
    allocate,
    build_topology,
    refill,
    set_alloc_cache,
)

XSEDE = _testbed_by_name("xsede")
DAY = 600.0


def make_request(name="job", tenant="t", submit=0.0, n_files=8, file_mb=5):
    ds = Dataset.from_sizes([file_mb * units.MB] * n_files, name=name)
    return TransferRequest(name, tenant, ds, sla=BALANCED,
                           submit_time=submit)

TOPOLOGY_SPECS = (
    "single-link",
    "leaf-spine:s=2,l=4,spine=0.4",
    "fat-tree:k=4,core=0.3",
)
PLACEMENTS = ("least-congested", "ecmp-hash")


@pytest.fixture(autouse=True)
def fresh_caches():
    """Every test starts from an empty allocation LRU (enabled) and an
    empty plan cache, and leaves the module switches as it found them."""
    prev = set_alloc_cache(True)
    alloc_cache_clear()
    plan_cache_clear()
    yield
    set_alloc_cache(prev)
    alloc_cache_clear()


def flows_for(topology, n, *, demand_scale=1.0):
    """``n`` deterministic unit-weight flows over ``topology``'s paths,
    demands spread around the hop capacities so some flows saturate and
    some stay demand-limited."""
    paths = sorted(topology.paths)
    cap = min(topology.capacity(hop) for hop in topology.bottlenecks)
    return [
        FlowDemand(
            f"f{i:03d}",
            topology.paths[paths[i % len(paths)]].bottlenecks,
            demand_scale * cap * (0.1 + ((i * 7) % 13) / 6.0),
        )
        for i in range(n)
    ]


def run_day(requests, *, fast=True, observer=None, **kwargs):
    plan_cache_clear()
    sim = ServiceSimulator(
        XSEDE,
        policy=RunNow(),
        tariff=peak_offpeak_tariff(period_s=DAY),
        fast=fast,
        observer=observer,
        **kwargs,
    )
    return sim.run(requests)


def report_json(report) -> str:
    data = report.to_dict()
    data.pop("topology", None)
    data.pop("placement", None)
    return json.dumps(data, sort_keys=True)


# ----------------------------------------------------------------------
# allocator equivalence: scalar / vector / LRU / refill
# ----------------------------------------------------------------------


class TestAllocatorEquivalence:
    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    @pytest.mark.parametrize("n", [8, 48])
    def test_cached_hit_is_bit_identical(self, spec, n):
        topology = build_topology(spec, bandwidth=1e9)
        flows = flows_for(topology, n)
        baseline = allocate(topology, flows, cache=False, vector=False)
        alloc_cache_clear()
        first = allocate(topology, flows)
        info = alloc_cache_info()
        assert (info.hits, info.misses) == (0, 1)
        second = allocate(topology, flows)
        info = alloc_cache_info()
        assert (info.hits, info.misses) == (1, 1)
        assert first == baseline
        assert second == baseline
        assert second is first  # the memoized object itself

    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    def test_vector_path_is_bit_identical(self, spec):
        topology = build_topology(spec, bandwidth=1e9)
        flows = flows_for(topology, 48)
        scalar = allocate(topology, flows, cache=False, vector=False)
        vector = allocate(topology, flows, cache=False, vector=True)
        assert vector == scalar
        assert vector.rates == scalar.rates  # exact dict equality, no approx

    def test_vector_rejects_non_unit_weights(self):
        topology = build_topology("single-link", bandwidth=1e9)
        flows = [FlowDemand(f"f{i}", ("link",), 1e8, weight=2.0)
                 for i in range(40)]
        with pytest.raises(ValueError, match="unit weights"):
            allocate(topology, flows, cache=False, vector=True)
        # auto dispatch quietly falls back to the scalar solver
        assert allocate(topology, flows, cache=False) == allocate(
            topology, flows, cache=False, vector=False
        )

    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS)
    def test_refill_matches_from_scratch(self, spec):
        """Demand change, join and departure — each spliced result must
        equal a cold solve on the new flow set."""
        topology = build_topology(spec, bandwidth=1e9)
        flows = flows_for(topology, 24)
        previous = allocate(topology, flows, cache=False, vector=False)

        bumped = [
            FlowDemand(f.flow, f.path, f.demand * (1.5 if i == 3 else 1.0))
            for i, f in enumerate(flows)
        ]
        joined = bumped + [FlowDemand("late", flows[0].path, 2.0e8)]
        departed = [f for f in flows if f.flow != "f001"]
        for variant in (bumped, joined, departed):
            spliced = refill(topology, variant, previous, cache=False)
            scratch = allocate(topology, variant, cache=False, vector=False)
            assert spliced == scratch

    def test_refill_unchanged_set_returns_previous(self):
        topology = build_topology(TOPOLOGY_SPECS[1], bandwidth=1e9)
        flows = flows_for(topology, 12)
        previous = allocate(topology, flows, cache=False)
        assert refill(topology, flows, previous, cache=False) is previous

    def test_refill_counts_lru_traffic(self):
        topology = build_topology(TOPOLOGY_SPECS[1], bandwidth=1e9)
        flows = flows_for(topology, 12)
        previous = allocate(topology, flows)  # miss 1
        bumped = [FlowDemand(f.flow, f.path, f.demand * 1.1) for f in flows]
        refill(topology, bumped, previous)  # miss on the full key
        info = alloc_cache_info()
        assert info.hits == 0 and info.misses >= 2
        refill(topology, bumped, previous)  # now a hit on the full key
        assert alloc_cache_info().hits == 1

    def test_cache_key_includes_capacities(self):
        """A brownout must never serve a pre-brownout memo."""
        topology = build_topology("single-link", bandwidth=1e9)
        flows = [FlowDemand("f", ("link",), 2e9)]
        before = allocate(topology, flows)
        topology.scale_bottleneck("link", 0.5)
        after = allocate(topology, flows)
        assert before.rates["f"] == 1e9
        assert after.rates["f"] == 0.5e9
        assert alloc_cache_info().misses == 2


# ----------------------------------------------------------------------
# netsim round reuse: binding decisions pinned to from-scratch allocate
# ----------------------------------------------------------------------


class TestRoundReuseBindingRegression:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_day_identical_to_fresh_allocate_per_round(
        self, placement, monkeypatch
    ):
        """The signature skip, the LRU and ``refill`` together must make
        exactly the decisions a from-scratch ``allocate`` per round
        would — pinned by running the same day with ``refill``
        monkeypatched to an uncached cold solve and demanding a
        byte-identical report (``_would_bind`` included: it shares the
        same ``refill`` entry point)."""
        requests = bursty_workload(6, day_s=DAY, seed=9, size_scale=0.2)
        kwargs = dict(topology=TOPOLOGY_SPECS[1], placement=placement,
                      placement_seed=7, max_concurrent_jobs=6)
        cached = run_day(requests, **kwargs)

        import repro.netsim.multi as multi

        def cold(topology, flows, previous, *, changed=None,
                 max_rounds=64, cache=None):
            return allocate(topology, flows, cache=False, vector=False)

        monkeypatch.setattr(multi, "refill", cold)
        alloc_cache_clear()
        scratch = run_day(requests, **kwargs)
        assert report_json(cached) == report_json(scratch)

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("spec", TOPOLOGY_SPECS[1:])
    def test_fast_vs_grid_with_caching(self, spec, placement):
        """With the LRU on and round reuse active, the fast path must
        still be an exact re-implementation of the dt-grid loop."""
        requests = bursty_workload(6, day_s=DAY, seed=9, size_scale=0.2)
        kwargs = dict(topology=spec, placement=placement, placement_seed=7,
                      max_concurrent_jobs=6)
        fast = run_day(requests, fast=True, **kwargs)
        alloc_cache_clear()
        grid = run_day(requests, fast=False, **kwargs)
        assert [j.name for j in fast.jobs] == [j.name for j in grid.jobs]
        for jf, jg in zip(fast.jobs, grid.jobs):
            for attr in ("submitted_at", "released_at", "admitted_at",
                         "completed_at"):
                assert getattr(jf, attr) == getattr(jg, attr), (jf.name, attr)
            for attr in ("energy_j", "cost_usd", "kg_co2"):
                a, b = getattr(jf, attr), getattr(jg, attr)
                assert a == pytest.approx(b, rel=1e-9), (jf.name, attr)

    def test_repeat_day_is_mostly_cache_hits(self):
        requests = bursty_workload(6, day_s=DAY, seed=9, size_scale=0.2)
        kwargs = dict(topology=TOPOLOGY_SPECS[1], placement="least-congested",
                      max_concurrent_jobs=6)
        run_day(requests, **kwargs)
        observer = Observer()
        run_day(requests, observer=observer, **kwargs)
        counters = observer.metrics.snapshot()["counters"]
        hits = counters.get("topo.alloc_cache_hits", 0.0)
        misses = counters.get("topo.alloc_cache_misses", 0.0)
        assert hits + misses > 0
        assert hits / (hits + misses) > 0.9


# ----------------------------------------------------------------------
# telemetry: counters, allocation_cached events, renderers
# ----------------------------------------------------------------------


class TestCacheTelemetry:
    def observed_day(self):
        observer = Observer()
        requests = bursty_workload(6, day_s=DAY, seed=9, size_scale=0.2)
        run_day(requests, topology=TOPOLOGY_SPECS[1], observer=observer,
                max_concurrent_jobs=6)
        return observer

    def test_counters_and_events(self):
        observer = self.observed_day()
        counters = observer.metrics.snapshot()["counters"]
        assert counters.get("topo.alloc_cache_misses", 0.0) > 0
        assert "topo.alloc_cache_hits" in counters
        assert "topo.alloc_incremental_rounds" in counters
        kinds = observer.events.kinds()
        assert kinds.get("allocation_cached", 0) >= 1
        for event in observer.events.filter(kind="allocation_cached"):
            assert event.detail["rounds"] >= 1
            assert event.detail["span_s"] >= 0.0

    def test_renderers_format_the_new_event(self):
        observer = self.observed_day()
        text = render_events(observer.events)
        assert "allocation_cached" in text
        assert "cached round(s)" in text
        metrics = render_metrics(observer.metrics.snapshot())
        assert "topo.alloc_cache_hits" in metrics


# ----------------------------------------------------------------------
# fleet: topology-aware sharding
# ----------------------------------------------------------------------


class TestTopologyPairShards:
    def test_leaf_spine_carve_is_conservative(self):
        """Each trunk's carved capacity, summed over every shard that
        uses it, equals the fabric's capacity — the carve never
        oversubscribes the real fabric."""
        bandwidth = XSEDE.path.bandwidth
        shards = topology_pair_shards(XSEDE, "leaf-spine:s=2,l=4,spine=0.4")
        assert [s.name for s in shards] == [
            "p0-1", "p0-2", "p0-3", "p1-2", "p1-3", "p2-3"
        ]
        fabric = build_topology("leaf-spine:s=2,l=4,spine=0.4",
                                bandwidth=bandwidth)
        total = {hop: 0.0 for hop in fabric.bottlenecks}
        for spec in shards:
            carved = build_topology(spec.topology, bandwidth=bandwidth)
            assert set(spec.bottlenecks) <= set(fabric.bottlenecks)
            # a pair carve keeps every bottleneck; only the hops its
            # paths cross carry that shard's traffic
            used = {
                hop for path in carved.paths.values()
                for hop in path.bottlenecks
            }
            for hop in used:
                total[hop] += carved.capacity(hop)
        for hop in fabric.bottlenecks:
            assert total[hop] == pytest.approx(fabric.capacity(hop))

    def test_fat_tree_carve(self):
        shards = topology_pair_shards(XSEDE, "fat-tree:k=4,core=0.3")
        assert len(shards) == 6  # 4 pods -> C(4,2) pairs
        assert shards[0].bottlenecks == ("pod0", "pod1")
        carved = build_topology(shards[0].topology,
                                bandwidth=XSEDE.path.bandwidth)
        # pair= keeps all bottlenecks but only the pair's paths
        assert set(carved.bottlenecks) == {
            "pod0", "pod1", "pod2", "pod3", "core0", "core1", "core2",
            "core3",
        }
        assert all(
            path.src == "pod0" and path.dst == "pod1"
            for path in carved.paths.values()
        )

    def test_single_link_rejected(self):
        with pytest.raises(ValueError):
            topology_pair_shards(XSEDE, "single-link")


class TestTopologyAwareRouting:
    def fabric_and_specs(self):
        fabric = build_topology("leaf-spine:s=2,l=3",
                                bandwidth=XSEDE.path.bandwidth)
        specs = [
            ShardSpec("p0-1", XSEDE, bottlenecks=("leaf0", "leaf1")),
            ShardSpec("p0-2", XSEDE, bottlenecks=("leaf0", "leaf2")),
            ShardSpec("p1-2", XSEDE, bottlenecks=("leaf1", "leaf2")),
        ]
        return fabric, specs

    def test_requires_fabric_and_bottlenecks(self):
        fabric, specs = self.fabric_and_specs()
        reqs = [make_request(name="j0")]
        with pytest.raises(ValueError, match="fleet fabric"):
            route_requests(reqs, specs, routing="topology-aware")
        bare = [ShardSpec("a", XSEDE), ShardSpec("b", XSEDE)]
        with pytest.raises(ValueError, match="bottleneck"):
            route_requests(reqs, bare, routing="topology-aware",
                           topology=fabric)

    def test_spreads_over_disjoint_trunks(self):
        fabric, specs = self.fabric_and_specs()
        reqs = [make_request(name=f"j{i}", tenant="solo") for i in range(9)]
        routed = route_requests(reqs, specs, routing="topology-aware",
                                topology=fabric, steal_threshold=None)
        # every shard sees work: trunk pressure steers away from loaded
        # leaves, and the backlog tie-breaker spreads the saturated tail
        assert all(len(bucket) > 0 for bucket in routed.buckets)

    def test_fleet_day_deterministic_and_pool_identical(self):
        requests = poisson_workload(12, seed=7)
        kwargs = dict(
            policy=RunNow(),
            tariff=peak_offpeak_tariff(period_s=DAY),
            fast=True,
            topology="leaf-spine:s=2,l=3",
            routing="topology-aware",
        )
        reports = []
        for workers in (None, 2):
            alloc_cache_clear()
            plan_cache_clear()
            extra = {} if workers is None else {"workers": workers}
            fleet = FleetSimulator(XSEDE, **kwargs, **extra)
            assert [s.name for s in fleet.shards] == ["p0-1", "p0-2", "p1-2"]
            reports.append(fleet.run(requests))
        inline, pooled = reports
        assert [s.routed_jobs for s in inline.shards] \
            == [s.routed_jobs for s in pooled.shards]
        assert inline.total_energy_j == pooled.total_energy_j

    def test_topology_aware_requires_topology_spec(self):
        with pytest.raises(ValueError, match="topology"):
            FleetSimulator(
                XSEDE,
                policy=RunNow(),
                tariff=peak_offpeak_tariff(period_s=DAY),
                routing="topology-aware",
            )
