"""Documentation meta-test: every public item carries a docstring.

Deliverable (e) of a library release is doc comments on every public
item; this test makes the property structural rather than aspirational.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.datasets",
    "repro.fleet",
    "repro.harness",
    "repro.netenergy",
    "repro.netsim",
    "repro.power",
    "repro.testbeds",
]


def iter_modules():
    seen = set()
    for name in PACKAGES:
        module = importlib.import_module(name)
        yield module
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                full = f"{name}.{info.name}"
                if full not in seen:
                    seen.add(full)
                    yield importlib.import_module(full)


ALL_MODULES = list({m.__name__: m for m in iter_modules()}.values())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


def public_items(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None or not callable(obj):
            continue
        # only items defined inside this package
        defined_in = getattr(obj, "__module__", "") or ""
        if not defined_in.startswith("repro"):
            continue
        yield name, obj


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = [
        name
        for name, obj in public_items(module)
        if not (inspect.getdoc(obj) or "").strip()
    ]
    assert not undocumented, f"{module.__name__}: undocumented public items {undocumented}"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_document_their_methods(module):
    offenders = []
    for name, obj in public_items(module):
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited
            if not (inspect.getdoc(method) or "").strip():
                offenders.append(f"{name}.{method_name}")
    assert not offenders, f"{module.__name__}: undocumented methods {offenders}"
