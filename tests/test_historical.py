"""History-informed tuning."""

import pytest

from repro.core.historical import HistoricalTuner
from repro.harness.store import ResultStore


@pytest.fixture
def tuner(tmp_path) -> HistoricalTuner:
    return HistoricalTuner(store=ResultStore(tmp_path / "history.jsonl"), min_history=2)


class TestColdStart:
    def test_falls_back_to_live_search(self, tuner, small_testbed):
        ds = small_testbed.dataset()
        outcome = tuner.run(small_testbed, ds, 4)
        assert outcome.extra["history_used"] is False
        assert outcome.bytes_moved == pytest.approx(ds.total_size)
        # the run was archived
        assert len(tuner.store) == 1

    def test_best_known_none_when_thin(self, tuner, small_testbed):
        assert tuner.best_known_concurrency(small_testbed) is None


class TestWarmArchive:
    def test_uses_history_after_min_runs(self, tuner, small_testbed):
        ds = small_testbed.dataset()
        tuner.run(small_testbed, ds, 4)
        tuner.run(small_testbed, ds, 4)
        third = tuner.run(small_testbed, ds, 4)
        assert third.extra["history_used"] is True
        assert third.algorithm == "HistTune"
        assert third.bytes_moved == pytest.approx(ds.total_size)

    def test_historical_run_skips_probe_overhead(self, tuner, small_testbed):
        ds = small_testbed.dataset()
        cold = tuner.run(small_testbed, ds, 6)
        tuner.run(small_testbed, ds, 6)
        warm = tuner.run(small_testbed, ds, 6)
        # no search phase: at least as fast as the probing cold run
        assert warm.duration_s <= cold.duration_s * 1.02
        assert "probes" not in warm.extra

    def test_level_clamped_to_budget(self, tuner, small_testbed):
        ds = small_testbed.dataset()
        tuner.run(small_testbed, ds, 6)
        tuner.run(small_testbed, ds, 6)
        constrained = tuner.run(small_testbed, ds, 1)
        assert constrained.final_concurrency == 1

    def test_history_is_per_testbed(self, tuner, small_testbed):
        ds = small_testbed.dataset()
        tuner.run(small_testbed, ds, 4)
        tuner.run(small_testbed, ds, 4)
        # a different testbed name sees no history
        import dataclasses

        other = dataclasses.replace(small_testbed, name="Elsewhere")
        assert tuner.best_known_concurrency(other) is None

    def test_validation(self, tuner, small_testbed):
        with pytest.raises(ValueError):
            tuner.run(small_testbed, small_testbed.dataset(), 0)
