"""Disk subsystem models: contention, striping, diminishing returns."""

import pytest

from repro import units
from repro.netsim.disk import ParallelDisk, PowerLawDisk, SingleDisk


class TestSingleDisk:
    def test_single_accessor_gets_peak(self):
        d = SingleDisk(peak_rate=74 * units.MB, contention_alpha=0.12)
        assert d.aggregate_capacity(1) == pytest.approx(74 * units.MB)

    def test_aggregate_decreases_with_accessors(self):
        d = SingleDisk(peak_rate=74 * units.MB, contention_alpha=0.12)
        caps = [d.aggregate_capacity(n) for n in range(1, 13)]
        assert all(b < a for a, b in zip(caps, caps[1:]))

    def test_didclab_magnitude(self):
        # ~25% decline from 1 to 12 accessors (Fig. 4a)
        d = SingleDisk(peak_rate=74 * units.MB, contention_alpha=0.12)
        ratio = d.aggregate_capacity(12) / d.aggregate_capacity(1)
        assert 0.70 < ratio < 0.80

    def test_zero_accessors(self):
        assert SingleDisk(1e6).aggregate_capacity(0) == 0.0

    def test_zero_alpha_is_flat(self):
        d = SingleDisk(peak_rate=1e6, contention_alpha=0.0)
        assert d.aggregate_capacity(10) == pytest.approx(1e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            SingleDisk(peak_rate=0)
        with pytest.raises(ValueError):
            SingleDisk(peak_rate=1e6, contention_alpha=-0.1)
        with pytest.raises(ValueError):
            SingleDisk(1e6).aggregate_capacity(-1)


class TestParallelDisk:
    def test_scales_linearly_up_to_array_rate(self):
        d = ParallelDisk(per_accessor_rate=100.0, array_rate=400.0)
        assert d.aggregate_capacity(1) == 100.0
        assert d.aggregate_capacity(3) == 300.0
        assert d.aggregate_capacity(4) == 400.0

    def test_saturates_at_array_rate(self):
        d = ParallelDisk(per_accessor_rate=100.0, array_rate=400.0)
        assert d.aggregate_capacity(50) == 400.0

    def test_zero_accessors(self):
        assert ParallelDisk(100.0, 400.0).aggregate_capacity(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelDisk(per_accessor_rate=0, array_rate=10)
        with pytest.raises(ValueError):
            ParallelDisk(per_accessor_rate=100, array_rate=50)


class TestPowerLawDisk:
    def test_single_accessor(self):
        d = PowerLawDisk(single_rate=62.5 * units.MB, exponent=0.2)
        assert d.aggregate_capacity(1) == pytest.approx(62.5 * units.MB)

    def test_diminishing_returns(self):
        d = PowerLawDisk(single_rate=100.0, exponent=0.2)
        caps = [d.aggregate_capacity(n) for n in range(1, 13)]
        gains = [b - a for a, b in zip(caps, caps[1:])]
        assert all(b > a for a, b in zip(caps, caps[1:]))  # still increasing
        assert all(g2 < g1 for g1, g2 in zip(gains, gains[1:]))  # concave

    def test_futuregrid_shape(self):
        # one channel already delivers >half of the 12-channel aggregate
        d = PowerLawDisk(single_rate=62.5 * units.MB, exponent=0.2)
        assert d.aggregate_capacity(1) > 0.5 * d.aggregate_capacity(12)

    def test_negative_exponent_contends(self):
        d = PowerLawDisk(single_rate=100.0, exponent=-0.12)
        assert d.aggregate_capacity(12) < d.aggregate_capacity(1)

    def test_zero_exponent_flat(self):
        d = PowerLawDisk(single_rate=100.0, exponent=0.0)
        assert d.aggregate_capacity(7) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerLawDisk(single_rate=0, exponent=0.2)
        with pytest.raises(ValueError):
            PowerLawDisk(single_rate=10, exponent=1.0)
        with pytest.raises(ValueError):
            PowerLawDisk(single_rate=10, exponent=-1.0)
