"""Model-building phase: regression recovers coefficients; tool
validation reproduces the Section 2.2 error-rate ordering."""

import pytest

from repro import units
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import ServerSpec
from repro.power.calibration import (
    fit_coefficients,
    fit_cpu_quadratic,
    generate_load_sweep,
    mean_absolute_percentage_error,
)
from repro.power.coefficients import CoefficientSet, cpu_coefficient
from repro.power.models import CpuTdpPowerModel, FineGrainedPowerModel
from repro.power.tools import TOOL_PROFILES, generate_tool_run


def server(tdp=100.0) -> ServerSpec:
    return ServerSpec(
        name="cal", cores=4, tdp_watts=tdp, nic_rate=units.gbps(1),
        disk=ParallelDisk(50e6, 200e6), per_channel_rate=50e6, core_rate=200e6,
    )


TRUE = CoefficientSet(memory=0.012, disk=0.07, nic=0.045)


class TestLoadSweep:
    def test_sweep_shape(self):
        samples = generate_load_sweep(server(), TRUE, seed=1)
        assert len(samples) == 4 * 20  # 4 components x 20 levels
        assert all(s.measured_watts >= 0 for s in samples)

    def test_noise_free_sweep_matches_model(self):
        samples = generate_load_sweep(server(), TRUE, noise_fraction=0.0, seed=1)
        model = FineGrainedPowerModel(TRUE)
        for s in samples:
            assert model.power(server(), s.utilization) == pytest.approx(s.measured_watts)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            generate_load_sweep(server(), TRUE, active_cores=9)


class TestFitCoefficients:
    def test_recovers_true_coefficients(self):
        samples = generate_load_sweep(server(), TRUE, noise_fraction=0.01, seed=3)
        cpu_at_1, fitted = fit_coefficients(samples, active_cores=1)
        assert cpu_at_1 == pytest.approx(cpu_coefficient(1), rel=0.05)
        assert fitted.memory == pytest.approx(TRUE.memory, rel=0.25)
        assert fitted.disk == pytest.approx(TRUE.disk, rel=0.15)
        assert fitted.nic == pytest.approx(TRUE.nic, rel=0.15)

    def test_fitted_model_predicts_holdout_well(self):
        train = generate_load_sweep(server(), TRUE, noise_fraction=0.02, seed=5)
        _, fitted = fit_coefficients(train, active_cores=1)
        holdout = generate_load_sweep(server(), TRUE, noise_fraction=0.02, seed=6)
        model = FineGrainedPowerModel(fitted)
        error = mean_absolute_percentage_error(
            lambda u: model.power(server(), u), holdout
        )
        assert error < 6.0  # the paper's fine-grained bound

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_coefficients([])


class TestFitCpuQuadratic:
    def test_recovers_equation_2(self):
        points = {n: cpu_coefficient(n) for n in (1, 2, 3, 4, 6, 8)}
        a, b, c = fit_cpu_quadratic(points)
        assert a == pytest.approx(0.011, abs=1e-9)
        assert b == pytest.approx(-0.082, abs=1e-9)
        assert c == pytest.approx(0.344, abs=1e-9)

    def test_end_to_end_per_core_fits(self):
        # fit per-core coefficients from separate sweeps, then Eq. 2
        points = {}
        for n in (1, 2, 3, 4):
            samples = generate_load_sweep(
                server(), TRUE, active_cores=n, noise_fraction=0.005, seed=n
            )
            cpu_at_n, _ = fit_coefficients(samples, active_cores=n)
            points[n] = cpu_at_n
        a, b, c = fit_cpu_quadratic(points)
        assert a == pytest.approx(0.011, abs=0.01)
        assert c == pytest.approx(0.344, abs=0.05)

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            fit_cpu_quadratic({1: 0.27, 2: 0.22})


class TestToolValidation:
    """Reproduces the Section 2.2 validation table qualitatively."""

    def _errors(self, profile_name: str, remote_tdp=100.0, tdp_mismatch=1.0):
        profile = TOOL_PROFILES[profile_name]
        run = generate_tool_run(profile, TRUE, seed=11)
        fine = FineGrainedPowerModel(TRUE)
        cpu_model = CpuTdpPowerModel(local_tdp_watts=100.0, cpu_share=0.897,
                                     coefficients=TRUE)
        srv = server(tdp=remote_tdp * tdp_mismatch)
        fine_err = mean_absolute_percentage_error(
            lambda u: fine.power(server(), u), run
        )
        cpu_err = mean_absolute_percentage_error(
            lambda u: cpu_model.power(srv, u), run
        )
        return fine_err, cpu_err

    @pytest.mark.parametrize("tool", sorted(TOOL_PROFILES))
    def test_fine_grained_error_below_paper_bound(self, tool):
        fine_err, _ = self._errors(tool)
        assert fine_err < 8.0  # "below 6% even in the worst case" + margin

    @pytest.mark.parametrize("tool", ["ftp", "bbcp", "gridftp"])
    def test_light_tools_have_low_error(self, tool):
        fine_err, _ = self._errors(tool)
        assert fine_err < 5.0

    def test_tool_profiles_cover_paper_tools(self):
        assert set(TOOL_PROFILES) == {"scp", "rsync", "ftp", "bbcp", "gridftp"}

    def test_tdp_extension_adds_error(self):
        # extending the CPU model to a foreign server whose true power
        # scale deviates substantially from the TDP ratio costs accuracy
        # (the paper's +2-3% moving from the Intel to the AMD server);
        # a mismatch in at least one direction must hurt
        _, matched = self._errors("gridftp", remote_tdp=100.0)
        _, low = self._errors("gridftp", remote_tdp=100.0, tdp_mismatch=0.7)
        _, high = self._errors("gridftp", remote_tdp=100.0, tdp_mismatch=1.4)
        assert max(low, high) > matched

    def test_runs_are_deterministic(self):
        a = generate_tool_run(TOOL_PROFILES["scp"], TRUE, seed=2)
        b = generate_tool_run(TOOL_PROFILES["scp"], TRUE, seed=2)
        assert [s.measured_watts for s in a] == [s.measured_watts for s in b]

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            generate_tool_run(TOOL_PROFILES["scp"], TRUE, duration_steps=0)
