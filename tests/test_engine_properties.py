"""Property-based tests on the transfer engine: conservation and
capacity invariants under random workloads and channel counts."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro import units
from repro.datasets.files import FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams


def build_engine() -> TransferEngine:
    server = ServerSpec(
        name="s",
        cores=4,
        tdp_watts=100.0,
        nic_rate=units.gbps(1),
        disk=ParallelDisk(per_accessor_rate=50e6, array_rate=150e6),
        per_channel_rate=50e6,
        core_rate=200e6,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, server_count=2)
    path = NetworkPath(bandwidth=units.gbps(1), rtt=units.ms(5), tcp_buffer=4 * units.MB)
    return TransferEngine(path, site, site, lambda spec, u: 10.0, dt=0.1)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=20 * units.MB), min_size=1, max_size=40),
    cc=st.integers(min_value=1, max_value=8),
    pp=st.integers(min_value=1, max_value=8),
    p=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_engine_conserves_bytes_and_files(sizes, cc, pp, p):
    engine = build_engine()
    files = tuple(FileInfo(f"f{i}", s) for i, s in enumerate(sizes))
    engine.add_chunk(ChunkPlan("c", files, TransferParams(pp, p, cc)))
    engine.run()
    assert engine.finished
    assert engine.total_bytes == pytest.approx(sum(sizes))
    assert engine.total_files == len(sizes)
    assert engine.total_energy > 0


@given(
    sizes=st.lists(
        st.integers(min_value=units.MB, max_value=20 * units.MB), min_size=2, max_size=20
    ),
    split=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_engine_conserves_across_multiple_chunks(sizes, split):
    engine = build_engine()
    half = len(sizes) // 2
    chunk_a = tuple(FileInfo(f"a{i}", s) for i, s in enumerate(sizes[:half]))
    chunk_b = tuple(FileInfo(f"b{i}", s) for i, s in enumerate(sizes[half:]))
    if chunk_a:
        engine.add_chunk(ChunkPlan("a", chunk_a, TransferParams(concurrency=split)))
    if chunk_b:
        engine.add_chunk(ChunkPlan("b", chunk_b, TransferParams(concurrency=1)))
    engine.run()
    assert engine.finished
    assert engine.total_bytes == pytest.approx(sum(sizes))


@given(
    cc=st.integers(min_value=1, max_value=10),
    duration=st.floats(min_value=0.2, max_value=2.0),
)
@settings(max_examples=25, deadline=None)
def test_throughput_never_exceeds_capacity(cc, duration):
    engine = build_engine()
    files = tuple(FileInfo(f"f{i}", 100 * units.MB) for i in range(cc))
    engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=cc)))
    engine.run(duration)
    # aggregate rate can never exceed the shared disk array on one
    # server; the engine quantizes to whole steps, so bound by the
    # actually elapsed simulated time
    max_possible = 150e6 * engine.time
    assert engine.total_bytes <= max_possible + 1e-3


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=5 * units.MB), min_size=1, max_size=30),
    interrupt_at=st.floats(min_value=0.1, max_value=1.0),
    new_cc=st.integers(min_value=0, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_reallocation_mid_transfer_loses_nothing(sizes, interrupt_at, new_cc):
    engine = build_engine()
    files = tuple(FileInfo(f"f{i}", s) for i, s in enumerate(sizes))
    engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2)))
    engine.run(interrupt_at)
    engine.set_chunk_channels("c", new_cc)
    if new_cc == 0:
        engine.set_chunk_channels("c", 1)
    engine.run()
    assert engine.finished
    assert engine.total_bytes == pytest.approx(sum(sizes))


@given(seed=st.integers(min_value=0, max_value=5))
@settings(max_examples=6, deadline=None)
def test_time_monotone_and_energy_nondecreasing(seed):
    engine = build_engine()
    files = tuple(FileInfo(f"f{i}", 5 * units.MB) for i in range(10))
    engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2 + seed % 3)))
    last_time, last_energy, last_bytes = 0.0, 0.0, 0.0
    while not engine.finished:
        engine.step()
        assert engine.time > last_time
        assert engine.total_energy >= last_energy
        assert engine.total_bytes >= last_bytes
        last_time, last_energy, last_bytes = (
            engine.time,
            engine.total_energy,
            engine.total_bytes,
        )
