"""ASCII line charts."""

import pytest

from repro.harness.charts import line_chart


class TestLineChart:
    def test_single_series(self):
        text = line_chart({"a": [1, 2, 3, 4]}, height=4, width=20)
        assert "o" in text
        assert "o=a" in text

    def test_marker_positions_monotone_for_rising_series(self):
        text = line_chart({"a": [0, 10]}, height=5, width=10)
        rows = [line for line in text.splitlines() if "|" in line]
        first = next(i for i, r in enumerate(rows) if "o" in r)
        last = max(i for i, r in enumerate(rows) if "o" in r)
        assert first < last  # higher value drawn on a higher row

    def test_multiple_series_get_distinct_markers(self):
        text = line_chart({"a": [1, 2], "b": [2, 1]}, height=4, width=10)
        assert "o=a" in text and "x=b" in text

    def test_overlap_marked_with_star(self):
        text = line_chart({"a": [5.0], "b": [5.0]}, height=3, width=3)
        assert "*" in text

    def test_x_labels(self):
        text = line_chart({"a": [1, 2, 3]}, x_labels=["p", "q", "r"], height=3, width=12)
        assert "p" in text and "r" in text

    def test_title(self):
        text = line_chart({"a": [1]}, title="My chart", height=3, width=4)
        assert text.splitlines()[0] == "My chart"

    def test_constant_series(self):
        text = line_chart({"a": [7, 7, 7]}, height=4, width=10)
        plot_rows = [line for line in text.splitlines() if "|" in line]
        assert sum(row.count("o") for row in plot_rows) == 3

    def test_y_axis_shows_extremes(self):
        text = line_chart({"a": [0.0, 100.0]}, height=4, width=10)
        assert "100" in text
        assert " 0 |" in text or "0 |" in text

    @pytest.mark.parametrize(
        "kwargs,error",
        [
            (dict(series={}), "at least one series"),
            (dict(series={"a": [1], "b": [1, 2]}), "same length"),
            (dict(series={"a": []}), "non-empty"),
            (dict(series={"a": [1, 2]}, height=1), "too small"),
            (dict(series={"a": [1, 2, 3]}, width=2), "too small"),
            (dict(series={"a": [1, 2]}, x_labels=["only-one"]), "x_labels"),
        ],
    )
    def test_validation(self, kwargs, error):
        series = kwargs.pop("series")
        with pytest.raises(ValueError, match=error):
            line_chart(series, **kwargs)
