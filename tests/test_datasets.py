"""Dataset containers and generators."""

import pytest

from repro import units
from repro.datasets.files import Dataset, FileInfo
from repro.datasets.generators import (
    SizeBand,
    banded_dataset,
    large_files_dataset,
    log_uniform_dataset,
    lognormal_dataset,
    paper_dataset_10g,
    paper_dataset_1g,
    small_files_dataset,
    uniform_dataset,
)


class TestFileInfo:
    def test_basic(self):
        f = FileInfo("a.dat", 100)
        assert f.name == "a.dat"
        assert f.size == 100

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FileInfo("bad", -1)

    def test_zero_size_allowed(self):
        assert FileInfo("empty", 0).size == 0

    def test_frozen(self):
        f = FileInfo("a", 1)
        with pytest.raises(Exception):
            f.size = 2


class TestDataset:
    def test_stats(self):
        ds = Dataset([FileInfo("a", 10), FileInfo("b", 30)])
        assert ds.total_size == 40
        assert ds.file_count == 2
        assert ds.average_file_size == 20
        assert ds.min_file_size == 10
        assert ds.max_file_size == 30

    def test_empty_dataset(self):
        ds = Dataset([])
        assert ds.total_size == 0
        assert ds.average_file_size == 0.0
        assert ds.min_file_size == 0
        assert ds.max_file_size == 0
        assert len(ds) == 0

    def test_iteration_and_indexing(self):
        files = [FileInfo(f"f{i}", i + 1) for i in range(5)]
        ds = Dataset(files)
        assert list(ds) == files
        assert ds[2] == files[2]

    def test_sorted_by_size(self):
        ds = Dataset([FileInfo("big", 100), FileInfo("small", 1), FileInfo("mid", 50)])
        ordered = ds.sorted_by_size()
        assert [f.size for f in ordered] == [1, 50, 100]

    def test_from_sizes_generates_names(self):
        ds = Dataset.from_sizes([5, 6, 7], prefix="x")
        assert ds.file_count == 3
        assert len({f.name for f in ds}) == 3
        assert all(f.name.startswith("x") for f in ds)

    def test_describe_mentions_count(self):
        ds = Dataset.from_sizes([units.MB] * 3, name="tiny")
        assert "3 files" in ds.describe()
        assert "tiny" in ds.describe()


class TestUniformDataset:
    def test_counts_and_sizes(self):
        ds = uniform_dataset(10, 512)
        assert ds.file_count == 10
        assert all(f.size == 512 for f in ds)

    def test_zero_files(self):
        assert uniform_dataset(0, 512).file_count == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_dataset(-1, 512)


class TestLogUniformDataset:
    def test_total_size_exact(self):
        ds = log_uniform_dataset(100 * units.MB, units.MB, 10 * units.MB, seed=1)
        assert ds.total_size == 100 * units.MB

    def test_sizes_in_range(self):
        ds = log_uniform_dataset(200 * units.MB, units.MB, 20 * units.MB, seed=2)
        # rescaling can push sizes slightly past the nominal max
        assert ds.min_file_size >= units.MB
        assert ds.max_file_size <= 40 * units.MB

    def test_deterministic_given_seed(self):
        a = log_uniform_dataset(50 * units.MB, units.MB, 5 * units.MB, seed=7)
        b = log_uniform_dataset(50 * units.MB, units.MB, 5 * units.MB, seed=7)
        assert [f.size for f in a] == [f.size for f in b]

    def test_different_seeds_differ(self):
        a = log_uniform_dataset(50 * units.MB, units.MB, 5 * units.MB, seed=1)
        b = log_uniform_dataset(50 * units.MB, units.MB, 5 * units.MB, seed=2)
        assert [f.size for f in a] != [f.size for f in b]

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            log_uniform_dataset(10 * units.MB, 5 * units.MB, units.MB)

    def test_total_smaller_than_max_rejected(self):
        with pytest.raises(ValueError):
            log_uniform_dataset(units.MB, units.KB, 10 * units.MB)


class TestBandedDataset:
    BANDS = (
        SizeBand(0.5, units.MB, 10 * units.MB),
        SizeBand(0.5, 10 * units.MB, 100 * units.MB),
    )

    def test_total_exact(self):
        ds = banded_dataset(units.GB, self.BANDS, seed=3)
        assert ds.total_size == units.GB

    def test_band_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            banded_dataset(units.GB, (SizeBand(0.4, 1, 10),))

    def test_band_byte_split_approximate(self):
        ds = banded_dataset(units.GB, self.BANDS, seed=3)
        small_bytes = sum(f.size for f in ds if f.size < 10 * units.MB)
        assert small_bytes == pytest.approx(0.5 * units.GB, rel=0.15)

    def test_band_validation(self):
        with pytest.raises(ValueError):
            SizeBand(0.0, 1, 10)
        with pytest.raises(ValueError):
            SizeBand(0.5, 10, 1)


class TestPaperDatasets:
    def test_10g_spec(self):
        ds = paper_dataset_10g()
        assert ds.total_size == 160 * units.GB
        assert ds.min_file_size >= 1 * units.MB
        assert ds.max_file_size <= 30 * units.GB

    def test_1g_spec(self):
        ds = paper_dataset_1g()
        assert ds.total_size == 40 * units.GB
        assert ds.max_file_size <= 8 * units.GB

    def test_deterministic(self):
        assert [f.size for f in paper_dataset_10g()] == [f.size for f in paper_dataset_10g()]

    def test_spans_all_chunk_classes_on_xsede(self):
        # the 10G dataset must exercise small, medium and large chunks
        # relative to the 50 MB XSEDE BDP
        ds = paper_dataset_10g()
        bdp = 50 * units.MB
        small = sum(f.size for f in ds if f.size < bdp)
        large = sum(f.size for f in ds if f.size >= 20 * bdp)
        assert small > 0.1 * ds.total_size
        assert large > 0.1 * ds.total_size


class TestConvenienceDatasets:
    def test_small_files(self):
        ds = small_files_dataset(total_size=10 * units.MB, file_size=units.MB)
        assert ds.file_count == 10

    def test_large_files(self):
        ds = large_files_dataset(total_size=8 * units.GB, file_size=4 * units.GB)
        assert ds.file_count == 2

    def test_lognormal(self):
        ds = lognormal_dataset(100, 10 * units.MB, seed=1)
        assert ds.file_count == 100
        assert ds.min_file_size >= 1
