"""Multi-transfer coordination: shared-path jobs, admission control."""

import pytest

from repro import units
from repro.core.baselines import ProMCAlgorithm
from repro.core.mine import MinEAlgorithm
from repro.datasets.files import Dataset, FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan
from repro.netsim.multi import MultiTransferSimulator, TransferTimeout
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams
from repro.power.coefficients import CoefficientSet
from repro.testbeds.specs import Testbed as TestbedSpec


@pytest.fixture
def shared_testbed() -> TestbedSpec:
    """Link-bound path so concurrent jobs genuinely contend."""
    server = ServerSpec(
        name="host", cores=8, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(per_accessor_rate=100 * units.MB, array_rate=800 * units.MB),
        per_channel_rate=60 * units.MB, core_rate=400 * units.MB,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 1)
    return TestbedSpec(
        name="Shared",
        path=NetworkPath(
            bandwidth=units.gbps(1), rtt=units.ms(5), tcp_buffer=16 * units.MB,
            protocol_efficiency=1.0, congestion_knee=64,
        ),
        source=site,
        destination=site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: Dataset.from_sizes([50 * units.MB] * 20),
        engine_dt=0.1,
    )


def plan(name: str, n_files=20, size=50 * units.MB, cc=2) -> list[ChunkPlan]:
    files = tuple(FileInfo(f"{name}-{i}", int(size)) for i in range(n_files))
    return [ChunkPlan(name, files, TransferParams(concurrency=cc))]


class TestSubmission:
    def test_duplicate_names_rejected(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        sim.submit("a", plan("a"))
        with pytest.raises(ValueError):
            sim.submit("a", plan("a2"))

    def test_negative_arrival_rejected(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        with pytest.raises(ValueError):
            sim.submit("a", plan("a"), arrival_time=-1.0)

    def test_bad_cap_rejected(self, shared_testbed):
        with pytest.raises(ValueError):
            MultiTransferSimulator(shared_testbed, max_concurrent_jobs=0)


class TestSingleJobEquivalence:
    def test_one_job_matches_plain_engine(self, shared_testbed):
        from repro.netsim.engine import TransferEngine
        from repro.power.models import FineGrainedPowerModel

        plans = plan("solo")
        sim = MultiTransferSimulator(shared_testbed)
        record = sim.submit("solo", plans)
        sim.run()

        model = FineGrainedPowerModel(shared_testbed.coefficients)
        engine = TransferEngine(
            shared_testbed.path, shared_testbed.source, shared_testbed.destination,
            model.power, dt=shared_testbed.engine_dt,
        )
        for p in plans:
            engine.add_chunk(p)
        engine.run()

        assert record.turnaround_s == pytest.approx(engine.time, abs=2 * sim.dt)
        assert record.energy_joules == pytest.approx(engine.total_energy, rel=0.02)


class TestContention:
    def test_all_bytes_delivered(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        a = sim.submit("a", plan("a"))
        b = sim.submit("b", plan("b"))
        sim.run()
        assert a.finished and b.finished
        assert a.total_bytes == b.total_bytes == 20 * 50 * units.MB

    def test_concurrent_jobs_slow_each_other(self, shared_testbed):
        solo = MultiTransferSimulator(shared_testbed)
        record = solo.submit("solo", plan("solo", cc=4))
        solo.run()

        contended = MultiTransferSimulator(shared_testbed)
        a = contended.submit("a", plan("a", cc=4))
        contended.submit("b", plan("b", cc=4))
        contended.run()
        assert a.turnaround_s > record.turnaround_s

    def test_later_arrival_starts_later(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        early = sim.submit("early", plan("early"))
        late = sim.submit("late", plan("late"), arrival_time=3.0)
        sim.run()
        assert early.start_time == pytest.approx(0.0)
        assert late.start_time == pytest.approx(3.0, abs=2 * sim.dt)

    def test_makespan_and_total_energy(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        sim.submit("a", plan("a"))
        sim.submit("b", plan("b"))
        records = sim.run()
        assert sim.makespan == pytest.approx(
            max(r.completion_time for r in records)
        )
        assert sim.total_energy == pytest.approx(
            sum(r.energy_joules for r in records)
        )


class TestAdmissionControl:
    def test_cap_serializes_jobs(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=1)
        a = sim.submit("a", plan("a"))
        b = sim.submit("b", plan("b"))
        sim.run()
        assert b.start_time >= a.completion_time - sim.dt

    def test_serialized_vs_concurrent_tradeoff(self, shared_testbed):
        """Serialization gives each job full bandwidth (shorter per-job
        runtime); concurrency can only help or match makespan."""
        serial = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=1)
        concurrent = MultiTransferSimulator(shared_testbed)
        for sim in (serial, concurrent):
            sim.submit("a", plan("a", cc=4))
            sim.submit("b", plan("b", cc=4))
            sim.run()
        serial_a = serial.records()[0]
        concurrent_a = concurrent.records()[0]
        # job a runs faster alone than contended
        assert (
            serial_a.completion_time - serial_a.start_time
            < concurrent_a.completion_time - concurrent_a.start_time
        )
        assert concurrent.makespan <= serial.makespan + serial.dt

    def test_fifo_order(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=1)
        first = sim.submit("first", plan("first"), arrival_time=1.0)
        second = sim.submit("second", plan("second"), arrival_time=2.0)
        sim.run()
        assert first.start_time < second.start_time


class TestAdmissionOrderingAndWaiting:
    def test_fifo_tie_broken_by_submission_order(self, shared_testbed):
        """Equal arrival times start in submission order (stable sort)."""
        sim = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=1)
        first = sim.submit("first", plan("first"), arrival_time=1.0)
        second = sim.submit("second", plan("second"), arrival_time=1.0)
        sim.run()
        assert first.start_time < second.start_time

    def test_waiting_job_accrues_zero_energy(self, shared_testbed):
        """A queued job draws no power until it is admitted."""
        sim = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=1)
        sim.submit("a", plan("a"))
        b = sim.submit("b", plan("b"))
        while b.start_time is None:
            assert b.energy_joules == 0.0
            sim.step()
        assert b.start_time > 0.0

    def test_cap_honored_every_step(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=2)
        for name in ("a", "b", "c", "d"):
            sim.submit(name, plan(name))
        while not all(r.finished for r in sim.records()):
            sim.step()
            running = [
                r for r in sim.records()
                if r.start_time is not None and not r.finished
            ]
            assert len(running) <= 2


class TestTimeout:
    def test_timeout_raises_by_default(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        sim.submit("slow", plan("slow"))
        with pytest.raises(TransferTimeout, match="slow"):
            sim.run(max_time=3 * sim.dt)

    def test_timeout_warn_flags_truncated(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        record = sim.submit("slow", plan("slow"))
        with pytest.warns(RuntimeWarning, match="unfinished"):
            records = sim.run(max_time=3 * sim.dt, on_timeout="warn")
        assert records[0] is record
        assert record.truncated and not record.finished

    def test_bad_on_timeout_rejected(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        sim.submit("a", plan("a"))
        with pytest.raises(ValueError):
            sim.run(on_timeout="ignore")

    def test_finished_run_not_truncated(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        record = sim.submit("a", plan("a"))
        sim.run()
        assert record.finished and not record.truncated


class TestEngineDeferredAdmission:
    def _engine(self, testbed, **kwargs):
        from repro.netsim.engine import TransferEngine
        from repro.power.models import FineGrainedPowerModel

        model = FineGrainedPowerModel(testbed.coefficients)
        return TransferEngine(
            testbed.path, testbed.source, testbed.destination,
            model.power, dt=testbed.engine_dt, **kwargs,
        )

    def test_submit_then_admit(self, shared_testbed):
        engine = self._engine(shared_testbed)
        engine.submit_chunk(plan("x")[0])
        assert engine.pending_chunks == ["x"]
        assert not any(c.busy for c in engine.channels)
        opened = engine.admit_pending()
        assert opened == 2  # the plan's concurrency
        assert engine.pending_chunks == []
        engine.run()
        assert engine.finished

    def test_numeric_background_matches_callable(self, shared_testbed):
        """A constant stream count and an equivalent callable yield the
        same transfer (the numeric form just keeps the fast path on)."""
        results = []
        for bg in (6.0, lambda t: 6.0):
            engine = self._engine(shared_testbed, background_traffic=bg)
            engine.add_chunk(plan("x")[0])
            engine.run()
            results.append((engine.time, engine.total_energy))
        assert results[0][0] == pytest.approx(results[1][0], abs=1e-9)
        assert results[0][1] == pytest.approx(results[1][1], rel=1e-9)

    def test_set_background_streams_rejects_negative(self, shared_testbed):
        engine = self._engine(shared_testbed)
        with pytest.raises(ValueError):
            engine.set_background_streams(-1.0)


class TestWithRealPlans:
    def test_mine_and_promc_plans_coexist(self, small_testbed):
        ds = small_testbed.dataset()
        sim = MultiTransferSimulator(small_testbed)
        a = sim.submit("mine-job", MinEAlgorithm().plan(small_testbed, ds, 2))
        b = sim.submit("promc-job", ProMCAlgorithm().plan(small_testbed, ds, 2))
        sim.run()
        assert a.finished and b.finished
        assert a.energy_joules > 0 and b.energy_joules > 0


class TestRunUntil:
    """The event-horizon batch API: ``run_until`` must replay the
    per-``step()`` grid exactly — same timestamps, same energy — while
    macro-stepping every span it can prove frozen."""

    @staticmethod
    def _workload(sim: MultiTransferSimulator, overlap: bool):
        spacing = 2.0 if overlap else 40.0
        records = []
        for i in range(4):
            records.append(
                sim.submit(
                    f"j{i}",
                    plan(f"j{i}", n_files=10, size=30 * units.MB),
                    arrival_time=i * spacing,
                )
            )
        return records

    @staticmethod
    def _idle_jump(sim: MultiTransferSimulator) -> None:
        """Jump an idle gap on the dt grid (the service loop's exact
        arithmetic, used identically by both drivers below)."""
        import math as _math

        nxt = min(
            r.arrival_time for r in sim.records() if r.start_time is None
        )
        steps = max(1, _math.ceil((nxt - sim.time - 1e-9) / sim.dt))
        sim.time += steps * sim.dt

    @classmethod
    def _drive_fast(cls, sim: MultiTransferSimulator) -> None:
        while not all(r.finished for r in sim.records()):
            done = sim.run_until(1e9)
            if not done:
                cls._idle_jump(sim)

    @classmethod
    def _drive_grid(cls, sim: MultiTransferSimulator) -> None:
        while not all(r.finished for r in sim.records()):
            if any(
                r.start_time is not None and not r.finished
                for r in sim.records()
            ) or any(
                r.arrival_time <= sim.time + 1e-12
                for r in sim.records()
                if r.start_time is None
            ):
                sim.step()
            else:
                cls._idle_jump(sim)

    @pytest.mark.parametrize("overlap", [True, False])
    def test_matches_grid_exactly(self, shared_testbed, overlap):
        grid = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=3)
        self._workload(grid, overlap)
        self._drive_grid(grid)

        fast = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=3)
        self._workload(fast, overlap)
        self._drive_fast(fast)

        for rf, rg in zip(fast.records(), grid.records(), strict=True):
            assert rf.start_time == rg.start_time          # bit-equal
            assert rf.completion_time == rg.completion_time
            assert rf.energy_joules == pytest.approx(
                rg.energy_joules, rel=1e-9
            )

    def test_returns_at_first_completion(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        a = sim.submit("a", plan("a", n_files=4, size=10 * units.MB))
        b = sim.submit("b", plan("b", n_files=40, size=50 * units.MB))
        done = sim.run_until(1e9)
        assert [r.name for r in done] == ["a"]
        assert a.finished and not b.finished
        assert a.completion_time == sim.time

    def test_horizon_respected(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        sim.submit("a", plan("a"))
        done = sim.run_until(1.0)
        assert done == []
        assert 1.0 - sim.dt - 1e-9 <= sim.time <= 1.0 + 1e-9

    def test_macro_counters_advance(self, shared_testbed):
        sim = MultiTransferSimulator(shared_testbed)
        sim.submit("a", plan("a"))
        sim.run_until(1e9)
        assert sim.macro_rounds > 0
        assert sim.macro_stepped_dts > sim.macro_rounds  # spans of >= 2 dts
        total = sim.macro_stepped_dts + sim.fixed_rounds
        assert total == pytest.approx(sim.time / sim.dt, abs=1.0)

    def test_wide_fleet_vector_path_matches_grid(self, shared_testbed):
        """At >= 8 concurrent engines ``run_until`` batches its
        per-round bookkeeping into array ops; the wide path must stay
        bit-equal to the per-``step()`` grid, like the narrow one."""
        from repro.netsim.multi import _VECTOR_MIN_ENGINES

        def workload(sim: MultiTransferSimulator):
            for i in range(10):
                sim.submit(
                    f"w{i}",
                    plan(f"w{i}", n_files=6, size=(15 + 5 * (i % 3)) * units.MB),
                    arrival_time=1.5 * i,
                )

        grid = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=10)
        workload(grid)
        self._drive_grid(grid)

        fast = MultiTransferSimulator(shared_testbed, max_concurrent_jobs=10)
        workload(fast)
        self._drive_fast(fast)

        # the cap admits every job, so the vector threshold was crossed
        assert len(fast.records()) >= _VECTOR_MIN_ENGINES
        for rf, rg in zip(fast.records(), grid.records(), strict=True):
            assert rf.start_time == rg.start_time          # bit-equal
            assert rf.completion_time == rg.completion_time
            assert rf.energy_joules == pytest.approx(
                rg.energy_joules, rel=1e-9
            )


class TestAccumulateTimes:
    """The vectorised running-sum helper underpinning both fast paths
    must fold exactly like the scalar ``t += dt`` loop it replaces."""

    def test_bit_equal_to_scalar_loop(self):
        from repro.netsim.engine import accumulate_times

        for t0 in (0.0, 1.0, 123.456789, 9.6e5):
            for dt in (0.1, 0.05, 0.125, 1.0 / 3.0):
                for k in (1, 2, 31, 32, 200):
                    times = accumulate_times(t0, dt, k)
                    expected = []
                    t = t0
                    for _ in range(k):
                        t += dt
                        expected.append(t)
                    assert times.tolist() == expected  # bit-equal, all k
