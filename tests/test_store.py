"""JSONL experiment store."""

import json

import pytest

from repro import units
from repro.core.scheduler import TransferOutcome
from repro.harness.store import ResultStore


def outcome(alg="HTEE", testbed="XSEDE", joules=1000.0, thr_mbps=1000.0) -> TransferOutcome:
    rate = units.mbps(thr_mbps)
    return TransferOutcome(
        algorithm=alg, testbed=testbed, max_channels=4,
        duration_s=100.0, bytes_moved=rate * 100.0, energy_joules=joules,
    )


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "runs.jsonl")


class TestAppendAndLoad:
    def test_round_trip(self, store):
        store.append(outcome())
        loaded = store.load()
        assert len(loaded) == 1
        assert loaded[0].algorithm == "HTEE"
        assert loaded[0].energy_joules == 1000.0

    def test_append_many(self, store):
        n = store.append_many([outcome(), outcome("MinE")])
        assert n == 2
        assert len(store) == 2

    def test_empty_store(self, store):
        assert store.load() == []
        assert len(store) == 0
        assert store.summary() == "(empty store)"

    def test_extra_not_persisted(self, store):
        o = outcome()
        o.extra["trace"] = ["huge"]
        store.append(o)
        assert store.load()[0].extra == {}

    def test_torn_final_line_skipped(self, store):
        store.append(outcome())
        with store.path.open("a") as handle:
            handle.write('{"algorithm": "trunc')  # simulated crash
        assert len(store.load()) == 1


class TestQueries:
    def test_filter_by_algorithm_and_testbed(self, store):
        store.append(outcome("HTEE", "XSEDE"))
        store.append(outcome("MinE", "XSEDE"))
        store.append(outcome("HTEE", "DIDCLAB"))
        assert len(store.load(algorithm="HTEE")) == 2
        assert len(store.load(testbed="XSEDE")) == 2
        assert len(store.load(algorithm="HTEE", testbed="XSEDE")) == 1

    def test_where_predicate(self, store):
        store.append(outcome(joules=100.0))
        store.append(outcome(joules=5000.0))
        cheap = store.load(where=lambda r: r["energy_joules"] < 1000)
        assert len(cheap) == 1

    def test_tags_stored_and_queryable(self, store):
        store.append(outcome(), campaign="v1")
        store.append(outcome(), campaign="v2")
        v2 = store.load(where=lambda r: r.get("tags", {}).get("campaign") == "v2")
        assert len(v2) == 1

    def test_best_by_efficiency(self, store):
        store.append(outcome("A", joules=2000.0))
        store.append(outcome("B", joules=500.0))
        best = store.best("efficiency")
        assert best.algorithm == "B"

    def test_best_empty(self, store):
        assert store.best() is None

    def test_summary_counts(self, store):
        store.append(outcome("HTEE"))
        store.append(outcome("HTEE"))
        store.append(outcome("MinE"))
        text = store.summary()
        assert "3 runs" in text
        assert "HTEE" in text and "MinE" in text

    def test_metrics_summaries(self, store):
        summary_a = {"metrics": {"counters": {"x": 1}}, "events_total": 1}
        summary_b = {"metrics": {"counters": {"x": 2}}, "events_total": 2}
        store.append(outcome(), campaign="a", metrics=summary_a)
        store.append(outcome(), campaign="b", metrics=summary_b)
        store.append(outcome(), campaign="a")  # unobserved cell: no tag
        assert store.metrics_summaries() == [summary_a, summary_b]
        assert store.metrics_summaries("a") == [summary_a]
        assert store.metrics_summaries("missing") == []


class TestPublicRecords:
    def test_records_iterates_raw_dicts_in_order(self, store):
        store.append(outcome("A"), campaign="x")
        store.append(outcome("B"))
        records = list(store.records())
        assert [r["algorithm"] for r in records] == ["A", "B"]
        assert records[0]["tags"] == {"campaign": "x"}

    def test_records_empty_store(self, store):
        assert list(store.records()) == []

    def test_records_skips_torn_line(self, store):
        store.append(outcome())
        with store.path.open("a") as handle:
            handle.write('{"algorithm": "torn')
        assert len(list(store.records())) == 1

    def test_private_alias_still_works(self, store):
        store.append(outcome())
        assert len(list(store._records())) == 1


def _append_worker(args):
    path, worker_id, count = args
    from repro.harness.store import ResultStore

    s = ResultStore(path)
    for i in range(count):
        s.append(outcome(alg=f"w{worker_id}", joules=float(i)))
    return worker_id


class TestConcurrentAppend:
    def test_parallel_appends_never_interleave(self, tmp_path):
        """N processes hammering one store: every line stays intact."""
        import concurrent.futures

        path = tmp_path / "concurrent.jsonl"
        workers, per_worker = 4, 25
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            list(pool.map(_append_worker, [(path, w, per_worker) for w in range(workers)]))
        store = ResultStore(path)
        # every line parses (records() only skips torn lines; a clean
        # run must have none) and nothing was lost
        raw_lines = [l for l in path.read_text().splitlines() if l.strip()]
        records = list(store.records())
        assert len(raw_lines) == len(records) == workers * per_worker
        for w in range(workers):
            mine = [r for r in records if r["algorithm"] == f"w{w}"]
            assert sorted(r["energy_joules"] for r in mine) == [
                float(i) for i in range(per_worker)
            ]
