"""The planning advisor: recommendations and prediction accuracy."""

import pytest

from repro.core.advisor import advise
from repro.core.mine import MinEAlgorithm
from repro.datasets.files import Dataset
from repro.testbeds import DIDCLAB, FUTUREGRID, XSEDE


class TestAdviceStructure:
    def test_chunks_cover_dataset(self, small_testbed):
        ds = small_testbed.dataset()
        advice = advise(small_testbed, ds, 4)
        assert advice.total_bytes == ds.total_size
        assert sum(a.file_count for a in advice.chunks) == ds.file_count

    def test_params_match_mine_plan(self, small_testbed):
        ds = small_testbed.dataset()
        advice = advise(small_testbed, ds, 4)
        plans = MinEAlgorithm().plan(small_testbed, ds, 4)
        assert [a.params for a in advice.chunks] == [p.params for p in plans]

    def test_empty_dataset(self, small_testbed):
        advice = advise(small_testbed, Dataset([]), 4)
        assert advice.total_bytes == 0
        assert advice.predicted_energy_j == 0.0
        assert "empty dataset" in advice.notes

    def test_render(self, small_testbed):
        text = advise(small_testbed, small_testbed.dataset(), 4).render()
        assert "Transfer plan" in text
        assert "predicted:" in text

    def test_invalid_channels(self, small_testbed):
        with pytest.raises(ValueError):
            advise(small_testbed, small_testbed.dataset(), 0)


class TestAdviceNotes:
    def test_single_disk_warning_on_didclab(self):
        advice = advise(DIDCLAB, DIDCLAB.dataset(), 8)
        assert any("single-spindle" in note for note in advice.notes)

    def test_buffer_below_bdp_warning_on_xsede(self):
        advice = advise(XSEDE, XSEDE.dataset(), 8)
        assert any("below BDP" in note for note in advice.notes)

    def test_no_buffer_warning_on_futuregrid(self):
        # FutureGrid's 32 MB buffer exceeds its 3.5 MB BDP
        advice = advise(FUTUREGRID, FUTUREGRID.dataset(), 8)
        assert not any("below BDP" in note for note in advice.notes)


class TestPredictionAccuracy:
    """The advisor's closed-form numbers must track the simulator."""

    @pytest.mark.parametrize("testbed", [XSEDE, FUTUREGRID, DIDCLAB],
                             ids=lambda tb: tb.name)
    def test_throughput_within_25pct_of_engine(self, testbed):
        ds = testbed.dataset()
        advice = advise(testbed, ds, 12)
        outcome = MinEAlgorithm().run(testbed, ds, 12)
        assert advice.predicted_throughput == pytest.approx(
            outcome.throughput, rel=0.25
        )

    @pytest.mark.parametrize("testbed", [XSEDE, FUTUREGRID, DIDCLAB],
                             ids=lambda tb: tb.name)
    def test_energy_within_35pct_of_engine(self, testbed):
        ds = testbed.dataset()
        advice = advise(testbed, ds, 12)
        outcome = MinEAlgorithm().run(testbed, ds, 12)
        assert advice.predicted_energy_j == pytest.approx(
            outcome.energy_joules, rel=0.35
        )

    def test_duration_consistent_with_throughput(self, small_testbed):
        advice = advise(small_testbed, small_testbed.dataset(), 4)
        assert advice.predicted_duration_s == pytest.approx(
            advice.total_bytes / advice.predicted_throughput
        )
