"""Topology-backed service runs: the single-link regression anchor,
fast-vs-grid equivalence across topologies and placement policies, the
chaos wiring (targeted brownouts, the ``spine-congestion`` preset) and
the topology observer events."""

import json

import pytest

from repro.chaos import LinkScale, run_scenario, scenario_by_name
from repro.datasets.files import FileInfo
from repro.netsim.engine import ChunkPlan
from repro.netsim.multi import MultiTransferSimulator
from repro.netsim.params import TransferParams
from repro.obs.observer import Observer
from repro.service import (
    RunNow,
    ServiceSimulator,
    bursty_workload,
    peak_offpeak_tariff,
    poisson_workload,
)
from repro.service.policies import plan_cache_clear
from repro.service.tariff import tariff_by_name
from repro.testbeds.specs import testbed_by_name as _testbed_by_name

XSEDE = _testbed_by_name("xsede")
DAY = 600.0

#: bit-equal between fast/grid and across topology variants
EXACT_FIELDS = ("submitted_at", "released_at", "admitted_at", "completed_at")
#: equal to fp round-off (different summation order)
CLOSE_FIELDS = ("energy_j", "cost_usd", "kg_co2")
REL_TOL = 1e-9

TOPOLOGIES = ("leaf-spine:s=2,l=4,spine=0.4", "fat-tree:k=4,core=0.3")
PLACEMENTS = ("least-congested", "ecmp-hash")


def run_day(requests, *, fast=True, observer=None, **kwargs):
    plan_cache_clear()
    sim = ServiceSimulator(
        XSEDE,
        policy=RunNow(),
        tariff=peak_offpeak_tariff(period_s=DAY),
        fast=fast,
        observer=observer,
        **kwargs,
    )
    return sim.run(requests)


def report_json(report) -> str:
    """The report as canonical JSON minus the topology labels — the
    byte-identity probe used against the plain point-to-point run."""
    data = report.to_dict()
    data.pop("topology", None)
    data.pop("placement", None)
    return json.dumps(data, sort_keys=True)


def assert_equivalent(fast, grid):
    assert [j.name for j in fast.jobs] == [j.name for j in grid.jobs]
    for jf, jg in zip(fast.jobs, grid.jobs):
        for attr in EXACT_FIELDS:
            assert getattr(jf, attr) == getattr(jg, attr), (jf.name, attr)
        for attr in CLOSE_FIELDS:
            a, b = getattr(jf, attr), getattr(jg, attr)
            assert a == pytest.approx(b, rel=REL_TOL), (jf.name, attr)


class TestSingleLinkAnchor:
    """A single-link topology at nominal bandwidth never binds, so the
    run must be byte-identical to the classic point-to-point path —
    in both the fast and the grid driver."""

    @pytest.mark.parametrize("fast", [True, False], ids=["fast", "grid"])
    def test_byte_identity(self, fast):
        requests = poisson_workload(
            6, day_s=DAY, seed=11, size_scale=DAY / 86400.0
        )
        plain = run_day(requests, fast=fast)
        anchored = run_day(requests, fast=fast, topology="single-link")
        assert anchored.topology == "single-link"
        assert report_json(anchored) == report_json(plain)

    def test_report_labels(self):
        requests = poisson_workload(
            4, day_s=DAY, seed=3, size_scale=DAY / 86400.0
        )
        report = run_day(
            requests, topology="single-link", placement="ecmp-hash"
        )
        data = report.to_dict()
        assert data["topology"] == "single-link"
        assert data["placement"] == "ecmp-hash"
        plain = run_day(requests)
        assert plain.to_dict()["topology"] is None


class TestFastVsGrid:
    """The event-horizon fast path under topology capacity caps must
    stay an exact re-implementation of the dt-grid loop."""

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_equivalence(self, topology, placement):
        requests = bursty_workload(6, day_s=DAY, seed=9, size_scale=0.2)
        kwargs = dict(
            topology=topology,
            placement=placement,
            placement_seed=7,
            max_concurrent_jobs=6,
        )
        fast = run_day(requests, fast=True, **kwargs)
        grid = run_day(requests, fast=False, **kwargs)
        assert_equivalent(fast, grid)

    def test_same_seed_rerun_is_byte_identical(self):
        requests = bursty_workload(6, day_s=DAY, seed=9, size_scale=0.2)
        kwargs = dict(topology=TOPOLOGIES[0], placement="random-k",
                      placement_seed=3)
        one = run_day(requests, **kwargs)
        two = run_day(requests, **kwargs)
        assert report_json(one) == report_json(two)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            ServiceSimulator(
                XSEDE,
                policy=RunNow(),
                tariff=peak_offpeak_tariff(period_s=DAY),
                topology=TOPOLOGIES[0],
                placement="round-robin",
            )


def _plan(name, n_files=8, size=50_000_000, cc=2):
    files = tuple(
        FileInfo(f"{name}-{i}", int(size)) for i in range(n_files)
    )
    return [ChunkPlan(name, files, TransferParams(concurrency=cc))]


class TestChaosWiring:
    def test_scale_bottleneck_requires_topology(self):
        sim = MultiTransferSimulator(XSEDE)
        with pytest.raises(ValueError, match="requires a topology"):
            sim.scale_bottleneck("spine0", 0.5)

    def test_link_scale_targets_named_bottleneck(self):
        sim = MultiTransferSimulator(
            XSEDE, topology="leaf-spine:s=1,l=2,spine=0.7"
        )
        nominal = sim.topology.capacity("spine0")
        action = LinkScale(time=0.0, scale=0.5, bottleneck="spine0")
        detail = action.apply(None, sim)
        assert detail["bottleneck"] == "spine0"
        assert detail["capacity"] == pytest.approx(0.5 * nominal)
        assert sim.topology.capacity("spine0") == pytest.approx(
            0.5 * nominal
        )
        # leaves untouched; a scale=1.0 replay restores the spine
        assert sim.topology.capacity("leaf0") == XSEDE.path.bandwidth
        LinkScale(time=1.0, scale=1.0, bottleneck="spine0").apply(None, sim)
        assert sim.topology.capacity("spine0") == pytest.approx(nominal)

    def test_brownout_propagates_to_late_submits(self):
        """The explicit ``_link_scale_active`` flag (not a float
        compare against the 1.0 sentinel): once a brownout has been
        injected, every later submit inherits the *current* factor —
        including after a restore to exactly 1.0."""
        sim = MultiTransferSimulator(XSEDE)
        assert sim._link_scale_active is False
        sim.submit("before", _plan("before"))
        sim.set_link_scale(0.5)
        assert sim._link_scale_active is True
        mid = sim.submit("mid", _plan("mid"))
        sim.set_link_scale(1.0)  # restore to the exact sentinel value
        assert sim._link_scale_active is True
        late = sim.submit("late", _plan("late"))
        del mid, late
        by_name = {record.name: engine for record, engine in sim._jobs}
        assert by_name["mid"].link_scale == 1.0  # restored with the rest
        assert by_name["late"].link_scale == 1.0
        sim.set_link_scale(0.25)
        assert sim.submit("dimmed", _plan("dimmed"))
        assert sim._jobs[-1][1].link_scale == 0.25

    def test_global_scale_reaches_topology(self):
        sim = MultiTransferSimulator(XSEDE, topology="single-link")
        nominal = sim.topology.capacity("link")
        sim.set_link_scale(0.5)
        assert sim.topology.capacity("link") == pytest.approx(0.5 * nominal)


class TestSpineCongestionScenario:
    def test_preset_pins_its_topology(self):
        script = scenario_by_name(
            "spine-congestion",
            day_s=900.0,
            seed=5,
            tariff=tariff_by_name("peak-offpeak", period_s=900.0),
            testbed=XSEDE,
            jobs=6,
        )
        assert script.topology == "leaf-spine:s=1,l=2,spine=0.7"
        assert any(
            getattr(action, "bottleneck", None) == "spine0"
            for action in script.actions
        )

    def test_runs_topology_backed_by_default(self):
        result = run_scenario(
            "spine-congestion",
            testbed=XSEDE,
            policy="run-now",
            tariff=tariff_by_name("peak-offpeak", period_s=900.0),
            jobs=6,
            day_s=900.0,
            seed=5,
        )
        assert result.report.topology == "leaf-spine:s=1,l=2,spine=0.7"
        assert result.report.placement == "least-congested"
        assert result.passed, result.verdict


class TestTopologyObserverEvents:
    def test_topology_events_emitted_and_schema_clean(self):
        observer = Observer()
        requests = bursty_workload(6, day_s=DAY, seed=9, size_scale=0.2)
        run_day(
            requests,
            topology="leaf-spine:s=2,l=2,spine=0.35",
            observer=observer,
        )
        kinds = observer.events.kinds()
        assert kinds.get("job_placed", 0) >= 6
        assert kinds.get("bottleneck_allocated", 0) >= 1
