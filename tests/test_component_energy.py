"""Per-component energy attribution (the fine-grained model's output)."""

import pytest

from repro import units
from repro.harness.runner import run_algorithm
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import ServerSpec
from repro.netsim.utilization import Utilization
from repro.power.coefficients import CoefficientSet, cpu_coefficient
from repro.power.models import FineGrainedPowerModel


def util(cpu=100.0, mem=10.0, disk=20.0, nic=30.0, cores=1):
    return Utilization(cpu_pct=cpu, mem_pct=mem, disk_pct=disk, nic_pct=nic,
                       active_cores=cores, channels=1, streams=1, throughput=0.0)


def server():
    return ServerSpec(
        name="s", cores=4, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(50e6, 200e6), per_channel_rate=50e6, core_rate=200e6,
    )


class TestPowerComponents:
    def test_components_sum_to_power(self):
        model = FineGrainedPowerModel(CoefficientSet(memory=0.02, disk=0.05, nic=0.03))
        u = util(cpu=150, mem=40, disk=60, nic=80, cores=2)
        parts = model.power_components(server(), u)
        assert sum(parts.values()) == pytest.approx(model.power(server(), u))

    def test_component_values(self):
        coeff = CoefficientSet(memory=0.02, disk=0.05, nic=0.03)
        model = FineGrainedPowerModel(coeff)
        parts = model.power_components(server(), util(cpu=100, mem=50, disk=40, nic=30))
        assert parts["cpu"] == pytest.approx(cpu_coefficient(1) * 100)
        assert parts["memory"] == pytest.approx(0.02 * 50)
        assert parts["disk"] == pytest.approx(0.05 * 40)
        assert parts["nic"] == pytest.approx(0.03 * 30)

    def test_idle_all_zero(self):
        model = FineGrainedPowerModel()
        parts = model.power_components(server(), Utilization())
        assert all(v == 0.0 for v in parts.values())

    def test_scale_applies_per_component(self):
        base = FineGrainedPowerModel(CoefficientSet(scale=1.0))
        half = FineGrainedPowerModel(CoefficientSet(scale=0.5))
        u = util()
        for key in ("cpu", "memory", "disk", "nic"):
            assert half.power_components(server(), u)[key] == pytest.approx(
                0.5 * base.power_components(server(), u)[key]
            )


class TestEngineAttribution:
    def test_components_accumulate_to_total_energy(self, small_testbed):
        outcome = run_algorithm(small_testbed, "ProMC", 2)
        parts = outcome.extra["component_energy"]
        assert set(parts) == {"cpu", "memory", "disk", "nic"}
        assert sum(parts.values()) == pytest.approx(outcome.energy_joules, rel=1e-9)

    def test_cpu_dominates_transfer_energy(self, small_testbed):
        # the paper: CPU utilization explains ~90% of transfer power
        outcome = run_algorithm(small_testbed, "ProMC", 2)
        parts = outcome.extra["component_energy"]
        assert parts["cpu"] == max(parts.values())

    def test_sequential_runner_attributes_too(self, small_testbed):
        outcome = run_algorithm(small_testbed, "SC", 2)
        assert "component_energy" in outcome.extra

    def test_paper_testbeds_attribute(self):
        from repro.testbeds import DIDCLAB

        outcome = run_algorithm(DIDCLAB, "GUC", 1)
        parts = outcome.extra["component_energy"]
        assert sum(parts.values()) == pytest.approx(outcome.energy_joules, rel=1e-9)
        assert parts["disk"] > 0  # the single spindle works hard
