"""Topology structure: bottleneck/path validation, brownout-scaled
capacities, the builders, and the CLI spec parser."""

import copy
import pickle

import pytest

from repro import units
from repro.netsim.link import NetworkPath
from repro.topo import (
    Bottleneck,
    Path,
    Topology,
    build_topology,
    fat_tree,
    from_edges,
    leaf_spine,
    single_link,
)

BW = units.gbps(10)


def diamond() -> Topology:
    return from_edges(
        [("up", 10.0), ("left", 6.0), ("right", 8.0), ("down", 10.0)],
        {
            "via-left": ("a", "b", ["up", "left", "down"]),
            "via-right": ("a", "b", ["up", "right", "down"]),
        },
        name="diamond",
    )


class TestValidation:
    def test_bottleneck_invalid(self):
        with pytest.raises(ValueError):
            Bottleneck("", 1.0)
        with pytest.raises(ValueError):
            Bottleneck("b", 0.0)

    def test_path_invalid(self):
        with pytest.raises(ValueError):
            Path("", "a", "b", ("x",))
        with pytest.raises(ValueError):
            Path("p", "a", "b", ())
        with pytest.raises(ValueError, match="twice"):
            Path("p", "a", "b", ("x", "x"))

    def test_topology_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate bottleneck"):
            Topology(
                [Bottleneck("b", 1.0), Bottleneck("b", 2.0)],
                [Path("p", "a", "c", ("b",))],
            )
        with pytest.raises(ValueError, match="duplicate path"):
            Topology(
                [Bottleneck("b", 1.0)],
                [Path("p", "a", "c", ("b",)), Path("p", "c", "a", ("b",))],
            )

    def test_topology_unknown_hop(self):
        with pytest.raises(ValueError, match="unknown bottleneck"):
            Topology(
                [Bottleneck("b", 1.0)],
                [Path("p", "a", "c", ("ghost",))],
            )

    def test_topology_must_be_nonempty(self):
        with pytest.raises(ValueError):
            Topology([], [])
        with pytest.raises(ValueError):
            Topology([Bottleneck("b", 1.0)], [])


class TestCapacities:
    def test_scale_bottleneck_and_restore(self):
        topo = diamond()
        assert topo.capacity("left") == 6.0
        assert topo.scale_bottleneck("left", 0.5) == 3.0
        assert topo.capacity("left") == 3.0
        assert topo.capacity("right") == 8.0  # untouched
        assert topo.scale_bottleneck("left", 1.0) == 6.0

    def test_global_scale_composes(self):
        topo = diamond()
        topo.scale_bottleneck("left", 0.5)
        topo.set_global_scale(0.5)
        assert topo.capacity("left") == pytest.approx(1.5)
        assert topo.capacity("right") == pytest.approx(4.0)

    def test_scale_validation(self):
        topo = diamond()
        with pytest.raises(ValueError):
            topo.scale_bottleneck("left", 0.0)
        with pytest.raises(KeyError):
            topo.scale_bottleneck("ghost", 0.5)
        with pytest.raises(ValueError):
            topo.set_global_scale(-1.0)

    def test_path_capacity_is_min_over_hops(self):
        topo = diamond()
        assert topo.path_capacity("via-left") == 6.0
        assert topo.path_capacity("via-right") == 8.0
        topo.scale_bottleneck("up", 0.1)
        assert topo.path_capacity("via-right") == pytest.approx(1.0)

    def test_unknown_lookups(self):
        topo = diamond()
        with pytest.raises(KeyError):
            topo.capacity("ghost")
        with pytest.raises(KeyError):
            topo.path("ghost")

    def test_network_path_for_clamps_bandwidth(self):
        topo = diamond()
        base = NetworkPath(
            bandwidth=100.0, rtt=units.ms(5),
            tcp_buffer=16 * units.MB, congestion_knee=64,
        )
        clamped = topo.network_path_for("via-left", base)
        assert clamped.bandwidth == 6.0
        assert clamped.rtt == base.rtt  # transport knobs untouched
        wide = topo.network_path_for(
            "via-left", NetworkPath(
                bandwidth=1.0, rtt=units.ms(5),
                tcp_buffer=16 * units.MB, congestion_knee=64,
            )
        )
        assert wide.bandwidth == 1.0  # never raises above the base


class TestStructure:
    def test_paths_between_and_nodes(self):
        topo = diamond()
        assert [p.name for p in topo.paths_between("a", "b")] == [
            "via-left",
            "via-right",
        ]
        assert topo.paths_between("b", "a") == []
        assert topo.nodes == ["a", "b"]

    def test_to_dict_reflects_scaling(self):
        topo = diamond()
        topo.scale_bottleneck("left", 0.5)
        data = topo.to_dict()
        assert data["bottlenecks"]["left"] == {
            "base_capacity": 6.0,
            "capacity": 3.0,
        }
        assert data["paths"]["via-left"]["bottlenecks"] == [
            "up", "left", "down",
        ]

    def test_describe_and_render(self):
        topo = diamond()
        assert topo.describe() == (
            "diamond: 4 bottlenecks, 2 paths, 2 nodes"
        )
        rendered = topo.render()
        assert rendered.startswith(topo.describe())
        assert "(2 paths)" in rendered  # every hop crossed by both

    def test_deepcopy_isolates_scales(self):
        original = diamond()
        clone = copy.deepcopy(original)
        clone.scale_bottleneck("left", 0.25)
        assert original.capacity("left") == 6.0

    def test_picklable(self):
        topo = diamond()
        topo.scale_bottleneck("left", 0.5)
        clone = pickle.loads(pickle.dumps(topo))
        assert clone.capacity("left") == 3.0
        assert clone.describe() == topo.describe()


class TestBuilders:
    def test_single_link(self):
        topo = single_link(BW)
        assert list(topo.bottlenecks) == ["link"]
        assert list(topo.paths) == ["src-dst"]
        assert topo.capacity("link") == BW

    def test_leaf_spine_shape(self):
        topo = leaf_spine(2, 4, leaf_capacity=BW, spine_capacity=BW / 2)
        # 4 leaves + 2 spines; ordered leaf pairs x spines paths
        assert len(topo.bottlenecks) == 6
        assert len(topo.paths) == 4 * 3 * 2
        path = topo.path("leaf0-leaf2:spine1")
        assert path.bottlenecks == ("leaf0", "spine1", "leaf2")
        assert topo.capacity("spine0") == BW / 2

    def test_leaf_spine_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(0, 4, leaf_capacity=BW)
        with pytest.raises(ValueError):
            leaf_spine(2, 1, leaf_capacity=BW)

    def test_fat_tree_shape(self):
        topo = fat_tree(4, edge_capacity=BW)
        # k pods + (k/2)^2 cores; ordered pod pairs x cores paths
        assert len(topo.bottlenecks) == 4 + 4
        assert len(topo.paths) == 4 * 3 * 4
        path = topo.path("pod1-pod3:core2")
        assert path.bottlenecks == ("pod1", "core2", "pod3")

    def test_fat_tree_validation(self):
        with pytest.raises(ValueError):
            fat_tree(3, edge_capacity=BW)
        with pytest.raises(ValueError):
            fat_tree(0, edge_capacity=BW)


class TestBuildTopologySpec:
    def test_single_link_spec(self):
        topo = build_topology("single-link", bandwidth=BW)
        assert topo.capacity("link") == BW

    def test_leaf_spine_spec_with_factors(self):
        topo = build_topology("leaf-spine:s=2,l=4,spine=0.4", bandwidth=BW)
        assert len(topo.bottlenecks) == 6
        assert topo.capacity("spine0") == pytest.approx(0.4 * BW)
        assert topo.capacity("leaf0") == BW

    def test_fat_tree_spec_defaults(self):
        topo = build_topology("fat-tree:k=4", bandwidth=BW)
        assert topo.capacity("core0") == BW

    def test_spec_errors(self):
        with pytest.raises(ValueError, match="unknown topology spec"):
            build_topology("torus:k=3", bandwidth=BW)
        with pytest.raises(ValueError, match="malformed"):
            build_topology("fat-tree:k", bandwidth=BW)
        with pytest.raises(ValueError, match="malformed"):
            build_topology("fat-tree:k=four", bandwidth=BW)
        with pytest.raises(ValueError, match="unknown fat-tree"):
            build_topology("fat-tree:k=4,pods=2", bandwidth=BW)
        with pytest.raises(ValueError, match="unknown leaf-spine"):
            build_topology("leaf-spine:s=2,l=4,cores=1", bandwidth=BW)
        with pytest.raises(ValueError, match="bandwidth"):
            build_topology("single-link", bandwidth=0.0)
