"""Transfer engine: conservation, rate allocation, adaptivity."""

import pytest

from repro import units
from repro.datasets.files import FileInfo
from repro.netsim.engine import Binding, ChunkPlan, _max_min_fill
from repro.netsim.params import TransferParams


def plan(name="chunk", sizes=(10 * units.MB,), pp=1, p=1, cc=1) -> ChunkPlan:
    files = tuple(FileInfo(f"{name}-{i}", int(s)) for i, s in enumerate(sizes))
    return ChunkPlan(name=name, files=files, params=TransferParams(pp, p, cc))


class TestMaxMinFill:
    def test_single_flow_gets_cap(self):
        rates = _max_min_fill({1: 100.0}, [(1000.0, [1])])
        assert rates[1] == pytest.approx(100.0)

    def test_group_capacity_shared_equally(self):
        rates = _max_min_fill({1: 100.0, 2: 100.0}, [(100.0, [1, 2])])
        assert rates[1] == pytest.approx(50.0)
        assert rates[2] == pytest.approx(50.0)

    def test_capped_flow_releases_share(self):
        rates = _max_min_fill({1: 20.0, 2: 100.0}, [(100.0, [1, 2])])
        assert rates[1] == pytest.approx(20.0)
        assert rates[2] == pytest.approx(80.0)

    def test_weighted_shares(self):
        weights = {1: 1.0, 2: 3.0}
        rates = _max_min_fill({1: 100.0, 2: 100.0}, [(80.0, [1, 2])], weights)
        assert rates[1] == pytest.approx(20.0)
        assert rates[2] == pytest.approx(60.0)

    def test_multiple_groups(self):
        # flow 1 constrained by group A, flow 2 only by group B
        rates = _max_min_fill(
            {1: 100.0, 2: 100.0},
            [(30.0, [1]), (500.0, [1, 2])],
        )
        assert rates[1] == pytest.approx(30.0)
        assert rates[2] == pytest.approx(100.0)

    def test_total_never_exceeds_group_capacity(self):
        caps = {i: 1000.0 for i in range(7)}
        rates = _max_min_fill(caps, [(100.0, list(range(7)))])
        assert sum(rates.values()) <= 100.0 + 1e-6

    def test_empty(self):
        assert _max_min_fill({}, []) == {}


class TestEngineBasics:
    def test_transfers_all_bytes(self, make_small_engine, small_dataset):
        engine = make_small_engine()
        engine.add_chunk(
            ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=2))
        )
        engine.run()
        assert engine.finished
        assert engine.total_bytes == pytest.approx(small_dataset.total_size)
        assert engine.total_files == small_dataset.file_count

    def test_energy_positive_and_time_positive(self, make_small_engine, small_dataset):
        engine = make_small_engine()
        engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=2)))
        engine.run()
        assert engine.total_energy > 0
        assert engine.time > 0

    def test_deterministic(self, make_small_engine, small_dataset):
        results = []
        for _ in range(2):
            engine = make_small_engine()
            engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=3)))
            engine.run()
            results.append((engine.time, engine.total_bytes, engine.total_energy))
        assert results[0] == results[1]

    def test_duplicate_chunk_rejected(self, make_small_engine):
        engine = make_small_engine()
        engine.add_chunk(plan("x"))
        with pytest.raises(ValueError):
            engine.add_chunk(plan("x"))

    def test_empty_chunk_finishes_immediately(self, make_small_engine):
        engine = make_small_engine()
        engine.add_chunk(ChunkPlan("empty", (), TransferParams()))
        assert engine.finished
        engine.run()
        assert engine.time == 0.0

    def test_run_with_duration_stops_early(self, make_small_engine, small_dataset):
        engine = make_small_engine()
        engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=1)))
        elapsed = engine.run(0.5)
        assert elapsed == pytest.approx(0.5)
        assert not engine.finished

    def test_rate_never_exceeds_per_channel_cap(self, make_small_engine):
        engine = make_small_engine()
        engine.add_chunk(plan("one", sizes=(50 * units.MB,), cc=1))
        engine.run(0.5)
        # 50 MB/s channel cap with dt=0.1: at most 5 MB per step after setup
        assert engine.total_bytes <= 50e6 * 0.5 + 1e-6

    def test_more_channels_faster_on_parallel_disk(self, make_small_engine, small_dataset):
        times = []
        for cc in (1, 3):
            engine = make_small_engine()
            engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=cc)))
            engine.run()
            times.append(engine.time)
        assert times[1] < times[0]

    def test_trace_recording(self, make_small_engine, small_dataset):
        engine = make_small_engine(record_trace=True)
        engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=2)))
        engine.run()
        assert len(engine.trace) > 0
        assert all(r.power >= 0 for r in engine.trace)
        # trace throughput integrates back to total bytes
        total = sum(r.throughput * engine.dt for r in engine.trace)
        assert total == pytest.approx(engine.total_bytes, rel=1e-6)


class TestChannelManagement:
    def test_set_chunk_channels_grows_and_shrinks(self, make_small_engine):
        engine = make_small_engine()
        engine.add_chunk(plan("c", sizes=[units.MB] * 50, cc=0), open_channels=False)
        engine.set_chunk_channels("c", 4)
        assert len(engine.channels_for("c")) == 4
        engine.set_chunk_channels("c", 1)
        assert len(engine.channels_for("c")) == 1

    def test_closing_channel_preserves_bytes(self, make_small_engine):
        engine = make_small_engine()
        engine.add_chunk(plan("c", sizes=(20 * units.MB,), cc=1))
        engine.run(0.3)
        moved_before = engine.total_bytes
        engine.set_chunk_channels("c", 0)
        engine.set_chunk_channels("c", 2)
        engine.run()
        assert engine.finished
        assert engine.total_bytes == pytest.approx(20 * units.MB)
        assert engine.total_bytes >= moved_before

    def test_pack_binding_uses_single_server(self, make_small_engine):
        engine = make_small_engine(binding=Binding.PACK)
        engine.add_chunk(plan("c", sizes=[units.MB] * 10, cc=4))
        assert {c.src_server for c in engine.channels} == {0}

    def test_spread_binding_round_robins(self, make_small_engine):
        engine = make_small_engine(binding=Binding.SPREAD)
        engine.add_chunk(plan("c", sizes=[units.MB] * 10, cc=4))
        assert {c.src_server for c in engine.channels} == {0, 1}

    def test_negative_count_rejected(self, make_small_engine):
        engine = make_small_engine()
        engine.add_chunk(plan("c"))
        with pytest.raises(ValueError):
            engine.set_chunk_channels("c", -1)


class TestWorkStealing:
    def test_stealing_drains_other_chunks(self, make_small_engine):
        engine = make_small_engine(work_stealing=True)
        engine.add_chunk(plan("fast", sizes=(units.MB,), cc=3))
        engine.add_chunk(plan("slow", sizes=[10 * units.MB] * 9, cc=0), open_channels=False)
        engine.run()
        assert engine.finished
        assert engine.total_bytes == pytest.approx(units.MB + 90 * units.MB)

    def test_stealing_adopts_target_params(self, make_small_engine):
        engine = make_small_engine(work_stealing=True)
        engine.add_chunk(plan("fast", sizes=(units.MB,), pp=1, p=1, cc=1))
        engine.add_chunk(plan("slow", sizes=[10 * units.MB] * 5, pp=4, p=2, cc=0),
                         open_channels=False)
        engine.run()
        channel = engine.channels[0]
        assert channel.chunk_name == "slow"
        assert channel.parallelism == 2
        assert channel.pipelining == 4

    def test_no_stealing_strands_unserved_chunk(self, make_small_engine):
        engine = make_small_engine(work_stealing=False)
        engine.add_chunk(plan("fast", sizes=(units.MB,), cc=1))
        engine.add_chunk(plan("stranded", sizes=(units.MB,), cc=0), open_channels=False)
        engine.run(5.0)
        assert not engine.finished
        assert engine.chunks["stranded"].queue


class TestSnapshots:
    def test_throughput_since(self, make_small_engine, small_dataset):
        engine = make_small_engine()
        engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=2)))
        before = engine.snapshot()
        engine.run(1.0)
        after = engine.snapshot()
        expected = (after.bytes - before.bytes) / 1.0
        assert after.throughput_since(before) == pytest.approx(expected)

    def test_energy_since(self, make_small_engine, small_dataset):
        engine = make_small_engine()
        engine.add_chunk(ChunkPlan("all", tuple(small_dataset), TransferParams(concurrency=2)))
        before = engine.snapshot()
        engine.run(1.0)
        assert engine.snapshot().energy_since(before) > 0

    def test_same_snapshot_zero(self, make_small_engine):
        engine = make_small_engine()
        snap = engine.snapshot()
        assert snap.throughput_since(snap) == 0.0


class TestLptOrdering:
    def test_queue_is_largest_first(self, make_small_engine):
        engine = make_small_engine()
        engine.add_chunk(plan("c", sizes=(units.MB, 30 * units.MB, 5 * units.MB), cc=0),
                         open_channels=False)
        remaining = [fp.remaining for fp in engine.chunks["c"].queue]
        assert remaining == sorted(remaining, reverse=True)
