"""Tests for the domain linter (``repro.lint``).

Every RPL rule gets at least one failing fixture and one passing
fixture; package scoping, per-line ``# repro: noqa[...]`` suppression,
the baseline ratchet, the CLI, and the repo self-check (``repro lint
src/`` is clean modulo the committed baseline) are all exercised.

Fixture sources are linted via :func:`lint_source` with fake
``src/repro/...`` paths so package-scoped rules apply exactly as they
would on real modules.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.baseline import (
    BASELINE_VERSION,
    apply_baseline,
    baseline_counts,
    load_baseline,
    save_baseline,
)
from repro.lint.cli import main as lint_main
from repro.lint.framework import (
    RULE_REGISTRY,
    all_rules,
    lint_paths,
    lint_source,
    module_name_for,
    parse_noqa,
    rules_by_code,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: default fixture home: inside the energy-math + simulation scopes.
CORE = "src/repro/core/fixture.py"
NETSIM = "src/repro/netsim/fixture.py"
SERVICE = "src/repro/service/fixture.py"
HARNESS = "src/repro/harness/fixture.py"


def lint(source: str, path: str = CORE, codes: list[str] | None = None):
    """Lint a dedented fixture, optionally restricted to some codes."""
    rules = rules_by_code(codes) if codes is not None else None
    return lint_source(textwrap.dedent(source), path=path, rules=rules)


def codes_of(findings) -> list[str]:
    """The finding codes, in report order."""
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# framework
# ----------------------------------------------------------------------


class TestFramework:
    def test_module_name_anchors_at_repro(self):
        assert module_name_for("src/repro/netsim/engine.py") == "repro.netsim.engine"
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"
        assert module_name_for("scripts/tool.py") == "scripts.tool"

    def test_every_rule_is_registered_with_metadata(self):
        rules = all_rules()
        assert len(rules) == 12
        for rule in rules:
            assert rule.code.startswith("RPL")
            assert rule.name and rule.summary
        assert sorted(RULE_REGISTRY) == [
            f"RPL{i:03d}" for i in range(1, 13)
        ]

    def test_rules_by_code_rejects_unknown(self):
        with pytest.raises(KeyError, match="RPL999"):
            rules_by_code(["RPL999"])

    def test_syntax_error_becomes_rpl000(self):
        findings = lint("def broken(:\n")
        assert codes_of(findings) == ["RPL000"]
        assert "syntax error" in findings[0].message

    def test_finding_key_and_render(self):
        findings = lint("x = 1 if 0.5 == 0.5 else 2\n", codes=["RPL003"])
        assert len(findings) == 1
        f = findings[0]
        assert f.key == f"{CORE}::RPL003"
        assert f.render().startswith(f"{CORE}:1:")
        assert f.to_dict()["code"] == "RPL003"

    def test_parse_noqa_multiple_codes(self):
        lines = ["x = 1", "y = 2  # repro: noqa[RPL001, RPL003]", "z = 3"]
        assert parse_noqa(lines) == {2: frozenset({"RPL001", "RPL003"})}


# ----------------------------------------------------------------------
# RPL001 — raw unit literals
# ----------------------------------------------------------------------


class TestRawUnitLiterals:
    def test_conversion_constant_flagged(self):
        findings = lint(
            """
            def to_mb(n):
                return n / 1000000
            """,
            codes=["RPL001"],
        )
        assert codes_of(findings) == ["RPL001"]
        assert "repro.units" in findings[0].message

    def test_binary_constant_flagged(self):
        findings = lint("cap = pages * 1024\n", codes=["RPL001"])
        assert codes_of(findings) == ["RPL001"]

    def test_bits_factor_on_rate_flagged(self):
        findings = lint(
            """
            def f(throughput_bps):
                return throughput_bps / 8
            """,
            codes=["RPL001"],
        )
        assert codes_of(findings) == ["RPL001"]
        assert "factor 8" in findings[0].message

    def test_innocent_arithmetic_passes(self):
        findings = lint(
            """
            def f(x, count):
                return x * 42 + count / 8
            """,
            codes=["RPL001"],
        )
        assert findings == []

    def test_units_module_is_exempt(self):
        source = "MB = 1000000\nx = 3 * 1000000\n"
        assert lint(source, path="src/repro/units.py", codes=["RPL001"]) == []
        assert lint(source, path=CORE, codes=["RPL001"]) != []


# ----------------------------------------------------------------------
# RPL002 — simulation nondeterminism
# ----------------------------------------------------------------------


class TestSimulationNondeterminism:
    def test_stdlib_random_import_flagged(self):
        assert codes_of(lint("import random\n", path=NETSIM, codes=["RPL002"])) == [
            "RPL002"
        ]
        assert codes_of(
            lint("from random import choice\n", path=SERVICE, codes=["RPL002"])
        ) == ["RPL002"]

    def test_unseeded_default_rng_flagged(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            path=NETSIM,
            codes=["RPL002"],
        )
        assert codes_of(findings) == ["RPL002"]
        assert "unseeded" in findings[0].message

    def test_seeded_default_rng_passes(self):
        source = """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """
        assert lint(source, path=NETSIM, codes=["RPL002"]) == []

    def test_wall_clock_read_flagged(self):
        findings = lint(
            """
            import time

            def now():
                return time.time()
            """,
            path=NETSIM,
            codes=["RPL002"],
        )
        assert codes_of(findings) == ["RPL002"]
        assert "wall-clock" in findings[0].message

    def test_rule_scoped_to_simulation_packages(self):
        source = "import random\nx = random.random()\n"
        assert lint(source, path=HARNESS, codes=["RPL002"]) == []
        assert lint(source, path=NETSIM, codes=["RPL002"]) != []


# ----------------------------------------------------------------------
# RPL003 — float equality
# ----------------------------------------------------------------------


class TestFloatEquality:
    def test_float_eq_flagged(self):
        findings = lint(
            """
            def hit_boundary(x):
                return x == 0.75
            """,
            codes=["RPL003"],
        )
        assert codes_of(findings) == ["RPL003"]
        assert "tolerance" in findings[0].message

    def test_float_ne_flagged(self):
        assert codes_of(lint("ok = y != 1.5\n", codes=["RPL003"])) == ["RPL003"]

    def test_integer_equality_passes(self):
        assert lint("done = n == 0\n", codes=["RPL003"]) == []

    def test_out_of_scope_package_passes(self):
        source = "flag = x == 0.5\n"
        assert lint(source, path=HARNESS, codes=["RPL003"]) == []
        assert lint(source, path=CORE, codes=["RPL003"]) != []


# ----------------------------------------------------------------------
# RPL004 — unguarded observer calls
# ----------------------------------------------------------------------


class TestUnguardedObserver:
    def test_unguarded_call_flagged(self):
        findings = lint(
            """
            def step(observer):
                observer.on_step(1.0)
            """,
            codes=["RPL004"],
        )
        assert codes_of(findings) == ["RPL004"]
        assert "is not None" in findings[0].message

    def test_unguarded_attribute_receiver_flagged(self):
        findings = lint(
            """
            class Engine:
                def step(self):
                    self.observer.on_step(1.0)
            """,
            codes=["RPL004"],
        )
        assert codes_of(findings) == ["RPL004"]

    def test_guarded_call_passes(self):
        source = """
            def step(observer):
                if observer is not None:
                    observer.on_step(1.0)
            """
        assert lint(source, codes=["RPL004"]) == []

    def test_else_branch_of_is_none_passes(self):
        source = """
            def step(observer):
                if observer is None:
                    pass
                else:
                    observer.on_step(1.0)
            """
        assert lint(source, codes=["RPL004"]) == []

    def test_locally_constructed_observer_passes(self):
        source = """
            def run():
                observer = Observer()
                observer.on_step(1.0)
            """
        assert lint(source, codes=["RPL004"]) == []

    def test_obs_package_is_exempt(self):
        source = "def f(observer):\n    observer.on_step(1.0)\n"
        assert lint(source, path="src/repro/obs/fixture.py", codes=["RPL004"]) == []


# ----------------------------------------------------------------------
# RPL005 — unknown event kinds
# ----------------------------------------------------------------------


class TestUnknownEventKind:
    def test_unknown_kind_flagged(self):
        findings = lint(
            """
            def record(stream):
                stream.emit(0.0, "definitely_not_a_kind", chunk="large")
            """,
            codes=["RPL005"],
        )
        assert codes_of(findings) == ["RPL005"]
        assert "EVENT_SCHEMA" in findings[0].message

    def test_unknown_kind_keyword_form_flagged(self):
        findings = lint(
            'def f(s):\n    s.emit(0.0, kind="bogus_kind")\n', codes=["RPL005"]
        )
        assert codes_of(findings) == ["RPL005"]

    def test_known_kind_passes(self):
        source = """
            def record(stream, t):
                stream.emit(t, "job_admitted", job="j0", queue_wait_s=0.0)
            """
        assert lint(source, codes=["RPL005"]) == []

    def test_dynamic_kind_is_ignored(self):
        assert lint("def f(s, k):\n    s.emit(0.0, k)\n", codes=["RPL005"]) == []


# ----------------------------------------------------------------------
# RPL006 — mutable defaults
# ----------------------------------------------------------------------


class TestMutableDefaults:
    def test_literal_list_default_flagged(self):
        findings = lint("def f(xs=[]):\n    return xs\n", codes=["RPL006"])
        assert codes_of(findings) == ["RPL006"]
        assert "f()" in findings[0].message

    def test_constructor_and_kwonly_defaults_flagged(self):
        findings = lint(
            """
            def f(cache=dict(), *, seen=set()):
                return cache, seen
            """,
            codes=["RPL006"],
        )
        assert codes_of(findings) == ["RPL006", "RPL006"]

    def test_lambda_default_flagged(self):
        findings = lint("g = lambda acc={}: acc\n", codes=["RPL006"])
        assert codes_of(findings) == ["RPL006"]
        assert "<lambda>" in findings[0].message

    def test_none_and_immutable_defaults_pass(self):
        source = "def f(xs=None, pair=(1, 2), name=\"x\"):\n    return xs\n"
        assert lint(source, codes=["RPL006"]) == []


# ----------------------------------------------------------------------
# RPL007 — __all__ hygiene
# ----------------------------------------------------------------------


class TestDunderAllHygiene:
    def test_phantom_export_flagged(self):
        findings = lint(
            """
            __all__ = ["exists", "phantom"]

            def exists():
                return 1
            """,
            codes=["RPL007"],
        )
        assert codes_of(findings) == ["RPL007"]
        assert "'phantom'" in findings[0].message

    def test_undeclared_reexport_flagged(self):
        findings = lint(
            """
            __all__ = ["keep"]

            from .chunks import keep, stray
            """,
            path="src/repro/core/__init__.py",
            codes=["RPL007"],
        )
        assert codes_of(findings) == ["RPL007"]
        assert "'stray'" in findings[0].message

    def test_consistent_module_passes(self):
        source = """
            __all__ = ["f", "CONST"]

            CONST = 3

            def f():
                return CONST
            """
        assert lint(source, codes=["RPL007"]) == []

    def test_conditional_and_tuple_bindings_count(self):
        source = """
            __all__ = ["a", "b", "maybe"]

            a, b = 1, 2
            try:
                import numpy as maybe
            except ImportError:
                maybe = None
            """
        assert lint(source, codes=["RPL007"]) == []


# ----------------------------------------------------------------------
# RPL008 — undocumented unit parameters
# ----------------------------------------------------------------------


class TestUndocumentedUnits:
    def test_missing_docstring_flagged(self):
        findings = lint(
            "def wait(deadline_s):\n    return deadline_s\n", codes=["RPL008"]
        )
        assert codes_of(findings) == ["RPL008"]
        assert "no docstring" in findings[0].message

    def test_docstring_without_unit_mention_flagged(self):
        findings = lint(
            '''
            def wait(deadline_s):
                """Block until the deadline."""
                return deadline_s
            ''',
            codes=["RPL008"],
        )
        assert codes_of(findings) == ["RPL008"]
        assert "'deadline_s'" in findings[0].message

    def test_documented_unit_passes(self):
        source = '''
            def wait(deadline_s, budget_j):
                """Block until ``deadline_s`` (seconds), spending at most
                ``budget_j`` joules."""
                return deadline_s, budget_j
            '''
        assert lint(source, codes=["RPL008"]) == []

    def test_private_functions_and_other_packages_exempt(self):
        source = "def _wait(deadline_s):\n    return deadline_s\n"
        assert lint(source, codes=["RPL008"]) == []
        public = "def wait(deadline_s):\n    return deadline_s\n"
        assert lint(public, path=HARNESS, codes=["RPL008"]) == []


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------


class TestNoqaSuppression:
    FIXTURE = """
        import time

        def boundary(x):
            if time.time() == 0.0:{comment}
                return x
    """

    def test_both_rules_fire_without_noqa(self):
        findings = lint(self.FIXTURE.format(comment=""), path=NETSIM)
        assert sorted(codes_of(findings)) == ["RPL002", "RPL003"]

    def test_noqa_suppresses_exactly_one_code(self):
        findings = lint(
            self.FIXTURE.format(comment="  # repro: noqa[RPL003]"), path=NETSIM
        )
        assert codes_of(findings) == ["RPL002"]

    def test_noqa_on_other_line_does_not_leak(self):
        source = """
            x = 1.0 == y  # repro: noqa[RPL003]
            z = 2.0 == y
            """
        findings = lint(source, codes=["RPL003"])
        assert len(findings) == 1
        assert findings[0].line == 3  # only the un-suppressed line


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------


class TestBaseline:
    def _findings(self, n: int):
        source = "\n".join(f"v{i} = x{i} == {float(i)}" for i in range(n)) + "\n"
        return lint(source, codes=["RPL003"])

    def test_counts_bucket_by_path_and_code(self):
        counts = baseline_counts(self._findings(3))
        assert counts == {f"{CORE}::RPL003": 3}

    def test_at_allowance_suppresses(self):
        result = apply_baseline(self._findings(2), {f"{CORE}::RPL003": 2})
        assert result.ok
        assert result.suppressed == 2
        assert result.stale == {}

    def test_over_allowance_fails_whole_bucket(self):
        result = apply_baseline(self._findings(3), {f"{CORE}::RPL003": 2})
        assert not result.ok
        assert len(result.new) == 3  # whole bucket reported, not the diff

    def test_under_allowance_is_stale(self):
        result = apply_baseline(self._findings(1), {f"{CORE}::RPL003": 4})
        assert result.ok
        assert result.stale == {f"{CORE}::RPL003": 3}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = save_baseline(path, self._findings(2))
        assert load_baseline(path) == entries == {f"{CORE}::RPL003": 2}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": BASELINE_VERSION + 1, "entries": {}})
        )
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


BAD_MODULE = "import random\n\nflag = probe == 0.5\n"


@pytest.fixture()
def bad_tree(tmp_path):
    """A throwaway src/repro/netsim tree with one dirty module."""
    pkg = tmp_path / "src" / "repro" / "netsim"
    pkg.mkdir(parents=True)
    module = pkg / "dirty.py"
    module.write_text(BAD_MODULE, encoding="utf-8")
    return tmp_path


class TestCli:
    def test_findings_exit_1(self, bad_tree, capsys):
        rc = lint_main([str(bad_tree / "src"), "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPL002" in out and "RPL003" in out

    def test_select_narrows_rules(self, bad_tree, capsys):
        rc = lint_main(
            [str(bad_tree / "src"), "--no-baseline", "--select", "RPL003"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPL003" in out and "RPL002" not in out

    def test_unknown_select_exit_2(self, capsys):
        assert lint_main(["--select", "NOPE", "."]) == 2

    def test_json_report(self, bad_tree, tmp_path, capsys):
        report = tmp_path / "lint.json"
        rc = lint_main(
            [str(bad_tree / "src"), "--no-baseline", "--json", str(report)]
        )
        capsys.readouterr()
        assert rc == 1
        payload = json.loads(report.read_text())
        assert payload["ok"] is False
        assert payload["counts_by_code"]["RPL002"] == 1
        assert payload["counts_by_code"]["RPL003"] == 1
        assert all(
            {"path", "line", "col", "code", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_fix_baseline_then_clean(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(bad_tree / "src"), "--baseline", str(baseline),
                 "--fix-baseline"]
            )
            == 0
        )
        rc = lint_main([str(bad_tree / "src"), "--baseline", str(baseline)])
        capsys.readouterr()
        assert rc == 0  # previous debt tolerated by the ratchet

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_REGISTRY:
            assert code in out

    def test_repro_cli_has_lint_subcommand(self, bad_tree, capsys):
        from repro.cli import main as repro_main

        rc = repro_main(
            ["lint", str(bad_tree / "src"), "--no-baseline", "--select",
             "RPL002"]
        )
        capsys.readouterr()
        assert rc == 1


# ----------------------------------------------------------------------
# repo self-check
# ----------------------------------------------------------------------


class TestRepoIsClean:
    def test_src_tree_clean_modulo_baseline(self):
        """``repro lint src/`` passes against the committed baseline."""
        findings = lint_paths([REPO_ROOT / "src"], relative_to=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        result = apply_baseline(findings, baseline)
        assert result.ok, "\n".join(f.render() for f in result.new)

    def test_baseline_has_no_core_or_netsim_debt(self):
        """The energy-critical packages carry zero tolerated findings."""
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        dirty = [
            key
            for key in baseline
            if key.startswith(("src/repro/core", "src/repro/netsim"))
        ]
        assert dirty == []
