"""Trace-based device-energy integration."""

import pytest

from repro import units
from repro.netenergy.integration import (
    DeviceEnergyBreakdown,
    integrate_device_energy,
    integrate_path_energy,
)
from repro.netenergy.models import LinearPowerModel, NonLinearPowerModel
from repro.netenergy.topology import xsede_topology
from repro.netsim.engine import StepRecord


def trace(rates, dt=1.0):
    return [
        StepRecord(time=(i + 1) * dt, throughput=r, power=0.0, active_channels=1)
        for i, r in enumerate(rates)
    ]


LINE = units.gbps(10)


class TestIntegrateDeviceEnergy:
    def test_constant_rate_linear_model(self):
        model = LinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
        # half line rate for 10 s at 100 W max -> 50 W * 10 s
        t = trace([LINE / 2] * 10)
        assert integrate_device_energy(t, model, LINE, dt=1.0) == pytest.approx(500.0)

    def test_rate_invariance_for_linear_model(self):
        model = LinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
        slow = trace([LINE / 4] * 8)  # 2 line-seconds of data
        fast = trace([LINE / 2] * 4)  # same data, twice the rate
        assert integrate_device_energy(slow, model, LINE, dt=1.0) == pytest.approx(
            integrate_device_energy(fast, model, LINE, dt=1.0)
        )

    def test_sublinear_rewards_speed(self):
        model = NonLinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
        slow = trace([LINE / 4] * 8)
        fast = trace([LINE / 2] * 4)
        assert integrate_device_energy(fast, model, LINE, dt=1.0) < integrate_device_energy(
            slow, model, LINE, dt=1.0
        )

    def test_idle_included(self):
        model = LinearPowerModel(idle_watts=10.0, max_dynamic_watts=100.0)
        t = trace([0.0] * 5)
        assert integrate_device_energy(
            t, model, LINE, dt=1.0, include_idle=True
        ) == pytest.approx(50.0)

    def test_utilization_clamped(self):
        model = LinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
        t = trace([2 * LINE])  # fluid-step burst above line rate
        assert integrate_device_energy(t, model, LINE, dt=1.0) == pytest.approx(100.0)

    def test_empty_trace(self):
        model = LinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
        assert integrate_device_energy([], model, LINE, dt=1.0) == 0.0

    def test_validation(self):
        model = LinearPowerModel(0.0, 1.0)
        with pytest.raises(ValueError):
            integrate_device_energy([], model, 0.0, dt=1.0)
        with pytest.raises(ValueError):
            integrate_device_energy([], model, LINE, dt=0.0)


class TestIntegratePathEnergy:
    def test_one_breakdown_per_device(self):
        topo = xsede_topology()
        t = trace([LINE / 2] * 4)
        breakdowns = integrate_path_energy(
            t,
            topo,
            lambda device: LinearPowerModel(
                idle_watts=0.0, max_dynamic_watts=device.processing_nw
            ),
            LINE,
            dt=1.0,
        )
        assert len(breakdowns) == len(topo.path_devices())
        assert all(b.dynamic_joules > 0 for b in breakdowns)

    def test_factory_scales_by_device(self):
        topo = xsede_topology()
        t = trace([LINE] * 2)
        breakdowns = integrate_path_energy(
            t,
            topo,
            lambda device: LinearPowerModel(0.0, device.processing_nw),
            LINE,
            dt=1.0,
        )
        by_name = {b.device_name: b.dynamic_joules for b in breakdowns}
        # edge routers (1707 nW) draw more than enterprise switches (40 nW)
        assert by_name["edge-router-sdsc"] > by_name["enterprise-switch-sdsc"]

    def test_idle_accounting(self):
        topo = xsede_topology()
        t = trace([0.0] * 3)
        breakdowns = integrate_path_energy(
            t, topo, lambda d: LinearPowerModel(5.0, 1.0), LINE, dt=1.0,
            include_idle=True,
        )
        for b in breakdowns:
            assert b.idle_joules == pytest.approx(15.0)
            assert b.total_joules == pytest.approx(15.0)

    def test_breakdown_total(self):
        b = DeviceEnergyBreakdown("x", dynamic_joules=3.0, idle_joules=4.0)
        assert b.total_joules == 7.0
