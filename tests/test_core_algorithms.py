"""Algorithm-level behaviour on the miniature testbed."""

import pytest

from repro import units
from repro.core.baselines import (
    GlobusOnlineAlgorithm,
    GucAlgorithm,
    ProMCAlgorithm,
    SingleChunkAlgorithm,
)
from repro.core.htee import (
    BruteForceAlgorithm,
    HTEEAlgorithm,
    probe_ladder,
    scaled_allocation,
)
from repro.core.mine import MinEAlgorithm
from repro.core.slaee import SLAEEAlgorithm, sla_allocation, sla_met
from repro.core.chunks import Chunk, ChunkClass
from repro.datasets.files import Dataset, FileInfo


@pytest.fixture
def ds(small_testbed):
    return small_testbed.dataset()


def assert_complete(outcome, dataset):
    assert outcome.bytes_moved == pytest.approx(dataset.total_size)
    assert outcome.duration_s > 0
    assert outcome.energy_joules > 0


class TestGuc:
    def test_completes(self, small_testbed, ds):
        outcome = GucAlgorithm().run(small_testbed, ds)
        assert_complete(outcome, ds)
        assert outcome.algorithm == "GUC"
        assert outcome.max_channels == 1

    def test_untuned_parameters(self):
        guc = GucAlgorithm()
        assert (guc.pipelining, guc.parallelism, guc.concurrency) == (1, 1, 1)

    def test_ignores_max_channels(self, small_testbed, ds):
        a = GucAlgorithm().run(small_testbed, ds, 1)
        b = GucAlgorithm().run(small_testbed, ds, 8)
        assert a.duration_s == b.duration_s
        assert a.energy_joules == b.energy_joules


class TestGlobusOnline:
    def test_completes(self, small_testbed, ds):
        outcome = GlobusOnlineAlgorithm().run(small_testbed, ds)
        assert_complete(outcome, ds)

    def test_buckets_partition_completely(self, ds):
        go = GlobusOnlineAlgorithm()
        buckets = go.buckets(ds)
        names = sorted(f.name for _, files, _ in buckets for f in files)
        assert names == sorted(f.name for f in ds)

    def test_bucket_thresholds(self):
        go = GlobusOnlineAlgorithm()
        ds = Dataset(
            [FileInfo("s", 10 * units.MB), FileInfo("m", 100 * units.MB),
             FileInfo("l", 500 * units.MB)]
        )
        buckets = dict((name, files) for name, files, _ in go.buckets(ds))
        assert [f.name for f in buckets["go-small"]] == ["s"]
        assert [f.name for f in buckets["go-medium"]] == ["m"]
        assert [f.name for f in buckets["go-large"]] == ["l"]

    def test_small_bucket_uses_pipelining_20_parallelism_2(self):
        assert GlobusOnlineAlgorithm().small_params == (20, 2)

    def test_fixed_concurrency_2(self, small_testbed, ds):
        outcome = GlobusOnlineAlgorithm().run(small_testbed, ds, max_channels=10)
        assert outcome.max_channels == 2

    def test_checksums_slow_the_transfer(self, small_testbed, ds):
        """The paper disabled GO's checksum feature because it 'causes
        significant slowdowns in average transfer throughput'."""
        plain = GlobusOnlineAlgorithm().run(small_testbed, ds)
        verified = GlobusOnlineAlgorithm(
            verify_checksums=True, checksum_rate=20 * units.MB
        ).run(small_testbed, ds)
        assert verified.throughput < plain.throughput
        assert verified.extra["verify_checksums"] is True
        assert verified.bytes_moved == pytest.approx(ds.total_size)

    def test_checksums_do_not_mutate_shared_testbed(self, small_testbed, ds):
        original_rate = small_testbed.source.server.per_channel_rate
        GlobusOnlineAlgorithm(verify_checksums=True).run(small_testbed, ds)
        assert small_testbed.source.server.per_channel_rate == original_rate


class TestSingleChunk:
    def test_completes(self, small_testbed, ds):
        outcome = SingleChunkAlgorithm().run(small_testbed, ds, 3)
        assert_complete(outcome, ds)

    def test_faster_with_more_channels(self, small_testbed, ds):
        slow = SingleChunkAlgorithm().run(small_testbed, ds, 1)
        fast = SingleChunkAlgorithm().run(small_testbed, ds, 3)
        assert fast.duration_s < slow.duration_s

    def test_plan_uses_full_budget_per_chunk(self, small_testbed, ds):
        plans = SingleChunkAlgorithm().plan(small_testbed, ds, 4)
        assert all(p.params.concurrency == 4 for p in plans)

    def test_invalid_channels(self, small_testbed, ds):
        with pytest.raises(ValueError):
            SingleChunkAlgorithm().run(small_testbed, ds, 0)


class TestProMC:
    def test_completes(self, small_testbed, ds):
        outcome = ProMCAlgorithm().run(small_testbed, ds, 4)
        assert_complete(outcome, ds)

    def test_plan_spends_entire_budget(self, small_testbed, ds):
        plans = ProMCAlgorithm().plan(small_testbed, ds, 6)
        assert sum(p.params.concurrency for p in plans) == 6

    def test_not_slower_than_sc(self, small_testbed, ds):
        sc = SingleChunkAlgorithm().run(small_testbed, ds, 4)
        promc = ProMCAlgorithm().run(small_testbed, ds, 4)
        assert promc.duration_s <= sc.duration_s * 1.05


class TestMinE:
    def test_completes(self, small_testbed, ds):
        outcome = MinEAlgorithm().run(small_testbed, ds, 4)
        assert_complete(outcome, ds)

    def test_plan_within_budget(self, small_testbed, ds):
        for budget in (1, 2, 4, 8):
            plans = MinEAlgorithm().plan(small_testbed, ds, budget)
            assert sum(p.params.concurrency for p in plans) <= budget

    def test_records_plan_in_extra(self, small_testbed, ds):
        outcome = MinEAlgorithm().run(small_testbed, ds, 4)
        assert "plans" in outcome.extra
        assert outcome.final_concurrency >= 1

    def test_invalid_channels(self, small_testbed, ds):
        with pytest.raises(ValueError):
            MinEAlgorithm().run(small_testbed, ds, 0)


class TestProbeLadder:
    def test_odd_cap_is_plain_stride(self):
        assert probe_ladder(7) == [1, 3, 5, 7]
        assert probe_ladder(1) == [1]

    def test_even_cap_is_probed(self):
        """Regression: ``range(1, max+1, 2)`` silently skipped an even
        ``maxChannel`` — cap 8 probed only 1/3/5/7, so the cap could
        never win the argmax."""
        assert probe_ladder(8) == [1, 3, 5, 7, 8]
        assert probe_ladder(2) == [1, 2]

    def test_every_ladder_ends_at_cap(self):
        for cap in range(1, 25):
            levels = probe_ladder(cap)
            assert levels[-1] == cap
            assert levels == sorted(set(levels))  # strictly increasing
            assert all(1 <= lvl <= cap for lvl in levels)

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            probe_ladder(0)


class TestScaledAllocation:
    def test_sums_to_total(self):
        weights = [0.5, 0.3, 0.2]
        for total in range(0, 15):
            assert sum(scaled_allocation(weights, total)) == total

    def test_proportionality(self):
        allocation = scaled_allocation([0.5, 0.25, 0.25], 8)
        assert allocation == [4, 2, 2]

    def test_non_normalized_weights(self):
        """Weights are normalized internally: raw (un-normalized)
        weight vectors keep the sum-to-total invariant instead of
        over- or under-allocating."""
        for weights in ([5.0, 3.0, 2.0], [0.1, 0.1], [12.0], [2.5, 0.0, 7.5]):
            for total in range(0, 13):
                allocation = scaled_allocation(weights, total)
                assert sum(allocation) == total
                assert all(a >= 0 for a in allocation)

    def test_non_normalized_matches_normalized(self):
        raw = [5.0, 2.5, 2.5]
        norm = [0.5, 0.25, 0.25]
        for total in (0, 1, 4, 8, 11):
            assert scaled_allocation(raw, total) == scaled_allocation(norm, total)

    def test_all_zero_weights_fall_back_to_uniform(self):
        assert scaled_allocation([0.0, 0.0, 0.0], 6) == [2, 2, 2]

    def test_empty(self):
        assert scaled_allocation([], 4) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            scaled_allocation([1.0], -1)
        with pytest.raises(ValueError):
            scaled_allocation([1.0, -0.5], 4)


class TestHTEE:
    def test_completes(self, small_testbed, ds):
        outcome = HTEEAlgorithm().run(small_testbed, ds, 4)
        assert_complete(outcome, ds)

    def test_probes_follow_the_ladder(self, small_testbed, ds):
        outcome = HTEEAlgorithm().run(small_testbed, ds, 6)
        probed = [p[0] for p in outcome.extra["probes"]]
        assert probed == probe_ladder(6)[: len(probed)]

    def test_even_cap_gets_probed(self, small_testbed, ds):
        """Regression: with an even channel budget the final level used
        to be skipped by the stride-two ladder, so ``max_channels``
        never appeared among the probes."""
        outcome = HTEEAlgorithm().run(small_testbed, ds, 4)
        probed = [p[0] for p in outcome.extra["probes"]]
        assert probed == probe_ladder(4)[: len(probed)]
        if len(probed) == len(probe_ladder(4)):  # dataset outlived the search
            assert probed[-1] == 4

    def test_picks_highest_level_within_noise_of_best_ratio(self, small_testbed, ds):
        outcome = HTEEAlgorithm().run(small_testbed, ds, 6)
        probes = outcome.extra["probes"]
        best_ratio = max(p[3] for p in probes)
        eligible = [p[0] for p in probes if p[3] >= 0.95 * best_ratio]
        assert outcome.final_concurrency == max(eligible)

    def test_steady_throughput_reported(self, small_testbed, ds):
        outcome = HTEEAlgorithm().run(small_testbed, ds, 4)
        assert outcome.steady_throughput is not None
        assert outcome.steady_throughput > 0

    def test_invalid_channels(self, small_testbed, ds):
        with pytest.raises(ValueError):
            HTEEAlgorithm().run(small_testbed, ds, 0)


class TestBruteForce:
    def test_completes_at_each_level(self, small_testbed, ds):
        for cc in (1, 3, 5):
            outcome = BruteForceAlgorithm().run(small_testbed, ds, cc)
            assert_complete(outcome, ds)
            assert outcome.final_concurrency == cc

    def test_no_search_phase(self, small_testbed, ds):
        # BF at HTEE's chosen level should be at least as efficient as
        # HTEE (which paid for its probes)
        htee = HTEEAlgorithm().run(small_testbed, ds, 6)
        bf = BruteForceAlgorithm().run(small_testbed, ds, htee.final_concurrency)
        assert bf.efficiency >= htee.efficiency * 0.9

    def test_invalid(self, small_testbed, ds):
        with pytest.raises(ValueError):
            BruteForceAlgorithm().run(small_testbed, ds, 0)


def chunk(cls, count, size):
    return Chunk(cls, tuple(FileInfo(f"{cls.name}{i}", int(size)) for i in range(count)))


class TestSlaAllocation:
    CHUNKS = [
        chunk(ChunkClass.SMALL, 50, units.MB),
        chunk(ChunkClass.MEDIUM, 10, 20 * units.MB),
        chunk(ChunkClass.LARGE, 3, 200 * units.MB),
    ]

    def test_sums_to_total(self):
        for total in range(0, 12):
            assert sum(sla_allocation(self.CHUNKS, total)) == total

    def test_small_chunks_first(self):
        allocation = sla_allocation(self.CHUNKS, 2)
        assert allocation == [1, 1, 0]

    def test_large_capped_at_one_without_rearrange(self):
        allocation = sla_allocation(self.CHUNKS, 10)
        assert allocation[2] == 1

    def test_rearrange_feeds_large(self):
        base = sla_allocation(self.CHUNKS, 10, extra_large=0)
        rearranged = sla_allocation(self.CHUNKS, 10, extra_large=2)
        assert rearranged[2] == base[2] + 2
        assert sum(rearranged) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            sla_allocation(self.CHUNKS, -1)
        with pytest.raises(ValueError):
            sla_allocation(self.CHUNKS, 1, extra_large=-1)

    def test_empty(self):
        assert sla_allocation([], 4) == []

    def test_golden_allocations(self):
        """Pinned outputs captured from the pre-refactor O(n^2)
        implementation: the running-total rewrite of the weighted
        round-robin must reproduce them bit-for-bit."""
        golden = {
            (5, 0): [2, 2, 1],
            (8, 0): [4, 3, 1],
            (8, 2): [3, 2, 3],
            (12, 0): [7, 4, 1],
            (20, 2): [10, 7, 3],
        }
        for (total, extra), expected in golden.items():
            assert sla_allocation(self.CHUNKS, total, extra) == expected

    def test_fewer_channels_than_chunks(self):
        """total_channels < len(chunks): channels go to the smallest
        classes first, the rest of the chunks get zero, and the sum
        never exceeds the budget."""
        assert sla_allocation(self.CHUNKS, 0) == [0, 0, 0]
        assert sla_allocation(self.CHUNKS, 1) == [1, 0, 0]
        assert sla_allocation(self.CHUNKS, 2) == [1, 1, 0]
        # extra_large cannot conjure channels for an unfunded Large chunk
        assert sla_allocation(self.CHUNKS, 2, extra_large=3) == [1, 1, 0]

    def test_all_large_chunks_still_use_the_budget(self):
        larges = [chunk(ChunkClass.LARGE, 2, 300 * units.MB) for _ in range(2)]
        allocation = sla_allocation(larges, 4)
        assert sum(allocation) == 4


class TestSlaMet:
    def test_boundary_is_inclusive(self):
        """Regression: the climb loop used ``actual <= target`` (strict
        miss) while the jump used ``actual < target`` — a window exactly
        *at* the target flip-flopped between 'met' and 'not met'. The
        paper climbs 'until it reaches target', so equality satisfies
        the SLA."""
        assert sla_met(100.0, 100.0)

    def test_above_and_below(self):
        assert sla_met(101.0, 100.0)
        assert not sla_met(99.0, 100.0)


class TestSLAEE:
    def test_completes(self, small_testbed, ds):
        max_thr = ProMCAlgorithm().run(small_testbed, ds, 4).throughput
        outcome = SLAEEAlgorithm().run(
            small_testbed, ds, 6, sla_level=0.8, max_throughput=max_thr
        )
        assert_complete(outcome, ds)
        assert outcome.extra["sla_level"] == 0.8

    def test_meets_feasible_target(self, small_testbed, ds):
        max_thr = ProMCAlgorithm().run(small_testbed, ds, 4).throughput
        outcome = SLAEEAlgorithm().run(
            small_testbed, ds, 6, sla_level=0.5, max_throughput=max_thr
        )
        achieved = outcome.steady_throughput
        assert achieved >= 0.5 * max_thr * 0.85  # modest tolerance

    def test_concurrency_within_bounds(self, small_testbed, ds):
        max_thr = ProMCAlgorithm().run(small_testbed, ds, 4).throughput
        outcome = SLAEEAlgorithm().run(
            small_testbed, ds, 6, sla_level=0.95, max_throughput=max_thr
        )
        assert 1 <= outcome.final_concurrency <= 6

    def test_lower_target_uses_fewer_channels(self, small_testbed, ds):
        max_thr = ProMCAlgorithm().run(small_testbed, ds, 4).throughput
        low = SLAEEAlgorithm().run(small_testbed, ds, 6, sla_level=0.4,
                                   max_throughput=max_thr)
        high = SLAEEAlgorithm().run(small_testbed, ds, 6, sla_level=0.95,
                                    max_throughput=max_thr)
        assert low.final_concurrency <= high.final_concurrency

    def test_validation(self, small_testbed, ds):
        with pytest.raises(ValueError):
            SLAEEAlgorithm().run(small_testbed, ds, 6, sla_level=0.0, max_throughput=1.0)
        with pytest.raises(ValueError):
            SLAEEAlgorithm().run(small_testbed, ds, 6, sla_level=0.5, max_throughput=0.0)
        with pytest.raises(ValueError):
            SLAEEAlgorithm().run(small_testbed, ds, 0, sla_level=0.5, max_throughput=1.0)
