"""Power models: Eq. 1 (fine-grained), Eq. 2 (CPU quadratic), Eq. 3 (TDP)."""

import pytest

from repro import units
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import ServerSpec
from repro.netsim.utilization import Utilization
from repro.power.coefficients import (
    CPU_QUAD_A,
    CPU_QUAD_B,
    CPU_QUAD_C,
    PAPER_COEFFICIENTS,
    CoefficientSet,
    cpu_coefficient,
)
from repro.power.models import CpuTdpPowerModel, FineGrainedPowerModel


def util(cpu=100.0, mem=10.0, disk=20.0, nic=30.0, cores=1, channels=1, streams=1):
    return Utilization(
        cpu_pct=cpu, mem_pct=mem, disk_pct=disk, nic_pct=nic,
        active_cores=cores, channels=channels, streams=streams, throughput=0.0,
    )


def server(tdp=100.0) -> ServerSpec:
    return ServerSpec(
        name="s", cores=4, tdp_watts=tdp, nic_rate=units.gbps(1),
        disk=ParallelDisk(50e6, 200e6), per_channel_rate=50e6, core_rate=200e6,
    )


class TestEquation2:
    def test_paper_constants(self):
        assert (CPU_QUAD_A, CPU_QUAD_B, CPU_QUAD_C) == (0.011, -0.082, 0.344)

    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0.273), (2, 0.224), (3, 0.197), (4, 0.192)],
    )
    def test_quadratic_values(self, n, expected):
        assert cpu_coefficient(n) == pytest.approx(0.011 * n * n - 0.082 * n + 0.344)
        assert cpu_coefficient(n) == pytest.approx(expected, abs=0.02)

    def test_per_core_coefficient_decreases_to_four_cores(self):
        # the published justification for the energy parabola
        values = [cpu_coefficient(n) for n in (1, 2, 3, 4)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_coefficient_rises_past_vertex(self):
        assert cpu_coefficient(6) > cpu_coefficient(4)

    def test_vertex_near_3_7(self):
        vertex = -CPU_QUAD_B / (2 * CPU_QUAD_A)
        assert vertex == pytest.approx(3.727, abs=0.01)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            cpu_coefficient(0)


class TestCoefficientSet:
    def test_defaults_are_paper(self):
        assert PAPER_COEFFICIENTS.cpu(1) == pytest.approx(cpu_coefficient(1))

    def test_scaled(self):
        doubled = PAPER_COEFFICIENTS.scaled(2.0)
        assert doubled.scale == 2.0
        assert doubled.memory == PAPER_COEFFICIENTS.memory

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            CoefficientSet(memory=-1)


class TestFineGrainedModel:
    def test_equation_1_exact(self):
        model = FineGrainedPowerModel(CoefficientSet(memory=0.01, disk=0.08, nic=0.05))
        u = util(cpu=150.0, mem=40.0, disk=60.0, nic=80.0, cores=2)
        expected = cpu_coefficient(2) * 150 + 0.01 * 40 + 0.08 * 60 + 0.05 * 80
        assert model.power(server(), u) == pytest.approx(expected)

    def test_idle_draws_zero(self):
        model = FineGrainedPowerModel()
        assert model.power(server(), Utilization()) == 0.0

    def test_scale_multiplies(self):
        base = FineGrainedPowerModel(CoefficientSet(scale=1.0))
        half = FineGrainedPowerModel(CoefficientSet(scale=0.5))
        u = util()
        assert half.power(server(), u) == pytest.approx(0.5 * base.power(server(), u))

    def test_monotone_in_each_component(self):
        model = FineGrainedPowerModel()
        base = model.power(server(), util())
        assert model.power(server(), util(cpu=200)) > base
        assert model.power(server(), util(mem=50)) > base
        assert model.power(server(), util(disk=80)) > base
        assert model.power(server(), util(nic=90)) > base

    def test_callable_protocol(self):
        model = FineGrainedPowerModel()
        assert model(server(), util()) == model.power(server(), util())

    def test_never_negative(self):
        model = FineGrainedPowerModel()
        assert model.power(server(), util(cpu=0, mem=0, disk=0, nic=0)) >= 0.0


class TestCpuTdpModel:
    def test_equation_3_scaling(self):
        # same utilization, remote TDP double the local -> double power
        model = CpuTdpPowerModel(local_tdp_watts=100.0, cpu_share=1.0)
        u = util(cpu=120.0, cores=2)
        local = model.power(server(tdp=100.0), u)
        remote = model.power(server(tdp=200.0), u)
        assert remote == pytest.approx(2.0 * local)
        assert local == pytest.approx(cpu_coefficient(2) * 120.0)

    def test_cpu_share_inflates_to_full_system(self):
        share = CpuTdpPowerModel(local_tdp_watts=100.0, cpu_share=0.897)
        raw = CpuTdpPowerModel(local_tdp_watts=100.0, cpu_share=1.0)
        u = util()
        assert share.power(server(), u) == pytest.approx(raw.power(server(), u) / 0.897)

    def test_ignores_non_cpu_components(self):
        model = CpuTdpPowerModel(local_tdp_watts=100.0)
        a = model.power(server(), util(disk=0, nic=0, mem=0))
        b = model.power(server(), util(disk=99, nic=99, mem=99))
        assert a == pytest.approx(b)

    def test_idle_zero(self):
        model = CpuTdpPowerModel(local_tdp_watts=100.0)
        assert model.power(server(), Utilization()) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuTdpPowerModel(local_tdp_watts=0)
        with pytest.raises(ValueError):
            CpuTdpPowerModel(local_tdp_watts=100, cpu_share=0)

    def test_models_agree_within_tolerance_on_cpu_heavy_load(self):
        # the paper: CPU-only model tracks the fine-grained model
        # closely because CPU explains ~90% of transfer power
        fine = FineGrainedPowerModel(CoefficientSet(memory=0.005, disk=0.01, nic=0.01))
        cpu_only = CpuTdpPowerModel(local_tdp_watts=100.0, cpu_share=0.9,
                                    coefficients=CoefficientSet())
        u = util(cpu=300.0, mem=20.0, disk=30.0, nic=40.0, cores=4)
        a = fine.power(server(), u)
        b = cpu_only.power(server(tdp=100.0), u)
        assert abs(a - b) / a < 0.15
