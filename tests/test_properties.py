"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.allocation import (
    htee_channel_allocation,
    htee_weights,
    mine_concurrency,
    mine_walk,
    parallelism_level,
    pipelining_level,
    proportional_allocation,
)
from repro.core.chunks import Chunk, ChunkClass, PartitionPolicy, partition_files
from repro.core.htee import scaled_allocation
from repro.core.slaee import sla_allocation
from repro.datasets.files import Dataset, FileInfo
from repro.netenergy.models import LinearPowerModel, NonLinearPowerModel, transfer_energy
from repro.netsim.engine import _max_min_fill
from repro.netsim.link import NetworkPath
from repro.netsim.tcp import aggregate_goodput, channel_network_cap
from repro.power.coefficients import cpu_coefficient
from repro.power.meter import EnergyMeter

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=50 * units.GB), min_size=1, max_size=200
)


def chunks_from_sizes(groups: list[list[int]]) -> list[Chunk]:
    classes = list(ChunkClass)
    return [
        Chunk(classes[i % 3], tuple(FileInfo(f"c{i}f{j}", s) for j, s in enumerate(g)))
        for i, g in enumerate(groups)
    ]


class TestPartitionProperties:
    @given(sizes=sizes_strategy, bdp_mb=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_partition_is_a_partition(self, sizes, bdp_mb):
        ds = Dataset.from_sizes(sizes)
        chunks = partition_files(ds, bdp_mb * units.MB)
        names = sorted(f.name for c in chunks for f in c.files)
        assert names == sorted(f.name for f in ds)
        assert sum(c.total_size for c in chunks) == ds.total_size

    @given(sizes=sizes_strategy, bdp_mb=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_chunks_ordered_and_nonempty(self, sizes, bdp_mb):
        ds = Dataset.from_sizes(sizes)
        chunks = partition_files(ds, bdp_mb * units.MB)
        assert all(c.file_count > 0 for c in chunks)
        classes = [int(c.chunk_class) for c in chunks]
        assert classes == sorted(classes)

    @given(sizes=sizes_strategy)
    @settings(max_examples=30, deadline=None)
    def test_no_merge_policy_classifies_correctly(self, sizes):
        policy = PartitionPolicy(min_files=0, min_bytes_fraction=0.0)
        bdp = 50 * units.MB
        ds = Dataset.from_sizes(sizes)
        for chunk in partition_files(ds, bdp, policy):
            for f in chunk.files:
                assert policy.classify(f.size, bdp) is chunk.chunk_class


class TestFormulaProperties:
    @given(
        bdp=st.floats(min_value=1, max_value=1e9),
        avg=st.floats(min_value=1, max_value=1e11),
    )
    @settings(max_examples=100, deadline=None)
    def test_pipelining_bounds(self, bdp, avg):
        pp = pipelining_level(bdp, avg)
        assert pp >= 1
        assert pp == max(1, math.ceil(bdp / avg))

    @given(
        bdp=st.floats(min_value=1, max_value=1e9),
        avg=st.floats(min_value=1, max_value=1e11),
        buf=st.floats(min_value=1e3, max_value=1e8),
    )
    @settings(max_examples=100, deadline=None)
    def test_parallelism_at_least_one_and_buffer_bounded(self, bdp, avg, buf):
        p = parallelism_level(bdp, avg, buf)
        assert p >= 1
        assert p <= max(1, math.ceil(bdp / buf))

    @given(
        bdp=st.floats(min_value=1, max_value=1e9),
        avg=st.floats(min_value=1, max_value=1e11),
        avail=st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_mine_concurrency_never_exceeds_pool(self, bdp, avg, avail):
        cc = mine_concurrency(bdp, avg, avail)
        assert 0 <= cc <= avail or (avail > 0 and cc >= 1)
        assert cc <= avail

    @given(
        groups=st.lists(
            st.lists(st.integers(min_value=1, max_value=10**9), min_size=1, max_size=20),
            min_size=1,
            max_size=3,
        ),
        budget=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=80, deadline=None)
    def test_mine_walk_within_budget(self, groups, budget):
        chunks = chunks_from_sizes(groups)
        params = mine_walk(chunks, 50 * units.MB, 32 * units.MB, budget)
        assert sum(p.concurrency for p in params) <= budget
        assert all(p.pipelining >= 1 and p.parallelism >= 1 for p in params)


class TestAllocationProperties:
    chunk_groups = st.lists(
        st.lists(st.integers(min_value=1, max_value=10**10), min_size=1, max_size=30),
        min_size=1,
        max_size=3,
    )

    @given(groups=chunk_groups)
    @settings(max_examples=60, deadline=None)
    def test_htee_weights_normalized(self, groups):
        weights = htee_weights(chunks_from_sizes(groups))
        assert abs(sum(weights) - 1.0) < 1e-9
        assert all(w > 0 for w in weights)

    @given(groups=chunk_groups, budget=st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_htee_allocation_within_budget(self, groups, budget):
        allocation = htee_channel_allocation(chunks_from_sizes(groups), budget)
        assert sum(allocation) <= budget
        assert all(a >= 0 for a in allocation)

    @given(groups=chunk_groups, budget=st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_proportional_allocation_exact(self, groups, budget):
        allocation = proportional_allocation(chunks_from_sizes(groups), budget)
        assert sum(allocation) == budget

    @given(
        weights=st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=6),
        total=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_scaled_allocation_exact(self, weights, total):
        norm = [w / sum(weights) for w in weights]
        allocation = scaled_allocation(norm, total)
        assert sum(allocation) == total
        assert all(a >= 0 for a in allocation)

    @given(
        groups=chunk_groups,
        total=st.integers(min_value=0, max_value=30),
        extra=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_sla_allocation_exact(self, groups, total, extra):
        allocation = sla_allocation(chunks_from_sizes(groups), total, extra)
        assert sum(allocation) == total
        assert all(a >= 0 for a in allocation)


class TestMaxMinProperties:
    @given(
        caps=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=10),
        group_cap=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=80, deadline=None)
    def test_respects_caps_and_group(self, caps, group_cap):
        cap_map = dict(enumerate(caps))
        rates = _max_min_fill(cap_map, [(group_cap, list(cap_map))])
        for k, rate in rates.items():
            assert rate <= cap_map[k] + 1e-6
        assert sum(rates.values()) <= group_cap + 1e-5

    @given(
        caps=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=10),
        group_cap=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=80, deadline=None)
    def test_work_conserving(self, caps, group_cap):
        # either the group is exhausted or every flow hit its own cap
        cap_map = dict(enumerate(caps))
        rates = _max_min_fill(cap_map, [(group_cap, list(cap_map))])
        total = sum(rates.values())
        all_capped = all(rates[k] >= cap_map[k] - 1e-6 for k in cap_map)
        assert total >= min(group_cap, sum(caps)) - 1e-3 or all_capped


class TestTcpProperties:
    @given(
        bw=st.floats(min_value=1e6, max_value=2e9),
        rtt=st.floats(min_value=1e-4, max_value=0.5),
        buf=st.floats(min_value=1e4, max_value=1e8),
        p=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_channel_cap_bounded_by_link(self, bw, rtt, buf, p):
        path = NetworkPath(bandwidth=bw, rtt=rtt, tcp_buffer=buf)
        cap = channel_network_cap(path, p)
        assert 0 < cap <= bw * path.protocol_efficiency + 1e-6

    @given(
        bw=st.floats(min_value=1e6, max_value=2e9),
        streams=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_goodput_positive_and_bounded(self, bw, streams):
        path = NetworkPath(bandwidth=bw, rtt=0.01, tcp_buffer=1e6)
        goodput = aggregate_goodput(path, streams)
        assert 0 < goodput <= bw


class TestEnergyProperties:
    @given(
        samples=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e4),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_meter_matches_analytic_sum(self, samples):
        meter = EnergyMeter()
        for power, dt in samples:
            meter.record(power, dt)
        expected = sum(p * t for p, t in samples)
        assert meter.total_joules == (
            expected if expected == 0 else meter.total_joules
        )
        assert abs(meter.total_joules - expected) <= 1e-6 * max(1.0, expected)

    @given(n=st.integers(min_value=1, max_value=32))
    @settings(max_examples=32, deadline=None)
    def test_cpu_coefficient_positive(self, n):
        assert cpu_coefficient(n) > 0

    @given(
        data=st.floats(min_value=1e6, max_value=1e12),
        rate_frac=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_linear_device_energy_rate_invariant(self, data, rate_frac):
        line = units.gbps(1)
        model = LinearPowerModel(idle_watts=0.0, max_dynamic_watts=50.0)
        base = transfer_energy(model, data, line, line)
        at_frac = transfer_energy(model, data, rate_frac * line, line)
        assert at_frac == base or abs(at_frac - base) / base < 1e-9

    @given(
        data=st.floats(min_value=1e6, max_value=1e12),
        low=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_sublinear_device_energy_decreases_with_rate(self, data, low):
        line = units.gbps(1)
        model = NonLinearPowerModel(idle_watts=0.0, max_dynamic_watts=50.0)
        slow = transfer_energy(model, data, low * line, line)
        fast = transfer_energy(model, data, min(1.0, 2 * low) * line, line)
        assert fast < slow
