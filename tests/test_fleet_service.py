"""The fleet layer: deterministic routing heuristics, work stealing,
merged shard accounting, warm-start contexts, and the single-shard
equivalence contract with the plain service simulator."""

import json
import pickle
import zlib

import pytest

from repro import units
from repro.cli import main as cli_main
from repro.datasets.files import Dataset
from repro.obs.events import EVENT_SCHEMA
from repro.obs.metrics import MetricsRegistry, merge_summaries
from repro.obs.observer import Observer, render_events
from repro.service import (
    BALANCED,
    ENERGY,
    FleetContext,
    FleetSimulator,
    RunNow,
    ServiceSimulator,
    ShardSpec,
    TransferRequest,
    flat_tariff,
    peak_offpeak_tariff,
    plan_cache_clear,
    route_requests,
)
from repro.service.fleet import ROUTING_POLICIES
from repro.testbeds.specs import testbed_by_name as named_testbed
from repro.topo.core import build_topology

DAY = 600.0


def make_request(name="job", tenant="t", sla_class=BALANCED, submit=0.0,
                 deadline=None, n_files=8, file_mb=5):
    ds = Dataset.from_sizes([file_mb * units.MB] * n_files, name=name)
    return TransferRequest(
        name, tenant, ds, sla=sla_class, submit_time=submit, deadline=deadline
    )


def shard_for(tenant: str, n: int) -> int:
    """The tenant-hash dispatch target (crc32, process-stable)."""
    return (zlib.crc32(tenant.encode("utf-8")) & 0xFFFFFFFF) % n


def disjoint_tenants(n: int) -> list[str]:
    """``n`` tenant names that tenant-hash onto ``n`` distinct shards."""
    found: dict[int, str] = {}
    i = 0
    while len(found) < n:
        name = f"tenant{i}"
        found.setdefault(shard_for(name, n), name)
        i += 1
    return [found[k] for k in range(n)]


def strip_wall(d: dict) -> dict:
    """A report dict minus the real-machine fields excluded from the
    determinism contract."""
    out = {k: v for k, v in d.items()
           if k not in ("wall_s", "jobs_per_sec", "jobs_per_day")}
    out["per_shard"] = [
        {k: v for k, v in row.items() if k != "wall_s"}
        for row in d["per_shard"]
    ]
    return out


# ----------------------------------------------------------------------
# routing heuristics
# ----------------------------------------------------------------------


class TestRouting:
    @pytest.fixture
    def specs3(self, small_testbed):
        return [ShardSpec(f"s{i}", small_testbed) for i in range(3)]

    def test_tenant_hash_sticky(self, specs3):
        reqs = [
            make_request(name=f"{t}-{i}", tenant=t, submit=float(i))
            for t in ("alpha", "beta", "gamma") for i in range(4)
        ]
        routed = route_requests(reqs, specs3, routing="tenant-hash",
                                steal_threshold=None)
        for tenant in ("alpha", "beta", "gamma"):
            homes = {
                i for i, bucket in enumerate(routed.buckets)
                for r in bucket if r.tenant == tenant
            }
            assert homes == {shard_for(tenant, 3)}

    def test_round_robin_cycles_in_canonical_order(self, specs3):
        # all submitted at t=0 -> dispatch order is name order
        reqs = [make_request(name=f"j{i}") for i in range(9)]
        routed = route_requests(reqs, specs3, routing="round-robin",
                                steal_threshold=None)
        names = [[r.name for r in bucket] for bucket in routed.buckets]
        assert names == [
            ["j0", "j3", "j6"], ["j1", "j4", "j7"], ["j2", "j5", "j8"],
        ]

    def test_least_loaded_balances_bytes(self, specs3):
        reqs = [make_request(name=f"j{i}", file_mb=1 + i % 3) for i in range(12)]
        routed = route_requests(reqs, specs3, routing="least-loaded")
        loads = [
            sum(r.total_bytes for r in bucket) for bucket in routed.buckets
        ]
        assert all(len(b) > 0 for b in routed.buckets)
        # greedy argmin keeps the spread under one max-sized job
        assert max(loads) - min(loads) <= 3 * units.MB * 8

    def test_weighted_follows_weights(self, small_testbed):
        specs = [
            ShardSpec("heavy", small_testbed, weight=3.0),
            ShardSpec("light", small_testbed, weight=1.0),
        ]
        reqs = [
            make_request(name=f"j{i}", tenant=f"tenant{i}") for i in range(64)
        ]
        routed = route_requests(reqs, specs, routing="weighted",
                                steal_threshold=None)
        assert len(routed.buckets[0]) > len(routed.buckets[1])

    def test_deterministic_across_calls_and_input_order(self, specs3):
        reqs = [
            make_request(name=f"j{i}", tenant=f"t{i % 5}", submit=float(i % 7))
            for i in range(20)
        ]
        fabric = build_topology("leaf-spine:s=2,l=3",
                                bandwidth=specs3[0].testbed.path.bandwidth)
        topo_specs = [
            ShardSpec(f"p0-{i + 1}", specs3[0].testbed,
                      bottlenecks=("leaf0", f"leaf{i + 1}"))
            for i in range(2)
        ] + [ShardSpec("p1-2", specs3[0].testbed,
                       bottlenecks=("leaf1", "leaf2"))]
        for routing in ROUTING_POLICIES:
            specs = topo_specs if routing == "topology-aware" else specs3
            topology = fabric if routing == "topology-aware" else None
            a = route_requests(reqs, specs, routing=routing, topology=topology)
            b = route_requests(list(reversed(reqs)), specs, routing=routing,
                               topology=topology)
            assert (
                [[r.name for r in bucket] for bucket in a.buckets]
                == [[r.name for r in bucket] for bucket in b.buckets]
            )

    def test_stealing_relieves_saturated_shard(self, small_testbed):
        specs = [ShardSpec("a", small_testbed), ShardSpec("b", small_testbed)]
        # one tenant -> tenant-hash piles everything on one shard
        reqs = [make_request(name=f"j{i}", tenant="solo") for i in range(10)]
        routed = route_requests(reqs, specs, routing="tenant-hash",
                                steal_threshold=1.0)
        assert routed.steals > 0
        assert sum(routed.stolen_in) == sum(routed.stolen_out) == routed.steals
        assert sorted(r.name for bucket in routed.buckets for r in bucket) \
            == sorted(r.name for r in reqs)
        assert all(len(bucket) > 0 for bucket in routed.buckets)

    def test_stealing_disabled_with_none(self, small_testbed):
        specs = [ShardSpec("a", small_testbed), ShardSpec("b", small_testbed)]
        reqs = [make_request(name=f"j{i}", tenant="solo") for i in range(10)]
        routed = route_requests(reqs, specs, routing="tenant-hash",
                                steal_threshold=None)
        assert routed.steals == 0
        assert {len(b) for b in routed.buckets} == {0, 10}

    def test_least_loaded_never_steals(self, specs3):
        reqs = [make_request(name=f"j{i}", tenant="solo") for i in range(30)]
        routed = route_requests(reqs, specs3, routing="least-loaded",
                                steal_threshold=1.0)
        assert routed.steals == 0

    def test_validation(self, small_testbed, specs3):
        reqs = [make_request()]
        with pytest.raises(ValueError, match="unknown routing"):
            route_requests(reqs, specs3, routing="random")
        with pytest.raises(ValueError, match="steal_threshold"):
            route_requests(reqs, specs3, steal_threshold=0.5)
        with pytest.raises(ValueError, match="at least one shard"):
            route_requests(reqs, [])
        with pytest.raises(ValueError, match="duplicate shard names"):
            route_requests(
                reqs,
                [ShardSpec("a", small_testbed), ShardSpec("a", small_testbed)],
            )
        with pytest.raises(ValueError, match="non-empty"):
            ShardSpec("", small_testbed)
        with pytest.raises(ValueError, match="weight"):
            ShardSpec("a", small_testbed, weight=0.0)


# ----------------------------------------------------------------------
# the fleet simulator
# ----------------------------------------------------------------------


def small_fleet(testbed, **kwargs):
    defaults = dict(
        policy=RunNow(), tariff=flat_tariff(period_s=DAY),
        shards=2, routing="round-robin", max_concurrent_jobs=2, workers=1,
    )
    defaults.update(kwargs)
    return FleetSimulator(testbed, **defaults)


class TestSingleShardEquivalence:
    def test_matches_plain_service_bit_for_bit(self, small_testbed):
        """A one-shard fleet is the plain service: identical admission
        decisions and bit-equal energy/cost/carbon."""
        reqs = [
            make_request(name=f"j{i}", tenant=f"t{i % 2}",
                         sla_class=ENERGY if i % 3 == 0 else BALANCED,
                         submit=7.0 * i, deadline=7.0 * i + DAY)
            for i in range(6)
        ]
        plan_cache_clear()
        single = ServiceSimulator(
            small_testbed, policy=RunNow(), tariff=flat_tariff(period_s=DAY),
            max_concurrent_jobs=2, fast=True,
        ).run(reqs)
        plan_cache_clear()
        fleet = small_fleet(small_testbed, shards=1).run(reqs)
        shard = fleet.shards[0].report
        assert len(shard.jobs) == len(single.jobs)
        for a, b in zip(shard.jobs, single.jobs, strict=True):
            assert (a.name, a.released_at, a.admitted_at, a.completed_at,
                    a.deferral_reason) \
                == (b.name, b.released_at, b.admitted_at, b.completed_at,
                    b.deferral_reason)
            assert a.energy_j == b.energy_j       # bit-equal
            assert a.cost_usd == b.cost_usd
            assert a.kg_co2 == b.kg_co2
        assert fleet.total_energy_j == single.total_energy_j
        assert fleet.total_cost_usd == single.total_cost_usd
        assert fleet.total_kg_co2 == single.total_kg_co2
        assert fleet.makespan_s == single.makespan_s


class TestFleetMerge:
    """Merged accounting across >= 3 shards with disjoint tenants."""

    @pytest.fixture
    def report(self, small_testbed):
        tenants = disjoint_tenants(3)
        reqs = [
            make_request(name=f"{t}-{i}", tenant=t, submit=3.0 * i,
                         n_files=4, file_mb=2 + k)
            for k, t in enumerate(tenants) for i in range(3)
        ]
        fleet = small_fleet(
            small_testbed, shards=3, routing="tenant-hash",
            steal_threshold=None,
        )
        return fleet.run(reqs), tenants

    def test_totals_are_shard_sums(self, report):
        fleet, _ = report
        assert fleet.jobs_total == 9
        assert fleet.total_bytes == sum(
            s.report.total_bytes for s in fleet.shards
        )
        assert fleet.total_energy_j == sum(
            s.report.total_energy_j for s in fleet.shards
        )
        assert fleet.total_cost_usd == sum(
            s.report.total_cost_usd for s in fleet.shards
        )
        assert fleet.makespan_s == max(
            s.report.makespan_s for s in fleet.shards
        )
        assert sorted(fleet.slowdowns) == sorted(
            s for shard in fleet.shards for s in shard.report.slowdowns
        )

    def test_disjoint_tenants_stay_whole_rows(self, report):
        fleet, tenants = report
        assert sorted(fleet.per_tenant) == sorted(tenants)
        for shard in fleet.shards:
            assert len(shard.report.per_tenant) == 1
            ((tenant, row),) = shard.report.per_tenant.items()
            merged = fleet.per_tenant[tenant]
            for key in ("jobs", "bytes", "kwh", "cost_usd", "kg_co2",
                        "deferred", "deadline_misses", "mean_queue_wait_s"):
                assert merged[key] == pytest.approx(row[key])

    def test_to_dict_and_render_agree(self, report):
        fleet, tenants = report
        d = fleet.to_dict()
        json.dumps(d)  # JSON-safe throughout
        assert d["jobs"] == fleet.jobs_total == 9
        assert d["shards"] == 3
        assert d["total_kwh"] == pytest.approx(fleet.total_energy_j / 3.6e6)
        assert [row["shard"] for row in d["per_shard"]] == ["s0", "s1", "s2"]
        assert sorted(d["per_tenant"]) == sorted(tenants)
        text = fleet.render()
        for name in ("s0", "s1", "s2", *tenants):
            assert name in text
        assert f"{fleet.jobs_total} jobs" in text

    def test_shared_tenant_waits_reaverage(self, small_testbed):
        """The same tenant split across shards re-averages queue wait
        weighted by job count, not by shard."""
        reqs = [
            make_request(name=f"j{i}", tenant="shared", submit=0.0)
            for i in range(4)
        ]
        fleet = small_fleet(
            small_testbed, shards=2, routing="round-robin",
            max_concurrent_jobs=1,
        ).run(reqs)
        rows = [s.report.per_tenant["shared"] for s in fleet.shards]
        expected = (
            sum(r["mean_queue_wait_s"] * r["jobs"] for r in rows)
            / sum(r["jobs"] for r in rows)
        )
        merged = fleet.per_tenant["shared"]
        assert merged["jobs"] == 4
        assert merged["mean_queue_wait_s"] == pytest.approx(expected)

    def test_deterministic_report(self, small_testbed):
        reqs = [
            make_request(name=f"j{i}", tenant=f"t{i % 3}", submit=2.0 * i)
            for i in range(8)
        ]
        dumps = []
        for _ in range(2):
            plan_cache_clear()
            report = small_fleet(small_testbed, shards=3).run(reqs)
            dumps.append(
                json.dumps(strip_wall(report.to_dict()), sort_keys=True)
            )
        assert dumps[0] == dumps[1]


class TestFleetValidation:
    def test_constructor_rejects_bad_args(self, small_testbed):
        kwargs = dict(policy=RunNow(), tariff=flat_tariff(period_s=DAY))
        with pytest.raises(ValueError, match="exactly one"):
            FleetSimulator(**kwargs)
        with pytest.raises(ValueError, match="exactly one"):
            FleetSimulator(
                small_testbed,
                shard_specs=[ShardSpec("a", small_testbed)], **kwargs,
            )
        with pytest.raises(ValueError, match="shards must be >= 1"):
            FleetSimulator(small_testbed, shards=0, **kwargs)
        with pytest.raises(ValueError, match="unknown routing"):
            FleetSimulator(small_testbed, routing="bogus", **kwargs)
        with pytest.raises(ValueError, match="steal_threshold"):
            FleetSimulator(small_testbed, steal_threshold=0.0, **kwargs)
        with pytest.raises(ValueError, match="workers"):
            FleetSimulator(small_testbed, workers=0, **kwargs)
        with pytest.raises(ValueError, match="duplicate shard names"):
            FleetSimulator(
                shard_specs=[
                    ShardSpec("a", small_testbed), ShardSpec("a", small_testbed),
                ],
                **kwargs,
            )


# ----------------------------------------------------------------------
# observability: fleet events, counters, merged summaries
# ----------------------------------------------------------------------


class TestFleetObservability:
    def test_event_schema_has_fleet_kinds(self):
        assert EVENT_SCHEMA["shard_started"] == frozenset({"shard", "jobs"})
        assert EVENT_SCHEMA["shard_completed"] == frozenset(
            {"shard", "jobs", "wall_s"}
        )
        assert EVENT_SCHEMA["job_routed"] == frozenset({"job", "shard"})
        assert EVENT_SCHEMA["work_stolen"] == frozenset(
            {"job", "from_shard", "to_shard"}
        )

    def test_fleet_run_emits_lifecycle(self, small_testbed):
        observer = Observer()
        reqs = [make_request(name=f"j{i}", submit=2.0 * i) for i in range(4)]
        small_fleet(small_testbed, observer=observer).run(reqs)
        assert len(observer.events.filter(kind="job_routed")) == 4
        assert len(observer.events.filter(kind="shard_started")) == 2
        assert len(observer.events.filter(kind="shard_completed")) == 2
        metrics = observer.metrics
        assert metrics.counter("fleet.jobs_routed").value == 4
        assert metrics.counter("fleet.shard_starts").value == 2
        assert metrics.counter("fleet.shard_completions").value == 2
        assert metrics.counter("fleet.shard_jobs.s0").value == 2
        assert metrics.counter("fleet.shard_jobs.s1").value == 2
        # per-shard service counters were merged into the parent
        assert metrics.counter("service.jobs_completed").value == 4
        text = render_events(observer.events, kind="job_routed")
        assert "-> s0" in text

    def test_work_stolen_event_rendered(self, small_testbed):
        observer = Observer()
        specs = [ShardSpec("a", small_testbed), ShardSpec("b", small_testbed)]
        reqs = [make_request(name=f"j{i}", tenant="solo") for i in range(10)]
        routed = route_requests(reqs, specs, routing="tenant-hash",
                                steal_threshold=1.0, observer=observer)
        events = observer.events.filter(kind="work_stolen")
        assert len(events) == routed.steals > 0
        assert observer.metrics.counter("fleet.work_steals").value \
            == routed.steals
        text = render_events(observer.events, kind="work_stolen")
        assert "a -> b" in text or "b -> a" in text

    def test_merge_summaries_fleet_counters_and_histograms(self):
        a, b = Observer(), Observer()
        a.shard_completed(10.0, "s0", 5, 1.0)
        b.shard_completed(12.0, "s1", 7, 2.0)
        b.shard_completed(13.0, "s2", 3, 4.0)
        merged = merge_summaries([a.summary(), b.summary()])
        counters = merged["metrics"]["counters"]
        assert counters["fleet.shard_completions"] == 3
        hist = merged["metrics"]["histograms"]["fleet.shard_wall_s"]
        one = a.summary()["metrics"]["histograms"]["fleet.shard_wall_s"]
        assert hist["bounds"] == one["bounds"]  # bucket alignment held
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(7.0)
        assert sum(hist["counts"]) == 3
        assert merged["event_counts"]["shard_completed"] == 3

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=[1.0, 2.0]).observe(0.5)
        b.histogram("h", bounds=[1.0, 3.0]).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            merge_summaries([a.snapshot(), b.snapshot()])


# ----------------------------------------------------------------------
# warm-start context
# ----------------------------------------------------------------------


class TestWarmStart:
    def test_context_roundtrip(self, tmp_path, small_testbed):
        plan_cache_clear()
        fleet = small_fleet(small_testbed)
        fleet.run([make_request(name=f"j{i}") for i in range(4)])
        context = fleet.last_context
        assert context is not None and len(context) > 0
        assert context.source.startswith("fleet:2x")
        path = context.save(tmp_path / "ctx.pkl")
        loaded = FleetContext.load(path)
        assert loaded.entries == context.entries
        assert loaded.source == context.source

    def test_load_rejects_foreign_pickle(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with path.open("wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(TypeError, match="FleetContext"):
            FleetContext.load(path)

    def test_warm_run_never_misses_and_matches_cold(self, small_testbed):
        reqs = [
            make_request(name=f"j{i}", tenant=f"t{i % 2}", submit=3.0 * i,
                         n_files=4 + (i % 2), file_mb=2)
            for i in range(6)
        ]

        def run(warm):
            plan_cache_clear()
            observer = Observer()
            fleet = small_fleet(
                small_testbed, observer=observer, warm_context=warm,
            )
            report = fleet.run(reqs)
            counters = report.metrics["metrics"]["counters"]
            return report, fleet.last_context, counters

        cold_report, context, cold_counters = run(None)
        assert cold_counters["service.plan_cache_misses"] > 0
        warm_report, _, warm_counters = run(context)
        assert warm_counters.get("service.plan_cache_misses", 0) == 0
        assert warm_counters["service.plan_cache_hits"] \
            >= cold_counters["service.plan_cache_misses"]
        # the cache is an accelerator, never an answer-changer
        assert strip_wall(warm_report.to_dict()) \
            == strip_wall(cold_report.to_dict())


# ----------------------------------------------------------------------
# process-pool execution and the CLI
# ----------------------------------------------------------------------


class TestPoolPath:
    def test_pool_matches_inline(self):
        """Two worker processes produce the same report as inline
        execution (shards are independent simulations)."""
        testbed = named_testbed("xsede")
        reqs = [
            make_request(name=f"j{i}", tenant=f"t{i % 3}", submit=30.0 * i,
                         n_files=4, file_mb=200)
            for i in range(6)
        ]
        reports = []
        for workers in (1, 2):
            plan_cache_clear()
            fleet = FleetSimulator(
                testbed, policy=RunNow(),
                tariff=peak_offpeak_tariff(period_s=DAY),
                shards=2, routing="round-robin", workers=workers,
            )
            reports.append(strip_wall(fleet.run(reqs).to_dict()))
        assert reports[0] == reports[1]


class TestFleetServiceCLI:
    def test_json_report(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        code = cli_main([
            "fleet-service", "-t", "xsede", "--jobs", "8", "--shards", "2",
            "--day", "300", "--workers", "1", "--seed", "3",
            "--json", str(out),
        ])
        assert code == 0
        assert "Fleet day across 2 shards" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["jobs"] == 8
        assert data["routing"] == "tenant-hash"
        assert len(data["per_shard"]) == 2

    def test_context_roundtrip(self, tmp_path, capsys):
        ctx = tmp_path / "ctx.pkl"
        argv = [
            "fleet-service", "-t", "xsede", "--jobs", "6", "--shards", "2",
            "--day", "300", "--workers", "1", "--context", str(ctx),
        ]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert "context saved" in first and ctx.exists()
        assert cli_main(argv) == 0
        second = capsys.readouterr().out
        assert "warm-start context loaded" in second

    def test_rejects_unknown_routing(self, capsys):
        code = cli_main(["fleet-service", "--routing", "bogus"])
        assert code == 2
        assert "unknown routing" in capsys.readouterr().err
