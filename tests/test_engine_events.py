"""Structured engine event log."""


from repro import units
from repro.datasets.files import FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams


def build_engine(record_events=True, server_count=2, **kwargs) -> TransferEngine:
    server = ServerSpec(
        name="s", cores=4, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(50e6, 200e6), per_channel_rate=50e6, core_rate=200e6,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, server_count)
    path = NetworkPath(bandwidth=units.gbps(1), rtt=units.ms(5), tcp_buffer=8 * units.MB)
    return TransferEngine(path, site, site, lambda s, u: 5.0, dt=0.1,
                          record_events=record_events, **kwargs)


def plan(name="c", n=5, size=5 * units.MB, cc=2):
    files = tuple(FileInfo(f"{name}{i}", int(size)) for i in range(n))
    return ChunkPlan(name, files, TransferParams(concurrency=cc))


def kinds(engine):
    return [e.kind for e in engine.events]


class TestEventLog:
    def test_disabled_by_default(self):
        engine = build_engine(record_events=False)
        engine.add_chunk(plan())
        engine.run()
        assert engine.events == []

    def test_channel_lifecycle_events(self):
        engine = build_engine()
        engine.add_chunk(plan(cc=2))
        assert kinds(engine).count("channel_opened") == 2
        engine.set_chunk_channels("c", 1)
        assert kinds(engine).count("channel_closed") == 1

    def test_file_and_chunk_completion_events(self):
        engine = build_engine()
        engine.add_chunk(plan(n=4, cc=2))
        engine.run()
        file_events = [e for e in engine.events if e.kind == "file_completed"]
        assert sum(e.detail["count"] for e in file_events) == 4
        assert kinds(engine).count("chunk_drained") == 1

    def test_reassignment_event_on_steal(self):
        engine = build_engine()
        engine.add_chunk(plan("fast", n=1, cc=1))
        engine.add_chunk(plan("slow", n=4, cc=0), open_channels=False)
        engine.run()
        reassignments = [e for e in engine.events if e.kind == "channel_reassigned"]
        assert reassignments
        assert reassignments[0].detail == {"from_chunk": "fast", "to_chunk": "slow"}

    def test_failure_and_recovery_events(self):
        engine = build_engine()
        engine.add_chunk(plan(n=30, size=10 * units.MB, cc=4))
        engine.run(0.3)
        engine.fail_server("src", 0, downtime=0.5)
        engine.run(1.0)
        assert "server_failed" in kinds(engine)
        assert "server_recovered" in kinds(engine)
        failed = next(e for e in engine.events if e.kind == "server_failed")
        assert failed.detail["side"] == "src"
        assert failed.detail["channels_lost"] >= 1

    def test_channel_failure_event(self):
        engine = build_engine()
        engine.add_chunk(plan(n=10, size=20 * units.MB, cc=2))
        engine.run(0.3)
        victim = next(c for c in engine.channels if c.busy)
        engine.fail_channel(victim, restart_file=True)
        event = next(e for e in engine.events if e.kind == "channel_failed")
        assert event.detail["restart_file"] is True

    def test_events_are_time_ordered(self):
        engine = build_engine()
        engine.add_chunk(plan(n=8, cc=2))
        engine.run()
        times = [e.time for e in engine.events]
        assert times == sorted(times)


class TestEventCausalOrdering:
    """Failure events precede the state changes they cause."""

    def test_channel_failed_precedes_its_channel_closed(self):
        engine = build_engine()
        engine.add_chunk(plan(n=10, size=20 * units.MB, cc=2))
        engine.run(0.3)
        victim = next(c for c in engine.channels if c.busy)
        engine.fail_channel(victim)
        sequence = kinds(engine)
        assert "channel_failed" in sequence
        assert "channel_closed" in sequence
        assert sequence.index("channel_failed") < sequence.index("channel_closed")

    def test_server_failed_precedes_closures_and_reopens(self):
        engine = build_engine()
        engine.add_chunk(plan(n=30, size=10 * units.MB, cc=4))
        engine.run(0.3)
        mark = len(engine.events)
        engine.fail_server("src", 0, downtime=0.5)
        tail = [e.kind for e in engine.events[mark:]]
        assert tail[0] == "server_failed"
        lost = next(
            e for e in engine.events if e.kind == "server_failed"
        ).detail["channels_lost"]
        # every closure (and the reopen replacing it) comes after
        assert tail.count("channel_closed") == lost
        assert tail.count("channel_opened") == lost
        first_closed = tail.index("channel_closed")
        assert first_closed > 0

    def test_channel_failure_events_all_logged_at_same_time(self):
        engine = build_engine()
        engine.add_chunk(plan(n=10, size=20 * units.MB, cc=2))
        engine.run(0.3)
        victim = next(c for c in engine.channels if c.busy)
        mark = len(engine.events)
        engine.fail_channel(victim)
        assert len({e.time for e in engine.events[mark:]}) == 1


class TestWorkStealingAdoption:
    """A stolen channel adopts the target chunk's pp/p parameters."""

    def test_reassigned_channel_adopts_target_params(self):
        engine = build_engine()
        files_fast = tuple(FileInfo(f"f{i}", 2 * units.MB) for i in range(2))
        files_slow = tuple(FileInfo(f"s{i}", 30 * units.MB) for i in range(6))
        engine.add_chunk(
            ChunkPlan("fast", files_fast, TransferParams(pipelining=1, parallelism=1, concurrency=1))
        )
        engine.add_chunk(
            ChunkPlan("slow", files_slow, TransferParams(pipelining=8, parallelism=4, concurrency=1))
        )
        engine.run()
        reassigned = [e for e in engine.events if e.kind == "channel_reassigned"]
        assert reassigned and reassigned[0].detail["to_chunk"] == "slow"
        # after the steal the channel carries the slow chunk's parameters
        stolen = engine.channels_for("slow")
        assert all(c.pipelining == 8 and c.parallelism == 4 for c in stolen)

    def test_registry_follows_reassignment(self):
        engine = build_engine()
        files_fast = tuple(FileInfo(f"f{i}", 2 * units.MB) for i in range(2))
        files_slow = tuple(FileInfo(f"s{i}", 30 * units.MB) for i in range(6))
        engine.add_chunk(ChunkPlan("fast", files_fast, TransferParams(concurrency=1)))
        engine.add_chunk(ChunkPlan("slow", files_slow, TransferParams(concurrency=1)))
        engine.run()
        # per-chunk registry stayed consistent through the steal
        assert engine.channels_for("fast") == []
        assert len(engine.channels_for("slow")) == 2
        assert sorted(map(id, engine.channels)) == sorted(
            map(id, engine.channels_for("slow"))
        )
