"""Testbed JSON (de)serialization and CLI integration."""

import json

import pytest

from repro import units
from repro.cli import main
from repro.netsim.disk import ParallelDisk, PowerLawDisk, SingleDisk
from repro.testbeds import XSEDE
from repro.testbeds.io import load_testbed, save_testbed
from repro.testbeds.io import testbed_from_dict as build_testbed
from repro.testbeds.io import testbed_to_dict as dump_testbed


def minimal_definition(**overrides) -> dict:
    base = {
        "name": "MyLab",
        "path": {"bandwidth_gbps": 40, "rtt_ms": 12, "tcp_buffer_mb": 64},
        "server": {
            "cores": 16,
            "tdp_watts": 150,
            "nic_gbps": 40,
            "per_channel_rate_mbytes": 300,
            "core_rate_mbytes": 800,
            "disk": {"type": "parallel", "per_accessor_mbytes": 400, "array_mbytes": 3000},
        },
        "server_count": 2,
        "dataset": {"type": "uniform", "file_count": 10, "file_mb": 100},
    }
    base.update(overrides)
    return base


class TestFromDict:
    def test_minimal(self):
        tb = build_testbed(minimal_definition())
        assert tb.name == "MyLab"
        assert tb.path.bandwidth == pytest.approx(units.gbps(40))
        assert tb.path.rtt == pytest.approx(units.ms(12))
        assert tb.source.server.cores == 16
        assert tb.source.server_count == 2
        assert isinstance(tb.source.server.disk, ParallelDisk)

    def test_dataset_built(self):
        tb = build_testbed(minimal_definition())
        ds = tb.dataset()
        assert ds.file_count == 10
        assert ds.total_size == 10 * 100 * units.MB

    def test_preset_dataset(self):
        data = minimal_definition(dataset={"type": "preset", "name": "genomics"})
        tb = build_testbed(data)
        assert tb.dataset().file_count > 0

    def test_banded_dataset(self):
        data = minimal_definition(
            dataset={
                "type": "banded",
                "total_gb": 1,
                "bands": [
                    {"fraction": 0.5, "min_mb": 1, "max_mb": 10},
                    {"fraction": 0.5, "min_mb": 10, "max_mb": 100},
                ],
            }
        )
        assert build_testbed(data).dataset().total_size == units.GB

    @pytest.mark.parametrize(
        "disk,cls",
        [
            ({"type": "single", "peak_mbytes": 74}, SingleDisk),
            ({"type": "powerlaw", "single_mbytes": 60, "exponent": 0.2}, PowerLawDisk),
        ],
    )
    def test_disk_types(self, disk, cls):
        data = minimal_definition()
        data["server"]["disk"] = disk
        assert isinstance(build_testbed(data).source.server.disk, cls)

    def test_unknown_disk_type(self):
        data = minimal_definition()
        data["server"]["disk"] = {"type": "quantum"}
        with pytest.raises(ValueError, match="unknown disk type"):
            build_testbed(data)

    def test_unknown_dataset_type(self):
        with pytest.raises(ValueError, match="unknown dataset type"):
            build_testbed(minimal_definition(dataset={"type": "mystery"}))

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            build_testbed(
                minimal_definition(dataset={"type": "preset", "name": "nope"})
            )


class TestRoundTrip:
    def test_builtin_testbed_round_trips(self):
        data = dump_testbed(XSEDE)
        rebuilt = build_testbed(data)
        assert rebuilt.path.bandwidth == pytest.approx(XSEDE.path.bandwidth)
        assert rebuilt.path.rtt == pytest.approx(XSEDE.path.rtt)
        assert rebuilt.source.server.cores == XSEDE.source.server.cores
        assert rebuilt.source.server_count == XSEDE.source.server_count
        assert rebuilt.coefficients.scale == XSEDE.coefficients.scale
        assert type(rebuilt.source.server.disk) is type(XSEDE.source.server.disk)

    def test_file_round_trip(self, tmp_path):
        path = save_testbed(XSEDE, tmp_path / "xsede.json")
        rebuilt = load_testbed(path)
        assert rebuilt.name == "XSEDE"
        assert rebuilt.engine_dt == XSEDE.engine_dt


class TestCliIntegration:
    def test_transfer_on_json_testbed(self, tmp_path, capsys):
        path = tmp_path / "lab.json"
        path.write_text(json.dumps(minimal_definition()))
        assert main(["transfer", "-t", str(path), "-a", "MinE", "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "MyLab" in out

    def test_advise_on_json_testbed(self, tmp_path, capsys):
        path = tmp_path / "lab.json"
        path.write_text(json.dumps(minimal_definition()))
        assert main(["advise", "-t", str(path), "-c", "4"]) == 0
        assert "Transfer plan for MyLab" in capsys.readouterr().out


class TestAlgorithmsOnCustomTestbed:
    def test_full_stack_runs(self):
        from repro.harness.runner import run_algorithm

        tb = build_testbed(minimal_definition())
        outcome = run_algorithm(tb, "HTEE", 4)
        assert outcome.bytes_moved == pytest.approx(tb.dataset().total_size)
