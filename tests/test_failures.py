"""Failure injection: channel and server failures never lose data."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.datasets.files import FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import Binding, ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams


def build_engine(server_count=3, binding=Binding.SPREAD) -> TransferEngine:
    server = ServerSpec(
        name="s", cores=4, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(50e6, 200e6), per_channel_rate=50e6, core_rate=200e6,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, server_count)
    path = NetworkPath(bandwidth=units.gbps(1), rtt=units.ms(5), tcp_buffer=8 * units.MB)
    return TransferEngine(path, site, site, lambda s, u: 5.0, dt=0.1, binding=binding)


def add_files(engine, count=12, size=10 * units.MB, cc=4) -> float:
    files = tuple(FileInfo(f"f{i}", int(size)) for i in range(count))
    engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=cc)))
    return count * size


class TestChannelFailure:
    def test_resume_keeps_progress(self):
        engine = build_engine()
        total = add_files(engine)
        engine.run(0.5)
        victim = next(c for c in engine.channels if c.busy)
        engine.fail_channel(victim)
        engine.open_channel("c")
        engine.run()
        assert engine.finished
        assert engine.total_bytes == pytest.approx(total)
        assert engine.channel_failures == 1

    def test_restart_discards_progress(self):
        engine = build_engine()
        total = add_files(engine)
        engine.run(0.5)
        victim = next(c for c in engine.channels if c.busy)
        engine.fail_channel(victim, restart_file=True)
        engine.open_channel("c")
        engine.run()
        assert engine.finished
        # redone work: more bytes moved than the dataset holds
        assert engine.total_bytes > total
        assert engine.total_files == 12

    def test_unknown_channel_rejected(self):
        a = build_engine()
        b = build_engine()
        add_files(a)
        add_files(b)
        with pytest.raises(ValueError):
            a.fail_channel(b.channels[0])


class TestServerFailure:
    def test_reopen_moves_channels_to_survivors(self):
        engine = build_engine(server_count=3)
        add_files(engine, cc=6)
        engine.run(0.3)
        failed = engine.fail_server("src", 0, downtime=5.0)
        assert failed > 0
        assert all(c.src_server != 0 for c in engine.channels)
        assert len(engine.channels) == 6  # reconnected elsewhere
        engine.run()
        assert engine.finished

    def test_recovery_after_downtime(self):
        engine = build_engine(server_count=2)
        add_files(engine, count=40, cc=2)
        engine.run(0.3)
        engine.fail_server("src", 0, downtime=1.0)
        assert ("src", 0) in engine.down_servers
        engine.run(2.0)
        assert ("src", 0) not in engine.down_servers
        # new channels may use server 0 again (round-robin over both)
        engine.open_channel("c")
        engine.open_channel("c")
        assert any(c.src_server == 0 for c in engine.channels)

    def test_cannot_fail_last_server(self):
        engine = build_engine(server_count=1)
        add_files(engine)
        with pytest.raises(RuntimeError):
            engine.fail_server("src", 0)
        assert engine.down_servers == {}

    def test_validation(self):
        engine = build_engine()
        add_files(engine)
        with pytest.raises(ValueError):
            engine.fail_server("middle", 0)
        with pytest.raises(ValueError):
            engine.fail_server("src", 99)
        with pytest.raises(ValueError):
            engine.fail_server("src", 0, downtime=0)

    def test_pack_binding_fails_over_to_next_server(self):
        engine = build_engine(server_count=2, binding=Binding.PACK)
        add_files(engine, cc=3)
        assert {c.src_server for c in engine.channels} == {0}
        engine.fail_server("src", 0, downtime=10.0)
        assert {c.src_server for c in engine.channels} == {1}


class TestFailureStorm:
    @given(
        failures=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=2.0),  # when
                st.booleans(),  # restart_file
            ),
            min_size=0,
            max_size=5,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_random_channel_failures_never_lose_files(self, failures):
        engine = build_engine()
        add_files(engine, count=15, size=5 * units.MB, cc=4)
        for when, restart in sorted(failures):
            engine.run(when - engine.time if when > engine.time else 0.1)
            busy = [c for c in engine.channels if c.busy]
            if busy:
                engine.fail_channel(busy[0], restart_file=restart)
                engine.open_channel("c")
        engine.run()
        assert engine.finished
        assert engine.total_files == 15
        assert engine.total_bytes >= 15 * 5 * units.MB - 1e-6

    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_rolling_server_failures(self, seed):
        engine = build_engine(server_count=3)
        add_files(engine, count=20, size=5 * units.MB, cc=6)
        victim = seed % 3
        engine.run(0.4)
        engine.fail_server("src", victim, downtime=0.5)
        engine.run(0.4)
        engine.fail_server("dst", (victim + 1) % 3, downtime=0.5)
        engine.run()
        assert engine.finished
        assert engine.total_files == 20
