"""Wire-byte accounting: headers and congestion retransmissions."""

import pytest

from repro import units
from repro.datasets.files import FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams
from repro.netsim.tcp import loss_fraction


def path(knee=8, slope=0.02, header=0.037) -> NetworkPath:
    return NetworkPath(
        bandwidth=units.gbps(1), rtt=0.0, tcp_buffer=8 * units.MB,
        protocol_efficiency=1.0, congestion_knee=knee, congestion_slope=slope,
        header_overhead=header,
    )


def engine(p=None, cc=1) -> TransferEngine:
    server = ServerSpec(
        name="s", cores=8, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(50e6, 400e6), per_channel_rate=50e6, core_rate=200e6,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 1)
    e = TransferEngine(p or path(), site, site, lambda s, u: 1.0, dt=0.1)
    files = tuple(FileInfo(f"f{i}", 10 * units.MB) for i in range(10 * cc))
    e.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=cc)))
    return e


class TestLossFraction:
    def test_zero_below_knee(self):
        assert loss_fraction(path(knee=8), 8) == 0.0
        assert loss_fraction(path(knee=8), 1) == 0.0

    def test_grows_past_knee(self):
        p = path(knee=8, slope=0.02)
        assert loss_fraction(p, 9) == pytest.approx(0.02)
        assert loss_fraction(p, 13) == pytest.approx(1 - 0.98**5)

    def test_monotone(self):
        p = path(knee=4, slope=0.05)
        values = [loss_fraction(p, s) for s in range(0, 40)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            loss_fraction(path(), -1)


class TestEngineWireBytes:
    def test_headers_only_below_knee(self):
        e = engine(cc=1)
        e.run()
        expected = e.total_bytes * 1.037
        assert e.total_wire_bytes == pytest.approx(expected, rel=1e-9)

    def test_retransmissions_past_knee(self):
        # 12 channels, knee at 8: every step pays the loss tax
        e = engine(path(knee=8, slope=0.02), cc=12)
        e.run()
        headers_only = e.total_bytes * 1.037
        assert e.total_wire_bytes > headers_only * 1.02

    def test_zero_header_configuration(self):
        e = engine(path(header=0.0), cc=1)
        e.run()
        assert e.total_wire_bytes == pytest.approx(e.total_bytes)

    def test_header_validation(self):
        with pytest.raises(ValueError):
            path(header=-0.1)

    def test_outcome_carries_wire_bytes(self, small_testbed):
        from repro.harness.runner import run_algorithm

        outcome = run_algorithm(small_testbed, "ProMC", 2)
        assert outcome.extra["wire_bytes"] >= outcome.bytes_moved
