"""Testbed profiles match the published Figure 1 constants."""

import pytest

from repro import units
from repro.netsim.disk import ParallelDisk, PowerLawDisk, SingleDisk
from repro.testbeds.specs import ALL_TESTBEDS, DIDCLAB, FUTUREGRID, XSEDE
from repro.testbeds.specs import testbed_by_name as lookup_testbed


class TestPublishedConstants:
    def test_xsede_link(self):
        assert XSEDE.path.bandwidth == pytest.approx(units.gbps(10))
        assert XSEDE.path.rtt == pytest.approx(units.ms(40))
        assert XSEDE.path.tcp_buffer == pytest.approx(32 * units.MB)
        assert XSEDE.path.bdp == pytest.approx(50 * units.MB)

    def test_futuregrid_link(self):
        assert FUTUREGRID.path.bandwidth == pytest.approx(units.gbps(1))
        assert FUTUREGRID.path.rtt == pytest.approx(units.ms(28))
        assert FUTUREGRID.path.tcp_buffer == pytest.approx(32 * units.MB)

    def test_didclab_is_lan(self):
        assert DIDCLAB.path.bandwidth == pytest.approx(units.gbps(1))
        assert DIDCLAB.path.rtt <= units.ms(1)

    def test_xsede_has_four_transfer_servers(self):
        assert XSEDE.source.server_count == 4
        assert XSEDE.destination.server_count == 4

    def test_four_cores_everywhere(self):
        # the Eq. 2 parabola discussion assumes 4-core transfer nodes
        for tb in ALL_TESTBEDS:
            assert tb.source.server.cores == 4

    def test_disk_regimes(self):
        assert isinstance(XSEDE.source.server.disk, ParallelDisk)
        assert isinstance(FUTUREGRID.source.server.disk, PowerLawDisk)
        assert isinstance(DIDCLAB.source.server.disk, SingleDisk)

    def test_sla_reference_concurrency(self):
        assert XSEDE.sla_reference_concurrency == 12
        assert FUTUREGRID.sla_reference_concurrency == 12
        assert DIDCLAB.sla_reference_concurrency == 1

    def test_paper_concurrency_axis(self):
        for tb in ALL_TESTBEDS:
            assert tb.concurrency_levels == (1, 2, 4, 6, 8, 10, 12)
            assert tb.brute_force_max_concurrency == 20

    def test_datasets_match_network_class(self):
        assert XSEDE.dataset().total_size == 160 * units.GB
        assert FUTUREGRID.dataset().total_size == 40 * units.GB
        assert DIDCLAB.dataset().total_size == 40 * units.GB


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert lookup_testbed("xsede") is XSEDE
        assert lookup_testbed(" FutureGrid ") is FUTUREGRID

    def test_unknown(self):
        with pytest.raises(KeyError):
            lookup_testbed("cern")

    def test_describe(self):
        text = XSEDE.describe()
        assert "stampede-tacc" in text
        assert "4 transfer server(s)/site" in text
