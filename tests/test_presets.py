"""Domain workload presets."""

import pytest

from repro import units
from repro.core.chunks import ChunkClass, partition_files
from repro.datasets.presets import (
    WORKLOAD_PRESETS,
    climate_model_dataset,
    genomics_dataset,
    log_shipping_dataset,
    video_archive_dataset,
    vm_image_dataset,
)


class TestPresetShapes:
    def test_genomics_bimodal(self):
        ds = genomics_dataset()
        small = [f for f in ds if f.size < 10 * units.MB]
        large = [f for f in ds if f.size > 400 * units.MB]
        assert small and large
        assert sum(f.size for f in large) > 0.7 * ds.total_size

    def test_climate_uniform(self):
        ds = climate_model_dataset()
        assert ds.min_file_size == ds.max_file_size
        assert ds.total_size == pytest.approx(80 * units.GB, rel=0.01)

    def test_video_archive_masters_dominate(self):
        ds = video_archive_dataset()
        masters = sum(f.size for f in ds if f.size >= 4 * units.GB)
        assert masters > 0.6 * ds.total_size

    def test_log_shipping_many_small(self):
        ds = log_shipping_dataset()
        assert ds.file_count > 1000
        assert ds.average_file_size < 20 * units.MB

    def test_vm_images(self):
        ds = vm_image_dataset(count=4, image_size=units.GB)
        assert ds.file_count == 4
        assert all(f.size == units.GB for f in ds)


class TestPresetProperties:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_PRESETS))
    def test_deterministic(self, name):
        a = WORKLOAD_PRESETS[name]()
        b = WORKLOAD_PRESETS[name]()
        assert [f.size for f in a] == [f.size for f in b]

    @pytest.mark.parametrize("name", sorted(WORKLOAD_PRESETS))
    def test_nonempty_positive_sizes(self, name):
        ds = WORKLOAD_PRESETS[name]()
        assert ds.file_count > 0
        assert ds.min_file_size > 0

    def test_presets_span_partitioning_regimes(self):
        # across the preset library, the XSEDE partitioner should see
        # every chunk class (that is what makes them useful fixtures)
        bdp = 50 * units.MB
        seen = set()
        for factory in WORKLOAD_PRESETS.values():
            for chunk in partition_files(factory(), bdp):
                seen.add(chunk.chunk_class)
        assert seen == {ChunkClass.SMALL, ChunkClass.MEDIUM, ChunkClass.LARGE}
