"""The observability layer: metric primitives, the schema-checked
event stream, the Observer facade, and its integration with the
engine and the algorithms."""

import json

import pytest

from repro.core.htee import HTEEAlgorithm, probe_ladder
from repro.core.mine import MinEAlgorithm
from repro.core.scheduler import current_observer, engine_options
from repro.obs import (
    EVENT_SCHEMA,
    Counter,
    EventStream,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observer,
    merge_summaries,
    render_events,
    render_metrics,
)


# ----------------------------------------------------------------------
# metric primitives
# ----------------------------------------------------------------------


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        assert g.value == 7


class TestHistogram:
    def test_buckets_and_overflow(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        assert h.mean == pytest.approx(55.5 / 3)

    def test_boundary_is_inclusive(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(10.0, 1.0))

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc()
        assert reg.counter("a").value == 2

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", (1.0,)).observe(0.2)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"] == {"c": 3.0}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 5)):
            reg.counter("c").inc(n)
            reg.gauge("g").set(n)
            reg.histogram("h", (1.0, 10.0)).observe(n)
        a.merge_snapshot(b.snapshot())
        assert a.counter("c").value == 7
        assert a.gauge("g").value == 5  # last write wins
        assert a.histogram("h").count == 2

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1.0,)).observe(0.5)
        b.histogram("h", (2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())


class TestMergeSummaries:
    def test_merges_bare_snapshots(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        merged = merge_summaries([reg.snapshot(), reg.snapshot()])
        assert merged["counters"]["c"] == 4

    def test_merges_observer_summaries(self):
        o = Observer()
        o.probe_window(1.0, "HTEE", 3, 1e9, 10.0, 5.0)
        merged = merge_summaries([o.summary(), o.summary()])
        assert merged["metrics"]["counters"]["algo.probe_windows"] == 2
        assert merged["event_counts"] == {"probe_window": 2}
        assert merged["events_total"] == 2

    def test_empty_iterable(self):
        assert merge_summaries([]) == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


# ----------------------------------------------------------------------
# event stream
# ----------------------------------------------------------------------


class TestEventStream:
    def test_emit_assigns_monotone_seq(self):
        stream = EventStream()
        stream.emit(1.0, "macro_step", steps=5, span_s=0.5)
        stream.emit(2.0, "fixed_dt_fallback", steps=3)
        assert [e.seq for e in stream] == [0, 1]
        stream.validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventStream().emit(0.0, "nope")

    def test_missing_detail_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required detail keys"):
            EventStream().emit(0.0, "probe_window", algorithm="HTEE")

    def test_extra_detail_keys_allowed(self):
        stream = EventStream()
        stream.emit(0.0, "fixed_dt_fallback", steps=1, note="forward-compat")
        stream.validate()

    def test_filter_by_kind_and_since(self):
        stream = EventStream()
        stream.emit(1.0, "macro_step", steps=1, span_s=0.1)
        stream.emit(2.0, "fixed_dt_fallback", steps=1)
        stream.emit(3.0, "macro_step", steps=2, span_s=0.2)
        assert len(stream.filter(kind="macro_step")) == 2
        assert len(stream.filter(since=2.5)) == 1
        assert len(stream.filter(kind="macro_step", since=2.5)) == 1

    def test_kinds_counts(self):
        stream = EventStream()
        stream.emit(0.0, "fixed_dt_fallback", steps=1)
        stream.emit(0.0, "fixed_dt_fallback", steps=2)
        assert stream.kinds() == {"fixed_dt_fallback": 2}

    def test_roundtrip_dicts(self):
        stream = EventStream()
        stream.emit(1.5, "allocation_change", allocation={"c0": 2})
        rebuilt = EventStream.from_dicts(stream.to_dicts())
        rebuilt.validate()
        assert rebuilt[0].detail["allocation"] == {"c0": 2}

    def test_save_jsonl(self, tmp_path):
        stream = EventStream()
        stream.emit(1.0, "macro_step", steps=4, span_s=0.4)
        path = stream.save_jsonl(tmp_path / "events.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "macro_step"

    def test_extend_resequences(self):
        a, b = EventStream(), EventStream()
        a.emit(1.0, "fixed_dt_fallback", steps=1)
        b.emit(2.0, "fixed_dt_fallback", steps=2)
        a.extend(b)
        assert [e.seq for e in a] == [0, 1]
        a.validate()

    def test_schema_covers_all_required_kinds(self):
        expected = {
            "probe_window", "allocation_change", "rearrange_channels",
            "macro_step", "fixed_dt_fallback", "channel_reassigned",
            "channel_failed", "server_failed", "server_recovered",
        }
        assert expected <= set(EVENT_SCHEMA)


# ----------------------------------------------------------------------
# observer facade
# ----------------------------------------------------------------------


class TestObserver:
    def test_probe_window_updates_all_three_instrument_types(self):
        o = Observer()
        o.probe_window(5.0, "HTEE", 3, 1e9, 20.0, 4.0)
        snap = o.metrics.snapshot()
        assert snap["counters"]["algo.probe_windows"] == 1
        assert snap["gauges"]["algo.last_probe_cc"] == 3
        assert snap["histograms"]["algo.probe_score"]["count"] == 1
        assert o.events.kinds() == {"probe_window": 1}

    def test_engine_event_counts_and_forwards(self):
        o = Observer()
        o.engine_event(1.0, "channel_opened", {"chunk": "c0"})
        o.engine_event(2.0, "channel_reassigned", {"from_chunk": "a", "to_chunk": "b"})
        o.engine_event(3.0, "file_completed", {"count": 4})
        snap = o.metrics.snapshot()
        assert snap["counters"]["engine.events.channel_opened"] == 1
        assert snap["counters"]["engine.work_steals"] == 1
        assert snap["counters"]["engine.files_completed"] == 4
        # only structural kinds reach the stream
        assert o.events.kinds() == {"channel_reassigned": 1}

    def test_summary_merge_roundtrip(self):
        a, b = Observer(), Observer()
        a.macro_step(1.0, 10, 1.0)
        b.macro_step(2.0, 20, 2.0)
        a.merge_summary(b.summary())
        assert a.metrics.counter("engine.macro_stepped_dts").value == 30

    def test_renderers_smoke(self):
        o = Observer()
        o.probe_window(5.0, "HTEE", 3, 1e9, 20.0, 4.0)
        o.allocation_change(6.0, {"c0": 2, "c1": 1})
        assert "probe_window" in render_events(o.events)
        assert "(no events)" == render_events(Observer().events)
        text = render_metrics(o.summary())
        assert "algo.probe_windows" in text
        assert "events_total: 2" in text
        assert render_metrics({"metrics": {}}) == "(no metrics)"


# ----------------------------------------------------------------------
# integration: engine_options(observe=...) and instrumented algorithms
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_observe_true_installs_fresh_observer(self):
        assert current_observer() is None
        with engine_options(observe=True):
            assert isinstance(current_observer(), Observer)
        assert current_observer() is None

    def test_observe_accepts_instance(self):
        obs = Observer()
        with engine_options(observe=obs):
            assert current_observer() is obs

    def test_htee_emits_schema_valid_stream(self, small_testbed):
        """ISSUE acceptance: an observed HTEE run yields a non-empty,
        schema-checked event stream."""
        obs = Observer()
        with engine_options(observe=obs):
            HTEEAlgorithm().run(small_testbed, small_testbed.dataset(), 4)
        assert len(obs.events) > 0
        obs.events.validate()  # schema + monotone seq
        kinds = obs.events.kinds()
        assert kinds.get("probe_window", 0) >= 1
        assert kinds.get("allocation_change", 0) >= 1

    def test_probe_events_monotone_in_engine_time(self, small_testbed):
        obs = Observer()
        with engine_options(observe=obs):
            HTEEAlgorithm().run(small_testbed, small_testbed.dataset(), 6)
        probes = obs.events.filter(kind="probe_window")
        times = [e.time for e in probes]
        assert times == sorted(times)
        seqs = [e.seq for e in probes]
        assert seqs == sorted(seqs)
        # probe ladder order is reflected in the stream
        ccs = [e.detail["cc"] for e in probes]
        assert ccs == probe_ladder(6)[: len(ccs)]

    def test_one_allocation_change_per_set_allocation(self, small_testbed):
        """Every set_allocation emits exactly one allocation_change:
        HTEE applies one allocation per probe plus the final one."""
        obs = Observer()
        with engine_options(observe=obs):
            outcome = HTEEAlgorithm().run(small_testbed, small_testbed.dataset(), 6)
        probes = len(outcome.extra["probes"])
        changes = obs.events.filter(kind="allocation_change")
        assert len(changes) == probes + 1

    def test_mine_records_planned_allocation(self, small_testbed):
        obs = Observer()
        with engine_options(observe=obs):
            MinEAlgorithm().run(small_testbed, small_testbed.dataset(), 4)
        changes = obs.events.filter(kind="allocation_change")
        assert len(changes) >= 1
        assert changes[0].seq == 0  # planned allocation is the first event

    def test_step_accounting_consistent(self, small_testbed):
        obs = Observer()
        with engine_options(observe=obs):
            MinEAlgorithm().run(small_testbed, small_testbed.dataset(), 2)
        snap = obs.metrics.snapshot()
        fixed = snap["counters"].get("engine.fixed_steps", 0)
        macro = snap["counters"].get("engine.macro_stepped_dts", 0)
        assert fixed + macro > 0
        # every macro_step event's steps sum to the macro-dts counter
        event_steps = sum(
            e.detail["steps"] for e in obs.events.filter(kind="macro_step")
        )
        assert event_steps == macro

    def test_slaee_emits_probe_windows(self, small_testbed):
        from repro.core.slaee import SLAEEAlgorithm

        obs = Observer()
        with engine_options(observe=obs):
            SLAEEAlgorithm().run(
                small_testbed, small_testbed.dataset(), 4,
                sla_level=0.8, max_throughput=1e9,
            )
        obs.events.validate()
        assert len(obs.events.filter(kind="probe_window")) >= 1

    def test_disabled_by_default(self, small_testbed):
        MinEAlgorithm().run(small_testbed, small_testbed.dataset(), 2)
        assert current_observer() is None
