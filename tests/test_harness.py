"""Harness: metrics, runner registry, sweeps, figure renderers."""

import pytest

from repro import units
from repro.core.scheduler import TransferOutcome
from repro.harness.metrics import (
    DecompositionRecord,
    SlaRecord,
    deviation_ratio,
    energy_saving_pct,
    normalized_efficiencies,
)
from repro.harness.runner import ALGORITHMS, CONCURRENCY_INDEPENDENT, run_algorithm
from repro.harness.sweeps import (
    brute_force_sweep,
    concurrency_sweep,
    energy_decomposition,
    sla_sweep,
)
from repro.harness import figures


def outcome(alg="X", thr_mbps=1000.0, joules=1000.0, seconds=100.0) -> TransferOutcome:
    rate = units.mbps(thr_mbps)
    return TransferOutcome(
        algorithm=alg,
        testbed="T",
        max_channels=4,
        duration_s=seconds,
        bytes_moved=rate * seconds,
        energy_joules=joules,
    )


class TestMetrics:
    def test_throughput_and_efficiency(self):
        o = outcome(thr_mbps=800.0, joules=400.0)
        assert o.throughput_mbps == pytest.approx(800.0)
        assert o.efficiency == pytest.approx(2.0)

    def test_zero_duration(self):
        o = TransferOutcome("a", "t", 1, 0.0, 0.0, 0.0)
        assert o.throughput == 0.0
        assert o.efficiency == 0.0

    def test_deviation_ratio(self):
        assert deviation_ratio(110.0, 100.0) == pytest.approx(10.0)
        assert deviation_ratio(95.0, 100.0) == pytest.approx(-5.0)
        with pytest.raises(ValueError):
            deviation_ratio(1.0, 0.0)

    def test_energy_saving(self):
        assert energy_saving_pct(100.0, 70.0) == pytest.approx(30.0)
        assert energy_saving_pct(100.0, 120.0) == pytest.approx(-20.0)
        with pytest.raises(ValueError):
            energy_saving_pct(0.0, 1.0)

    def test_normalized_efficiencies(self):
        outs = {"a": outcome(joules=500.0), "b": outcome(joules=1000.0)}
        normalized = normalized_efficiencies(outs, reference=outs["a"].efficiency)
        assert normalized["a"] == pytest.approx(1.0)
        assert normalized["b"] == pytest.approx(0.5)
        with pytest.raises(ValueError):
            normalized_efficiencies(outs, reference=0.0)

    def test_sla_record(self):
        rec = SlaRecord(
            target_pct=80.0,
            target_throughput=units.mbps(800),
            achieved_throughput=units.mbps(840),
            energy_joules=700.0,
            reference_throughput=units.mbps(1000),
            reference_energy_joules=1000.0,
            final_concurrency=4,
        )
        assert rec.deviation_pct == pytest.approx(5.0)
        assert rec.energy_saving_vs_reference_pct == pytest.approx(30.0)

    def test_decomposition_record(self):
        rec = DecompositionRecord("X", end_system_joules=90.0, network_joules=10.0)
        assert rec.total_joules == pytest.approx(100.0)
        assert rec.network_share_pct == pytest.approx(10.0)

    def test_decomposition_zero_total(self):
        assert DecompositionRecord("X", 0.0, 0.0).network_share_pct == 0.0

    def test_summary_string(self):
        text = outcome().summary()
        assert "X" in text and "Mbps" in text


class TestRunner:
    def test_registry_contains_paper_algorithms(self):
        assert set(ALGORITHMS) == {"GUC", "GO", "SC", "MinE", "ProMC", "HTEE"}
        assert CONCURRENCY_INDEPENDENT == {"GUC", "GO"}

    def test_run_algorithm_by_name(self, small_testbed):
        ds = small_testbed.dataset()
        out = run_algorithm(small_testbed, "MinE", 4, ds)
        assert out.algorithm == "MinE"
        assert out.bytes_moved == pytest.approx(ds.total_size)

    def test_unknown_algorithm(self, small_testbed):
        with pytest.raises(KeyError):
            run_algorithm(small_testbed, "nope", 4, small_testbed.dataset())


class TestSweeps:
    def test_concurrency_sweep_structure(self, small_testbed):
        ds = small_testbed.dataset()
        sweep = concurrency_sweep(
            small_testbed, algorithms=("GUC", "SC", "MinE"), levels=(1, 2), dataset=ds
        )
        assert sweep.levels == (1, 2)
        assert set(sweep.series) == {"GUC", "SC", "MinE"}
        for series in sweep.series.values():
            assert len(series) == 2

    def test_concurrency_independent_algorithms_flat(self, small_testbed):
        ds = small_testbed.dataset()
        sweep = concurrency_sweep(
            small_testbed, algorithms=("GUC",), levels=(1, 2, 4), dataset=ds
        )
        energies = sweep.energies_joules("GUC")
        assert energies[0] == energies[1] == energies[2]

    def test_sweep_accessors(self, small_testbed):
        ds = small_testbed.dataset()
        sweep = concurrency_sweep(small_testbed, algorithms=("SC",), levels=(1, 2), dataset=ds)
        assert len(sweep.throughputs_mbps("SC")) == 2
        assert sweep.best_efficiency("SC") == max(sweep.efficiencies("SC"))

    def test_unknown_algorithm_rejected(self, small_testbed):
        with pytest.raises(KeyError):
            concurrency_sweep(small_testbed, algorithms=("nope",), levels=(1,))

    def test_brute_force_sweep(self, small_testbed):
        ds = small_testbed.dataset()
        outcomes = brute_force_sweep(small_testbed, levels=(1, 2, 3), dataset=ds)
        assert [o.max_channels for o in outcomes] == [1, 2, 3]

    def test_sla_sweep_records(self, small_testbed):
        ds = small_testbed.dataset()
        records = sla_sweep(small_testbed, targets_pct=(90.0, 50.0), dataset=ds)
        assert [r.target_pct for r in records] == [90.0, 50.0]
        for r in records:
            assert r.achieved_throughput > 0
            assert r.energy_joules > 0
            assert r.reference_throughput > 0

    def test_energy_decomposition_uses_topology(self):
        from repro.testbeds import DIDCLAB
        from repro.datasets.files import Dataset, FileInfo

        tiny = Dataset([FileInfo("a", 50 * units.MB), FileInfo("b", 20 * units.MB)])
        rec = energy_decomposition(DIDCLAB, max_channels=1, dataset=tiny)
        assert rec.testbed == "DIDCLAB"
        assert rec.end_system_joules > rec.network_joules > 0


class TestFigureRenderers:
    def test_testbed_specs_table(self):
        text = figures.render_testbed_specs()
        for name in ("XSEDE", "FutureGrid", "DIDCLAB"):
            assert name in text
        assert "10 Gbps" in text

    def test_concurrency_figure(self, small_testbed):
        ds = small_testbed.dataset()
        sweep = concurrency_sweep(small_testbed, algorithms=("GUC", "SC"), levels=(1, 2),
                                  dataset=ds)
        text = figures.render_concurrency_figure(sweep)
        assert "Throughput vs concurrency" in text
        assert "Energy vs concurrency" in text

    def test_efficiency_panel(self, small_testbed):
        ds = small_testbed.dataset()
        sweep = concurrency_sweep(small_testbed, algorithms=("SC",), levels=(1, 2), dataset=ds)
        bf = brute_force_sweep(small_testbed, levels=(1, 2), dataset=ds)
        text = figures.render_efficiency_panel(sweep, bf)
        assert "Normalized throughput/energy" in text

    def test_sla_figure(self, small_testbed):
        ds = small_testbed.dataset()
        records = sla_sweep(small_testbed, targets_pct=(80.0,), dataset=ds)
        text = figures.render_sla_figure("T", records)
        assert "80%" in text
        assert "deviation" in text

    def test_device_model_curves(self):
        text = figures.render_device_model_curves()
        assert "non-linear" in text
        assert "state-based" in text

    def test_topologies(self):
        from repro.netenergy.topology import xsede_topology

        text = figures.render_topologies([xsede_topology()])
        assert "XSEDE" in text

    def test_decomposition(self):
        recs = [DecompositionRecord("X", 90.0, 10.0)]
        text = figures.render_decomposition(recs)
        assert "network share" in text

    def test_table1(self):
        text = figures.render_table1()
        assert "1571" in text and "21.60" in text
