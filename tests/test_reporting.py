"""Result export, trace serialization, sparklines."""

import pytest

from repro import units
from repro.core.scheduler import TransferOutcome, engine_options
from repro.harness.reporting import (
    load_outcomes_json,
    load_trace_csv,
    outcome_from_dict,
    outcome_to_dict,
    render_trace,
    save_outcomes_json,
    save_trace_csv,
    sparkline,
)
from repro.netsim.engine import StepRecord


def outcome(**overrides) -> TransferOutcome:
    base = dict(
        algorithm="HTEE",
        testbed="XSEDE",
        max_channels=12,
        duration_s=200.0,
        bytes_moved=160 * units.GB,
        energy_joules=17000.0,
        files_moved=2500,
        steady_throughput=8e8,
        final_concurrency=7,
        extra={"probes": [(1, 2.0, 3.0, 4.0)]},
    )
    base.update(overrides)
    return TransferOutcome(**base)


class TestOutcomeSerialization:
    def test_round_trip(self):
        original = outcome()
        restored = outcome_from_dict(outcome_to_dict(original))
        assert restored.algorithm == original.algorithm
        assert restored.bytes_moved == original.bytes_moved
        assert restored.energy_joules == original.energy_joules
        assert restored.final_concurrency == original.final_concurrency
        assert restored.throughput == pytest.approx(original.throughput)

    def test_dict_contains_derived_fields(self):
        data = outcome_to_dict(outcome())
        assert data["throughput_mbps"] == pytest.approx(6400.0)
        assert data["efficiency"] > 0

    def test_extra_is_json_safe(self):
        import json

        data = outcome_to_dict(outcome(extra={"obj": object(), "nested": {"k": (1, 2)}}))
        json.dumps(data)  # must not raise

    def test_save_and_load_json(self, tmp_path):
        path = tmp_path / "runs.json"
        save_outcomes_json([outcome(), outcome(algorithm="MinE")], path)
        loaded = load_outcomes_json(path)
        assert [o.algorithm for o in loaded] == ["HTEE", "MinE"]


class TestTraceSerialization:
    TRACE = [
        StepRecord(time=0.25, throughput=1e8, power=50.0, active_channels=4),
        StepRecord(time=0.50, throughput=1.2e8, power=55.0, active_channels=4),
    ]

    def test_round_trip_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(self.TRACE, path)
        loaded = load_trace_csv(path)
        assert len(loaded) == 2
        assert loaded[0].time == pytest.approx(0.25)
        assert loaded[1].throughput == pytest.approx(1.2e8)
        assert loaded[1].active_channels == 4

    def test_render_trace(self):
        text = render_trace(self.TRACE)
        assert "2 steps" in text
        assert "Mbps" in text

    def test_render_empty(self):
        assert render_trace([]) == "(empty trace)"


class TestSparkline:
    def test_constant_series(self):
        assert sparkline([5.0] * 10) == "▁" * 10

    def test_monotone_series_is_nondecreasing(self):
        line = sparkline(list(range(100)), width=10)
        levels = "▁▂▃▄▅▆▇█"
        indices = [levels.index(ch) for ch in line]
        assert indices == sorted(indices)
        assert len(line) == 10

    def test_empty(self):
        assert sparkline([]) == ""

    def test_short_series(self):
        assert len(sparkline([1.0, 2.0], width=60)) == 2

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestEngineOptions:
    def test_trace_attached_when_enabled(self, small_testbed):
        from repro.harness.runner import run_algorithm

        ds = small_testbed.dataset()
        with engine_options(record_trace=True):
            traced = run_algorithm(small_testbed, "ProMC", 2, ds)
        assert "trace" in traced.extra
        assert len(traced.extra["trace"]) > 0

    def test_trace_absent_by_default(self, small_testbed):
        from repro.harness.runner import run_algorithm

        ds = small_testbed.dataset()
        plain = run_algorithm(small_testbed, "ProMC", 2, ds)
        assert "trace" not in plain.extra

    def test_option_is_restored_after_context(self, small_testbed):
        from repro.core.scheduler import _ENGINE_DEFAULTS

        with engine_options(record_trace=True):
            assert _ENGINE_DEFAULTS["record_trace"]
        assert not _ENGINE_DEFAULTS["record_trace"]

    def test_sequential_runner_attaches_trace(self, small_testbed):
        from repro.harness.runner import run_algorithm

        ds = small_testbed.dataset()
        with engine_options(record_trace=True):
            traced = run_algorithm(small_testbed, "SC", 2, ds)
        assert "trace" in traced.extra
