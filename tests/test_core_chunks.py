"""Dataset partitioning: partitionFiles / mergeChunks."""

import pytest

from repro import units
from repro.core.chunks import Chunk, ChunkClass, PartitionPolicy, merge_chunks, partition_files
from repro.datasets.files import Dataset, FileInfo

BDP = 50 * units.MB


def dataset(*sizes):
    return Dataset.from_sizes(list(sizes))


class TestPartitionPolicy:
    def test_default_classification(self):
        policy = PartitionPolicy()
        assert policy.classify(10 * units.MB, BDP) is ChunkClass.SMALL
        assert policy.classify(100 * units.MB, BDP) is ChunkClass.MEDIUM
        assert policy.classify(2 * units.GB, BDP) is ChunkClass.LARGE

    def test_boundaries(self):
        policy = PartitionPolicy(small_factor=1.0, large_factor=20.0)
        assert policy.classify(BDP - 1, BDP) is ChunkClass.SMALL
        assert policy.classify(BDP, BDP) is ChunkClass.MEDIUM
        assert policy.classify(20 * BDP, BDP) is ChunkClass.LARGE

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionPolicy(small_factor=0)
        with pytest.raises(ValueError):
            PartitionPolicy(small_factor=2.0, large_factor=1.0)
        with pytest.raises(ValueError):
            PartitionPolicy(min_bytes_fraction=1.0)


class TestPartitionFiles:
    def test_every_file_assigned_exactly_once(self):
        ds = dataset(*(units.MB * (i + 1) for i in range(100)))
        chunks = partition_files(ds, 20 * units.MB)
        names = sorted(f.name for c in chunks for f in c.files)
        assert names == sorted(f.name for f in ds)

    def test_three_classes_with_mixed_dataset(self):
        ds = dataset(units.MB, units.MB, 200 * units.MB, 300 * units.MB, 2 * units.GB, 3 * units.GB)
        chunks = partition_files(ds, BDP, PartitionPolicy(min_files=0, min_bytes_fraction=0.0))
        assert [c.chunk_class for c in chunks] == [
            ChunkClass.SMALL,
            ChunkClass.MEDIUM,
            ChunkClass.LARGE,
        ]

    def test_order_small_to_large(self):
        ds = dataset(3 * units.GB, units.MB, 200 * units.MB, 2 * units.MB, 4 * units.GB,
                     300 * units.MB)
        chunks = partition_files(ds, BDP, PartitionPolicy(min_files=0, min_bytes_fraction=0.0))
        classes = [int(c.chunk_class) for c in chunks]
        assert classes == sorted(classes)

    def test_homogeneous_dataset_single_chunk(self):
        ds = dataset(*[units.MB] * 10)
        chunks = partition_files(ds, BDP)
        assert len(chunks) == 1
        assert chunks[0].chunk_class is ChunkClass.SMALL

    def test_empty_dataset(self):
        assert partition_files(Dataset([]), BDP) == []

    def test_negative_bdp_rejected(self):
        with pytest.raises(ValueError):
            partition_files(dataset(units.MB), -1)

    def test_chunk_statistics(self):
        ds = dataset(10 * units.MB, 20 * units.MB)
        (chunk,) = partition_files(ds, BDP)
        assert chunk.total_size == 30 * units.MB
        assert chunk.file_count == 2
        assert chunk.average_file_size == pytest.approx(15 * units.MB)
        assert chunk.name == "small"


class TestMergeChunks:
    def test_tiny_chunk_merged_into_neighbor(self):
        # one lone small file among a sea of large files
        ds = dataset(units.MB, *[2 * units.GB] * 10)
        chunks = partition_files(ds, BDP, PartitionPolicy(min_files=2, min_bytes_fraction=0.02))
        assert len(chunks) == 1
        assert chunks[0].file_count == 11

    def test_substantial_chunks_not_merged(self):
        ds = dataset(*[units.MB] * 100, *[2 * units.GB] * 5)
        chunks = partition_files(ds, BDP)
        assert len(chunks) == 2

    def test_merge_preserves_files(self):
        ds = dataset(units.MB, 100 * units.MB, *[2 * units.GB] * 5)
        chunks = partition_files(ds, BDP)
        total = sum(c.total_size for c in chunks)
        assert total == ds.total_size

    def test_single_chunk_never_merged_away(self):
        chunk = Chunk(ChunkClass.SMALL, (FileInfo("a", 1),))
        assert merge_chunks([chunk], 1) == [chunk]

    def test_merge_prefers_nearest_class(self):
        small = Chunk(ChunkClass.SMALL, tuple(FileInfo(f"s{i}", units.MB) for i in range(50)))
        medium = Chunk(ChunkClass.MEDIUM, (FileInfo("m", 100 * units.MB),))
        large = Chunk(ChunkClass.LARGE, tuple(FileInfo(f"l{i}", units.GB) for i in range(50)))
        total = small.total_size + medium.total_size + large.total_size
        merged = merge_chunks([small, medium, large], total)
        # the lone medium file should fold into large (closest by class,
        # larger by bytes)
        assert len(merged) == 2
        large_result = [c for c in merged if c.chunk_class is ChunkClass.LARGE][0]
        assert any(f.name == "m" for f in large_result.files)

    def test_merge_zero_total_rejected(self):
        with pytest.raises(ValueError):
            merge_chunks([], -1)
