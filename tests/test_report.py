"""The one-shot evaluation report generator."""

import pytest

from repro.harness.report import generate_report, write_report
from repro.testbeds import DIDCLAB


@pytest.fixture(scope="module")
def quick_report() -> str:
    return generate_report([DIDCLAB], quick=True)


class TestGenerateReport:
    def test_contains_every_section(self, quick_report):
        for heading in (
            "Figure 1 — testbeds",
            "DIDCLAB concurrency sweep",
            "DIDCLAB SLA transfers",
            "Figure 8 — device power models",
            "Figure 9 — topologies",
            "Figure 10 — end-system vs network energy",
            "Table 1 — device coefficients",
        ):
            assert heading in quick_report

    def test_is_markdown(self, quick_report):
        assert quick_report.startswith("# ")
        assert "```text" in quick_report

    def test_quick_restricts_levels(self, quick_report):
        import re

        panel_a = quick_report.split("(a) Throughput vs concurrency")[1].split("(b)")[0]
        level_rows = [
            line for line in panel_a.splitlines() if re.match(r"\s*\d+\s{2}", line)
        ]
        assert len(level_rows) == 3  # quick mode: cc in {1, 4, 12}

    def test_sla_optional(self):
        text = generate_report([DIDCLAB], quick=True, include_sla=False)
        assert "SLA transfers" not in text

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", [DIDCLAB], quick=True)
        assert path.exists()
        assert "Figure 10" in path.read_text()


class TestReportCli:
    def test_cli_report_quick(self, tmp_path, capsys, monkeypatch):
        # patch the testbed list so the CLI quick report stays fast
        import repro.harness.report as report_module
        from repro.cli import main

        monkeypatch.setattr(report_module, "ALL_TESTBEDS", (DIDCLAB,))
        out_path = tmp_path / "eval.md"
        assert main(["report", "-o", str(out_path), "--quick"]) == 0
        assert out_path.exists()
        assert "report written" in capsys.readouterr().out
