"""Sensitivity and crossover analyses."""

import pytest

from repro.analysis.crossover import Crossover, argmax_interpolated, find_crossovers
from repro.analysis.sensitivity import (
    KNOBS,
    perturb_testbed,
    render_sensitivity,
    sensitivity_report,
)
from repro.core.baselines import ProMCAlgorithm
from repro.testbeds import DIDCLAB, FUTUREGRID, XSEDE


class TestPerturbTestbed:
    def test_server_knob(self):
        perturbed = perturb_testbed(XSEDE, "per_channel_rate", 1.5)
        assert perturbed.source.server.per_channel_rate == pytest.approx(
            1.5 * XSEDE.source.server.per_channel_rate
        )
        # source and destination share the perturbed spec
        assert perturbed.destination.server.per_channel_rate == pytest.approx(
            perturbed.source.server.per_channel_rate
        )

    def test_original_untouched(self):
        before = XSEDE.source.server.per_channel_rate
        perturb_testbed(XSEDE, "per_channel_rate", 2.0)
        assert XSEDE.source.server.per_channel_rate == before

    @pytest.mark.parametrize("knob", sorted(KNOBS))
    @pytest.mark.parametrize("testbed", [XSEDE, FUTUREGRID, DIDCLAB],
                             ids=lambda t: t.name)
    def test_every_knob_applies_on_every_testbed(self, knob, testbed):
        perturbed = perturb_testbed(testbed, knob, 1.1)
        assert perturbed.name == testbed.name

    def test_disk_knob_scales_each_disk_type(self):
        assert (
            perturb_testbed(DIDCLAB, "disk_rate", 2.0).source.server.disk.peak_rate
            == pytest.approx(2.0 * DIDCLAB.source.server.disk.peak_rate)
        )
        assert (
            perturb_testbed(FUTUREGRID, "disk_rate", 2.0).source.server.disk.single_rate
            == pytest.approx(2.0 * FUTUREGRID.source.server.disk.single_rate)
        )

    def test_protocol_efficiency_capped_at_one(self):
        perturbed = perturb_testbed(XSEDE, "protocol_efficiency", 2.0)
        assert perturbed.path.protocol_efficiency <= 1.0

    def test_validation(self):
        with pytest.raises(KeyError):
            perturb_testbed(XSEDE, "warp_drive", 1.1)
        with pytest.raises(ValueError):
            perturb_testbed(XSEDE, "disk_rate", 0.0)


class TestSensitivityReport:
    @pytest.fixture(scope="class")
    def rows(self, ):
        dataset = DIDCLAB.dataset()
        run = lambda tb: ProMCAlgorithm().run(tb, dataset, 4)
        return sensitivity_report(
            DIDCLAB, run, knobs=("disk_rate", "coefficient_scale"), factors=(0.8, 1.2)
        )

    def test_row_per_knob_factor(self, rows):
        assert len(rows) == 4

    def test_disk_rate_moves_didclab_throughput(self, rows):
        disk_rows = [r for r in rows if r.knob == "disk_rate"]
        # DIDCLAB is disk-bound: throughput tracks the disk knob ~1:1
        for row in disk_rows:
            assert row.throughput_change == pytest.approx(row.factor - 1.0, abs=0.07)

    def test_coefficient_scale_moves_energy_not_throughput(self, rows):
        coeff_rows = [r for r in rows if r.knob == "coefficient_scale"]
        for row in coeff_rows:
            assert abs(row.throughput_change) < 0.01
            assert row.energy_change == pytest.approx(row.factor - 1.0, abs=0.02)

    def test_elasticity(self, rows):
        disk_up = next(r for r in rows if r.knob == "disk_rate" and r.factor > 1)
        assert disk_up.elasticity == pytest.approx(
            abs(disk_up.throughput_change) / 0.2
        )

    def test_render(self, rows):
        text = render_sensitivity(rows)
        assert "disk_rate" in text and "coefficient_scale" in text


class TestCrossovers:
    def test_single_crossing(self):
        x = [1, 2, 3, 4]
        a = [1, 2, 3, 4]
        b = [4, 3, 2, 1]
        (crossing,) = find_crossovers(x, a, b)
        assert crossing.x == pytest.approx(2.5)
        assert crossing.direction == "a_above"

    def test_no_crossing(self):
        assert find_crossovers([1, 2], [1, 2], [3, 4]) == []

    def test_multiple_crossings(self):
        x = [0, 1, 2, 3]
        a = [0, 2, 0, 2]
        b = [1, 1, 1, 1]
        crossings = find_crossovers(x, a, b)
        assert len(crossings) == 3
        directions = [c.direction for c in crossings]
        assert directions == ["a_above", "b_above", "a_above"]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            find_crossovers([1], [1, 2], [1, 2])

    def test_atol_suppresses_roundoff_crossings(self):
        """fp noise on coincident curves must not read as crossings
        once a tolerance is supplied."""
        x = [0, 1, 2, 3]
        a = [1.0, 1.0, 1.0, 1.0]
        b = [1.0 + 1e-13, 1.0 - 1e-13, 1.0 + 1e-13, 1.0 - 1e-13]
        # exact mode (the historical default) sees the noise as crossings
        assert len(find_crossovers(x, a, b)) == 3
        # tolerance mode treats the segments as coincident
        assert find_crossovers(x, a, b, atol=1e-9) == []

    def test_atol_keeps_genuine_crossings(self):
        """A real crossing well outside the tolerance is still found,
        at the same interpolated x as in exact mode."""
        x = [1, 2, 3, 4]
        a = [1, 2, 3, 4]
        b = [4, 3, 2, 1]
        exact = find_crossovers(x, a, b)
        tolerant = find_crossovers(x, a, b, atol=1e-6)
        assert len(tolerant) == 1
        assert tolerant[0].x == pytest.approx(exact[0].x)
        assert tolerant[0].direction == exact[0].direction

    def test_atol_default_matches_historical_exact_behaviour(self):
        """atol=0.0 keeps the seed semantics: only bit-identical
        samples coincide; a touch-without-cross is not reported."""
        x = [0, 1, 2]
        a = [0.0, 1.0, 0.0]
        b = [1.0, 1.0, 1.0]  # touches a at x=1, never crosses
        assert find_crossovers(x, a, b) == []

    def test_atol_validation(self):
        with pytest.raises(ValueError):
            find_crossovers([1, 2], [1, 2], [2, 1], atol=-1e-9)

    def test_short_series(self):
        assert find_crossovers([1], [1], [2]) == []

    def test_sc_energy_overtakes_mine_on_xsede(self):
        """The figure-2 reading: SC and MinE start equal-cheap, SC's
        energy pulls away at higher concurrency."""
        from repro.harness.sweeps import concurrency_sweep

        sweep = concurrency_sweep(XSEDE, algorithms=("SC", "MinE"))
        x = list(sweep.levels)
        sc = sweep.energies_joules("SC")
        mine = sweep.energies_joules("MinE")
        # by the top of the axis SC is clearly dearer
        assert sc[-1] > 1.15 * mine[-1]


class TestArgmaxInterpolated:
    def test_interior_peak_refined(self):
        # samples of -(x-2.5)^2: peak between the samples at 2 and 3
        x = [0, 1, 2, 3, 4]
        y = [-(v - 2.5) ** 2 for v in x]
        assert argmax_interpolated(x, y) == pytest.approx(2.5)

    def test_edge_peak_unrefined(self):
        assert argmax_interpolated([1, 2, 3], [5, 2, 1]) == 1

    def test_flat_series(self):
        assert argmax_interpolated([1, 2, 3], [2, 2, 2]) in (1.0, 2.0, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            argmax_interpolated([], [])
        with pytest.raises(ValueError):
            argmax_interpolated([1], [1, 2])

    def test_promc_energy_minimum_near_four_on_xsede(self):
        """Reading the parabola's vertex off the sampled Fig. 2(b)."""
        from repro.harness.sweeps import concurrency_sweep

        sweep = concurrency_sweep(XSEDE, algorithms=("ProMC",))
        x = list(sweep.levels)
        inverted = [-e for e in sweep.energies_joules("ProMC")]
        vertex = argmax_interpolated(x, inverted)
        assert 3.0 <= vertex <= 6.5
