"""Engine energy accounting against hand-computed expectations, and the
multi-server (GO-premium) mechanism."""

import pytest

from repro import units
from repro.datasets.files import FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import Binding, ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams
from repro.netsim.utilization import compute_utilization
from repro.power.coefficients import CoefficientSet
from repro.power.models import FineGrainedPowerModel


def spec(**overrides) -> ServerSpec:
    base = dict(
        name="s",
        cores=4,
        tdp_watts=100.0,
        nic_rate=units.gbps(10),
        disk=ParallelDisk(per_accessor_rate=100e6, array_rate=400e6),
        per_channel_rate=100e6,
        core_rate=400e6,
        channel_cpu_overhead=0.0,
        stream_cpu_overhead=0.0,
        active_overhead=0.0,
        thrash_factor=0.0,
        per_file_overhead=0.0,
    )
    base.update(overrides)
    return ServerSpec(**base)


def fast_path() -> NetworkPath:
    return NetworkPath(
        bandwidth=units.gbps(10), rtt=0.0, tcp_buffer=32 * units.MB,
        protocol_efficiency=1.0,
    )


class TestSteadyStateEnergy:
    def test_matches_hand_computation(self):
        """One channel at exactly 100 MB/s for 10 s: energy must equal
        2 servers x P(Eq.1 at the known utilization) x 10 s."""
        model = FineGrainedPowerModel(CoefficientSet(memory=0.0, disk=0.0, nic=0.0))
        server = spec()
        site = EndSystem("site", server, 1)
        engine = TransferEngine(fast_path(), site, site, model.power, dt=0.5)
        engine.add_chunk(
            ChunkPlan("c", (FileInfo("f", 10 * 100 * 10**6),), TransferParams())
        )
        engine.run()
        assert engine.time == pytest.approx(10.0)

        util = compute_utilization(server, channels=1, streams=1, throughput=100e6)
        expected_power = 2 * model.power(server, util)  # both endpoints
        assert engine.total_energy == pytest.approx(expected_power * 10.0, rel=1e-6)

    def test_component_attribution_matches_total(self):
        model = FineGrainedPowerModel(CoefficientSet())
        site = EndSystem("site", spec(), 1)
        engine = TransferEngine(fast_path(), site, site, model.power, dt=0.5)
        engine.add_chunk(ChunkPlan("c", (FileInfo("f", 500e6),), TransferParams()))
        engine.run()
        assert sum(engine.component_energy.values()) == pytest.approx(
            engine.total_energy, rel=1e-9
        )

    def test_no_power_when_idle(self):
        model = FineGrainedPowerModel()
        site = EndSystem("site", spec(), 1)
        engine = TransferEngine(fast_path(), site, site, model.power, dt=0.5)
        engine.add_chunk(ChunkPlan("c", (FileInfo("f", 50e6),), TransferParams()))
        engine.run()
        done_energy = engine.total_energy
        engine.step()  # nothing left to do
        assert engine.total_energy == done_energy


class TestMultiServerPremium:
    """The mechanism behind 'GO consumes ~60% more energy': spreading
    channels wakes more servers, each paying its participation
    overhead and the worse single-core Eq. 2 coefficient."""

    def _run(self, binding: Binding) -> float:
        server = spec(active_overhead=0.3, channel_cpu_overhead=0.05)
        site = EndSystem("site", server, server_count=2)
        model = FineGrainedPowerModel(CoefficientSet(memory=0.0, disk=0.0, nic=0.0))
        engine = TransferEngine(fast_path(), site, site, model.power, dt=0.5,
                                binding=binding)
        files = tuple(FileInfo(f"f{i}", 500e6) for i in range(4))
        engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2)))
        engine.run()
        return engine.total_energy

    def test_spread_costs_more_than_pack(self):
        packed = self._run(Binding.PACK)
        spread = self._run(Binding.SPREAD)
        assert spread > 1.15 * packed

    def test_single_channel_binding_irrelevant(self):
        server = spec(active_overhead=0.3)
        site = EndSystem("site", server, server_count=4)
        model = FineGrainedPowerModel(CoefficientSet())
        energies = []
        for binding in (Binding.PACK, Binding.SPREAD):
            engine = TransferEngine(fast_path(), site, site, model.power, dt=0.5,
                                    binding=binding)
            engine.add_chunk(ChunkPlan("c", (FileInfo("f", 500e6),), TransferParams()))
            engine.run()
            energies.append(engine.total_energy)
        assert energies[0] == pytest.approx(energies[1])


class TestGapAccounting:
    def test_control_gaps_extend_time_and_cost_energy(self):
        """Small files without pipelining stall the channel; the clock
        and the power meter keep running — the paper's energy cost of
        untuned pipelining."""
        model = FineGrainedPowerModel(CoefficientSet())
        site = EndSystem("site", spec(active_overhead=0.2), 1)
        path = NetworkPath(
            bandwidth=units.gbps(10), rtt=units.ms(100), tcp_buffer=32 * units.MB,
            protocol_efficiency=1.0,
        )
        files = tuple(FileInfo(f"f{i}", 10e6) for i in range(40))

        def run(pp: int) -> tuple[float, float]:
            engine = TransferEngine(path, site, site, model.power, dt=0.25)
            engine.add_chunk(ChunkPlan("c", files, TransferParams(pipelining=pp)))
            engine.run()
            return engine.time, engine.total_energy

        slow_time, slow_energy = run(1)
        fast_time, fast_energy = run(20)
        assert slow_time > 1.5 * fast_time
        assert slow_energy > fast_energy
