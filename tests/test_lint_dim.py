"""Tests for the flow-sensitive dimensional pass (``repro.lint.dim``).

Covers the dimension lattice and its algebra (W·s → J, J/s → W,
bytes/(bytes/s) → s), name/annotation seeding, every rule RPL009–RPL012
with failing and passing fixtures, flow-sensitivity (branch joins,
polymorphic literals, provably-dimensionless ratios), interprocedural
summaries, a mutation harness that flips one unit per dimension pair in
a known-clean snippet and asserts detection by exactly the expected
rule, pinned regressions on real modules, ``--changed`` scoping (it
must never hide a finding a full run of the same files reports), the
``compare_baselines`` ratchet gate, and the repo self-check (the dim
pass over ``src/`` is clean with zero tolerated debt).
"""

from __future__ import annotations

import ast
import json
import subprocess
import textwrap
from fractions import Fraction
from pathlib import Path

import pytest

from repro.lint.baseline import compare_baselines, load_baseline
from repro.lint.cli import changed_python_files, main as lint_main
from repro.lint.dim import (
    BYTES,
    BYTES_PER_S,
    DIMENSIONLESS,
    DOLLARS,
    JOULES,
    KG_CO2,
    NUMERIC,
    SECONDS,
    WATTS,
    SummaryTable,
    dim_of_annotation,
    dim_of_name,
    summarize_module,
)
from repro.lint.framework import lint_paths, lint_source, rules_by_code

REPO_ROOT = Path(__file__).resolve().parents[1]

DIM_CODES = ["RPL009", "RPL010", "RPL011", "RPL012"]

#: fixture homes: inside and outside the dimensional-pass scope.
CORE = "src/repro/core/fixture.py"
HARNESS = "src/repro/harness/fixture.py"


def dim_lint(source: str, path: str = CORE):
    """Run only the dimensional rules over a dedented fixture."""
    return lint_source(
        textwrap.dedent(source), path=path, rules=rules_by_code(DIM_CODES)
    )


def codes_of(findings) -> list[str]:
    return [f.code for f in findings]


def ann(source: str):
    """``dim_of_annotation`` over an annotation given as source text."""
    return dim_of_annotation(ast.parse(source, mode="eval").body)


# ----------------------------------------------------------------------
# the dimension lattice
# ----------------------------------------------------------------------


class TestDimAlgebra:
    def test_power_times_time_is_energy(self):
        assert WATTS * SECONDS == JOULES

    def test_energy_over_time_is_power(self):
        assert JOULES / SECONDS == WATTS

    def test_data_over_rate_is_time(self):
        assert BYTES / BYTES_PER_S == SECONDS

    def test_rate_times_time_is_data(self):
        assert BYTES_PER_S * SECONDS == BYTES

    def test_energy_times_price_is_currency(self):
        assert JOULES * (DOLLARS / JOULES) == DOLLARS

    def test_pow_scales_exponents(self):
        assert SECONDS ** Fraction(2) == SECONDS * SECONDS
        assert (JOULES * JOULES) ** Fraction(1, 2) == JOULES

    def test_numeric_literal_is_multiplicatively_transparent(self):
        assert NUMERIC * SECONDS == SECONDS
        assert SECONDS / NUMERIC == SECONDS
        assert (NUMERIC * NUMERIC).poly

    def test_dimensionless_ratio_is_not_polymorphic(self):
        ratio = SECONDS / SECONDS
        assert ratio.is_dimensionless
        assert not ratio.poly
        assert ratio == DIMENSIONLESS

    def test_known_labels(self):
        assert SECONDS.label() == "s"
        assert BYTES.label() == "bytes"
        assert JOULES.label() == "J"
        assert WATTS.label() == "W"
        assert BYTES_PER_S.label() == "bytes/s"
        assert DOLLARS.label() == "$"
        assert KG_CO2.label() == "kgCO2"
        assert (DOLLARS / JOULES).label() == "$/J"
        assert NUMERIC.label() == "number"
        assert DIMENSIONLESS.label() == "dimensionless"

    def test_fallback_labels_render_exponent_products(self):
        assert (BYTES * SECONDS).label() == "s*bytes"
        assert (DIMENSIONLESS / SECONDS).label() == "1/s"
        assert (SECONDS * SECONDS).label() == "s^2"

    def test_dim_is_hashable_and_frozen(self):
        assert len({SECONDS, BYTES, SECONDS}) == 2
        with pytest.raises(AttributeError):
            SECONDS.poly = True  # type: ignore[misc]


# ----------------------------------------------------------------------
# seeding: suffixes and annotations
# ----------------------------------------------------------------------


class TestSeeding:
    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("duration_s", SECONDS),
            ("latency_ms", SECONDS),
            ("total_bytes", BYTES),
            ("size_gb", BYTES),
            ("energy_j", JOULES),
            ("budget_kwh", JOULES),
            ("idle_watts", WATTS),
            ("peak_kw", WATTS),
            ("rate_bps", BYTES_PER_S),
            ("link_gbps", BYTES_PER_S),
            ("cost_usd", DOLLARS),
            ("carbon_kg_co2", KG_CO2),
            ("seconds", SECONDS),
            ("kwh", JOULES),
        ],
    )
    def test_suffix_vocabulary(self, name, expected):
        assert dim_of_name(name) == expected

    def test_compound_per_forms(self):
        assert dim_of_name("dollars_per_kwh") == DOLLARS / JOULES
        assert dim_of_name("rate_bytes_per_s") == BYTES_PER_S
        assert dim_of_name("joules_per_gb") == JOULES / BYTES

    @pytest.mark.parametrize(
        "name", ["status", "loss", "windows", "flags", "price_per_unit"]
    )
    def test_non_suffixed_names_are_unknown(self, name):
        assert dim_of_name(name) is None

    def test_scale_blindness(self):
        # ms and s share the time axis; GB and bytes the data axis —
        # magnitude conversion is RPL001's business, not this pass's.
        assert dim_of_name("rtt_ms") == dim_of_name("rtt_s")
        assert dim_of_name("size_gb") == dim_of_name("size_bytes")

    @pytest.mark.parametrize(
        ("annotation", "expected"),
        [
            ("Seconds", SECONDS),
            ("Bytes", BYTES),
            ("BytesPerSecond", BYTES_PER_S),
            ("Watts", WATTS),
            ("Joules", JOULES),
            ("units.Joules", JOULES),
            ("Optional[Bytes]", BYTES),
            ("Seconds | None", SECONDS),
            ("'Seconds'", SECONDS),
        ],
    )
    def test_annotation_aliases(self, annotation, expected):
        assert ann(annotation) == expected

    @pytest.mark.parametrize(
        "annotation", ["float", "int", "list[Seconds]", "Seconds | Bytes"]
    )
    def test_non_alias_annotations_are_unknown(self, annotation):
        assert ann(annotation) is None


# ----------------------------------------------------------------------
# RPL009 — mixed dimensions in additive/comparison positions
# ----------------------------------------------------------------------


class TestRPL009:
    def test_add_mixes_power_and_time(self):
        findings = dim_lint(
            """
            def _f(power_w: float, duration_s: float) -> float:
                return power_w + duration_s
            """
        )
        assert codes_of(findings) == ["RPL009"]
        assert "mixed dimensions: W + s" in findings[0].message

    def test_comparison_mixes_data_and_time(self):
        findings = dim_lint(
            """
            def _f(size_bytes: float, start_s: float) -> bool:
                return size_bytes > start_s
            """
        )
        assert codes_of(findings) == ["RPL009"]
        assert "comparison mixes dimensions: bytes > s" in findings[0].message

    def test_augmented_assign_mixes_energy_and_time(self):
        findings = dim_lint(
            """
            def _f(total_j: float, dt_s: float) -> float:
                total_j += dt_s
                return total_j
            """
        )
        assert codes_of(findings) == ["RPL009"]
        assert "augmented assignment mixes dimensions" in findings[0].message

    def test_min_mixes_dimensions(self):
        findings = dim_lint(
            """
            def _f(a_s: float, b_bytes: float) -> float:
                return min(a_s, b_bytes)
            """
        )
        assert codes_of(findings) == ["RPL009"]
        assert "min() mixes dimensions" in findings[0].message

    def test_provably_dimensionless_does_not_unify(self):
        # The canonical day-fraction bug: a seeded uniform(0.2, 0.3)
        # sample is provably dimensionless and must NOT absorb seconds.
        findings = dim_lint(
            """
            def _f(rng, day_s: float) -> float:
                frac = rng.uniform(0.2, 0.3)
                return frac + day_s
            """
        )
        assert codes_of(findings) == ["RPL009"]
        assert "dimensionless + s" in findings[0].message

    def test_composed_arithmetic_is_clean(self):
        findings = dim_lint(
            """
            def _f(power_w: float, duration_s: float, base_j: float) -> float:
                return power_w * duration_s + base_j
            """
        )
        assert findings == []

    def test_numeric_literals_are_polymorphic(self):
        findings = dim_lint(
            """
            def _f(start_s: float) -> float:
                return start_s + 1.0
            """
        )
        assert findings == []

    def test_scaled_fraction_is_clean(self):
        findings = dim_lint(
            """
            def _f(rng, day_s: float, start_s: float) -> float:
                frac = rng.uniform(0.2, 0.3)
                return frac * day_s + start_s
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL010 — assignment changes a declared dimension
# ----------------------------------------------------------------------


class TestRPL010:
    def test_suffixed_name_rebound_to_other_dimension(self):
        findings = dim_lint(
            """
            def _f(size_bytes: float) -> float:
                duration_s = size_bytes
                return duration_s
            """
        )
        assert codes_of(findings) == ["RPL010"]
        assert (
            "changes the dimension of 'duration_s': the name declares s "
            "but the value is bytes" in findings[0].message
        )

    def test_alias_annotated_assignment(self):
        findings = dim_lint(
            """
            def _f(size: Bytes) -> float:
                start: Seconds = size
                return start
            """
        )
        assert codes_of(findings) == ["RPL010"]

    def test_attribute_target_is_checked(self):
        findings = dim_lint(
            """
            def _f(self, size_bytes: float) -> None:
                self.deadline_s = size_bytes
            """
        )
        assert codes_of(findings) == ["RPL010"]

    def test_derived_dimension_assignment_is_clean(self):
        findings = dim_lint(
            """
            def _f(size_bytes: float, rate_bps: float) -> float:
                duration_s = size_bytes / rate_bps
                return duration_s
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL011 — call-site argument dimension mismatch
# ----------------------------------------------------------------------


class TestRPL011:
    SWAPPED = """
        def _g(rate_bps: float, window_s: float) -> float:
            return rate_bps * window_s

        def _f(duration_s: float, size_bytes: float) -> float:
            return _g(duration_s, size_bytes)
        """

    def test_swapped_positional_arguments(self):
        findings = dim_lint(self.SWAPPED)
        assert codes_of(findings) == ["RPL011", "RPL011"]
        assert (
            "argument 'rate_bps' of _g() has dimension s, "
            "expected bytes/s" in findings[0].message
        )
        assert (
            "argument 'window_s' of _g() has dimension bytes, "
            "expected s" in findings[1].message
        )

    def test_keyword_argument(self):
        findings = dim_lint(
            """
            def _g(rate_bps: float) -> float:
                return rate_bps

            def _f(duration_s: float) -> float:
                return _g(rate_bps=duration_s)
            """
        )
        assert codes_of(findings) == ["RPL011"]

    def test_units_converter_contract(self):
        # bdp_bytes(bandwidth_bytes_per_s, rtt_s) called with the
        # arguments swapped — resolved through the repro.units summary.
        findings = dim_lint(
            """
            from repro.units import bdp_bytes

            def _f(rtt_s: float, rate_bps: float) -> float:
                return bdp_bytes(rtt_s, rate_bps)
            """
        )
        assert codes_of(findings) == ["RPL011", "RPL011"]

    def test_dataclass_constructor_contract(self):
        findings = dim_lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class _Transfer:
                size_bytes: float
                deadline_s: float

            def _f(duration_s: float, volume_bytes: float):
                return _Transfer(duration_s, volume_bytes)
            """
        )
        assert codes_of(findings) == ["RPL011", "RPL011"]

    def test_matching_arguments_are_clean(self):
        findings = dim_lint(
            """
            def _g(rate_bps: float, window_s: float) -> float:
                return rate_bps * window_s

            def _f(duration_s: float, link_bps: float) -> float:
                return _g(link_bps, duration_s)
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL012 — return value contradicts the annotated alias
# ----------------------------------------------------------------------


class TestRPL012:
    def test_power_returned_as_energy(self):
        findings = dim_lint(
            """
            def _f(power_w: float) -> Joules:
                return power_w
            """
        )
        assert codes_of(findings) == ["RPL012"]
        assert (
            "return value has dimension W but the function is "
            "annotated J" in findings[0].message
        )

    def test_composed_return_is_clean(self):
        findings = dim_lint(
            """
            def _f(power_w: float, duration_s: float) -> Joules:
                return power_w * duration_s
            """
        )
        assert findings == []

    def test_numeric_literal_return_is_clean(self):
        findings = dim_lint(
            """
            def _f() -> Joules:
                return 0.0
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# scope, suppression, flow-sensitivity
# ----------------------------------------------------------------------


class TestScopeAndFlow:
    BAD = """
        def _f(power_w: float, duration_s: float) -> float:
            return power_w + duration_s
        """

    def test_out_of_scope_package_is_not_checked(self):
        assert dim_lint(self.BAD, path=HARNESS) == []

    def test_units_module_is_exempt(self):
        # repro.units is where raw conversion arithmetic legitimately
        # lives; the pass must not police its own vocabulary.
        assert dim_lint(self.BAD, path="src/repro/units.py") == []

    def test_noqa_suppresses(self):
        findings = dim_lint(
            """
            def _f(power_w: float, duration_s: float) -> float:
                return power_w + duration_s  # repro: noqa[RPL009]
            """
        )
        assert findings == []

    def test_disagreeing_branches_drop_the_binding(self):
        # x is bytes on one branch and seconds on the other: after the
        # join it is unknown, so the later use must not false-positive.
        findings = dim_lint(
            """
            def _f(flag: bool, size_bytes: float, start_s: float) -> float:
                if flag:
                    x = size_bytes
                else:
                    x = start_s
                return x + start_s
            """
        )
        assert findings == []

    def test_agreeing_branches_keep_the_binding(self):
        findings = dim_lint(
            """
            def _f(flag: bool, a_s: float, b_s: float) -> None:
                if flag:
                    x = a_s
                else:
                    x = b_s
                y_bytes = x
            """
        )
        assert codes_of(findings) == ["RPL010"]

    def test_rebinding_tracks_the_latest_value(self):
        findings = dim_lint(
            """
            def _f(size_bytes: float, rate_bps: float) -> float:
                x = size_bytes
                x = x / rate_bps
                y_s = x
                return y_s
            """
        )
        assert findings == []

    def test_comprehension_element_dimension_propagates(self):
        findings = dim_lint(
            """
            def _f(jobs) -> float:
                total_j = sum(j.energy_j for j in jobs)
                return total_j
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# interprocedural summaries
# ----------------------------------------------------------------------


class TestSummaries:
    def test_summarize_module_contracts(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                from typing import ClassVar

                def send(size_bytes: float, rate: BytesPerSecond) -> Seconds:
                    return size_bytes / rate

                class Job:
                    energy_j: float
                    CACHE: ClassVar[int] = 3

                    def bill(self, dollars_per_kwh: float) -> float:
                        return 0.0
                """
            )
        )
        table = summarize_module(tree)
        send = table["send"]
        assert send.positional == ("size_bytes", "rate")
        assert send.param_dims == {
            "size_bytes": BYTES,
            "rate": BYTES_PER_S,
        }
        assert send.return_dim == SECONDS
        ctor = table["Job"]
        assert ctor.positional == ("energy_j",)  # ClassVar skipped
        assert ctor.param_dims == {"energy_j": JOULES}
        bill = table["Job.bill"]
        assert bill.positional == ("dollars_per_kwh",)  # self dropped
        assert bill.param_dims == {"dollars_per_kwh": DOLLARS / JOULES}

    def test_summary_table_resolves_real_tree(self):
        table = SummaryTable(str(REPO_ROOT / "src" / "repro" / "core" / "x.py"))
        units = table.module("repro.units")
        assert units["mbps"].return_dim == BYTES_PER_S
        assert units["bdp_bytes"].param_dims["rtt_s"] == SECONDS
        actions = table.module("repro.chaos.actions")
        assert actions["LinkScale"].param_dims["time"] == SECONDS


# ----------------------------------------------------------------------
# mutation harness: flip one unit per dimension pair
# ----------------------------------------------------------------------

#: A dimensionally clean snippet exercising time, data, rate, power,
#: energy and currency; each mutation below flips exactly one unit
#: suffix and must be caught by exactly the expected rule.
CLEAN_SNIPPET = textwrap.dedent(
    """
    from repro.units import Joules, Seconds


    def _transfer_energy(power_w: float, duration_s: float) -> Joules:
        return power_w * duration_s


    def _transfer_window(size_bytes: float, rate_bps: float) -> Seconds:
        window_s = size_bytes / rate_bps
        return window_s


    def _day_energy(idle_w: float, day_s: float) -> float:
        return _transfer_energy(idle_w, day_s)


    def _charge_energy(dollars_per_kwh: float, cost_usd: float) -> Joules:
        return cost_usd / dollars_per_kwh


    def _backlog(queue_bytes: float, chunk_bytes: float) -> float:
        return queue_bytes + chunk_bytes
    """
)

#: (dimension pair, original fragment, mutated fragment, expected rule).
MUTATIONS = [
    (
        "s-vs-bytes",
        "window_s = size_bytes / rate_bps",
        "window_s = size_s / rate_bps",
        "RPL010",
    ),
    (
        "W-vs-J",
        "_transfer_energy(idle_w, day_s)",
        "_transfer_energy(idle_j, day_s)",
        "RPL011",
    ),
    (
        "J-vs-dollars",
        "return cost_usd / dollars_per_kwh",
        "return cost_j / dollars_per_kwh",
        "RPL012",
    ),
    (
        "bps-vs-bytes",
        "return queue_bytes + chunk_bytes",
        "return queue_bytes + chunk_bps",
        "RPL009",
    ),
]


class TestMutationHarness:
    def test_clean_snippet_is_clean(self):
        assert dim_lint(CLEAN_SNIPPET) == []

    @pytest.mark.parametrize(
        ("pair", "original", "mutated", "expected"),
        MUTATIONS,
        ids=[m[0] for m in MUTATIONS],
    )
    def test_unit_flip_is_detected_by_exactly_one_rule(
        self, pair, original, mutated, expected
    ):
        assert original in CLEAN_SNIPPET, "mutation target drifted"
        source = CLEAN_SNIPPET.replace(original, mutated)
        findings = dim_lint(source)
        assert codes_of(findings) == [expected], (
            f"{pair}: expected exactly one {expected}, got "
            + (", ".join(f.render() for f in findings) or "nothing")
        )


# ----------------------------------------------------------------------
# pinned regressions on real modules
# ----------------------------------------------------------------------


class TestRealCodeRegressions:
    def test_scenarios_day_fraction_mutation_is_caught(self):
        """Dropping ``* day_s`` from a scenario start time — the
        day-fraction-boundary bug class — trips RPL009 at the addition
        and RPL011 at the ``LinkScale(time=...)`` call site."""
        path = REPO_ROOT / "src" / "repro" / "chaos" / "scenarios.py"
        source = path.read_text(encoding="utf-8")
        target = "float(rng.uniform(0.20, 0.30)) * day_s"
        assert target in source, "scenario fixture drifted"
        clean = lint_source(
            source, path=str(path), rules=rules_by_code(DIM_CODES)
        )
        assert clean == []
        mutated = lint_source(
            source.replace(target, "float(rng.uniform(0.20, 0.30))", 1),
            path=str(path),
            rules=rules_by_code(DIM_CODES),
        )
        codes = codes_of(mutated)
        assert "RPL009" in codes
        assert "RPL011" in codes
        messages = " | ".join(f.message for f in mutated)
        assert "dimensionless" in messages

    def test_kwh_factor_goes_through_named_constant(self):
        """The 3.6e6 J/kWh factor must flow through JOULES_PER_KWH —
        the raw-literal bypass in the service report was fixed, and
        RPL001 now catches the class mechanically."""
        simulate = (
            REPO_ROOT / "src" / "repro" / "service" / "simulate.py"
        ).read_text(encoding="utf-8")
        assert "3.6e6" not in simulate
        assert "3600000" not in simulate
        assert "JOULES_PER_KWH" in simulate
        findings = lint_source(
            textwrap.dedent(
                """
                def _f(energy_j: float) -> float:
                    return energy_j / 3.6e6
                """
            ),
            path=CORE,
            rules=rules_by_code(["RPL001"]),
        )
        assert codes_of(findings) == ["RPL001"]


# ----------------------------------------------------------------------
# --changed scoping
# ----------------------------------------------------------------------


def _git(cwd: Path, *argv: str) -> None:
    subprocess.run(
        ["git", *argv], cwd=cwd, check=True, capture_output=True
    )


def _seed_repo(tmp_path: Path) -> Path:
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    target = pkg / "transfer.py"
    target.write_text(CLEAN_SNIPPET, encoding="utf-8")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "config", "user.email", "lint@test.invalid")
    _git(tmp_path, "config", "user.name", "lint test")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return target


class TestChangedScoping:
    def test_scoping_never_hides_a_finding(self, tmp_path, monkeypatch):
        """``--changed`` on a modified file reports exactly what a full
        run of the same tree reports — scoping narrows the file list,
        never the per-file analysis."""
        target = _seed_repo(tmp_path)
        bad = CLEAN_SNIPPET.replace(
            "return queue_bytes + chunk_bytes",
            "return queue_bytes + chunk_bps",
        )
        target.write_text(bad, encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        changed = changed_python_files(["src"])
        assert changed is not None
        assert [Path(p).name for p in changed] == ["transfer.py"]
        rules = rules_by_code(DIM_CODES)
        full = lint_paths([tmp_path / "src"], rules=rules)
        scoped = lint_paths(changed, rules=rules)
        assert {(f.code, f.line) for f in full} == {
            (f.code, f.line) for f in scoped
        }
        assert full, "fixture should produce at least one finding"

    def test_cli_changed_reports_the_finding(self, tmp_path, monkeypatch, capsys):
        target = _seed_repo(tmp_path)
        target.write_text(
            CLEAN_SNIPPET.replace(
                "return queue_bytes + chunk_bytes",
                "return queue_bytes + chunk_bps",
            ),
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src", "--changed", "--no-baseline"]) == 1
        assert "RPL009" in capsys.readouterr().out

    def test_cli_changed_with_clean_tree_is_quiet(
        self, tmp_path, monkeypatch, capsys
    ):
        _seed_repo(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert lint_main(["src", "--changed", "--no-baseline"]) == 0
        assert "no changed files" in capsys.readouterr().out

    def test_fails_open_outside_git(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
        assert changed_python_files(["src"]) is None


# ----------------------------------------------------------------------
# the baseline ratchet gate
# ----------------------------------------------------------------------


class TestCompareBaselines:
    def test_growth_is_a_violation(self):
        old = {"src/a.py::RPL001": 1}
        new = {"src/a.py::RPL001": 2}
        assert compare_baselines(old, new) == [
            "src/a.py::RPL001: baseline grew 1 -> 2"
        ]

    def test_new_bucket_is_a_violation(self):
        violations = compare_baselines({}, {"src/b.py::RPL009": 1})
        assert violations == [
            "src/b.py::RPL009: new baseline bucket (1 finding(s))"
        ]

    def test_shrinking_and_vanishing_are_fine(self):
        assert compare_baselines({"src/a.py::RPL001": 2}, {}) == []
        assert (
            compare_baselines(
                {"src/a.py::RPL001": 2}, {"src/a.py::RPL001": 1}
            )
            == []
        )

    @staticmethod
    def _write_baseline(path: Path, entries: dict) -> Path:
        path.write_text(
            json.dumps({"version": 1, "entries": entries}), encoding="utf-8"
        )
        return path

    def test_cli_gate_fails_on_growth(self, tmp_path, capsys):
        old = self._write_baseline(tmp_path / "old.json", {})
        new = self._write_baseline(
            tmp_path / "new.json", {"src/a.py::RPL009": 1}
        )
        code = lint_main(
            ["--compare-baseline", str(old), "--baseline", str(new)]
        )
        assert code == 1
        assert "baseline ratchet violation" in capsys.readouterr().out

    def test_cli_gate_passes_when_nothing_grew(self, tmp_path, capsys):
        old = self._write_baseline(
            tmp_path / "old.json", {"src/a.py::RPL001": 2}
        )
        new = self._write_baseline(
            tmp_path / "new.json", {"src/a.py::RPL001": 1}
        )
        code = lint_main(
            ["--compare-baseline", str(old), "--baseline", str(new)]
        )
        assert code == 0
        assert "ratchet holds" in capsys.readouterr().out


# ----------------------------------------------------------------------
# repo self-check
# ----------------------------------------------------------------------


class TestRepoIsDimensionallyClean:
    def test_dim_pass_over_src_is_clean(self):
        """RPL009–RPL012 over the real tree: zero findings, zero debt."""
        findings = lint_paths(
            [REPO_ROOT / "src"],
            rules=rules_by_code(DIM_CODES),
            relative_to=REPO_ROOT,
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_baseline_has_no_energy_package_debt(self):
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        dirty = [
            key
            for key in baseline
            if key.startswith(
                (
                    "src/repro/core",
                    "src/repro/netsim",
                    "src/repro/power",
                    "src/repro/topo",
                )
            )
        ]
        assert dirty == []

    def test_baseline_has_no_dimensional_debt_anywhere(self):
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        dim_debt = [
            key
            for key in baseline
            if key.endswith(("RPL009", "RPL010", "RPL011", "RPL012"))
        ]
        assert dim_debt == []
