"""TransferParams, ServerSpec / EndSystem validation, utilization."""

import pytest

from repro import units
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.params import TransferParams
from repro.netsim.utilization import Utilization, compute_utilization


class TestTransferParams:
    def test_defaults(self):
        p = TransferParams()
        assert (p.pipelining, p.parallelism, p.concurrency) == (1, 1, 1)

    def test_total_streams(self):
        assert TransferParams(parallelism=4, concurrency=3).total_streams == 12

    def test_zero_concurrency_allowed(self):
        assert TransferParams(concurrency=0).concurrency == 0

    def test_with_concurrency(self):
        p = TransferParams(pipelining=5, parallelism=2, concurrency=1)
        q = p.with_concurrency(8)
        assert q.concurrency == 8
        assert q.pipelining == 5 and q.parallelism == 2
        assert p.concurrency == 1  # original untouched

    @pytest.mark.parametrize("bad", [dict(pipelining=0), dict(parallelism=0), dict(concurrency=-1)])
    def test_invalid_values(self, bad):
        with pytest.raises(ValueError):
            TransferParams(**bad)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            TransferParams(pipelining=1.5)


def spec(**overrides) -> ServerSpec:
    base = dict(
        name="s",
        cores=4,
        tdp_watts=100.0,
        nic_rate=units.gbps(1),
        disk=ParallelDisk(per_accessor_rate=50e6, array_rate=200e6),
        per_channel_rate=50e6,
        core_rate=200e6,
    )
    base.update(overrides)
    return ServerSpec(**base)


class TestServerSpec:
    def test_valid(self):
        assert spec().cores == 4

    @pytest.mark.parametrize(
        "bad",
        [
            dict(cores=0),
            dict(tdp_watts=0),
            dict(nic_rate=0),
            dict(per_channel_rate=0),
            dict(core_rate=0),
            dict(channel_cpu_overhead=-1),
            dict(active_overhead=-0.1),
            dict(per_file_overhead=-0.1),
        ],
    )
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            spec(**bad)


class TestEndSystem:
    def test_valid(self):
        assert EndSystem("site", spec(), server_count=4).server_count == 4

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            EndSystem("site", spec(), server_count=0)


class TestComputeUtilization:
    def test_idle_when_no_channels(self):
        u = compute_utilization(spec(), channels=0, streams=0, throughput=0)
        assert u.is_idle
        assert u.cpu_pct == 0.0

    def test_active_cores_capped_by_cores(self):
        u = compute_utilization(spec(), channels=10, streams=10, throughput=0)
        assert u.active_cores == 4

    def test_active_cores_tracks_channels_below_cores(self):
        u = compute_utilization(spec(), channels=2, streams=2, throughput=0)
        assert u.active_cores == 2

    def test_cpu_grows_with_throughput(self):
        low = compute_utilization(spec(), 2, 2, 50e6)
        high = compute_utilization(spec(), 2, 2, 150e6)
        assert high.cpu_pct > low.cpu_pct

    def test_cpu_capped_at_total_cores(self):
        u = compute_utilization(spec(), 4, 4, 1e12)
        assert u.cpu_pct == pytest.approx(400.0)

    def test_work_term_linear_in_throughput(self):
        s = spec(active_overhead=0.0, channel_cpu_overhead=0.0, stream_cpu_overhead=0.0)
        u = compute_utilization(s, 1, 1, 100e6)
        assert u.cpu_pct == pytest.approx(100.0 * 100e6 / 200e6)

    def test_thrash_inflates_cpu_beyond_cores(self):
        s = spec(thrash_factor=0.5, active_overhead=0.0, channel_cpu_overhead=0.0,
                 stream_cpu_overhead=0.0)
        within = compute_utilization(s, 4, 4, 100e6)
        beyond = compute_utilization(s, 8, 8, 100e6)
        assert beyond.cpu_pct == pytest.approx(within.cpu_pct * 1.5)

    def test_nic_and_disk_fractions(self):
        u = compute_utilization(spec(), 2, 2, 100e6)
        assert u.nic_pct == pytest.approx(100.0 * 100e6 / units.gbps(1))
        assert u.disk_pct == pytest.approx(100.0)  # 100e6 over 2x50e6 accessors

    def test_streams_less_than_channels_rejected(self):
        with pytest.raises(ValueError):
            compute_utilization(spec(), channels=4, streams=2, throughput=0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            compute_utilization(spec(), -1, 0, 0)
        with pytest.raises(ValueError):
            compute_utilization(spec(), 1, 1, -5)
