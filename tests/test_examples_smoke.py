"""Smoke tests: the example scripts actually run.

Only the fast examples run in the unit suite (the heavier ones —
workload matrices, fleets — are exercised indirectly by the benchmark
suite's equivalent experiments). Each example must exit cleanly and
print its headline line.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = {
    "quickstart.py": "HTEE vs untuned",
    "campus_backup.py": "single-disk LAN",
    "adaptive_sla.py": "SLA held",
    "power_model_calibration.py": "Validation on transfer tools",
    "failure_drill.py": "restart markers",
}


@pytest.mark.parametrize("script,expected", sorted(FAST_EXAMPLES.items()))
def test_example_runs(script, expected, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert expected in out


def test_every_example_has_a_docstring_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python3\n"""', '"""')), script
        assert 'if __name__ == "__main__":' in text, script


def test_sla_broker_accepts_testbed_argument(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["sla_broker.py", "didclab"])
    runpy.run_path(str(EXAMPLES / "sla_broker.py"), run_name="__main__")
    assert "DIDCLAB" in capsys.readouterr().out
