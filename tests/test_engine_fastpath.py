"""Event-horizon fast path: numerical equivalence with fixed-dt stepping.

The fast path must be indistinguishable from the pure fixed-``dt``
stepper within the documented tolerance (DESIGN.md): bytes within
1e-6 relative, energy within 1e-3 relative, on all three paper
testbeds. These tests run both modes over identical scenarios —
full transfers, bounded horizons, failure injection, piecewise
background traffic — and compare.
"""

from __future__ import annotations

import math

import pytest

from repro import units
from repro.core.baselines import GucAlgorithm, ProMCAlgorithm, SingleChunkAlgorithm
from repro.core.scheduler import engine_options
from repro.datasets.files import FileInfo
from repro.harness.runner import dataset_for
from repro.netsim.engine import ChunkPlan, PiecewiseTraffic, TransferEngine
from repro.netsim.params import TransferParams
from repro.testbeds.specs import ALL_TESTBEDS, Testbed

#: Documented equivalence tolerances (see DESIGN.md).
BYTES_RTOL = 1e-6
ENERGY_RTOL = 1e-3
DURATION_RTOL = 1e-9


def rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-12)


def paired_engines(make_engine, **kwargs):
    fast = make_engine(fast_path=True, **kwargs)
    fixed = make_engine(fast_path=False, **kwargs)
    return fast, fixed


def assert_equivalent(fast: TransferEngine, fixed: TransferEngine) -> None:
    assert rel(fast.total_bytes, fixed.total_bytes) <= BYTES_RTOL
    assert rel(fast.total_energy, fixed.total_energy) <= ENERGY_RTOL
    assert rel(fast.time, fixed.time) <= DURATION_RTOL
    assert fast.total_files == fixed.total_files


class TestPaperTestbedEquivalence:
    """Both modes agree on every paper testbed (the acceptance bar)."""

    @pytest.mark.parametrize("testbed", ALL_TESTBEDS, ids=lambda tb: tb.name)
    @pytest.mark.parametrize(
        "algorithm,level",
        [(GucAlgorithm(), 1), (SingleChunkAlgorithm(), 4), (ProMCAlgorithm(), 4)],
        ids=["GUC", "SC", "ProMC"],
    )
    def test_full_transfer_equivalence(self, testbed: Testbed, algorithm, level):
        dataset = dataset_for(testbed)
        fast = algorithm.run(testbed, dataset, level)
        with engine_options(fast_path=False):
            fixed = algorithm.run(testbed, dataset, level)
        assert rel(fast.bytes_moved, fixed.bytes_moved) <= BYTES_RTOL
        assert rel(fast.energy_joules, fixed.energy_joules) <= ENERGY_RTOL
        assert rel(fast.duration_s, fixed.duration_s) <= DURATION_RTOL
        assert fast.files_moved == fixed.files_moved


class TestScenarioEquivalence:
    """Horizons, failures and cross-traffic behave identically."""

    def _files(self, n=24, size=8 * units.MB, name="f"):
        return tuple(FileInfo(f"{name}{i}", int(size)) for i in range(n))

    def test_bounded_horizon_equivalence(self, make_small_engine):
        fast, fixed = paired_engines(make_small_engine)
        for engine in (fast, fixed):
            engine.add_chunk(ChunkPlan("c", self._files(), TransferParams(concurrency=3)))
            engine.run(1.7)   # mid-transfer horizon
            engine.run(0.05)  # sub-dt horizon still advances one step
            engine.run()      # to completion
        assert_equivalent(fast, fixed)

    def test_failure_injection_equivalence(self, make_small_engine):
        fast, fixed = paired_engines(make_small_engine)
        for engine in (fast, fixed):
            engine.add_chunk(
                ChunkPlan("c", self._files(n=40), TransferParams(concurrency=4))
            )
            engine.run(0.5)
            victim = next(c for c in engine.channels if c.busy)
            engine.fail_channel(victim, restart_file=True)
            engine.run(0.5)
            engine.fail_server("src", 0, downtime=0.7)
            engine.run()
        assert_equivalent(fast, fixed)
        assert fast.channel_failures == fixed.channel_failures == 1
        assert fast.server_failures == fixed.server_failures == 1

    def test_piecewise_traffic_keeps_fast_path(self, make_small_engine):
        profile = PiecewiseTraffic(points=((0.0, 0.0), (1.0, 6.0), (3.0, 0.0)))
        fast, fixed = paired_engines(make_small_engine, background_traffic=profile)
        for engine in (fast, fixed):
            engine.add_chunk(ChunkPlan("c", self._files(), TransferParams(concurrency=2)))
            engine.run()
        assert_equivalent(fast, fixed)
        assert fast.macro_steps > 0  # profile change points did not kill it

    def test_opaque_traffic_disables_fast_path(self, make_small_engine):
        engine = make_small_engine(background_traffic=lambda t: 0.0)
        engine.add_chunk(ChunkPlan("c", self._files(), TransferParams(concurrency=2)))
        engine.run()
        assert engine.macro_steps == 0
        assert engine.fixed_steps > 0

    def test_until_predicate_equivalence_on_event_state(self, make_small_engine):
        # Predicates watching allocation-changing events (queue drain +
        # busy set, the sequential baselines' predicate) are dt-accurate
        # under the fast path: those events bound every macro-step.
        fast, fixed = paired_engines(make_small_engine)
        for engine in (fast, fixed):
            engine.add_chunk(ChunkPlan("a", self._files(name="a"), TransferParams(concurrency=2)))
            engine.add_chunk(
                ChunkPlan("b", self._files(name="b"), TransferParams(concurrency=1)),
                open_channels=False,
            )
            state = engine.chunks["a"]

            def drained(state=state, engine=engine):
                return state.exhausted and not any(
                    c.busy for c in engine.channels_for("a")
                )

            engine.run(until=drained)
            assert drained()
        assert_equivalent(fast, fixed)

    def test_until_predicate_stops_the_loop(self, make_small_engine):
        # Fine-grained predicates still stop the run; they may overshoot
        # by at most one macro-step (documented), never miss.
        engine = make_small_engine()
        engine.add_chunk(ChunkPlan("c", self._files(), TransferParams(concurrency=2)))
        state = engine.chunks["c"]
        engine.run(until=lambda: state.files_done >= 10)
        assert state.files_done >= 10
        assert not engine.finished

    def test_trace_is_step_accurate_under_macro_steps(self, make_small_engine):
        fast, fixed = paired_engines(make_small_engine, record_trace=True)
        for engine in (fast, fixed):
            engine.add_chunk(ChunkPlan("c", self._files(), TransferParams(concurrency=1)))
            engine.run()
        assert fast.macro_steps > 0
        # same number of records, at the same (bit-exact) step times
        assert len(fast.trace) == len(fixed.trace)
        assert [r.time for r in fast.trace] == [r.time for r in fixed.trace]
        # byte-weighted totals agree even though macro records hold the
        # interval-average throughput
        dt = fast.dt
        assert rel(
            sum(r.throughput for r in fast.trace) * dt,
            sum(r.throughput for r in fixed.trace) * dt,
        ) <= BYTES_RTOL
        assert rel(
            sum(r.power for r in fast.trace) * dt,
            sum(r.power for r in fixed.trace) * dt,
        ) <= ENERGY_RTOL


class TestFastPathMechanics:
    def test_macro_steps_taken_on_stable_stretch(self, make_small_engine):
        engine = make_small_engine()
        files = (FileInfo("big", 200 * units.MB),)
        engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=1)))
        engine.run()
        assert engine.macro_steps >= 1
        # one long file: almost everything is one macro-step
        assert engine.fixed_steps < 10

    def test_piecewise_traffic_profile(self):
        profile = PiecewiseTraffic(points=((0.0, 0.0), (5.0, 4.0), (9.0, 1.0)))
        assert profile(0.0) == 0.0
        assert profile(4.999) == 0.0
        assert profile(5.0) == 4.0
        assert profile(100.0) == 1.0
        assert profile.next_change(0.0) == 5.0
        assert profile.next_change(5.0) == 9.0
        assert math.isinf(profile.next_change(9.0))

    def test_piecewise_traffic_validation(self):
        with pytest.raises(ValueError):
            PiecewiseTraffic(points=((5.0, 1.0), (0.0, 2.0)))
        with pytest.raises(ValueError):
            PiecewiseTraffic(points=((0.0, -1.0),))

    def test_allocation_cache_invalidated_on_channel_change(self, make_small_engine):
        engine = make_small_engine()
        files = tuple(FileInfo(f"f{i}", 50 * units.MB) for i in range(8))
        engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=2)))
        engine.step()
        assert engine._alloc_cache
        engine.open_channel("c")
        assert not engine._alloc_cache
        engine.step()
        assert engine._alloc_cache
        engine.close_channel(engine.channels[-1])
        assert not engine._alloc_cache

    def test_server_recovery_bounds_macro_step(self, make_small_engine):
        fast, fixed = paired_engines(make_small_engine)
        for engine in (fast, fixed):
            files = tuple(FileInfo(f"f{i}", 40 * units.MB) for i in range(12))
            engine.add_chunk(ChunkPlan("c", files, TransferParams(concurrency=4)))
            engine.run(0.4)
            engine.fail_server("dst", 1, downtime=1.0, reopen=True)
            engine.run()
        assert_equivalent(fast, fixed)
        # the recovery actually happened in both
        assert not fast.down_servers and not fixed.down_servers
