"""Pareto-frontier analysis of the throughput/energy plane."""

import pytest

from repro import units
from repro.core.scheduler import TransferOutcome
from repro.harness.pareto import dominated_by, pareto_frontier, render_frontier


def outcome(alg, cc, thr_mbps, joules) -> TransferOutcome:
    rate = units.mbps(thr_mbps)
    return TransferOutcome(
        algorithm=alg, testbed="T", max_channels=cc,
        duration_s=100.0, bytes_moved=rate * 100.0, energy_joules=joules,
    )


class TestDomination:
    def test_strictly_better_dominates(self):
        slow_dear = outcome("A", 1, 100, 1000)
        fast_cheap = outcome("B", 2, 200, 500)
        assert dominated_by(slow_dear, fast_cheap)
        assert not dominated_by(fast_cheap, slow_dear)

    def test_tradeoff_points_do_not_dominate(self):
        fast_dear = outcome("A", 1, 200, 1000)
        slow_cheap = outcome("B", 2, 100, 500)
        assert not dominated_by(fast_dear, slow_cheap)
        assert not dominated_by(slow_cheap, fast_dear)

    def test_identical_points_do_not_dominate(self):
        a = outcome("A", 1, 100, 500)
        b = outcome("B", 2, 100, 500)
        assert not dominated_by(a, b)

    def test_equal_energy_faster_dominates(self):
        a = outcome("A", 1, 100, 500)
        b = outcome("B", 2, 150, 500)
        assert dominated_by(a, b)


class TestFrontier:
    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_all_on_frontier_when_tradeoffs(self):
        points = pareto_frontier(
            [outcome("A", 1, 100, 400), outcome("B", 2, 200, 800),
             outcome("C", 4, 300, 1500)]
        )
        assert all(p.on_frontier for p in points)
        assert all(p.energy_excess == 0.0 for p in points)

    def test_dominated_point_flagged_with_excess(self):
        runs = [
            outcome("good", 4, 200, 500),
            outcome("bad", 8, 150, 1000),  # slower AND dearer
        ]
        points = {p.label: p for p in pareto_frontier(runs)}
        assert points["good@4"].on_frontier
        assert not points["bad@8"].on_frontier
        assert points["bad@8"].energy_excess == pytest.approx(1.0)  # 2x the joules

    def test_sorted_by_throughput(self):
        points = pareto_frontier(
            [outcome("A", 1, 300, 900), outcome("B", 2, 100, 300),
             outcome("C", 4, 200, 600)]
        )
        throughputs = [p.outcome.throughput for p in points]
        assert throughputs == sorted(throughputs)

    def test_excess_uses_cheapest_faster_frontier_point(self):
        runs = [
            outcome("frontier-fast", 1, 300, 600),
            outcome("frontier-cheap", 2, 100, 200),
            outcome("mid-dominated", 4, 150, 900),
        ]
        points = {p.label: p for p in pareto_frontier(runs)}
        # cheapest frontier point delivering >= 150 Mbps is 600 J
        assert points["mid-dominated@4"].energy_excess == pytest.approx(900 / 600 - 1)

    def test_render(self):
        text = render_frontier(
            pareto_frontier([outcome("A", 1, 100, 400), outcome("B", 2, 50, 800)])
        )
        assert "A@1" in text and "B@2" in text
        assert "yes" in text and "no" in text


class TestOnRealSweep:
    def test_mine_and_promc_land_on_xsede_frontier(self):
        """The paper's two extreme algorithms must be undominated."""
        from repro.harness.sweeps import concurrency_sweep
        from repro.testbeds import XSEDE

        sweep = concurrency_sweep(XSEDE, algorithms=("GUC", "SC", "MinE", "ProMC"),
                                  levels=(4, 12))
        outcomes = [o for series in sweep.series.values() for o in series]
        points = pareto_frontier(outcomes)
        frontier_algs = {p.outcome.algorithm for p in points if p.on_frontier}
        assert "MinE" in frontier_algs  # cheapest
        assert "ProMC" in frontier_algs  # fastest
        guc_points = [p for p in points if p.outcome.algorithm == "GUC"]
        assert all(not p.on_frontier for p in guc_points)  # strictly wasteful
