"""Network-device energy: Table 1, Eq. 4/5, Figure 8 models, Figure 9
topologies."""

import pytest

from repro import units
from repro.netenergy.devices import (
    EDGE_ROUTER,
    EDGE_SWITCH,
    ENTERPRISE_SWITCH,
    METRO_ROUTER,
    TABLE1_DEVICES,
    DeviceType,
)
from repro.netenergy.models import (
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
    transfer_energy,
)
from repro.netenergy.topology import (
    DEFAULT_MTU_BYTES,
    didclab_topology,
    futuregrid_topology,
    packet_count,
    topology_for,
    xsede_topology,
)


class TestTable1:
    def test_published_coefficients(self):
        assert ENTERPRISE_SWITCH.processing_nw == 40.0
        assert ENTERPRISE_SWITCH.store_forward_pw == 0.42
        assert EDGE_SWITCH.processing_nw == 1571.0
        assert EDGE_SWITCH.store_forward_pw == 14.1
        assert METRO_ROUTER.processing_nw == 1375.0
        assert METRO_ROUTER.store_forward_pw == 21.6
        assert EDGE_ROUTER.processing_nw == 1707.0
        assert EDGE_ROUTER.store_forward_pw == 15.3

    def test_four_device_classes(self):
        assert len(TABLE1_DEVICES) == 4

    def test_per_packet_joules(self):
        expected = 40.0e-9 + 0.42e-12
        assert ENTERPRISE_SWITCH.per_packet_joules == pytest.approx(expected)

    def test_dynamic_energy_eq5(self):
        packets = 1e8
        energy = EDGE_SWITCH.dynamic_energy(packets)
        assert energy == pytest.approx(packets * (1571e-9 + 14.1e-12))

    def test_total_energy_eq4(self):
        # E_T = P_i * T + P_d * T_d with the dynamic part per packet
        energy = EDGE_SWITCH.total_energy(packet_count=1e6, duration_s=100.0)
        assert energy == pytest.approx(
            EDGE_SWITCH.idle_watts * 100.0 + EDGE_SWITCH.dynamic_energy(1e6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceType("bad", -1.0, 0.0)
        with pytest.raises(ValueError):
            EDGE_SWITCH.dynamic_energy(-1)


class TestDynamicModels:
    def test_nonlinear_is_sublinear(self):
        m = NonLinearPowerModel(idle_watts=10.0, max_dynamic_watts=100.0)
        assert m.dynamic_power(0.25) == pytest.approx(50.0)  # sqrt
        assert m.dynamic_power(1.0) == pytest.approx(100.0)
        assert m.dynamic_power(0.0) == 0.0

    def test_paper_worked_example_4x_rate_2x_power(self):
        m = NonLinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
        assert m.dynamic_power(0.8) == pytest.approx(2.0 * m.dynamic_power(0.2))

    def test_linear(self):
        m = LinearPowerModel(idle_watts=5.0, max_dynamic_watts=100.0)
        assert m.dynamic_power(0.5) == pytest.approx(50.0)
        assert m.power(0.5) == pytest.approx(55.0)

    def test_state_based_steps(self):
        m = StateBasedPowerModel(idle_watts=0.0, max_dynamic_watts=100.0,
                                 thresholds=(0.5,))
        assert m.dynamic_power(0.2) == pytest.approx(50.0)
        assert m.dynamic_power(0.7) == pytest.approx(100.0)

    def test_state_based_default_staircase_monotone(self):
        m = StateBasedPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
        values = [m.dynamic_power(u / 100) for u in range(0, 101, 5)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[0] == 0.0

    def test_state_based_zero_boundary_is_exact(self):
        """The documented-exact idle sentinel: u == 0.0 draws nothing,
        while any positive utilization — however tiny — engages the
        first power state (trickle traffic is not idle)."""
        m = StateBasedPowerModel(idle_watts=0.0, max_dynamic_watts=100.0,
                                 thresholds=(0.5,))
        assert m.dynamic_power(0.0) == 0.0
        # the first state is half the budget with one threshold
        assert m.dynamic_power(1e-300) == pytest.approx(50.0)
        assert m.dynamic_power(5e-324) == pytest.approx(50.0)  # min subnormal
        # idle power is still billed separately through .power()
        m_idle = StateBasedPowerModel(idle_watts=7.0, max_dynamic_watts=100.0,
                                      thresholds=(0.5,))
        assert m_idle.power(0.0) == pytest.approx(7.0)

    def test_utilization_bounds(self):
        for model in (
            NonLinearPowerModel(0, 10),
            LinearPowerModel(0, 10),
            StateBasedPowerModel(0, 10),
        ):
            with pytest.raises(ValueError):
                model.dynamic_power(1.5)
            with pytest.raises(ValueError):
                model.dynamic_power(-0.1)

    def test_state_threshold_validation(self):
        with pytest.raises(ValueError):
            StateBasedPowerModel(0, 10, thresholds=())
        with pytest.raises(ValueError):
            StateBasedPowerModel(0, 10, thresholds=(0.5, 0.2))
        with pytest.raises(ValueError):
            StateBasedPowerModel(0, 10, thresholds=(0.0,))

    def test_nonlinear_exponent_validation(self):
        with pytest.raises(ValueError):
            NonLinearPowerModel(0, 10, exponent=1.0)


class TestTransferEnergy:
    """Section 4's analysis of rate vs energy."""

    def test_linear_model_energy_rate_invariant(self):
        m = LinearPowerModel(idle_watts=50.0, max_dynamic_watts=100.0)
        low = transfer_energy(m, units.GB, units.mbps(100), units.gbps(1))
        high = transfer_energy(m, units.GB, units.mbps(400), units.gbps(1))
        assert low == pytest.approx(high)

    def test_nonlinear_model_rewards_speed(self):
        m = NonLinearPowerModel(idle_watts=50.0, max_dynamic_watts=100.0)
        low = transfer_energy(m, units.GB, units.mbps(100), units.gbps(1))
        high = transfer_energy(m, units.GB, units.mbps(400), units.gbps(1))
        assert high == pytest.approx(0.5 * low)  # the paper's worked example

    def test_idle_inclusion_penalizes_slow_transfers(self):
        m = LinearPowerModel(idle_watts=50.0, max_dynamic_watts=100.0)
        low = transfer_energy(m, units.GB, units.mbps(100), units.gbps(1), include_idle=True)
        high = transfer_energy(m, units.GB, units.mbps(400), units.gbps(1), include_idle=True)
        assert high < low

    def test_validation(self):
        m = LinearPowerModel(0, 10)
        with pytest.raises(ValueError):
            transfer_energy(m, -1, 1, 2)
        with pytest.raises(ValueError):
            transfer_energy(m, 1, 0, 2)
        with pytest.raises(ValueError):
            transfer_energy(m, 1, 3, 2)


class TestTopologies:
    def test_packet_count(self):
        assert packet_count(1500 * 10) == pytest.approx(10)
        with pytest.raises(ValueError):
            packet_count(-1)
        with pytest.raises(ValueError):
            packet_count(10, 0)

    def test_xsede_chain(self):
        topo = xsede_topology()
        devices = topo.path_devices()
        assert len(devices) == 8
        names = [d.name for d in devices]
        assert names.count("Edge Ethernet Switch") == 2
        assert names.count("Enterprise Ethernet Switch") == 2
        assert names.count("Edge IP Router") == 2
        assert names.count("Metro IP Router") == 2

    def test_futuregrid_is_metro_heavy(self):
        devices = futuregrid_topology().path_devices()
        metro = sum(1 for d in devices if d is METRO_ROUTER)
        assert metro == 4

    def test_didclab_single_switch(self):
        devices = didclab_topology().path_devices()
        assert len(devices) == 1
        assert devices[0] is EDGE_SWITCH

    def test_dynamic_transfer_energy_sums_devices(self):
        topo = didclab_topology()
        energy = topo.dynamic_transfer_energy(1500 * 1e6)  # 1e6 packets
        assert energy == pytest.approx(EDGE_SWITCH.dynamic_energy(1e6))

    def test_per_device_energy_rows(self):
        rows = xsede_topology().per_device_energy(units.GB)
        assert len(rows) == 8
        assert all(e > 0 for _, e in rows)

    def test_per_packet_share_ordering(self):
        # FutureGrid's per-packet cost exceeds DIDCLAB's single switch
        fg = futuregrid_topology().dynamic_transfer_energy(units.GB)
        lab = didclab_topology().dynamic_transfer_energy(units.GB)
        assert fg > lab

    def test_topology_for_lookup(self):
        assert topology_for("xsede").name == "XSEDE"
        assert topology_for("FutureGrid").name == "FutureGrid"
        with pytest.raises(KeyError):
            topology_for("unknown")

    def test_describe_shows_path(self):
        text = xsede_topology().describe()
        assert "gordon-sdsc" in text
        assert "stampede-tacc" in text
