#!/usr/bin/env python3
"""Campus nightly backup: why "more parallel" is not "more better".

A lab backs up 40 GB of mixed experiment output between two
workstations on a 1 Gbps LAN (the DIDCLAB testbed) every night. Both
machines have a single spinning disk, so every extra concurrent
channel makes the heads seek — throughput falls and the power bill
rises. This script sweeps concurrency with the throughput-first ProMC
schedule, then shows that MinE and HTEE land on the single-channel
optimum automatically.

Run:  python examples/campus_backup.py
"""

from repro import DIDCLAB, HTEEAlgorithm, MinEAlgorithm, ProMCAlgorithm, units


def main() -> None:
    dataset = DIDCLAB.dataset()
    print(f"Backup path : {DIDCLAB.describe()}")
    print(f"Backup set  : {dataset.describe()}\n")

    print("Manual tuning sweep (ProMC at a fixed channel count):")
    print(f"{'channels':>9s} {'throughput':>12s} {'energy':>10s} {'finish time':>12s}")
    promc = ProMCAlgorithm()
    for cc in (1, 2, 4, 8, 12):
        outcome = promc.run(DIDCLAB, dataset, cc)
        print(
            f"{cc:>9d} {outcome.throughput_mbps:9.0f} Mbps "
            f"{units.kilojoules(outcome.energy_joules):7.2f} kJ "
            f"{outcome.duration_s / 60:9.1f} min"
        )

    print("\nSelf-tuning algorithms (budget of 12 channels offered):")
    for label, outcome in (
        ("MinE", MinEAlgorithm().run(DIDCLAB, dataset, 12)),
        ("HTEE", HTEEAlgorithm().run(DIDCLAB, dataset, 12)),
    ):
        print(
            f"{label:>9s} {outcome.throughput_mbps:9.0f} Mbps "
            f"{units.kilojoules(outcome.energy_joules):7.2f} kJ "
            f"{outcome.duration_s / 60:9.1f} min "
            f"(chose {outcome.final_concurrency} channel(s))"
        )

    print(
        "\nOn a single-disk LAN the optimum is one channel; the"
        " energy-aware algorithms find it without being told."
    )


if __name__ == "__main__":
    main()
