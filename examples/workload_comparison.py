#!/usr/bin/env python3
"""Which algorithm should move *your* data?

Runs the energy-aware algorithms against five realistic workload shapes
(genomics runs, climate model output, a video archive, hourly log
shipping, VM image replication) over the XSEDE path, and shows how the
winning strategy — and the value of tuning at all — depends on the
file-size mix. Finishes with the planning advisor's no-simulation
recommendation for one workload.

Run:  python examples/workload_comparison.py
"""

from repro import GucAlgorithm, HTEEAlgorithm, MinEAlgorithm, XSEDE, units
from repro.core.advisor import advise
from repro.datasets.presets import WORKLOAD_PRESETS
from repro.harness.charts import line_chart


def main() -> None:
    print(f"Path: {XSEDE.describe()}\n")
    print(
        f"{'workload':<11s} {'files':>6s} {'size':>8s} | "
        f"{'GUC Mbps':>9s} | {'MinE Mbps':>9s} {'kJ':>6s} | "
        f"{'HTEE Mbps':>9s} {'kJ':>6s}"
    )

    htee_series: dict[str, float] = {}
    for name, factory in WORKLOAD_PRESETS.items():
        dataset = factory()
        guc = GucAlgorithm().run(XSEDE, dataset)
        mine = MinEAlgorithm().run(XSEDE, dataset, 12)
        htee = HTEEAlgorithm().run(XSEDE, dataset, 12)
        htee_series[name] = htee.throughput_mbps
        print(
            f"{name:<11s} {dataset.file_count:>6d} "
            f"{units.to_GB(dataset.total_size):6.0f}GB | "
            f"{guc.throughput_mbps:9.0f} | "
            f"{mine.throughput_mbps:9.0f} {units.kilojoules(mine.energy_joules):6.1f} | "
            f"{htee.throughput_mbps:9.0f} {units.kilojoules(htee.energy_joules):6.1f}"
        )

    print()
    print(
        line_chart(
            {"HTEE": list(htee_series.values())},
            x_labels=list(htee_series),
            height=8,
            width=56,
            title="HTEE throughput by workload (Mbps)",
        )
    )

    print("\nPlanning without simulating (the advisor):")
    print(advise(XSEDE, WORKLOAD_PRESETS["genomics"](), 12).render())


if __name__ == "__main__":
    main()
