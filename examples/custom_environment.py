#!/usr/bin/env python3
"""Bring your own environment: define a testbed in JSON, run everything.

A university lab has a 25 Gbps link to a national facility (18 ms RTT),
two transfer nodes with NVMe arrays, and nightly genomics exports. This
script writes that environment as a JSON definition, loads it back, and
runs the planning advisor, a transfer comparison, and an SLA quote —
exactly what a new adopter would do before trusting the library with
their link.

Run:  python examples/custom_environment.py
"""

import json
import tempfile
from pathlib import Path

from repro import GucAlgorithm, HTEEAlgorithm, ProMCAlgorithm, SLAEEAlgorithm, units
from repro.core.advisor import advise
from repro.testbeds.io import load_testbed

LAB_DEFINITION = {
    "name": "GenomeLab",
    "path": {
        "bandwidth_gbps": 25,
        "rtt_ms": 18,
        "tcp_buffer_mb": 64,
        "congestion_knee": 32,
        "congestion_slope": 0.02,
    },
    "server": {
        "cores": 16,
        "tdp_watts": 165,
        "nic_gbps": 25,
        "per_channel_rate_mbytes": 350,
        "core_rate_mbytes": 900,
        "disk": {"type": "parallel", "per_accessor_mbytes": 500, "array_mbytes": 2800},
        "per_file_overhead": 0.008,
    },
    "server_count": 2,
    "dataset": {"type": "preset", "name": "genomics"},
    "sla_reference_concurrency": 8,
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        definition = Path(tmp) / "genomelab.json"
        definition.write_text(json.dumps(LAB_DEFINITION, indent=2))
        testbed = load_testbed(definition)

    dataset = testbed.dataset()
    print(f"Environment: {testbed.describe()}")
    print(f"Workload   : {dataset.describe()}\n")

    print("1. Plan before moving anything:")
    print(advise(testbed, dataset, max_channels=8).render())

    print("\n2. Measure the plan against reality:")
    for label, outcome in (
        ("untuned", GucAlgorithm().run(testbed, dataset)),
        ("ProMC", ProMCAlgorithm().run(testbed, dataset, 8)),
        ("HTEE", HTEEAlgorithm().run(testbed, dataset, 8)),
    ):
        print(
            f"   {label:<8s} {outcome.throughput_mbps:7.0f} Mbps, "
            f"{units.kilojoules(outcome.energy_joules):5.2f} kJ, "
            f"{outcome.duration_s:5.0f} s"
        )

    print("\n3. Quote an 80% SLA for the nightly export:")
    peak = ProMCAlgorithm().run(testbed, dataset, 8).throughput
    quote = SLAEEAlgorithm().run(
        testbed, dataset, 16, sla_level=0.8, max_throughput=peak
    )
    print(
        f"   deliverable at {units.to_mbps(quote.steady_throughput or 0):.0f} Mbps "
        f"with cc={quote.final_concurrency}, "
        f"{units.kilojoules(quote.energy_joules):.2f} kJ per run"
    )


if __name__ == "__main__":
    main()
