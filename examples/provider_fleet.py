#!/usr/bin/env python3
"""What does an energy-aware fleet policy save per year?

A research-data provider pushes the paper's 160 GB mixed dataset over
the XSEDE path several times a day, plus smaller hourly syncs. This
script compares four fleet policies — throughput-first ProMC, the two
energy-aware algorithms, and tiered SLAEE — in annual kWh, dollars and
CO2, then scales the best saving to the paper's world-wide estimate
(450 TWh/year of transfer electricity, a quarter of it burned at the
end-systems).

Run:  python examples/provider_fleet.py
"""

from repro import units
from repro.datasets.generators import log_uniform_dataset
from repro.fleet import FleetModel, JobClass, TariffModel, global_projection_twh
from repro.testbeds import XSEDE


def hourly_sync():
    return log_uniform_dataset(
        20 * units.GB, 3 * units.MB, 2 * units.GB, seed=99, name="hourly-sync-20GB"
    )


def main() -> None:
    fleet = FleetModel(
        XSEDE,
        [
            JobClass("bulk-replication", XSEDE.dataset_factory, jobs_per_day=4.0,
                     sla_level=0.9),
            JobClass("hourly-sync", hourly_sync, jobs_per_day=24.0, sla_level=0.7),
        ],
        tariff=TariffModel(dollars_per_kwh=0.08, kg_co2_per_kwh=0.37),
        max_channels=12,
    )

    print(f"Fleet path : {XSEDE.describe()}")
    print("Daily mix  : 4x 160 GB bulk replications + 24x 20 GB syncs\n")
    print(fleet.render_comparison())

    promc = fleet.report("promc")
    best = min(fleet.compare(), key=lambda r: r.annual_energy_kwh)
    saving = best.savings_vs(promc)
    print(
        f"\nBest policy: {best.policy} — saves {100 * saving:.0f}% of fleet "
        f"energy, ${promc.annual_cost_dollars - best.annual_cost_dollars:.2f} "
        f"and {promc.annual_kg_co2 - best.annual_kg_co2:.0f} kg CO2 per year"
        " on this one path."
    )
    world = global_projection_twh(saving)
    print(
        f"Scaled to the paper's global estimate (450 TWh/yr, 25% at the"
        f" end-systems), universal adoption would save ~{world:.0f} TWh/yr."
    )


if __name__ == "__main__":
    main()
