#!/usr/bin/env python3
"""Quickstart: energy-aware bulk data transfer in ten lines.

Moves the paper's 160 GB mixed dataset across the simulated XSEDE path
(Stampede -> Gordon, 10 Gbps, 40 ms RTT) with the untuned baseline and
with each energy-aware algorithm, and prints what the tuning buys you.

Run:  python examples/quickstart.py
"""

from repro import (
    GucAlgorithm,
    HTEEAlgorithm,
    MinEAlgorithm,
    ProMCAlgorithm,
    XSEDE,
    units,
)


def main() -> None:
    dataset = XSEDE.dataset()
    print(f"Testbed : {XSEDE.describe()}")
    print(f"Dataset : {dataset.describe()}")
    print()

    max_channels = 12
    runs = [
        ("untuned globus-url-copy", GucAlgorithm().run(XSEDE, dataset)),
        ("throughput-first ProMC", ProMCAlgorithm().run(XSEDE, dataset, max_channels)),
        ("minimum-energy MinE", MinEAlgorithm().run(XSEDE, dataset, max_channels)),
        ("energy-efficient HTEE", HTEEAlgorithm().run(XSEDE, dataset, max_channels)),
    ]

    print(f"{'strategy':<26s} {'throughput':>12s} {'energy':>10s} {'time':>8s} {'Mbps/J':>8s}")
    for label, outcome in runs:
        print(
            f"{label:<26s} {outcome.throughput_mbps:9.0f} Mbps "
            f"{units.kilojoules(outcome.energy_joules):7.1f} kJ "
            f"{outcome.duration_s:6.0f} s {outcome.efficiency:8.3f}"
        )

    guc = runs[0][1]
    htee = runs[3][1]
    speedup = htee.throughput / guc.throughput
    saving = 100 * (guc.energy_joules - htee.energy_joules) / guc.energy_joules
    print()
    print(
        f"HTEE vs untuned: {speedup:.1f}x the throughput and "
        f"{saving:.0f}% less transfer energy, with zero manual tuning."
    )


if __name__ == "__main__":
    main()
