#!/usr/bin/env python3
"""Scheduling a batch of transfers: run together, or one at a time?

Three research groups hand the transfer service their datasets within
the same minute. The service can admit everything at once (jobs share
the path per TCP-fairness), serialize (each job gets the whole pipe),
or cap concurrency at two. This script compares makespan, per-job
turnaround and total energy for the three admission policies, using
MinE-planned jobs on a shared 1 Gbps path.

Run:  python examples/batch_scheduler.py
"""

from repro import units
from repro.core.mine import MinEAlgorithm
from repro.datasets.presets import genomics_dataset, log_shipping_dataset, vm_image_dataset
from repro.netsim.multi import MultiTransferSimulator
from repro.testbeds import FUTUREGRID


def submit_batch(sim: MultiTransferSimulator) -> None:
    jobs = [
        ("genomics", genomics_dataset(10 * units.GB), 0.0),
        ("logs", log_shipping_dataset(4 * units.GB), 10.0),
        ("vm-images", vm_image_dataset(count=2, image_size=4 * units.GB), 20.0),
    ]
    for name, dataset, arrival in jobs:
        plans = MinEAlgorithm().plan(FUTUREGRID, dataset, 6)
        # chunk names must be unique across jobs in one simulator
        plans = [
            type(p)(name=f"{name}:{p.name}", files=p.files, params=p.params)
            for p in plans
        ]
        sim.submit(name, plans, arrival_time=arrival)


def main() -> None:
    print(f"Path: {FUTUREGRID.describe()}\n")
    policies = [
        ("all at once", None),
        ("cap at 2", 2),
        ("serialize", 1),
    ]
    print(f"{'policy':<12s} {'makespan':>9s} {'total energy':>13s}  per-job turnaround")
    for label, cap in policies:
        sim = MultiTransferSimulator(FUTUREGRID, max_concurrent_jobs=cap)
        submit_batch(sim)
        records = sim.run()
        turnarounds = ", ".join(
            f"{r.name} {r.turnaround_s:.0f}s" for r in records
        )
        print(
            f"{label:<12s} {sim.makespan:8.0f}s "
            f"{units.kilojoules(sim.total_energy):10.2f} kJ  {turnarounds}"
        )

    print(
        "\nSharing the path helps early jobs' turnaround little (they"
        " contend) but overlaps the tail; serialization minimizes each"
        " job's runtime at the cost of queueing delay. Energy differs"
        " because per-channel overheads run for different total times."
    )


if __name__ == "__main__":
    main()
