#!/usr/bin/env python3
"""SLA broker: a pay-as-you-go transfer service built on SLAEE.

A cloud storage provider offers three transfer tiers — Express (95% of
peak throughput), Standard (80%) and Economy (50%) — and wants to
honour each promise at the lowest possible energy cost. This script
plays the provider: it measures the path's peak rate with ProMC once,
then serves one customer per tier through the SLA-based Energy-
Efficient algorithm and prices the energy saved.

Run:  python examples/sla_broker.py [xsede|futuregrid|didclab]
"""

import sys

from repro import ProMCAlgorithm, SLAEEAlgorithm, units
from repro.testbeds import testbed_by_name

#: US average industrial electricity price, $/kWh (for the cost column).
DOLLARS_PER_KWH = 0.08

TIERS = [
    ("Express", 0.95),
    ("Standard", 0.80),
    ("Economy", 0.50),
]


def dollars(joules: float) -> float:
    return joules / 3.6e6 * DOLLARS_PER_KWH


def main() -> None:
    testbed = testbed_by_name(sys.argv[1] if len(sys.argv) > 1 else "xsede")
    dataset = testbed.dataset()
    print(f"Provider path : {testbed.describe()}")
    print(f"Customer data : {dataset.describe()}")

    # One-time capacity measurement: the best the path can do.
    reference = ProMCAlgorithm().run(
        testbed, dataset, testbed.sla_reference_concurrency
    )
    peak = reference.throughput
    print(
        f"Peak capacity : {units.to_mbps(peak):.0f} Mbps "
        f"(ProMC at cc={testbed.sla_reference_concurrency}, "
        f"{units.kilojoules(reference.energy_joules):.1f} kJ per job)\n"
    )

    print(
        f"{'tier':<10s} {'promised':>10s} {'delivered':>10s} {'dev':>7s} "
        f"{'energy':>9s} {'saved':>7s} {'cost/job':>9s}"
    )
    slaee = SLAEEAlgorithm()
    for tier, level in TIERS:
        outcome = slaee.run(
            testbed,
            dataset,
            testbed.brute_force_max_concurrency,
            sla_level=level,
            max_throughput=peak,
        )
        delivered = outcome.steady_throughput or outcome.throughput
        target = level * peak
        deviation = 100 * (delivered - target) / target
        saved = 100 * (reference.energy_joules - outcome.energy_joules) / reference.energy_joules
        print(
            f"{tier:<10s} {units.to_mbps(target):7.0f} Mbps "
            f"{units.to_mbps(delivered):7.0f} Mbps {deviation:+6.1f}% "
            f"{units.kilojoules(outcome.energy_joules):6.1f} kJ {saved:+6.1f}% "
            f"${dollars(outcome.energy_joules):8.4f}"
        )

    print(
        "\nCustomers flexible on delivery time let the provider cut energy"
        " per job — the paper's 'low-cost data transfer options in return"
        " for delayed transfers'."
    )


if __name__ == "__main__":
    main()
