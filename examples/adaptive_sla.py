#!/usr/bin/env python3
"""Keeping an SLA on a shared link: open-loop vs closed-loop SLAEE.

A provider promises half of the path's peak rate. Twenty-five seconds
into the transfer, another tenant's backup job opens six TCP streams on
the same link. The published Algorithm 3 tunes once and never looks
back; the library's adaptive-monitoring extension keeps watching its
five-second windows and claws the bandwidth back — the scenario behind
the paper's critique that Globus Online's tuning "does not change
depending on network conditions and transfer performance".

Run:  python examples/adaptive_sla.py
"""

from repro import units
from repro.core.scheduler import engine_options
from repro.core.slaee import SLAEEAlgorithm
from repro.datasets.files import Dataset
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.link import NetworkPath
from repro.power.coefficients import CoefficientSet
from repro.testbeds.specs import Testbed


def shared_link_testbed() -> Testbed:
    """A 1 Gbps path whose link (not host) is the bottleneck."""
    server = ServerSpec(
        name="tenant-host", cores=8, tdp_watts=100.0, nic_rate=units.gbps(1),
        disk=ParallelDisk(per_accessor_rate=100 * units.MB, array_rate=800 * units.MB),
        per_channel_rate=40 * units.MB, core_rate=400 * units.MB,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 1)
    return Testbed(
        name="SharedLink",
        path=NetworkPath(
            bandwidth=units.gbps(1), rtt=units.ms(5), tcp_buffer=16 * units.MB,
            protocol_efficiency=1.0, congestion_knee=64,
        ),
        source=site,
        destination=site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: Dataset.from_sizes(
            [40 * units.MB] * 250, name="tenant-10GB"
        ),
        engine_dt=0.1,
    )


def main() -> None:
    testbed = shared_link_testbed()
    dataset = testbed.dataset()
    peak = 125 * units.MB  # the uncontended 1 Gbps link
    target = 0.5 * peak
    surge = lambda t: 0.0 if t < 25.0 else 6.0  # the other tenant arrives

    print(f"Path    : {testbed.describe()}")
    print(f"Promise : {units.to_mbps(target):.0f} Mbps "
          f"(50% of the {units.to_mbps(peak):.0f} Mbps peak)")
    print("Event   : 6 competing TCP streams join at t = 25 s\n")

    for label, algorithm in (
        ("open-loop (Algorithm 3)", SLAEEAlgorithm()),
        ("adaptive monitoring", SLAEEAlgorithm(adaptive_monitoring=True)),
    ):
        with engine_options(background_traffic=surge):
            outcome = algorithm.run(
                testbed, dataset, 16, sla_level=0.5, max_throughput=peak
            )
        delivered = outcome.throughput
        fraction = delivered / target
        verdict = f"{100 * fraction:.0f}% of promise" + (
            " — SLA held" if fraction >= 0.9 else " — SLA MISSED"
        )
        adjustments = outcome.extra.get("monitor_adjustments")
        extra = (
            f", {adjustments['up']} up / {adjustments['down']} down adjustments"
            if adjustments
            else ""
        )
        print(
            f"{label:<26s}: {units.to_mbps(delivered):4.0f} Mbps overall, "
            f"cc={outcome.final_concurrency}{extra} -> {verdict}"
        )

    print(
        "\nThe closed loop spends a few more channels only while the"
        " competing traffic is present — adaptivity, not overprovisioning."
    )


if __name__ == "__main__":
    main()
