#!/usr/bin/env python3
"""Build a server power model from scratch (the Section 2.2 workflow).

1. Sweep each component (CPU, memory, disk, NIC) across load levels
   while a (simulated) power meter records watts.
2. Fit the Eq. 1 coefficients with linear regression, per active-core
   count, and recover the Eq. 2 CPU quadratic.
3. Validate the fitted model against scp/rsync/ftp/bbcp/gridftp
   transfer runs and report per-tool error.
4. Show the model driving a RAPL/powercap-style energy counter that any
   sysfs-reading tool could consume (and read the real
   /sys/class/powercap if this machine exposes one).

Run:  python examples/power_model_calibration.py
"""

import tempfile
from pathlib import Path

from repro import units
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import ServerSpec
from repro.power import (
    CoefficientSet,
    FineGrainedPowerModel,
    PowercapReader,
    SimulatedPowercapTree,
    SimulatedRaplDomain,
    TOOL_PROFILES,
    fit_coefficients,
    fit_cpu_quadratic,
    generate_load_sweep,
    generate_tool_run,
    mean_absolute_percentage_error,
)
from repro.power.coefficients import cpu_coefficient

SERVER = ServerSpec(
    name="lab-server", cores=4, tdp_watts=115.0, nic_rate=units.gbps(10),
    disk=ParallelDisk(100e6, 500e6), per_channel_rate=100e6, core_rate=400e6,
)
GROUND_TRUTH = CoefficientSet(memory=0.012, disk=0.07, nic=0.045)


def main() -> None:
    print("== 1. Calibration sweeps + 2. regression ==")
    per_core = {}
    fitted = None
    for cores in (1, 2, 3, 4):
        sweep = generate_load_sweep(
            SERVER, GROUND_TRUTH, active_cores=cores, noise_fraction=0.015, seed=cores
        )
        cpu_at_n, fitted_set = fit_coefficients(sweep, active_cores=cores)
        per_core[cores] = cpu_at_n
        if cores == 1:
            fitted = fitted_set
        print(
            f"  {cores} active core(s): C_cpu = {cpu_at_n:.4f} W/% "
            f"(Eq. 2 says {cpu_coefficient(cores):.4f})"
        )
    a, b, c = fit_cpu_quadratic(per_core)
    print(f"  recovered Eq. 2: C_cpu,n = {a:.4f} n^2 {b:+.4f} n {c:+.4f}")
    print(
        f"  component coefficients: mem {fitted.memory:.4f}, "
        f"disk {fitted.disk:.4f}, nic {fitted.nic:.4f} W/%\n"
    )

    print("== 3. Validation on transfer tools (MAPE %) ==")
    model = FineGrainedPowerModel(
        CoefficientSet(memory=fitted.memory, disk=fitted.disk, nic=fitted.nic)
    )
    for tool in ("scp", "rsync", "ftp", "bbcp", "gridftp"):
        run = generate_tool_run(TOOL_PROFILES[tool], GROUND_TRUTH, seed=7)
        error = mean_absolute_percentage_error(
            lambda u: model.power(SERVER, u), run
        )
        print(f"  {tool:>8s}: {error:5.2f}%")

    print("\n== 4. RAPL/powercap counters fed by the model ==")
    with tempfile.TemporaryDirectory() as tmp:
        tree = SimulatedPowercapTree(root=Path(tmp) / "powercap")
        tree.add_domain(SimulatedRaplDomain("package-0"))
        tree.sync()
        reader = PowercapReader(tree.root)
        reader.sample()  # prime
        # pretend the gridftp run happens while we watch the counter
        run = generate_tool_run(TOOL_PROFILES["gridftp"], GROUND_TRUTH, seed=9)
        for sample in run:
            tree.feed_all(model.power(SERVER, sample.utilization), dt=1.0)
        joules = reader.total_joules()
        print(
            f"  simulated package-0 counter advanced by {joules:.1f} J "
            f"over a {len(run)} s gridftp transfer"
        )

    real = PowercapReader()  # /sys/class/powercap
    if real.available():
        real.sample()
        print("  real powercap tree detected; sampling it works too:")
        for delta in real.sample():
            print(f"    {delta.domain}: {delta.joules:.3f} J since priming")
    else:
        print("  (no real /sys/class/powercap on this machine — skipped)")


if __name__ == "__main__":
    main()
