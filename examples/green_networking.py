#!/usr/bin/env python3
"""Does tuning the end-systems also help the network? (Section 4)

End-system parameter tuning changes only how fast the bytes are pushed,
not the route. Whether the switches and routers in the path burn more
or less energy then depends entirely on how device power scales with
traffic rate. This script walks the paper's analysis:

* the three candidate device models (non-linear, linear, state-based),
* the per-testbed device chains and their Eq. 5 per-packet energy,
* the end-system vs network decomposition for an HTEE transfer.

Run:  python examples/green_networking.py
"""

from repro import HTEEAlgorithm, units
from repro.netenergy import (
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
    topology_for,
    transfer_energy,
)
from repro.testbeds import ALL_TESTBEDS


def main() -> None:
    line = units.gbps(10)
    data = 160 * units.GB
    print("== Rate vs dynamic device energy for a fixed 160 GB dataset ==")
    print(f"{'model':>12s} {'at 2 Gbps':>12s} {'at 8 Gbps':>12s} {'verdict':>34s}")
    for name, model, verdict in (
        ("non-linear", NonLinearPowerModel(0.0, 100.0), "faster transfer SAVES energy"),
        ("linear", LinearPowerModel(0.0, 100.0), "rate-invariant"),
        ("state-based", StateBasedPowerModel(0.0, 100.0), "~rate-invariant (fitted linear)"),
    ):
        slow = transfer_energy(model, data, 0.2 * line, line)
        fast = transfer_energy(model, data, 0.8 * line, line)
        print(f"{name:>12s} {slow:9.0f} J {fast:10.0f} J {verdict:>34s}")

    print("\n== Device chains (Figure 9) and Eq. 5 per-transfer energy ==")
    for testbed in ALL_TESTBEDS:
        topo = topology_for(testbed.name)
        size = testbed.dataset().total_size
        print(f"  {topo.describe()}")
        print(
            f"    {len(topo.path_devices())} load-dependent devices, "
            f"{topo.dynamic_transfer_energy(size):.0f} J for "
            f"{units.to_GB(size):.0f} GB"
        )

    print("\n== End-system vs network split for an HTEE transfer (Figure 10) ==")
    for testbed in ALL_TESTBEDS:
        dataset = testbed.dataset()
        outcome = HTEEAlgorithm().run(
            testbed, dataset, testbed.sla_reference_concurrency
        )
        network = topology_for(testbed.name).dynamic_transfer_energy(outcome.bytes_moved)
        share = 100 * network / (network + outcome.energy_joules)
        print(
            f"  {testbed.name:<11s} end-systems "
            f"{units.kilojoules(outcome.energy_joules):5.1f} kJ | network "
            f"{units.kilojoules(network):5.2f} kJ ({share:4.1f}% of total)"
        )

    print(
        "\nEither way the end-system savings stand: under the non-linear"
        " model the network saves too; under the linear one it is"
        " unaffected — 'we will still be saving energy when the"
        " end-to-end system is considered.'"
    )


if __name__ == "__main__":
    main()
