#!/usr/bin/env python3
"""Failure drill: what happens to a transfer when hardware dies?

Mid-way through a 12-channel XSEDE transfer, one of the four transfer
nodes at the source site crashes for two minutes, taking its channels
with it. The client reconnects the lost channels on the surviving
nodes; no byte is lost either way — the only question is how much time
and energy the incident costs, and whether GridFTP restart markers
(resume partially transferred files) earn their keep.

Run:  python examples/failure_drill.py
"""

from repro import ProMCAlgorithm, XSEDE, units
from repro.core.scheduler import make_engine
from repro.netsim.engine import Binding


def run_drill(fail: bool, restart_files: bool = False) -> tuple[float, float, int]:
    """One ProMC-planned, channel-spread transfer; optionally crash a
    source node at t = 60 s."""
    dataset = XSEDE.dataset()
    plans = ProMCAlgorithm().plan(XSEDE, dataset, 12)
    engine = make_engine(XSEDE, binding=Binding.SPREAD, work_stealing=True)
    for plan in plans:
        engine.add_chunk(plan)
    lost = 0
    if fail:
        engine.run(60.0)
        lost = engine.fail_server(
            "src", 0, downtime=120.0, restart_files=restart_files, reopen=True
        )
    engine.run()
    return engine.time, engine.total_energy, lost


def main() -> None:
    dataset = XSEDE.dataset()
    print(f"Path    : {XSEDE.describe()}")
    print(f"Dataset : {dataset.describe()}")
    print("Incident: source node 0 crashes at t = 60 s (down 120 s)\n")

    duration, energy, _ = run_drill(fail=False)
    print(f"no failure              : {duration:6.1f} s, {units.kilojoules(energy):5.1f} kJ")
    for label, restart in (
        ("crash, restart markers", False),
        ("crash, files restarted", True),
    ):
        duration, energy, lost = run_drill(fail=True, restart_files=restart)
        print(
            f"{label:<24s}: {duration:6.1f} s, {units.kilojoules(energy):5.1f} kJ "
            f"({lost} channels failed over)"
        )

    print(
        "\nAll three runs deliver every byte; restart markers save the"
        " redone work of the in-flight files, the failover saves the"
        " transfer."
    )


if __name__ == "__main__":
    main()
