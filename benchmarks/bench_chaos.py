"""Chaos scenario-pack benchmark: fault replay + SLO verdicts under CI.

Replays every chaos scenario preset (link brownout, server crash
storm, tariff spike, flash crowd, background-traffic surge) against
the scheduling service on XSEDE under two deferral policies and writes
``BENCH_chaos.json``: per-cell service metrics, the SLO oracle's
verdict, and two correctness gates measured per scenario —

* **determinism** — the same (scenario, policy, seed) cell re-run must
  produce a byte-identical report (wall-clock fields stripped);
* **fast vs grid** — the event-horizon fast path under fault injection
  must match the reference dt-grid loop: bit-equal job timestamps and
  cost/energy/makespan relative errors at or below 1e-9.

``--check`` turns both gates (plus "every scenario preset ran") into a
CI failure.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke --check

Not a pytest file on purpose: it is a standalone script so CI can run
it in smoke mode and upload the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.chaos import SCENARIO_PRESETS, run_scenario, strip_wall
from repro.service import tariff_by_name
from repro.testbeds.specs import testbed_by_name

POLICIES = ("run-now", "price-threshold")

#: Relative-error budget for fast-vs-grid scalar aggregates. The fast
#: path's contract is bit-equal *times* and float-accumulation-order
#: equality on energy/cost, so 1e-9 is generous.
REL_ERR_BUDGET = 1e-9


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-12)


def _cell_dict(result) -> dict:
    """The determinism-relevant slice of one cell (stripped report +
    verdict), used both for the artifact and the byte-compare."""
    return strip_wall(result.to_dict(include_jobs=True))


def _run_cell(scenario: str, policy: str, *, testbed, tariff, jobs, day_s,
              seed, fast=True):
    return run_scenario(
        scenario, testbed=testbed, policy=policy, tariff=tariff,
        jobs=jobs, day_s=day_s, seed=seed, fast=fast,
    )


def run_benchmark(*, smoke: bool = False, seed: int = 7) -> dict:
    testbed = testbed_by_name("xsede")
    jobs, day_s = (8, 1200.0) if smoke else (24, 3600.0)
    tariff = tariff_by_name("peak-offpeak", period_s=day_s)
    config = dict(testbed=testbed, tariff=tariff, jobs=jobs, day_s=day_s,
                  seed=seed)

    cells = []
    for scenario in sorted(SCENARIO_PRESETS):
        for policy in POLICIES:
            start = time.perf_counter()
            result = _run_cell(scenario, policy, **config)
            wall = time.perf_counter() - start
            report = result.report

            rerun = _run_cell(scenario, policy, **config)
            deterministic = json.dumps(
                _cell_dict(result), sort_keys=True
            ) == json.dumps(_cell_dict(rerun), sort_keys=True)

            row = {
                "scenario": scenario,
                "policy": policy,
                "description": result.scenario.description,
                "jobs": len(report.jobs),
                "makespan_s": report.makespan_s,
                "cost_usd": report.total_cost_usd,
                "kwh": report.total_energy_j / 3.6e6,
                "deadline_miss_rate": report.deadline_miss_rate,
                "p95_slowdown": report.p95_slowdown,
                "truncated": report.truncated,
                "unfinished_jobs": report.unfinished_jobs,
                "verdict": result.verdict.to_dict(),
                "deterministic": deterministic,
                "wall_s": wall,
            }

            # Grid reference once per scenario (the slow loop).
            if policy == POLICIES[0]:
                grid_start = time.perf_counter()
                grid = _run_cell(scenario, policy, fast=False, **config)
                grid_wall = time.perf_counter() - grid_start
                greport = grid.report
                times_bitequal = all(
                    a.admitted_at == b.admitted_at
                    and a.completed_at == b.completed_at
                    for a, b in zip(report.jobs, greport.jobs)
                )
                row["fast_vs_grid"] = {
                    "times_bitequal": times_bitequal,
                    "rel_err_cost": _rel_err(
                        report.total_cost_usd, greport.total_cost_usd
                    ),
                    "rel_err_energy": _rel_err(
                        report.total_energy_j, greport.total_energy_j
                    ),
                    "rel_err_makespan": _rel_err(
                        report.makespan_s, greport.makespan_s
                    ),
                    "grid_wall_s": grid_wall,
                }
            cells.append(row)

    return {
        "benchmark": "chaos",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "testbed": "xsede",
        "jobs": jobs,
        "day_s": day_s,
        "seed": seed,
        "rel_err_budget": REL_ERR_BUDGET,
        "cells": cells,
        "pack_passed": all(cell["verdict"]["passed"] for cell in cells),
    }


def check_benchmark(report: dict) -> list[str]:
    """CI gate: coverage, determinism and fast-vs-grid consistency."""
    failures = []
    ran = {cell["scenario"] for cell in report["cells"]}
    missing = set(SCENARIO_PRESETS) - ran
    if missing:
        failures.append(f"scenario presets never ran: {sorted(missing)}")
    for cell in report["cells"]:
        tag = f"{cell['scenario']}/{cell['policy']}"
        if not cell["deterministic"]:
            failures.append(f"{tag}: same-seed rerun was not byte-identical")
        gate = cell.get("fast_vs_grid")
        if gate is None:
            continue
        if not gate["times_bitequal"]:
            failures.append(f"{tag}: fast-vs-grid job timestamps diverged")
        for key in ("rel_err_cost", "rel_err_energy", "rel_err_makespan"):
            if gate[key] > report["rel_err_budget"]:
                failures.append(
                    f"{tag}: {key} {gate[key]:.3e} above the "
                    f"{report['rel_err_budget']:.0e} budget"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI mode: fewer jobs, shorter day")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload + scenario seed")
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: exit non-zero unless every scenario ran, every "
             "cell is deterministic, and fast-vs-grid errors stay "
             "below 1e-9",
    )
    parser.add_argument(
        "-o", "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_chaos.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke, seed=args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"chaos benchmark ({report['mode']}) -> {args.output}")
    for cell in report["cells"]:
        verdict = "PASS" if cell["verdict"]["passed"] else "FAIL"
        det = "ok" if cell["deterministic"] else "DIVERGED"
        gate = cell.get("fast_vs_grid")
        gate_s = ""
        if gate is not None:
            worst = max(gate["rel_err_cost"], gate["rel_err_energy"],
                        gate["rel_err_makespan"])
            bits = "bit-equal" if gate["times_bitequal"] else "DIVERGED"
            gate_s = f"  grid: times {bits}, worst rel-err {worst:.1e}"
        print(
            f"  {cell['scenario']:>13s} / {cell['policy']:<15s} "
            f"SLO {verdict}  miss {cell['deadline_miss_rate']:.0%}  "
            f"det {det}{gate_s}"
        )
    print(f"  pack SLO verdict: "
          f"{'all passed' if report['pack_passed'] else 'breaches present'}")
    if args.check:
        failures = check_benchmark(report)
        if failures:
            for failure in failures:
                print(f"  CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("  checks passed: coverage, determinism, fast-vs-grid "
              "within 1e-9")
    return 0


if __name__ == "__main__":
    sys.exit(main())
