"""Workload generalization matrix.

The paper's evaluation uses one mixed dataset per network class; a
library release should demonstrate the algorithms hold up across the
workload shapes the introduction motivates (scientific repositories,
media, backup). This bench runs the untuned baseline and the two
energy-aware algorithms over five domain presets on the XSEDE path and
asserts the headline property — tuning never loses, and HTEE's energy
never meaningfully exceeds ProMC's — on every one of them."""

import pytest
from conftest import emit, run_once

from repro import units
from repro.core.baselines import GucAlgorithm, ProMCAlgorithm
from repro.core.htee import HTEEAlgorithm
from repro.core.mine import MinEAlgorithm
from repro.datasets.presets import WORKLOAD_PRESETS
from repro.testbeds import XSEDE


def test_workload_matrix(benchmark):
    def sweep():
        rows = []
        for name, factory in WORKLOAD_PRESETS.items():
            dataset = factory()
            guc = GucAlgorithm().run(XSEDE, dataset)
            mine = MinEAlgorithm().run(XSEDE, dataset, 12)
            htee = HTEEAlgorithm().run(XSEDE, dataset, 12)
            promc = ProMCAlgorithm().run(XSEDE, dataset, 12)
            rows.append((name, dataset, guc, mine, htee, promc))
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        f"{'workload':<11s} {'GUC':>6s} | {'MinE':>6s} {'kJ':>6s} | "
        f"{'HTEE':>6s} {'kJ':>6s} | {'ProMC':>6s} {'kJ':>6s}   (Mbps)"
    ]
    for name, dataset, guc, mine, htee, promc in rows:
        lines.append(
            f"{name:<11s} {guc.throughput_mbps:6.0f} | "
            f"{mine.throughput_mbps:6.0f} {units.kilojoules(mine.energy_joules):6.1f} | "
            f"{htee.throughput_mbps:6.0f} {units.kilojoules(htee.energy_joules):6.1f} | "
            f"{promc.throughput_mbps:6.0f} {units.kilojoules(promc.energy_joules):6.1f}"
        )
    emit("workload_matrix", "\n".join(lines))

    for name, dataset, guc, mine, htee, promc in rows:
        # tuned algorithms never lose to the untuned baseline
        assert htee.throughput >= 0.95 * guc.throughput, name
        assert promc.throughput >= 0.95 * guc.throughput, name
        # HTEE's energy never meaningfully exceeds the throughput-first
        # schedule's
        assert htee.energy_joules <= 1.10 * promc.energy_joules, name
        # everyone moves all the bytes
        for outcome in (guc, mine, htee, promc):
            assert outcome.bytes_moved == pytest.approx(dataset.total_size), name
