"""Figure 7 — SLA transfers between WS9 and WS6 @DIDCLAB: on the LAN,
concurrency 1 is optimal for everything, so SLAEE always picks it —
deviation grows to ~100% at the 50% target and no energy can be saved."""

from conftest import emit, run_once

from repro.harness.figures import render_sla_figure
from repro.harness.sweeps import sla_sweep
from repro.testbeds import DIDCLAB


def test_fig07_sla_didclab(benchmark):
    records = run_once(benchmark, lambda: sla_sweep(DIDCLAB))
    text = render_sla_figure("DIDCLAB", records)
    emit("fig07_sla_didclab", text)
    assert all(r.final_concurrency == 1 for r in records)
    by_target = {r.target_pct: r for r in records}
    assert by_target[50.0].deviation_pct > 80.0  # the paper's ~100% case
    # neither throughput nor energy can be improved on the LAN
    assert all(abs(r.energy_saving_vs_reference_pct) < 5.0 for r in records)
