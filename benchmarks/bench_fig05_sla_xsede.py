"""Figure 5 — SLA transfers between Stampede and Gordon @XSEDE:
SLAEE at target percentages {95, 90, 80, 70, 50} of the ProMC maximum;
throughput, energy and deviation panels."""

from conftest import emit, run_once

from repro.harness.figures import render_sla_figure
from repro.harness.sweeps import sla_sweep
from repro.testbeds import XSEDE


def test_fig05_sla_xsede(benchmark):
    records = run_once(benchmark, lambda: sla_sweep(XSEDE))
    text = render_sla_figure("XSEDE", records)
    emit("fig05_sla_xsede", text)
    by_target = {r.target_pct: r for r in records}
    # the 95% target is unreachable (paper), every other target is met
    assert by_target[95.0].deviation_pct < 0
    for pct in (90.0, 80.0, 70.0, 50.0):
        assert by_target[pct].deviation_pct > -8.0
    # energy savings vs ProMC-at-max reach the published "up to 30%"
    assert max(r.energy_saving_vs_reference_pct for r in records) > 15.0
