"""Figure 4 — data transfers between WS9 and WS6 @DIDCLAB (LAN,
single-disk workstations): concurrency hurts, everyone's optimum is a
single channel."""

import pytest
from conftest import emit, run_once

from repro.harness.figures import (
    render_concurrency_charts,
    render_concurrency_figure,
    render_efficiency_panel,
)
from repro.harness.sweeps import brute_force_sweep, concurrency_sweep
from repro.testbeds import DIDCLAB


@pytest.fixture(scope="module")
def sweep():
    return concurrency_sweep(DIDCLAB)


def test_fig04ab_throughput_and_energy(benchmark, sweep):
    text = run_once(benchmark, lambda: render_concurrency_figure(sweep))
    text += "\n\n" + render_concurrency_charts(sweep)
    emit("fig04ab_didclab", text)
    thr = sweep.throughputs_mbps("ProMC")
    energy = sweep.energies_joules("ProMC")
    assert thr[-1] < thr[0]  # throughput degrades with concurrency
    assert energy[-1] > energy[0]  # energy grows with concurrency


def test_fig04c_efficiency_vs_brute_force(benchmark, sweep):
    bf = run_once(benchmark, lambda: brute_force_sweep(DIDCLAB, levels=range(1, 13)))
    text = render_efficiency_panel(sweep, bf)
    emit("fig04c_didclab_efficiency", text)
    # the single-channel run is the brute-force optimum on the LAN
    best = max(bf, key=lambda o: o.efficiency)
    assert best.max_channels == 1
    # all non-GO algorithms reach >=90% of the best ratio (paper text)
    for alg in ("GUC", "SC", "MinE", "ProMC", "HTEE"):
        assert sweep.best_efficiency(alg) >= 0.88 * best.efficiency
