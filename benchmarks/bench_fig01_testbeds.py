"""Figure 1 — network map and specifications of the test environments."""

from conftest import emit, run_once

from repro.harness.figures import render_testbed_specs
from repro.testbeds import ALL_TESTBEDS


def test_fig01_testbed_specs(benchmark):
    text = run_once(benchmark, render_testbed_specs)
    emit("fig01_testbeds", text)
    for tb in ALL_TESTBEDS:
        assert tb.name in text
    assert "10 Gbps" in text  # XSEDE
    assert "50.0 MB" in text  # the XSEDE BDP
