"""Ablations of the three tuning parameters (Section 2.1 mechanisms).

The paper's design rests on three claims about *when* each parameter
pays off; each gets a controlled experiment on a purpose-built path:

* **parallelism** multiplies throughput only while the TCP buffer is
  smaller than the BDP ("Parallelism is advantageous ... when the
  system buffer size is smaller than BDP");
* **pipelining** rescues many-small-files workloads and does nothing
  for large files ("The size of the transferred files should be
  smaller than the BDP to take advantage of pipelining");
* **concurrency** beats parallelism when disk IO is the bottleneck
  ("allotting channels to multiple file transfer instead of a single
  one yields higher disk IO throughput which qualifies concurrency to
  be the most effective parameter").
"""

from conftest import emit, run_once

from repro import units
from repro.datasets.files import FileInfo
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams

#: High-BDP path where the 4 MB buffer (not the link) limits a stream:
#: stream cap = 4 MB / 100 ms = 40 MB/s against a 10 Gbps link.
BUFFER_LIMITED_PATH = NetworkPath(
    bandwidth=units.gbps(10),
    rtt=units.ms(100),
    tcp_buffer=4 * units.MB,
    protocol_efficiency=1.0,
)


def strong_host() -> EndSystem:
    server = ServerSpec(
        name="ablation-host",
        cores=8,
        tdp_watts=100.0,
        nic_rate=units.gbps(10),
        disk=ParallelDisk(per_accessor_rate=500 * units.MB, array_rate=2000 * units.MB),
        per_channel_rate=600 * units.MB,
        core_rate=800 * units.MB,
        per_file_overhead=0.0,
    )
    return EndSystem("host", server, server_count=1)


def run_engine(path, site, plan) -> tuple[float, float]:
    engine = TransferEngine(path, site, site, lambda s, u: 10.0 * u.channels, dt=0.25)
    engine.add_chunk(plan)
    engine.run()
    return engine.total_bytes / engine.time, engine.total_energy


def test_ablation_parallelism_buffer_limited(benchmark):
    """Streams multiply goodput up to BDP/buf, then flatline."""

    def sweep():
        site = strong_host()
        files = tuple(FileInfo(f"f{i}", 2 * units.GB) for i in range(4))
        rows = []
        for p in (1, 2, 4, 8, 16, 32):
            plan = ChunkPlan("c", files, TransferParams(parallelism=p, concurrency=1))
            rate, _ = run_engine(BUFFER_LIMITED_PATH, site, plan)
            rows.append((p, units.to_mbps(rate)))
        return rows

    rows = run_once(benchmark, sweep)
    text = "parallelism ablation (4 MB buffer, 100 ms RTT, BDP 125 MB)\n" + "\n".join(
        f"  p={p:<3d} -> {mbps:7.1f} Mbps" for p, mbps in rows
    )
    emit("ablation_parallelism", text)
    by_p = dict(rows)
    # near-linear gains while buffer-limited...
    assert by_p[2] > 1.8 * by_p[1]
    assert by_p[4] > 3.4 * by_p[1]
    # ...then saturation once p * buf covers the BDP and the host caps out
    assert by_p[32] < 1.3 * by_p[16]


def test_ablation_parallelism_useless_below_bdp(benchmark):
    """On a low-BDP path one stream already fills the pipe."""

    def sweep():
        site = strong_host()
        path = NetworkPath(
            bandwidth=units.gbps(1), rtt=units.ms(2), tcp_buffer=32 * units.MB,
            protocol_efficiency=1.0,
        )
        files = tuple(FileInfo(f"f{i}", units.GB) for i in range(2))
        rows = []
        for p in (1, 4, 16):
            plan = ChunkPlan("c", files, TransferParams(parallelism=p, concurrency=1))
            rate, _ = run_engine(path, site, plan)
            rows.append((p, units.to_mbps(rate)))
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_parallelism_low_bdp",
        "parallelism on a low-BDP path (buffer > BDP)\n"
        + "\n".join(f"  p={p:<3d} -> {mbps:7.1f} Mbps" for p, mbps in rows),
    )
    by_p = dict(rows)
    assert by_p[16] < 1.05 * by_p[1]  # no benefit


def test_ablation_pipelining_small_files(benchmark):
    """Deep pipelines rescue small files; large files don't care."""

    def sweep():
        server = strong_host().server
        site = EndSystem("host", server, 1)
        path = NetworkPath(
            bandwidth=units.gbps(10), rtt=units.ms(40), tcp_buffer=32 * units.MB,
            protocol_efficiency=1.0,
        )
        small = tuple(FileInfo(f"s{i}", 2 * units.MB) for i in range(2000))
        big = tuple(FileInfo(f"b{i}", 4 * units.GB) for i in range(1))
        rows = []
        for pp in (1, 2, 4, 8, 16, 32):
            rate_s, _ = run_engine(path, site, ChunkPlan("s", small, TransferParams(pipelining=pp)))
            rate_b, _ = run_engine(path, site, ChunkPlan("b", big, TransferParams(pipelining=pp)))
            rows.append((pp, units.to_mbps(rate_s), units.to_mbps(rate_b)))
        return rows

    rows = run_once(benchmark, sweep)
    text = "pipelining ablation (40 ms RTT)\n" + "\n".join(
        f"  pp={pp:<3d} small files {s:7.1f} Mbps | one large file {b:7.1f} Mbps"
        for pp, s, b in rows
    )
    emit("ablation_pipelining", text)
    by_pp = {pp: (s, b) for pp, s, b in rows}
    assert by_pp[32][0] > 5 * by_pp[1][0]  # small files transformed
    assert by_pp[32][1] < 1.02 * by_pp[1][1]  # large file indifferent


def test_ablation_concurrency_beats_parallelism_on_disk(benchmark):
    """Same stream budget: 8 channels x 1 stream beats 1 channel x 8
    streams when the disk array scales with accessors."""

    def compare():
        server = ServerSpec(
            name="disk-bound",
            cores=8,
            tdp_watts=100.0,
            nic_rate=units.gbps(10),
            # each accessor (channel) engages another stripe
            disk=ParallelDisk(per_accessor_rate=60 * units.MB, array_rate=600 * units.MB),
            per_channel_rate=600 * units.MB,
            core_rate=800 * units.MB,
            per_file_overhead=0.0,
        )
        site = EndSystem("host", server, 1)
        path = NetworkPath(
            bandwidth=units.gbps(10), rtt=units.ms(10), tcp_buffer=32 * units.MB,
            protocol_efficiency=1.0,
        )
        files = tuple(FileInfo(f"f{i}", 500 * units.MB) for i in range(16))
        rate_p, _ = run_engine(
            path, site, ChunkPlan("p", files, TransferParams(parallelism=8, concurrency=1))
        )
        rate_c, _ = run_engine(
            path, site, ChunkPlan("c", files, TransferParams(parallelism=1, concurrency=8))
        )
        return units.to_mbps(rate_p), units.to_mbps(rate_c)

    rate_p, rate_c = run_once(benchmark, compare)
    emit(
        "ablation_concurrency_vs_parallelism",
        "same 8-stream budget on a striped array\n"
        f"  1 channel x 8 streams : {rate_p:7.1f} Mbps\n"
        f"  8 channels x 1 stream : {rate_c:7.1f} Mbps",
    )
    assert rate_c > 4 * rate_p
