"""Fleet-scale service benchmark: 1M jobs/day across a sharded fleet.

Runs a production-scale day of chunky-dataset tenant traffic through
the sharded fleet dispatcher (``repro.service.fleet``) and writes
``BENCH_fleet.json``. Three measurements:

* **fleet cells** — jobs/sec and jobs/day throughput plus p95
  end-to-end (submit → complete) latency at growing scale; the
  headline cell simulates **1,000,000 jobs across 8 shards**, which
  must clear 1M jobs/day (12 jobs/sec aggregate);
* **consistency** — a single-shard fleet vs a plain
  ``ServiceSimulator(fast=True)`` on the identical workload: admission
  decisions must be identical and energy/cost/carbon must agree to
  rel-err < 1e-9 (they are in fact bit-equal);
* **warm start** — the same fleet day run cold, then re-run seeded
  with the first run's exported :class:`FleetContext`: the warm run
  must plan every repeated dataset shape from the context (zero plan-
  cache misses), the psim-``GContext`` idiom.

``--check`` turns all three into a CI gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_service.py          # full
    PYTHONPATH=src python benchmarks/bench_fleet_service.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_fleet_service.py --smoke --check

Not a pytest file on purpose: it is a standalone script so CI can run
it in smoke mode and upload the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_service import (  # noqa: E402 — sibling bench module
    SCALE_DATASET_POOL,
    SCALE_DAY_PER_JOB_S,
    SCALE_POLICY,
    SCALE_SIZE_SCALE,
    SCALE_TENANTS,
    _rel_err,
)

from repro.obs.observer import Observer
from repro.service import (
    FleetContext,
    FleetSimulator,
    ServiceSimulator,
    policy_by_name,
    tariff_by_name,
)
from repro.service.policies import plan_cache_clear
from repro.service.requests import TransferRequest, diurnal_workload
from repro.testbeds.specs import testbed_by_name

ROUTING = "least-loaded"

#: ``(jobs, shards)`` fleet scale cells; the last is the headline.
FLEET_CELLS: tuple[tuple[int, int], ...] = (
    (100_000, 8),
    (1_000_000, 8),
)
SMOKE_FLEET_CELLS: tuple[tuple[int, int], ...] = ((2_000, 4),)

CONSISTENCY_JOBS = 1_000
SMOKE_CONSISTENCY_JOBS = 240

WARM_JOBS, WARM_SHARDS = (2_000, 4)
SMOKE_WARM_JOBS, SMOKE_WARM_SHARDS = (500, 2)

#: The acceptance floor: one million jobs per simulated-at-real-time day.
JOBS_PER_DAY_FLOOR = 1_000_000.0


def _workload(jobs: int, day_s: float, seed: int) -> list[TransferRequest]:
    """The scale-cell tenant mix at fleet size (shared dataset pool
    keeps 1M requests memory-light and exercises plan memoization)."""
    return diurnal_workload(
        jobs,
        day_s=day_s,
        seed=seed,
        tenants=SCALE_TENANTS,
        size_scale=SCALE_SIZE_SCALE,
        dataset_pool=SCALE_DATASET_POOL,
    )


def _fleet(
    jobs: int,
    shards: int,
    day_s: float,
    *,
    workers: Optional[int],
    observer: Optional[Observer] = None,
    warm_context: Optional[FleetContext] = None,
) -> FleetSimulator:
    return FleetSimulator(
        testbed_by_name("xsede"),
        policy=policy_by_name(SCALE_POLICY),
        tariff=tariff_by_name("peak-offpeak", period_s=day_s),
        shards=shards,
        routing=ROUTING,
        max_concurrent_jobs=4,
        observer=observer,
        workers=workers,
        warm_context=warm_context,
    )


def run_fleet_cell(jobs: int, shards: int, *, seed: int, workers: Optional[int]) -> dict:
    """One fleet throughput measurement.

    ``day_s`` scales so each *shard* sees the same arrival rate as the
    single-link scale cells in ``bench_service.py`` — the sweep
    measures fleet size, not load-shape drift.
    """
    day_s = SCALE_DAY_PER_JOB_S * jobs / shards
    requests = _workload(jobs, day_s, seed)
    plan_cache_clear()
    fleet = _fleet(jobs, shards, day_s, workers=workers)
    start = time.perf_counter()
    report = fleet.run(requests, max_time=20.0 * day_s)
    wall = time.perf_counter() - start
    finished = sum(
        1 for shard in report.shards for j in shard.report.jobs if j.finished
    )
    return {
        "jobs": jobs,
        "shards": shards,
        "routing": ROUTING,
        "day_s": day_s,
        "wall_s": wall,
        "jobs_per_sec": jobs / wall if wall > 0 else 0.0,
        "jobs_per_day": (jobs / wall) * 86400.0 if wall > 0 else 0.0,
        "finished_jobs": finished,
        "p95_turnaround_s": report.p95_turnaround_s,
        "mean_turnaround_s": report.mean_turnaround_s,
        "p50_slowdown": report.p50_slowdown,
        "p95_slowdown": report.p95_slowdown,
        "deadline_miss_rate": report.deadline_miss_rate,
        "total_kwh": report.total_energy_j / 3.6e6,
        "total_cost_usd": report.total_cost_usd,
        "total_kg_co2": report.total_kg_co2,
        "work_steals": report.work_steals,
        "shard_walls_s": [s.wall_s for s in report.shards],
        "context_entries": (
            len(fleet.last_context) if fleet.last_context is not None else 0
        ),
    }


def run_consistency_cell(jobs: int, *, seed: int) -> dict:
    """Single-shard fleet vs plain ``ServiceSimulator(fast=True)``.

    The fleet must be a pure wrapper at one shard: identical admission
    decisions, bit-equal timestamps, rel-err < 1e-9 on energy, cost
    and carbon.
    """
    day_s = SCALE_DAY_PER_JOB_S * jobs
    requests = _workload(jobs, day_s, seed)
    tariff = tariff_by_name("peak-offpeak", period_s=day_s)
    plan_cache_clear()
    single = ServiceSimulator(
        testbed_by_name("xsede"),
        policy=policy_by_name(SCALE_POLICY),
        tariff=tariff,
        max_concurrent_jobs=4,
        fast=True,
    ).run(requests, max_time=20.0 * day_s)
    plan_cache_clear()
    fleet_report = _fleet(jobs, 1, day_s, workers=1).run(
        requests, max_time=20.0 * day_s
    )
    shard = fleet_report.shards[0].report
    admissions_identical = len(shard.jobs) == len(single.jobs) and all(
        (a.name, a.released_at, a.admitted_at, a.completed_at,
         a.deferral_reason)
        == (b.name, b.released_at, b.admitted_at, b.completed_at,
            b.deferral_reason)
        for a, b in zip(shard.jobs, single.jobs, strict=True)
    )
    return {
        "jobs": jobs,
        "admissions_identical": admissions_identical,
        "rel_err_energy": _rel_err(
            fleet_report.total_energy_j, single.total_energy_j
        ),
        "rel_err_cost": _rel_err(
            fleet_report.total_cost_usd, single.total_cost_usd
        ),
        "rel_err_co2": _rel_err(fleet_report.total_kg_co2, single.total_kg_co2),
    }


def run_warm_start_cell(
    jobs: int, shards: int, *, seed: int, workers: Optional[int]
) -> dict:
    """Cold fleet day, then the same day seeded with the cold run's
    exported context: the warm run must never miss the plan cache."""
    day_s = SCALE_DAY_PER_JOB_S * jobs / shards

    def observed_run(warm: Optional[FleetContext]) -> tuple[dict, FleetContext]:
        requests = _workload(jobs, day_s, seed)
        plan_cache_clear()
        observer = Observer()
        fleet = _fleet(
            jobs, shards, day_s,
            workers=workers, observer=observer, warm_context=warm,
        )
        start = time.perf_counter()
        report = fleet.run(requests, max_time=20.0 * day_s)
        wall = time.perf_counter() - start
        counters = (report.metrics or {}).get("metrics", {}).get("counters", {})
        assert fleet.last_context is not None
        return (
            {
                "wall_s": wall,
                "plan_cache_hits": int(counters.get("service.plan_cache_hits", 0)),
                "plan_cache_misses": int(
                    counters.get("service.plan_cache_misses", 0)
                ),
            },
            fleet.last_context,
        )

    cold, context = observed_run(None)
    warm, _ = observed_run(context)
    return {
        "jobs": jobs,
        "shards": shards,
        "context_entries": len(context),
        "cold": cold,
        "warm": warm,
        "warm_hit_frac": (
            warm["plan_cache_hits"]
            / max(1, warm["plan_cache_hits"] + warm["plan_cache_misses"])
        ),
    }


def run_benchmark(
    *, smoke: bool = False, seed: int = 7, workers: Optional[int] = None
) -> dict:
    fleet_cells = [
        run_fleet_cell(jobs, shards, seed=seed, workers=workers)
        for jobs, shards in (SMOKE_FLEET_CELLS if smoke else FLEET_CELLS)
    ]
    consistency = run_consistency_cell(
        SMOKE_CONSISTENCY_JOBS if smoke else CONSISTENCY_JOBS, seed=seed
    )
    warm_jobs, warm_shards = (
        (SMOKE_WARM_JOBS, SMOKE_WARM_SHARDS) if smoke else (WARM_JOBS, WARM_SHARDS)
    )
    warm_start = run_warm_start_cell(
        warm_jobs, warm_shards, seed=seed, workers=workers
    )
    headline = fleet_cells[-1]
    return {
        "benchmark": "fleet_service",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": smoke,
        "seed": seed,
        "workers": workers,
        "python": sys.version.split()[0],
        "routing": ROUTING,
        "testbed": "xsede",
        "policy": SCALE_POLICY,
        "tariff": "peak-offpeak",
        "fleet_cells": fleet_cells,
        "consistency": consistency,
        "warm_start": warm_start,
        "headline": {
            "jobs": headline["jobs"],
            "shards": headline["shards"],
            "jobs_per_sec": headline["jobs_per_sec"],
            "jobs_per_day": headline["jobs_per_day"],
            "p95_turnaround_s": headline["p95_turnaround_s"],
            "deadline_miss_rate": headline["deadline_miss_rate"],
            "single_shard_rel_err_cost": consistency["rel_err_cost"],
            "admissions_identical": consistency["admissions_identical"],
            "warm_start_misses": warm_start["warm"]["plan_cache_misses"],
        },
    }


def check_benchmark(report: dict) -> list[str]:
    """CI gate: return a list of failure strings (empty = pass).

    Gates (1) aggregate throughput at or above 1M jobs/day on every
    fleet cell, (2) single-shard fleet consistency with the plain
    service — identical admissions, rel-err < 1e-9 on energy, cost and
    carbon — and (3) a miss-free warm-start run.
    """
    failures: list[str] = []
    for row in report["fleet_cells"]:
        if row["jobs_per_day"] < JOBS_PER_DAY_FLOOR:
            failures.append(
                f"{row['jobs']}-job/{row['shards']}-shard fleet cell: "
                f"{row['jobs_per_day']:.3g} jobs/day below the "
                f"{JOBS_PER_DAY_FLOOR:.0e} floor"
            )
        if row["finished_jobs"] != row["jobs"]:
            failures.append(
                f"{row['jobs']}-job fleet cell: only "
                f"{row['finished_jobs']} jobs finished"
            )
    consistency = report["consistency"]
    if not consistency["admissions_identical"]:
        failures.append(
            "single-shard fleet made different admission decisions than "
            "ServiceSimulator(fast=True)"
        )
    for key in ("rel_err_energy", "rel_err_cost", "rel_err_co2"):
        if consistency[key] > 1e-9:
            failures.append(
                f"single-shard consistency: {key} {consistency[key]:.3e} "
                "above the 1e-9 floor"
            )
    warm = report["warm_start"]
    if warm["warm"]["plan_cache_misses"] != 0:
        failures.append(
            f"warm-start run missed the plan cache "
            f"{warm['warm']['plan_cache_misses']} times (expected 0)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI mode: 2k jobs across 4 shards")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="real process parallelism across shards "
             "(default: min(shards, cpu count); 1 = inline)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: exit non-zero unless every fleet cell clears "
             "1M jobs/day, the single-shard fleet matches the plain "
             "service to rel-err < 1e-9 with identical admissions, and "
             "the warm-start run is miss-free",
    )
    parser.add_argument(
        "-o", "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_fleet.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke, seed=args.seed, workers=args.workers)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"fleet benchmark ({'smoke' if args.smoke else 'full'}) -> {args.output}")
    print("  fleet cells (least-loaded routing, run-now, peak-offpeak):")
    for row in report["fleet_cells"]:
        print(
            f"    {row['jobs']:>9,} jobs / {row['shards']} shards  "
            f"wall {row['wall_s']:8.1f} s  "
            f"{row['jobs_per_sec']:7.1f} jobs/s  "
            f"{row['jobs_per_day']:.3g} jobs/day  "
            f"p95 turnaround {row['p95_turnaround_s']:.0f} s  "
            f"steals {row['work_steals']}"
        )
    consistency = report["consistency"]
    print(
        f"  single-shard vs ServiceSimulator(fast) at "
        f"{consistency['jobs']} jobs: admissions "
        f"{'identical' if consistency['admissions_identical'] else 'DIFFER'}, "
        f"rel-err energy {consistency['rel_err_energy']:.1e} / "
        f"cost {consistency['rel_err_cost']:.1e} / "
        f"co2 {consistency['rel_err_co2']:.1e}"
    )
    warm = report["warm_start"]
    print(
        f"  warm start at {warm['jobs']} jobs / {warm['shards']} shards: "
        f"cold {warm['cold']['plan_cache_misses']} misses -> warm "
        f"{warm['warm']['plan_cache_misses']} misses "
        f"({100 * warm['warm_hit_frac']:.1f}% hit rate, "
        f"{warm['context_entries']} context entries)"
    )
    head = report["headline"]
    print(
        f"  headline: {head['jobs']:,} jobs across {head['shards']} shards "
        f"at {head['jobs_per_sec']:.1f} jobs/s "
        f"({head['jobs_per_day']:.3g} jobs/day), "
        f"p95 end-to-end latency {head['p95_turnaround_s']:.0f} s"
    )
    if args.check:
        failures = check_benchmark(report)
        if failures:
            for failure in failures:
                print(f"  CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("  checks passed: throughput floor, single-shard "
              "consistency, warm start")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
