"""Section 4, closed end-to-end: the three device power models
integrated over *actual* transfer traces.

The paper's argument: the end-system algorithms change only the rate at
which bytes are pushed, so the network's verdict depends on its power
model — "if dynamic power consumption follows a sub-linear relation
with the data transfer rate [we save]; if linear, total power at the
networking infrastructure will neither increase nor decrease". Here a
slow untuned GUC transfer and a fast HTEE transfer of the same dataset
are replayed through each model on the XSEDE device chain."""

from conftest import emit, run_once

from repro.core.baselines import GucAlgorithm
from repro.core.htee import HTEEAlgorithm
from repro.core.scheduler import engine_options
from repro.netenergy.models import (
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
)
from repro.netenergy.integration import integrate_device_energy
from repro.testbeds import XSEDE


def test_sec4_models_over_real_traces(benchmark):
    def experiment():
        ds = XSEDE.dataset()
        with engine_options(record_trace=True):
            slow = GucAlgorithm().run(XSEDE, ds)
            fast = HTEEAlgorithm().run(XSEDE, ds, 12)
        line = XSEDE.path.bandwidth
        dt = XSEDE.engine_dt
        rows = []
        for label, model in (
            ("non-linear", NonLinearPowerModel(idle_watts=150.0, max_dynamic_watts=50.0)),
            ("linear", LinearPowerModel(idle_watts=150.0, max_dynamic_watts=50.0)),
            ("state-based", StateBasedPowerModel(idle_watts=150.0, max_dynamic_watts=50.0)),
        ):
            e_slow = integrate_device_energy(slow.extra["trace"], model, line, dt=dt)
            e_fast = integrate_device_energy(fast.extra["trace"], model, line, dt=dt)
            rows.append((label, e_slow, e_fast))
        return slow, fast, rows

    slow, fast, rows = run_once(benchmark, experiment)
    lines = [
        "per-switch dynamic energy for the same 160 GB, slow vs fast transfer",
        f"  GUC:  {slow.throughput_mbps:5.0f} Mbps over {slow.duration_s:6.0f} s",
        f"  HTEE: {fast.throughput_mbps:5.0f} Mbps over {fast.duration_s:6.0f} s",
    ]
    for label, e_slow, e_fast in rows:
        lines.append(
            f"  {label:>11s}: GUC {e_slow:8.0f} J | HTEE {e_fast:8.0f} J "
            f"(fast/slow = {e_fast / e_slow:.2f})"
        )
    emit("sec4_trace_integration", "\n".join(lines))

    by_label = {label: (s, f) for label, s, f in rows}
    # sub-linear: the fast transfer costs the network LESS
    assert by_label["non-linear"][1] < 0.8 * by_label["non-linear"][0]
    # linear: the totals are close (rate-invariant up to drain tails)
    s, f = by_label["linear"]
    assert abs(f - s) / s < 0.25
    # and with idle power included, faster is always cheaper
    idle_model = LinearPowerModel(idle_watts=150.0, max_dynamic_watts=50.0)
    e_slow_idle = integrate_device_energy(
        slow.extra["trace"], idle_model, XSEDE.path.bandwidth,
        dt=XSEDE.engine_dt, include_idle=True,
    )
    e_fast_idle = integrate_device_energy(
        fast.extra["trace"], idle_model, XSEDE.path.bandwidth,
        dt=XSEDE.engine_dt, include_idle=True,
    )
    assert e_fast_idle < e_slow_idle
