"""Extension ablation: closed-loop SLAEE under changing network load.

The paper faults Globus Online's tuning for being "non-adaptive; it
does not change depending on network conditions and transfer
performance". This bench subjects SLAEE to a mid-transfer cross-traffic
surge and compares the published open-loop Algorithm 3 against the
library's adaptive-monitoring extension, which keeps watching the
five-second windows and re-adjusts concurrency for the rest of the
transfer."""

from conftest import emit, run_once

from repro import units
from repro.core.scheduler import engine_options
from repro.core.slaee import SLAEEAlgorithm
from repro.datasets.files import Dataset
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.link import NetworkPath
from repro.power.coefficients import CoefficientSet
from repro.testbeds.specs import Testbed


def shared_wan() -> Testbed:
    server = ServerSpec(
        name="shared-wan-host",
        cores=8,
        tdp_watts=100.0,
        nic_rate=units.gbps(1),
        disk=ParallelDisk(per_accessor_rate=100 * units.MB, array_rate=800 * units.MB),
        per_channel_rate=40 * units.MB,
        core_rate=400 * units.MB,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 1)
    path = NetworkPath(
        bandwidth=units.gbps(1),
        rtt=units.ms(5),
        tcp_buffer=16 * units.MB,
        protocol_efficiency=1.0,
        congestion_knee=64,
    )
    dataset = Dataset.from_sizes([40 * units.MB] * 250, name="shared-10GB")
    return Testbed(
        name="SharedWAN",
        path=path,
        source=site,
        destination=site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: dataset,
        engine_dt=0.1,
    )


def test_ablation_slaee_monitoring_under_surge(benchmark):
    def compare():
        tb = shared_wan()
        ds = tb.dataset()
        surge = lambda t: 0.0 if t < 30.0 else 6.0  # 6 streams join at t=30s
        kwargs = dict(sla_level=0.5, max_throughput=125 * units.MB)
        with engine_options(background_traffic=surge):
            open_loop = SLAEEAlgorithm().run(tb, ds, 16, **kwargs)
            closed = SLAEEAlgorithm(adaptive_monitoring=True).run(tb, ds, 16, **kwargs)
        return open_loop, closed

    open_loop, closed = run_once(benchmark, compare)
    target_mbps = 0.5 * units.to_mbps(125 * units.MB)
    adjustments = closed.extra["monitor_adjustments"]
    text = (
        "SLAEE under a cross-traffic surge at t=30 s (target "
        f"{target_mbps:.0f} Mbps)\n"
        f"  open-loop (Alg. 3)  : {open_loop.throughput_mbps:6.0f} Mbps overall, "
        f"cc={open_loop.final_concurrency}, {open_loop.energy_joules:7.0f} J\n"
        f"  adaptive monitoring : {closed.throughput_mbps:6.0f} Mbps overall, "
        f"cc={closed.final_concurrency} "
        f"(+{adjustments['up']}/-{adjustments['down']} adjustments), "
        f"{closed.energy_joules:7.0f} J"
    )
    emit("ablation_adaptivity", text)
    assert adjustments["up"] > 0
    assert closed.throughput > open_loop.throughput
