"""The throughput/energy Pareto frontier of Figure 2's configurations.

The paper's narrative in frontier language: ProMC anchors the fast end,
MinE the cheap end, HTEE sits on (or hugs) the knee, and the untuned
GUC is strictly dominated — pure waste."""

from conftest import emit, run_once

from repro.harness.pareto import pareto_frontier, render_frontier
from repro.harness.sweeps import concurrency_sweep
from repro.testbeds import XSEDE


def test_xsede_pareto_frontier(benchmark):
    def analyze():
        sweep = concurrency_sweep(XSEDE)
        outcomes = []
        seen = set()
        for algorithm, series in sweep.series.items():
            for outcome in series:
                key = (algorithm, outcome.max_channels)
                if key not in seen:  # GUC/GO repeat across levels
                    seen.add(key)
                    outcomes.append(outcome)
        return pareto_frontier(outcomes)

    points = run_once(benchmark, analyze)
    emit("pareto_xsede", "XSEDE configuration frontier\n" + render_frontier(points))

    frontier_algorithms = {p.outcome.algorithm for p in points if p.on_frontier}
    assert "ProMC" in frontier_algorithms  # fastest configurations
    assert "MinE" in frontier_algorithms  # cheapest configurations
    # the untuned baseline is never on the frontier
    guc = [p for p in points if p.outcome.algorithm == "GUC"]
    assert guc and all(not p.on_frontier for p in guc)
    # HTEE's chosen operating points sit on or near the frontier
    htee = [p for p in points if p.outcome.algorithm == "HTEE"]
    assert min(p.energy_excess for p in htee) < 0.10
