"""Calibration-sensitivity audit.

Which of the calibrated host constants actually carry the reproduced
results? This bench perturbs each knob +/-20% around the frozen XSEDE
calibration and reports how the reference ProMC@12 run moves — the
robustness evidence EXPERIMENTS.md cites. The headline qualitative
claim (MinE cheaper than ProMC at similar-or-lower throughput) must
survive every perturbation."""

from conftest import emit, run_once

from repro.analysis.sensitivity import KNOBS, perturb_testbed, render_sensitivity, sensitivity_report
from repro.core.baselines import ProMCAlgorithm
from repro.core.mine import MinEAlgorithm
from repro.harness.runner import dataset_for
from repro.testbeds import XSEDE


def test_xsede_calibration_sensitivity(benchmark):
    dataset = dataset_for(XSEDE)

    def audit():
        run = lambda tb: ProMCAlgorithm().run(tb, dataset, 12)
        return sensitivity_report(XSEDE, run, factors=(0.8, 1.2))

    rows = run_once(benchmark, audit)
    emit("sensitivity_xsede", "ProMC@12 sensitivity to calibration knobs (+/-20%)\n"
         + render_sensitivity(rows))

    by_knob = {}
    for row in rows:
        by_knob.setdefault(row.knob, []).append(row)
    # the power-coefficient scale must not affect throughput at all
    assert all(abs(r.throughput_change) < 0.01 for r in by_knob["coefficient_scale"])
    # no single knob perturbation swings throughput by more than its own
    # magnitude (no pathological amplification in the model)
    for row in rows:
        assert abs(row.throughput_change) <= 0.25, row


def test_headline_claim_survives_every_perturbation(benchmark):
    dataset = dataset_for(XSEDE)

    def audit():
        verdicts = []
        for knob in KNOBS:
            for factor in (0.8, 1.2):
                testbed = perturb_testbed(XSEDE, knob, factor)
                mine = MinEAlgorithm().run(testbed, dataset, 12)
                promc = ProMCAlgorithm().run(testbed, dataset, 12)
                verdicts.append((knob, factor, mine, promc))
        return verdicts

    verdicts = run_once(benchmark, audit)
    lines = ["MinE-cheaper-than-ProMC under every +/-20% calibration perturbation"]
    for knob, factor, mine, promc in verdicts:
        saving = 1 - mine.energy_joules / promc.energy_joules
        lines.append(f"  {knob:>20s} x{factor:.1f}: MinE saves {100 * saving:5.1f}%")
        assert mine.energy_joules < promc.energy_joules, (knob, factor)
    emit("sensitivity_headline", "\n".join(lines))
