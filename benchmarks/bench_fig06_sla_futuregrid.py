"""Figure 6 — SLA transfers between Alamo and Hotel @FutureGrid."""

from conftest import emit, run_once

from repro.harness.figures import render_sla_figure
from repro.harness.sweeps import sla_sweep
from repro.testbeds import FUTUREGRID


def test_fig06_sla_futuregrid(benchmark):
    records = run_once(benchmark, lambda: sla_sweep(FUTUREGRID))
    text = render_sla_figure("FutureGrid", records)
    emit("fig06_sla_futuregrid", text)
    by_target = {r.target_pct: r for r in records}
    # small deviations at high targets, the jump at the 50% target
    # (the concurrency floor overshoots — the paper's 25% case)
    assert abs(by_target[95.0].deviation_pct) < 8.0
    assert abs(by_target[90.0].deviation_pct) < 8.0
    assert by_target[50.0].deviation_pct > 15.0
    # savings in the paper's 11-19% neighbourhood
    savings = [r.energy_saving_vs_reference_pct for r in records]
    assert max(savings) > 10.0
