"""Figure 9 — overview of the networking infrastructure of the XSEDE,
FutureGrid and DIDCLAB testbeds (device chains + per-hop energy)."""

from conftest import emit, run_once

from repro import units
from repro.harness.figures import render_topologies
from repro.netenergy.topology import didclab_topology, futuregrid_topology, xsede_topology


def test_fig09_topologies(benchmark):
    topologies = run_once(
        benchmark, lambda: [xsede_topology(), futuregrid_topology(), didclab_topology()]
    )
    lines = [render_topologies(topologies), "", "Per-hop dynamic energy for 40 GB:"]
    for topo in topologies:
        lines.append(f"  {topo.name}:")
        for node, joules in topo.per_device_energy(40 * units.GB):
            lines.append(f"    {node:<24s} {joules:8.1f} J")
    text = "\n".join(lines)
    emit("fig09_topologies", text)

    assert len(topologies[0].path_devices()) == 8  # XSEDE chain
    assert len(topologies[1].path_devices()) == 6  # FutureGrid chain
    assert len(topologies[2].path_devices()) == 1  # DIDCLAB LAN switch
