"""Section 2.2 — power-model validation across transfer tools.

Reproduces the model-building phase (component load sweeps + linear
regression, Eq. 2 quadratic recovery) and the per-tool validation: the
fine-grained model's error stays in the single digits for every tool
(paper: <6%), the CPU-only model tracks it closely on the server it was
fitted on, and extending the CPU model to a foreign server via the TDP
ratio costs a few extra points (paper: +2-3%)."""

from conftest import emit, run_once

from repro import units
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import ServerSpec
from repro.power.calibration import (
    fit_coefficients,
    fit_cpu_quadratic,
    generate_load_sweep,
    mean_absolute_percentage_error,
)
from repro.power.coefficients import CoefficientSet, cpu_coefficient
from repro.power.models import CpuTdpPowerModel, FineGrainedPowerModel
from repro.power.tools import TOOL_PROFILES, generate_tool_run

TRUE_INTEL = CoefficientSet(memory=0.012, disk=0.07, nic=0.045)


def intel_server(tdp=115.0) -> ServerSpec:
    return ServerSpec(
        name="intel", cores=4, tdp_watts=tdp, nic_rate=units.gbps(10),
        disk=ParallelDisk(100e6, 500e6), per_channel_rate=100e6, core_rate=400e6,
    )


def amd_server() -> ServerSpec:
    # the AMD box: different TDP; its true power scale deviates a few
    # percent from the pure TDP ratio, which is what costs the CPU
    # model its extra error when extended
    return ServerSpec(
        name="amd", cores=4, tdp_watts=125.0, nic_rate=units.gbps(10),
        disk=ParallelDisk(100e6, 500e6), per_channel_rate=100e6, core_rate=400e6,
    )


def test_sec22_model_building(benchmark):
    """Calibration: regression recovers Eq. 1 coefficients and Eq. 2."""

    def build():
        per_core = {}
        fitted_at_1 = None
        for n in (1, 2, 3, 4):
            sweep = generate_load_sweep(
                intel_server(), TRUE_INTEL, active_cores=n, noise_fraction=0.01, seed=n
            )
            cpu_at_n, fitted = fit_coefficients(sweep, active_cores=n)
            per_core[n] = cpu_at_n
            if n == 1:
                fitted_at_1 = fitted
        quad = fit_cpu_quadratic(per_core)
        return per_core, quad, fitted_at_1

    per_core, (a, b, c), fitted = run_once(benchmark, build)
    lines = ["Section 2.2 model building (calibration phase)"]
    for n, coeff in per_core.items():
        lines.append(
            f"  C_cpu,{n}: fitted {coeff:.4f}  (Eq.2: {cpu_coefficient(n):.4f})"
        )
    lines.append(f"  Eq.2 quadratic fit: a={a:.4f} b={b:.4f} c={c:.4f} "
                 f"(paper: 0.011, -0.082, 0.344)")
    lines.append(
        f"  component coefficients @1 core: mem={fitted.memory:.4f} "
        f"disk={fitted.disk:.4f} nic={fitted.nic:.4f} "
        f"(true: {TRUE_INTEL.memory}, {TRUE_INTEL.disk}, {TRUE_INTEL.nic})"
    )
    emit("sec22_model_building", "\n".join(lines))
    assert abs(a - 0.011) < 0.01
    assert abs(c - 0.344) < 0.06


def test_sec22_tool_error_table(benchmark):
    """Per-tool error: fine-grained vs CPU-based vs TDP-extended."""

    def validate():
        fine = FineGrainedPowerModel(TRUE_INTEL)
        cpu_model = CpuTdpPowerModel(
            local_tdp_watts=115.0, cpu_share=0.897, coefficients=TRUE_INTEL
        )
        rows = []
        for name in ("scp", "rsync", "ftp", "bbcp", "gridftp"):
            run = generate_tool_run(TOOL_PROFILES[name], TRUE_INTEL, seed=17)
            fine_err = mean_absolute_percentage_error(
                lambda u: fine.power(intel_server(), u), run
            )
            cpu_err = mean_absolute_percentage_error(
                lambda u: cpu_model.power(intel_server(), u), run
            )
            # the AMD run's true power deviates from the TDP-scaled
            # prediction by a small machine-specific factor
            amd_truth = TRUE_INTEL.scaled((125.0 / 115.0) * 1.03)
            amd_run = generate_tool_run(TOOL_PROFILES[name], amd_truth, seed=18)
            amd_err = mean_absolute_percentage_error(
                lambda u: cpu_model.power(amd_server(), u), amd_run
            )
            rows.append((name, fine_err, cpu_err, amd_err))
        return rows

    rows = run_once(benchmark, validate)
    lines = ["Section 2.2 validation: MAPE (%) per tool",
             f"{'tool':>8s} {'fine-grained':>13s} {'CPU (Intel)':>12s} {'CPU->AMD (TDP)':>15s}"]
    for name, fine_err, cpu_err, amd_err in rows:
        lines.append(f"{name:>8s} {fine_err:13.2f} {cpu_err:12.2f} {amd_err:15.2f}")
    emit("sec22_tool_errors", "\n".join(lines))

    for name, fine_err, cpu_err, amd_err in rows:
        assert fine_err < 8.0  # paper: below 6% worst case
        if name in ("ftp", "bbcp", "gridftp"):
            assert fine_err < 5.0
    # extending across servers costs accuracy on average (paper: +2-3%)
    mean_cpu = sum(r[2] for r in rows) / len(rows)
    mean_amd = sum(r[3] for r in rows) / len(rows)
    assert mean_amd > mean_cpu
