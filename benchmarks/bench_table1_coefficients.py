"""Table 1 — per-packet power consumption coefficients of networking
devices for load-dependent operations."""

from conftest import emit, run_once

from repro.harness.figures import render_table1
from repro.netenergy.devices import TABLE1_DEVICES


def test_table1_per_packet_coefficients(benchmark):
    text = run_once(benchmark, render_table1)
    emit("table1_coefficients", text)
    published = {
        "Enterprise Ethernet Switch": (40.0, 0.42),
        "Edge Ethernet Switch": (1571.0, 14.1),
        "Metro IP Router": (1375.0, 21.6),
        "Edge IP Router": (1707.0, 15.3),
    }
    for device in TABLE1_DEVICES:
        pp, sf = published[device.name]
        assert device.processing_nw == pp
        assert device.store_forward_pw == sf
