"""Figure 8 — the relation between data transfer rate and network
device power consumption under the non-linear, linear and state-based
models, plus Section 4's worked energy example."""

from conftest import emit, run_once

from repro import units
from repro.harness.figures import render_device_model_curves
from repro.netenergy.models import (
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
    transfer_energy,
)


def test_fig08_model_curves(benchmark):
    text = run_once(benchmark, lambda: render_device_model_curves(points=21))
    emit("fig08_device_models", text)
    nonlinear = NonLinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
    linear = LinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
    state = StateBasedPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
    # the non-linear curve dominates the linear one below full rate
    for u in (0.1, 0.3, 0.5, 0.9):
        assert nonlinear.dynamic_power(u) > linear.dynamic_power(u)
    assert nonlinear.dynamic_power(1.0) == linear.dynamic_power(1.0)
    assert state.dynamic_power(1.0) == 100.0


def test_fig08_section4_energy_analysis(benchmark):
    """Quadrupling the rate halves non-linear energy and leaves linear
    energy unchanged — the paper's closed-form example."""

    def analysis():
        line = units.gbps(10)
        data = 160 * units.GB
        rows = []
        for name, model in (
            ("non-linear", NonLinearPowerModel(0.0, 100.0)),
            ("linear", LinearPowerModel(0.0, 100.0)),
        ):
            base = transfer_energy(model, data, 0.2 * line, line)
            fast = transfer_energy(model, data, 0.8 * line, line)
            rows.append((name, base, fast))
        return rows

    rows = run_once(benchmark, analysis)
    text = "\n".join(
        f"{name:>10s}: E(d)={base:9.1f} J  E(4d)={fast:9.1f} J  ratio={fast / base:.2f}"
        for name, base, fast in rows
    )
    emit("fig08_energy_analysis", "Section 4 rate-vs-energy analysis\n" + text)
    nonlinear_row = rows[0]
    linear_row = rows[1]
    assert nonlinear_row[2] / nonlinear_row[1] == 0.5
    assert linear_row[2] == linear_row[1]
