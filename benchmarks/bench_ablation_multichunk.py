"""Ablations of the scheduling design choices.

* **Work stealing (the Multi-Chunk mechanism)** — "MinE meets the
  throughput deficit caused by limiting the number of channels assigned
  to large chunks by employing the 'Multi-Chunk' mechanism as used by
  ProMC." Disabling it should cost MinE real throughput on XSEDE.
* **Dataset composition** — the simultaneous-chunk schedule (ProMC)
  pays off against the sequential one (SC) because slow small-chunk
  phases stall the whole channel budget; the gap should grow as small
  files carry more of the bytes.
"""

from conftest import emit, run_once

from repro import units
from repro.core.mine import MinEAlgorithm
from repro.core.baselines import ProMCAlgorithm, SingleChunkAlgorithm
from repro.core.scheduler import make_engine, run_to_completion
from repro.datasets.generators import SizeBand, banded_dataset
from repro.netsim.engine import Binding
from repro.testbeds import XSEDE


def test_ablation_work_stealing(benchmark):
    """MinE with vs without the multi-chunk channel re-allocation."""

    def compare():
        dataset = XSEDE.dataset()
        with_stealing = MinEAlgorithm().run(XSEDE, dataset, 12)

        # identical plan, stealing disabled
        plans = MinEAlgorithm().plan(XSEDE, dataset, 12)
        engine = make_engine(XSEDE, binding=Binding.PACK, work_stealing=False)
        for plan in plans:
            engine.add_chunk(plan)
        without = run_to_completion(
            engine, algorithm="MinE-nosteal", testbed="XSEDE", max_channels=12
        )
        return with_stealing, without

    with_stealing, without = run_once(benchmark, compare)
    text = (
        "MinE multi-chunk (work stealing) ablation @XSEDE cc=12\n"
        f"  with stealing    : {with_stealing.throughput_mbps:7.0f} Mbps, "
        f"{with_stealing.energy_joules:8.0f} J\n"
        f"  without stealing : {without.throughput_mbps:7.0f} Mbps, "
        f"{without.energy_joules:8.0f} J"
    )
    emit("ablation_work_stealing", text)
    # stealing recovers substantial throughput (the published rationale)
    assert with_stealing.throughput > 1.25 * without.throughput


def test_ablation_dataset_composition(benchmark):
    """ProMC's edge over SC grows with the small-file byte share."""

    def sweep():
        rows = []
        for small_share in (0.05, 0.25, 0.50):
            rest = 1.0 - small_share
            dataset = banded_dataset(
                40 * units.GB,
                (
                    SizeBand(small_share, 3 * units.MB, 40 * units.MB),
                    SizeBand(rest * 0.5, 50 * units.MB, units.GB),
                    SizeBand(rest * 0.5, units.GB, 10 * units.GB),
                ),
                seed=5,
                name=f"mix-{small_share}",
            )
            sc = SingleChunkAlgorithm().run(XSEDE, dataset, 12)
            promc = ProMCAlgorithm().run(XSEDE, dataset, 12)
            rows.append((small_share, sc.throughput_mbps, promc.throughput_mbps))
        return rows

    rows = run_once(benchmark, sweep)
    text = "SC vs ProMC as small files carry more bytes (@XSEDE cc=12)\n" + "\n".join(
        f"  small share {share:4.0%}: SC {sc:7.0f} Mbps | ProMC {promc:7.0f} Mbps "
        f"(ProMC/SC = {promc / sc:.2f})"
        for share, sc, promc in rows
    )
    emit("ablation_dataset_mix", text)
    ratios = [promc / sc for _, sc, promc in rows]
    assert ratios[-1] > ratios[0]  # the gap widens with small-file mass
    assert all(r >= 0.97 for r in ratios)  # ProMC never loses
