"""Related-work claims (Section 5), made testable.

* Lu et al. [33]: "parallel streams can achieve a better throughput
  than buffer size tuning" — true exactly when the OS buffer ceiling
  sits below the BDP, so a single tuned stream cannot fill the pipe
  while n default-sized streams can.
* PCP [47] tunes the same parameters for throughput only; it should
  match ProMC-class throughput while paying ProMC-class energy —
  which is the gap HTEE's energy term closes.
"""

from conftest import emit, run_once

from repro import units
from repro.core.htee import HTEEAlgorithm
from repro.core.baselines import ProMCAlgorithm
from repro.core.related import BufferTuningAlgorithm, PCPAlgorithm
from repro.datasets.files import Dataset
from repro.netsim.disk import ParallelDisk
from repro.netsim.endpoint import EndSystem, ServerSpec
from repro.netsim.engine import ChunkPlan, TransferEngine
from repro.netsim.link import NetworkPath
from repro.netsim.params import TransferParams
from repro.testbeds import XSEDE
from repro.testbeds.specs import Testbed
from repro.power.coefficients import CoefficientSet


def network_bound_testbed(os_max_buffer_mb: float) -> Testbed:
    """A long fat pipe where the network, not the host, binds:
    BDP = 125 MB while the OS caps buffers at ``os_max_buffer_mb``."""
    server = ServerSpec(
        name="fast-host",
        cores=16,
        tdp_watts=150.0,
        nic_rate=units.gbps(10),
        disk=ParallelDisk(per_accessor_rate=1250 * units.MB, array_rate=3000 * units.MB),
        per_channel_rate=1250 * units.MB,
        core_rate=1000 * units.MB,
        per_file_overhead=0.0,
    )
    site = EndSystem("site", server, 1)
    path = NetworkPath(
        bandwidth=units.gbps(10),
        rtt=units.ms(100),
        tcp_buffer=os_max_buffer_mb * units.MB,
        protocol_efficiency=1.0,
        congestion_knee=64,
    )
    dataset = Dataset.from_sizes([2 * units.GB] * 10, name="lfn-20GB")
    return Testbed(
        name="LongFatPipe",
        path=path,
        source=site,
        destination=site,
        coefficients=CoefficientSet(),
        dataset_factory=lambda: dataset,
        engine_dt=0.25,
    )


def test_parallel_streams_beat_buffer_tuning(benchmark):
    def compare():
        tb = network_bound_testbed(os_max_buffer_mb=16)  # ceiling << 125 MB BDP
        ds = tb.dataset()
        tuned = BufferTuningAlgorithm().run(tb, ds)
        # 8 parallel streams at the default (capped) buffer
        engine = TransferEngine(
            tb.path, tb.source, tb.destination, lambda s, u: 10.0, dt=0.25
        )
        engine.add_chunk(ChunkPlan("all", tuple(ds), TransferParams(1, 8, 1)))
        engine.run()
        parallel_rate = engine.total_bytes / engine.time
        return tuned, parallel_rate

    tuned, parallel_rate = run_once(benchmark, compare)
    text = (
        "buffer tuning vs parallel streams (10 Gbps x 100 ms, OS cap 16 MB)\n"
        f"  tuned single stream : {tuned.throughput_mbps:7.0f} Mbps "
        f"(buffer {tuned.extra['tuned_buffer'] / units.MB:.0f} MB)\n"
        f"  8 parallel streams  : {units.to_mbps(parallel_rate):7.0f} Mbps"
    )
    emit("related_buffer_vs_streams", text)
    # the single tuned stream is pinned at ~16 MB / 100 ms = 1.28 Gbps
    assert tuned.throughput_mbps < 1500
    assert units.to_mbps(parallel_rate) > 4 * tuned.throughput_mbps


def test_buffer_tuning_sufficient_when_ceiling_covers_bdp(benchmark):
    def run():
        tb = network_bound_testbed(os_max_buffer_mb=256)  # ceiling > BDP
        return BufferTuningAlgorithm().run(tb, tb.dataset())

    tuned = run_once(benchmark, run)
    emit(
        "related_buffer_ample",
        f"buffer tuning with an ample OS ceiling: {tuned.throughput_mbps:.0f} Mbps "
        f"(buffer {tuned.extra['tuned_buffer'] / units.MB:.0f} MB)",
    )
    assert tuned.throughput_mbps > 8000  # one stream fills the 10 G pipe


def test_pcp_fast_but_energy_blind(benchmark):
    def compare():
        ds = XSEDE.dataset()
        pcp = PCPAlgorithm().run(XSEDE, ds, 12)
        htee = HTEEAlgorithm().run(XSEDE, ds, 12)
        promc = ProMCAlgorithm().run(XSEDE, ds, 12)
        return pcp, htee, promc

    pcp, htee, promc = run_once(benchmark, compare)
    text = (
        "throughput-only PCP vs energy-aware HTEE @XSEDE cc<=12\n"
        f"  PCP   : {pcp.throughput_mbps:6.0f} Mbps, {pcp.energy_joules:7.0f} J "
        f"(picked cc={pcp.final_concurrency})\n"
        f"  HTEE  : {htee.throughput_mbps:6.0f} Mbps, {htee.energy_joules:7.0f} J "
        f"(picked cc={htee.final_concurrency})\n"
        f"  ProMC : {promc.throughput_mbps:6.0f} Mbps, {promc.energy_joules:7.0f} J"
    )
    emit("related_pcp_vs_htee", text)
    assert pcp.throughput > 0.85 * promc.throughput  # throughput-competitive
    assert pcp.energy_joules > htee.energy_joules  # but pays for it
