"""Benchmark-harness helpers.

Every bench regenerates one paper figure or table: it runs the
experiment once under pytest-benchmark timing (rounds=1 — these are
experiments, not microbenchmarks), prints the figure as text, and
writes it to ``benchmarks/output/<name>.txt`` so the artifact survives
pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def emit(name: str, text: str) -> str:
    """Print a rendered figure and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return text


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
