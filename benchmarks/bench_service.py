"""Service-day benchmark: deferral policies vs the run-now baseline.

Runs one compressed "day" of diurnal tenant traffic through the
scheduling service on the paper testbeds under several deferral
policies and writes ``BENCH_service.json``: per-policy dollars, kWh,
kgCO2, deadline-miss rate, slowdown percentiles and wall-clock. The
headline numbers are the price-threshold policy's dollar and carbon
savings versus run-now — the paper's "low-cost data transfer options
... in return for delayed transfers", measured end to end at a
time-of-use tariff.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_service.py -o out.json

Not a pytest file on purpose: it is a standalone script so CI can run
it in smoke mode and upload the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.service import (
    ServiceSimulator,
    policy_by_name,
    tariff_by_name,
    workload_by_name,
)
from repro.testbeds.specs import testbed_by_name

POLICIES = ("run-now", "deadline-edf", "price-threshold", "carbon-aware")

#: (testbed, workload, jobs, day seconds). The first entry is the
#: headline cell reported at the top level of the JSON.
CELLS: tuple[tuple[str, str, int, float], ...] = (
    ("xsede", "diurnal", 24, 3600.0),
    ("futuregrid", "diurnal", 16, 3600.0),
    ("xsede", "bursty", 24, 3600.0),
)

SMOKE_CELLS: tuple[tuple[str, str, int, float], ...] = (
    ("xsede", "diurnal", 8, 1800.0),
)


def _run_cell(
    testbed_name: str, workload: str, jobs: int, day_s: float, seed: int
) -> dict:
    testbed = testbed_by_name(testbed_name)
    requests = workload_by_name(
        workload, jobs, day_s=day_s, seed=seed, size_scale=day_s / 86400.0
    )
    tariff = tariff_by_name("peak-offpeak", period_s=day_s)
    rows = {}
    for policy in POLICIES:
        start = time.perf_counter()
        report = ServiceSimulator(
            testbed,
            policy=policy_by_name(policy),
            tariff=tariff,
        ).run(requests)
        wall = time.perf_counter() - start
        rows[policy] = {
            "cost_usd": report.total_cost_usd,
            "kwh": report.total_energy_j / 3.6e6,
            "kg_co2": report.total_kg_co2,
            "deferred_jobs": report.deferred_jobs,
            "deadline_miss_rate": report.deadline_miss_rate,
            "p50_slowdown": report.p50_slowdown,
            "p95_slowdown": report.p95_slowdown,
            "mean_queue_wait_s": report.mean_queue_wait_s,
            "makespan_s": report.makespan_s,
            "wall_s": wall,
        }
    base = rows["run-now"]["cost_usd"]
    base_co2 = rows["run-now"]["kg_co2"]
    return {
        "testbed": testbed_name,
        "workload": workload,
        "jobs": jobs,
        "day_s": day_s,
        "tariff": "peak-offpeak",
        "policies": rows,
        "price_threshold_saving_frac": (
            1.0 - rows["price-threshold"]["cost_usd"] / base if base > 0 else 0.0
        ),
        "carbon_aware_co2_saving_frac": (
            1.0 - rows["carbon-aware"]["kg_co2"] / base_co2
            if base_co2 > 0 else 0.0
        ),
    }


def run_benchmark(*, smoke: bool = False, seed: int = 7) -> dict:
    cells = [
        _run_cell(*cell, seed) for cell in (SMOKE_CELLS if smoke else CELLS)
    ]
    headline = cells[0]
    return {
        "benchmark": "service_day",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": smoke,
        "seed": seed,
        "python": sys.version.split()[0],
        "policies": list(POLICIES),
        "cells": cells,
        "headline": {
            "testbed": headline["testbed"],
            "workload": headline["workload"],
            "price_threshold_saving_frac":
                headline["price_threshold_saving_frac"],
            "price_threshold_miss_rate":
                headline["policies"]["price-threshold"]["deadline_miss_rate"],
            "carbon_aware_co2_saving_frac":
                headline["carbon_aware_co2_saving_frac"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI mode: one cell, fewer jobs")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "-o", "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke, seed=args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"service benchmark ({'smoke' if args.smoke else 'full'}) -> {args.output}")
    for cell in report["cells"]:
        print(f"  {cell['testbed']} / {cell['workload']} "
              f"({cell['jobs']} jobs, day {cell['day_s']:.0f} s):")
        for policy, row in cell["policies"].items():
            print(
                f"    {policy:>15s}  ${row['cost_usd']:.6f}  "
                f"{row['kwh']:.6f} kWh  {row['kg_co2']:.6f} kgCO2  "
                f"miss {row['deadline_miss_rate']:.0%}  "
                f"p95 slow {row['p95_slowdown']:7.1f}  "
                f"wall {row['wall_s']:5.2f} s"
            )
        print(
            f"    price-threshold saves "
            f"{100 * cell['price_threshold_saving_frac']:.1f}% of $ "
            f"vs run-now; carbon-aware saves "
            f"{100 * cell['carbon_aware_co2_saving_frac']:.1f}% of CO2"
        )
    head = report["headline"]
    print(
        f"  headline {head['testbed']}/{head['workload']}: "
        f"{100 * head['price_threshold_saving_frac']:.1f}% cheaper at "
        f"{head['price_threshold_miss_rate']:.0%} deadline misses"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
