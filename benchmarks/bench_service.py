"""Service-day benchmark: deferral policies vs the run-now baseline.

Runs one compressed "day" of diurnal tenant traffic through the
scheduling service on the paper testbeds under several deferral
policies and writes ``BENCH_service.json``: per-policy dollars, kWh,
kgCO2, deadline-miss rate, slowdown percentiles and wall-clock. The
headline numbers are the price-threshold policy's dollar and carbon
savings versus run-now — the paper's "low-cost data transfer options
... in return for delayed transfers", measured end to end at a
time-of-use tariff.

A second sweep measures the event-horizon fast path against the
reference dt-grid loop at 1k/10k/100k-job scale (chunky-dataset tenant
mix, constant arrival rate), recording ``fast_wall_s`` / ``grid_wall_s``
/ ``speedup`` and fast-vs-grid relative errors per cell; ``--check``
turns the speedup floors and the 1e-6 error budget into a CI gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_service.py --smoke --check
    PYTHONPATH=src python benchmarks/bench_service.py --workers 4
    PYTHONPATH=src python benchmarks/bench_service.py -o out.json

Not a pytest file on purpose: it is a standalone script so CI can run
it in smoke mode and upload the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from datetime import datetime, timezone
from pathlib import Path

from repro.service import (
    ServiceSimulator,
    policy_by_name,
    tariff_by_name,
    workload_by_name,
)
from repro.service.policies import plan_cache_clear, plan_cache_info
from repro.service.requests import (
    BALANCED,
    ENERGY,
    TenantProfile,
    diurnal_workload,
    sla,
)
from repro.testbeds.specs import testbed_by_name
from repro.units import GB

POLICIES = ("run-now", "deadline-edf", "price-threshold", "carbon-aware")

#: (testbed, workload, jobs, day seconds). The first entry is the
#: headline cell reported at the top level of the JSON.
CELLS: tuple[tuple[str, str, int, float], ...] = (
    ("xsede", "diurnal", 24, 3600.0),
    ("futuregrid", "diurnal", 16, 3600.0),
    ("xsede", "bursty", 24, 3600.0),
)

SMOKE_CELLS: tuple[tuple[str, str, int, float], ...] = (
    ("xsede", "diurnal", 8, 1800.0),
)

# ----------------------------------------------------------------------
# fast-path scale cells
# ----------------------------------------------------------------------

#: Chunky-dataset tenant mix for the scale cells. The default tenants
#: spray ~17 small files per job, so every file completion forces a
#: k=1 engine round on the whole coupled set and caps the macro-step
#: win; these tenants ship a handful of large archives per job
#: (``file_fracs`` bounds file sizes to a fraction band of the job),
#: which is both the shape of real bulk-transfer traffic and the shape
#: the event-horizon fast path is built for.
SCALE_TENANTS: tuple[TenantProfile, ...] = (
    TenantProfile(
        "backup", share=0.5, sla=ENERGY,
        mean_size=40 * GB, deadline_slack_frac=0.90,
        file_fracs=(1 / 6, 1 / 2),
    ),
    TenantProfile(
        "replica", share=0.3, sla=BALANCED,
        mean_size=24 * GB, deadline_slack_frac=0.35,
        file_fracs=(1 / 8, 1 / 3),
    ),
    TenantProfile(
        "media", share=0.2, sla=sla(0.8),
        mean_size=16 * GB, deadline_slack_frac=0.20,
        file_fracs=(1 / 4, 1 / 2),
    ),
)

#: Seconds of simulated day per job — keeps arrival rate (and hence
#: utilization and the fast/grid work ratio) constant as the job count
#: grows, so the scale sweep isolates *size*, not load shape.
SCALE_DAY_PER_JOB_S = 86.4
SCALE_SIZE_SCALE = 2.0
SCALE_DATASET_POOL = 32
SCALE_POLICY = "run-now"

#: ``(jobs, measure_grid)`` — above 10k jobs the reference dt-grid loop
#: is too slow to run outright, so its wall is extrapolated linearly in
#: job count from the largest measured cell (grid work is ~linear in
#: jobs at fixed arrival rate and size mix).
SCALE_CELLS: tuple[tuple[int, bool], ...] = (
    (1_000, True),
    (10_000, True),
    (100_000, False),
)

SMOKE_SCALE_CELLS: tuple[tuple[int, bool], ...] = ((1_000, True),)


def _scale_case(jobs: int, fast: bool, seed: int) -> dict:
    """One (job count, engine mode) scale measurement.

    Top-level function so :class:`ProcessPoolExecutor` can pickle it —
    the scale sweep shards its cases across worker processes exactly
    like ``Campaign.run(workers=N)`` shards campaign cases.
    """
    day_s = SCALE_DAY_PER_JOB_S * jobs
    testbed = testbed_by_name("xsede")
    requests = diurnal_workload(
        jobs,
        day_s=day_s,
        seed=seed,
        tenants=SCALE_TENANTS,
        size_scale=SCALE_SIZE_SCALE,
        dataset_pool=SCALE_DATASET_POOL,
    )
    tariff = tariff_by_name("peak-offpeak", period_s=day_s)
    plan_cache_clear()
    sim = ServiceSimulator(
        testbed,
        policy=policy_by_name(SCALE_POLICY),
        tariff=tariff,
        max_concurrent_jobs=4,
        fast=fast,
    )
    start = time.perf_counter()
    report = sim.run(requests, max_time=20.0 * day_s)
    wall = time.perf_counter() - start
    return {
        "jobs": jobs,
        "fast": fast,
        "wall_s": wall,
        "energy_j": report.total_energy_j,
        "cost_usd": report.total_cost_usd,
        "kg_co2": report.total_kg_co2,
        "makespan_s": report.makespan_s,
        "finished_jobs": sum(1 for j in report.jobs if j.finished),
        "plan_cache": plan_cache_info(),
    }


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-300)


def run_scale_benchmark(
    *, smoke: bool = False, seed: int = 7, workers: int = 1
) -> list[dict]:
    """Fast-vs-grid scale sweep: returns one row per job count with
    ``fast_wall_s``, ``grid_wall_s`` (measured or extrapolated),
    ``speedup`` and energy/cost relative errors."""
    cells = SMOKE_SCALE_CELLS if smoke else SCALE_CELLS
    cases = [(jobs, fast) for jobs, measure_grid in cells
             for fast in ((True, False) if measure_grid else (True,))]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                case: pool.submit(_scale_case, case[0], case[1], seed)
                for case in cases
            }
            results = {case: fut.result() for case, fut in futures.items()}
    else:
        results = {
            case: _scale_case(case[0], case[1], seed) for case in cases
        }

    # grid-wall extrapolation baseline: largest cell with a measured grid
    measured = [jobs for jobs, measure_grid in cells if measure_grid]
    ref_jobs = max(measured) if measured else None

    rows = []
    for jobs, measure_grid in cells:
        fast_row = results[(jobs, True)]
        row: dict = {
            "testbed": "xsede",
            "workload": "diurnal",
            "tariff": "peak-offpeak",
            "policy": SCALE_POLICY,
            "jobs": jobs,
            "day_s": SCALE_DAY_PER_JOB_S * jobs,
            "size_scale": SCALE_SIZE_SCALE,
            "dataset_pool": SCALE_DATASET_POOL,
            "fast_wall_s": fast_row["wall_s"],
            "finished_jobs": fast_row["finished_jobs"],
            "cost_usd": fast_row["cost_usd"],
            "kwh": fast_row["energy_j"] / 3.6e6,
            "plan_cache": fast_row["plan_cache"],
        }
        if measure_grid:
            grid_row = results[(jobs, False)]
            row["grid_wall_s"] = grid_row["wall_s"]
            row["grid_extrapolated"] = False
            row["rel_err_energy"] = _rel_err(
                fast_row["energy_j"], grid_row["energy_j"]
            )
            row["rel_err_cost"] = _rel_err(
                fast_row["cost_usd"], grid_row["cost_usd"]
            )
        else:
            # linear-in-jobs extrapolation from the largest measured cell
            ref = results[(ref_jobs, False)]
            row["grid_wall_s"] = ref["wall_s"] * (jobs / ref_jobs)
            row["grid_extrapolated"] = True
            row["rel_err_energy"] = None
            row["rel_err_cost"] = None
        row["speedup"] = row["grid_wall_s"] / row["fast_wall_s"]
        rows.append(row)
    return rows


def _run_cell(
    testbed_name: str, workload: str, jobs: int, day_s: float, seed: int
) -> dict:
    testbed = testbed_by_name(testbed_name)
    requests = workload_by_name(
        workload, jobs, day_s=day_s, seed=seed, size_scale=day_s / 86400.0
    )
    tariff = tariff_by_name("peak-offpeak", period_s=day_s)
    rows = {}
    for policy in POLICIES:
        start = time.perf_counter()
        report = ServiceSimulator(
            testbed,
            policy=policy_by_name(policy),
            tariff=tariff,
        ).run(requests)
        wall = time.perf_counter() - start
        rows[policy] = {
            "cost_usd": report.total_cost_usd,
            "kwh": report.total_energy_j / 3.6e6,
            "kg_co2": report.total_kg_co2,
            "deferred_jobs": report.deferred_jobs,
            "deadline_miss_rate": report.deadline_miss_rate,
            "p50_slowdown": report.p50_slowdown,
            "p95_slowdown": report.p95_slowdown,
            "mean_queue_wait_s": report.mean_queue_wait_s,
            "makespan_s": report.makespan_s,
            "wall_s": wall,
        }
    base = rows["run-now"]["cost_usd"]
    base_co2 = rows["run-now"]["kg_co2"]
    return {
        "testbed": testbed_name,
        "workload": workload,
        "jobs": jobs,
        "day_s": day_s,
        "tariff": "peak-offpeak",
        "policies": rows,
        "price_threshold_saving_frac": (
            1.0 - rows["price-threshold"]["cost_usd"] / base if base > 0 else 0.0
        ),
        "carbon_aware_co2_saving_frac": (
            1.0 - rows["carbon-aware"]["kg_co2"] / base_co2
            if base_co2 > 0 else 0.0
        ),
    }


def run_benchmark(
    *, smoke: bool = False, seed: int = 7, workers: int = 1
) -> dict:
    cells = [
        _run_cell(*cell, seed) for cell in (SMOKE_CELLS if smoke else CELLS)
    ]
    scale_cells = run_scale_benchmark(smoke=smoke, seed=seed, workers=workers)
    headline = cells[0]
    # headline speedup: the largest cell whose grid wall was measured
    scale_headline = max(
        (row for row in scale_cells if not row["grid_extrapolated"]),
        key=lambda row: row["jobs"],
    )
    return {
        "benchmark": "service_day",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": smoke,
        "seed": seed,
        "workers": workers,
        "python": sys.version.split()[0],
        "policies": list(POLICIES),
        "cells": cells,
        "scale_cells": scale_cells,
        "headline": {
            "testbed": headline["testbed"],
            "workload": headline["workload"],
            "price_threshold_saving_frac":
                headline["price_threshold_saving_frac"],
            "price_threshold_miss_rate":
                headline["policies"]["price-threshold"]["deadline_miss_rate"],
            "carbon_aware_co2_saving_frac":
                headline["carbon_aware_co2_saving_frac"],
            "fast_path_speedup": scale_headline["speedup"],
            "fast_path_speedup_jobs": scale_headline["jobs"],
        },
    }


def check_benchmark(report: dict) -> list[str]:
    """CI gate: return a list of failure strings (empty = pass).

    Asserts the fast path is ``>=5x`` the reference grid on the 1k-job
    scale cell (``>=10x`` on the 10k cell when present) and that every
    measured fast-vs-grid relative error stays below 1e-6.
    """
    failures: list[str] = []
    by_jobs = {row["jobs"]: row for row in report["scale_cells"]}
    floors = {1_000: 5.0, 10_000: 10.0}
    for jobs, floor in floors.items():
        row = by_jobs.get(jobs)
        if row is None or row["grid_extrapolated"]:
            continue
        if row["speedup"] < floor:
            failures.append(
                f"{jobs}-job scale cell: speedup {row['speedup']:.2f}x "
                f"below the {floor:.0f}x floor"
            )
    for row in report["scale_cells"]:
        for key in ("rel_err_energy", "rel_err_cost"):
            err = row[key]
            if err is not None and err > 1e-6:
                failures.append(
                    f"{row['jobs']}-job scale cell: {key} {err:.3e} "
                    "above the 1e-6 floor"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI mode: one cell, fewer jobs")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the scale cells across N worker processes "
             "(like Campaign.run(workers=N); 1 = sequential)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: exit non-zero unless the fast path clears its "
             "speedup floors (5x at 1k jobs, 10x at 10k) with "
             "fast-vs-grid relative errors below 1e-6",
    )
    parser.add_argument(
        "-o", "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(
        smoke=args.smoke, seed=args.seed, workers=args.workers
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"service benchmark ({'smoke' if args.smoke else 'full'}) -> {args.output}")
    for cell in report["cells"]:
        print(f"  {cell['testbed']} / {cell['workload']} "
              f"({cell['jobs']} jobs, day {cell['day_s']:.0f} s):")
        for policy, row in cell["policies"].items():
            print(
                f"    {policy:>15s}  ${row['cost_usd']:.6f}  "
                f"{row['kwh']:.6f} kWh  {row['kg_co2']:.6f} kgCO2  "
                f"miss {row['deadline_miss_rate']:.0%}  "
                f"p95 slow {row['p95_slowdown']:7.1f}  "
                f"wall {row['wall_s']:5.2f} s"
            )
        print(
            f"    price-threshold saves "
            f"{100 * cell['price_threshold_saving_frac']:.1f}% of $ "
            f"vs run-now; carbon-aware saves "
            f"{100 * cell['carbon_aware_co2_saving_frac']:.1f}% of CO2"
        )
    print("  fast-path scale cells (run-now / diurnal / peak-offpeak):")
    for row in report["scale_cells"]:
        grid_note = " (extrapolated)" if row["grid_extrapolated"] else ""
        err = row["rel_err_cost"]
        err_s = f"rel-err {err:.1e}" if err is not None else "rel-err   n/a"
        print(
            f"    {row['jobs']:>7,} jobs  fast {row['fast_wall_s']:8.2f} s  "
            f"grid {row['grid_wall_s']:9.2f} s{grid_note}  "
            f"speedup {row['speedup']:6.1f}x  {err_s}"
        )
    head = report["headline"]
    print(
        f"  headline {head['testbed']}/{head['workload']}: "
        f"{100 * head['price_threshold_saving_frac']:.1f}% cheaper at "
        f"{head['price_threshold_miss_rate']:.0%} deadline misses; "
        f"fast path {head['fast_path_speedup']:.1f}x the dt-grid at "
        f"{head['fast_path_speedup_jobs']:,} jobs"
    )
    if args.check:
        failures = check_benchmark(report)
        if failures:
            for failure in failures:
                print(f"  CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("  checks passed: speedup floors met, rel-err below 1e-6")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
