"""Topology subsystem benchmark: allocator throughput + placement gates.

Exercises ``repro.topo`` end to end and writes ``BENCH_topo.json``:

* **allocator throughput** — water-fill allocation rounds/sec at
  64/256/1024 flows on a k=4 fat-tree (the hot loop of every
  topology-backed simulation step), with cold (uncached), LRU-hit and
  incremental-refill columns;
* **topology fleet day** — a contended 1k-job topology service day,
  unsharded versus carved into topology-aware pair shards
  (``repro.service.fleet``): wall-clock speedup (gate: >= 10x), the
  sharded fast day bit-equal to its uncached dt-grid reference,
  a repeat day served almost entirely from the allocation LRU
  (gate: hit rate > 0.9) and a 10k-job sharded day completing in
  smoke mode;
* **placement-policy comparison** — one congested leaf-spine service
  day per policy; the informed ``least-congested`` policy must beat
  the load-blind ``random-k`` sampler on p95 slowdown;
* **fast vs grid** — topology-backed event-horizon runs must match the
  reference dt-grid loop (bit-equal job timestamps, cost/energy
  relative error at or below 1e-9) across two topologies and two
  placement policies;
* **single-link anchor** — a ``single-link`` topology must reproduce
  the classic point-to-point run byte-identically;
* **determinism** — every topology-backed cell re-run with the same
  seed must produce a byte-identical report.

``--check`` turns all five gates into a CI failure.

Usage::

    PYTHONPATH=src python benchmarks/bench_topo.py            # full
    PYTHONPATH=src python benchmarks/bench_topo.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_topo.py --smoke --check

Not a pytest file on purpose: it is a standalone script so CI can run
it in smoke mode and upload the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.chaos import strip_wall
from repro.service import (
    ServiceSimulator,
    policy_by_name,
    tariff_by_name,
    workload_by_name,
)
from repro.service.fleet import FleetSimulator
from repro.testbeds.specs import testbed_by_name
from repro.topo import (
    FlowDemand,
    Placer,
    alloc_cache_clear,
    alloc_cache_info,
    allocate,
    build_topology,
    refill,
    set_alloc_cache,
)

#: Flow counts for the allocator-throughput sweep.
FLOW_COUNTS = (64, 256, 1024)

#: (topology, placement) grid for the fast-vs-grid gate.
GATE_TOPOLOGIES = ("leaf-spine:s=2,l=4,spine=0.4", "fat-tree:k=4,core=0.3")
GATE_PLACEMENTS = ("least-congested", "ecmp-hash")

#: Congested fabric for the placement-policy comparison: two thin
#: spines force real route choices. Jobs are deliberately large
#: relative to the day (``size_scale=0.3``) so arrivals genuinely
#: overlap — a day of short, serial jobs ties every policy. p95 of a
#: small day is one order statistic, so the comparison averages over
#: three workload seeds.
COMPARE_TOPOLOGY = "leaf-spine:s=2,l=2,spine=0.35"
COMPARE_PLACEMENTS = ("least-congested", "ecmp-hash", "random-k")
COMPARE_SEEDS = (5, 7, 11)
COMPARE_SIZE_SCALE = 0.3

#: Relative-error budget for fast-vs-grid scalar aggregates (same
#: contract as the service/chaos benches: bit-equal times, float
#: accumulation-order equality on energy/cost).
REL_ERR_BUDGET = 1e-9

#: The contended topology fleet day: 1k overlapping jobs on a six-leaf
#: fabric. Unsharded, the engine cost grows superlinearly with the
#: number of concurrent transfers; carved into C(6,2)=15 pair shards
#: the same day is >= 10x faster (the CI gate) with every timestamp
#: pinned by the dt-grid reference.
FLEET_TOPOLOGY = "leaf-spine:s=2,l=6,spine=0.4"
FLEET_DAY_S = 8640.0
FLEET_JOBS = 1000
FLEET_SPEEDUP_GATE = 10.0
CACHE_HIT_RATE_GATE = 0.9
TENK_JOBS = 10000


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-12)


def _bench_allocator(flows: int) -> dict:
    """Time water-fills of ``flows`` full-rate demands on a k=4
    fat-tree (placements fixed by ecmp round-robin), three ways: cold
    from-scratch solves, LRU hits on the identical flow set, and
    incremental ``refill`` after a single-flow demand change."""
    bandwidth = testbed_by_name("xsede").path.bandwidth
    topology = build_topology("fat-tree:k=4", bandwidth=bandwidth)
    placer = Placer(topology, "ecmp-hash")
    demands = [
        FlowDemand(f"flow-{i:04d}",
                   placer.place(f"flow-{i:04d}").bottlenecks, bandwidth)
        for i in range(flows)
    ]
    repeats = max(3, 2048 // flows)

    # cold: the pre-cache from-scratch rate (vector path auto-dispatch)
    result = allocate(topology, demands, cache=False)  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        result = allocate(topology, demands, cache=False)
    cold_wall = time.perf_counter() - start

    # cached: every repeat is an exact-signature LRU hit
    alloc_cache_clear()
    allocate(topology, demands)  # the one miss that seeds the memo
    cached_repeats = repeats * 64
    start = time.perf_counter()
    for _ in range(cached_repeats):
        allocate(topology, demands)
    cached_wall = time.perf_counter() - start
    info = alloc_cache_info()
    assert info.hits >= cached_repeats, info

    # refill: alternate one flow's demand so every call re-solves only
    # the interference component that flow touches
    bumped = [
        FlowDemand(f.flow, f.path,
                   f.demand * (0.5 if f.flow == demands[0].flow else 1.0))
        for f in demands
    ]
    previous = allocate(topology, demands, cache=False)
    variants = (bumped, demands)
    start = time.perf_counter()
    for i in range(repeats):
        previous = refill(topology, variants[i % 2], previous, cache=False)
    refill_wall = time.perf_counter() - start

    return {
        "flows": flows,
        "rounds_per_allocation": result.rounds,
        "allocations_per_sec": repeats / cold_wall,
        "rounds_per_sec": repeats * result.rounds / cold_wall,
        "cached_allocations_per_sec": cached_repeats / cached_wall,
        "refill_allocations_per_sec": repeats / refill_wall,
        "cached_speedup": (repeats / cold_wall) and (
            (cached_repeats / cached_wall) / (repeats / cold_wall)
        ),
        "wall_s": cold_wall + cached_wall + refill_wall,
    }


def _service_day(*, testbed, tariff, requests, fast=True, topology=None,
                 placement="least-congested", max_concurrent=8):
    simulator = ServiceSimulator(
        testbed, policy=policy_by_name("run-now"), tariff=tariff,
        max_concurrent_jobs=max_concurrent, max_channels=4, fast=fast,
        topology=topology, placement=placement,
    )
    return simulator.run(requests)


def _report_dict(report) -> dict:
    return strip_wall(report.to_dict())


def _fleet_day(*, testbed, tariff, requests, fast=True, cache=True):
    """One topology-aware sharded fleet day; returns (report, wall_s).
    ``cache=False`` runs the uncached reference (LRU off, restored
    after)."""
    from repro.service.policies import plan_cache_clear

    plan_cache_clear()
    alloc_cache_clear()
    prev = set_alloc_cache(cache)
    try:
        start = time.perf_counter()
        fleet = FleetSimulator(
            testbed, policy=policy_by_name("run-now"), tariff=tariff,
            fast=fast, topology=FLEET_TOPOLOGY, routing="topology-aware",
        )
        report = fleet.run(requests)
        wall = time.perf_counter() - start
    finally:
        set_alloc_cache(prev)
    return report, wall


def _bench_fleet_day(*, smoke: bool, seed: int) -> dict:
    """The 1k-job contended topology day, unsharded vs pair-sharded,
    plus the uncached dt-grid reference, the repeat-day LRU hit rate
    and the 10k-job feasibility cell."""
    from repro.service.policies import plan_cache_clear

    testbed = testbed_by_name("xsede")
    tariff = tariff_by_name("peak-offpeak", period_s=FLEET_DAY_S)
    size_scale = 0.075 if smoke else 0.1
    requests = workload_by_name(
        "bursty", FLEET_JOBS, day_s=FLEET_DAY_S, seed=seed,
        size_scale=size_scale,
    )

    # unsharded baseline: one simulator carries all 1k overlapping jobs
    plan_cache_clear()
    alloc_cache_clear()
    start = time.perf_counter()
    unsharded = _service_day(
        testbed=testbed, tariff=tariff, requests=requests,
        topology=FLEET_TOPOLOGY, max_concurrent=64,
    )
    unsharded_wall = time.perf_counter() - start

    fleet_report, fleet_wall = _fleet_day(
        testbed=testbed, tariff=tariff, requests=requests,
    )
    grid_report, grid_wall = _fleet_day(
        testbed=testbed, tariff=tariff, requests=requests,
        fast=False, cache=False,
    )

    times_bitequal = all(
        a.submitted_at == b.submitted_at
        and a.admitted_at == b.admitted_at
        and a.completed_at == b.completed_at
        for fast_shard, grid_shard in zip(
            fleet_report.shards, grid_report.shards
        )
        for a, b in zip(fast_shard.report.jobs, grid_shard.report.jobs)
    )

    # repeat day: a second identical fleet day against the warm LRU
    # (inline, same process) must be served almost entirely from cache
    plan_cache_clear()
    alloc_cache_clear()
    _fleet_repeat = FleetSimulator(
        testbed, policy=policy_by_name("run-now"), tariff=tariff,
        fast=True, topology=FLEET_TOPOLOGY, routing="topology-aware",
    )
    _fleet_repeat.run(requests)
    before = alloc_cache_info()
    FleetSimulator(
        testbed, policy=policy_by_name("run-now"), tariff=tariff,
        fast=True, topology=FLEET_TOPOLOGY, routing="topology-aware",
    ).run(requests)
    after = alloc_cache_info()
    hits = after.hits - before.hits
    misses = after.misses - before.misses
    hit_rate = hits / max(hits + misses, 1)

    # 10k-job day: sharded, fast driver — must simply complete in CI
    tenk_requests = workload_by_name(
        "steady", TENK_JOBS, day_s=FLEET_DAY_S, seed=seed,
        size_scale=(0.5 if smoke else 1.0) * FLEET_DAY_S / 86400.0,
    )
    tenk_report, tenk_wall = _fleet_day(
        testbed=testbed, tariff=tariff, requests=tenk_requests,
    )

    return {
        "topology": FLEET_TOPOLOGY,
        "jobs": FLEET_JOBS,
        "day_s": FLEET_DAY_S,
        "size_scale": size_scale,
        "shards": len(fleet_report.shards),
        "unsharded_wall_s": unsharded_wall,
        "fleet_wall_s": fleet_wall,
        "speedup": unsharded_wall / fleet_wall,
        "grid_wall_s": grid_wall,
        "times_bitequal": times_bitequal,
        "rel_err_energy": _rel_err(
            fleet_report.total_energy_j, grid_report.total_energy_j
        ),
        "rel_err_cost": _rel_err(
            fleet_report.total_cost_usd, grid_report.total_cost_usd
        ),
        "repeat_hit_rate": hit_rate,
        "unsharded_energy_j": unsharded.total_energy_j,
        "fleet_energy_j": fleet_report.total_energy_j,
        "tenk": {
            "jobs": TENK_JOBS,
            "wall_s": tenk_wall,
            "completed": sum(
                len(shard.report.jobs) for shard in tenk_report.shards
            ) == TENK_JOBS,
        },
    }


def run_benchmark(*, smoke: bool = False, seed: int = 7) -> dict:
    testbed = testbed_by_name("xsede")
    jobs, day_s = (16, 1200.0) if smoke else (48, 3600.0)
    tariff = tariff_by_name("peak-offpeak", period_s=day_s)
    requests = workload_by_name(
        "steady", jobs, day_s=day_s, seed=seed, size_scale=day_s / 86400.0,
    )

    allocator = [_bench_allocator(flows) for flows in FLOW_COUNTS]

    fleet_day = _bench_fleet_day(smoke=smoke, seed=seed)

    # -- placement-policy comparison (congested fabric) -----------------
    compare_jobs, compare_day = (12, 600.0) if smoke else (24, 1200.0)
    compare_tariff = tariff_by_name("peak-offpeak", period_s=compare_day)
    comparison = []
    for placement in COMPARE_PLACEMENTS:
        per_seed = []
        deterministic = True
        start = time.perf_counter()
        for compare_seed in COMPARE_SEEDS:
            contended = workload_by_name(
                "bursty", compare_jobs, day_s=compare_day,
                seed=compare_seed, size_scale=COMPARE_SIZE_SCALE,
            )
            report = _service_day(
                testbed=testbed, tariff=compare_tariff, requests=contended,
                topology=COMPARE_TOPOLOGY, placement=placement,
                max_concurrent=6,
            )
            rerun = _service_day(
                testbed=testbed, tariff=compare_tariff, requests=contended,
                topology=COMPARE_TOPOLOGY, placement=placement,
                max_concurrent=6,
            )
            deterministic = deterministic and json.dumps(
                _report_dict(report), sort_keys=True
            ) == json.dumps(_report_dict(rerun), sort_keys=True)
            per_seed.append({
                "seed": compare_seed,
                "p95_slowdown": report.p95_slowdown,
                "makespan_s": report.makespan_s,
                "kwh": report.total_energy_j / 3.6e6,
                "cost_usd": report.total_cost_usd,
            })
        wall = time.perf_counter() - start
        comparison.append({
            "placement": placement,
            "topology": COMPARE_TOPOLOGY,
            "jobs": compare_jobs,
            "day_s": compare_day,
            "mean_p95_slowdown": sum(
                cell["p95_slowdown"] for cell in per_seed
            ) / len(per_seed),
            "per_seed": per_seed,
            "deterministic": deterministic,
            "wall_s": wall,
        })

    # -- fast vs grid across the (topology, placement) grid -------------
    gates = []
    for topology in GATE_TOPOLOGIES:
        for placement in GATE_PLACEMENTS:
            fast_report = _service_day(
                testbed=testbed, tariff=tariff, requests=requests,
                topology=topology, placement=placement,
            )
            grid_report = _service_day(
                testbed=testbed, tariff=tariff, requests=requests,
                fast=False, topology=topology, placement=placement,
            )
            gates.append({
                "topology": topology,
                "placement": placement,
                "times_bitequal": all(
                    a.admitted_at == b.admitted_at
                    and a.completed_at == b.completed_at
                    for a, b in zip(fast_report.jobs, grid_report.jobs)
                ),
                "rel_err_cost": _rel_err(
                    fast_report.total_cost_usd, grid_report.total_cost_usd
                ),
                "rel_err_energy": _rel_err(
                    fast_report.total_energy_j, grid_report.total_energy_j
                ),
                "rel_err_makespan": _rel_err(
                    fast_report.makespan_s, grid_report.makespan_s
                ),
            })

    # -- single-link anchor: byte-identical to the classic path ---------
    anchor = {}
    for fast in (True, False):
        plain = _report_dict(_service_day(
            testbed=testbed, tariff=tariff, requests=requests, fast=fast,
        ))
        routed = _report_dict(_service_day(
            testbed=testbed, tariff=tariff, requests=requests, fast=fast,
            topology="single-link",
        ))
        # The topology labels themselves are the only legitimate delta.
        for payload in (plain, routed):
            payload.pop("topology", None)
            payload.pop("placement", None)
        anchor["fast" if fast else "grid"] = json.dumps(
            plain, sort_keys=True
        ) == json.dumps(routed, sort_keys=True)

    return {
        "benchmark": "topo",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "testbed": "xsede",
        "jobs": jobs,
        "day_s": day_s,
        "seed": seed,
        "rel_err_budget": REL_ERR_BUDGET,
        "allocator": allocator,
        "fleet_day": fleet_day,
        "placement_comparison": comparison,
        "fast_vs_grid": gates,
        "single_link_byte_identical": anchor,
    }


def check_benchmark(report: dict) -> list[str]:
    """CI gate: placement ordering, determinism, fast-vs-grid, anchor."""
    failures = []
    p95 = {
        cell["placement"]: cell["mean_p95_slowdown"]
        for cell in report["placement_comparison"]
    }
    if p95["least-congested"] >= p95["random-k"]:
        failures.append(
            "least-congested did not beat random-k on p95 slowdown: "
            f"{p95['least-congested']:.3f} >= {p95['random-k']:.3f}"
        )
    for cell in report["placement_comparison"]:
        if not cell["deterministic"]:
            failures.append(
                f"{cell['placement']}: same-seed rerun was not "
                "byte-identical"
            )
    for gate in report["fast_vs_grid"]:
        tag = f"{gate['topology']}/{gate['placement']}"
        if not gate["times_bitequal"]:
            failures.append(f"{tag}: fast-vs-grid job timestamps diverged")
        for key in ("rel_err_cost", "rel_err_energy", "rel_err_makespan"):
            if gate[key] > report["rel_err_budget"]:
                failures.append(
                    f"{tag}: {key} {gate[key]:.3e} above the "
                    f"{report['rel_err_budget']:.0e} budget"
                )
    for driver, identical in report["single_link_byte_identical"].items():
        if not identical:
            failures.append(
                f"single-link topology diverged from the classic "
                f"point-to-point run ({driver} driver)"
            )
    fleet_day = report["fleet_day"]
    if fleet_day["speedup"] < FLEET_SPEEDUP_GATE:
        failures.append(
            f"sharded fleet day speedup {fleet_day['speedup']:.1f}x below "
            f"the {FLEET_SPEEDUP_GATE:.0f}x gate "
            f"({fleet_day['unsharded_wall_s']:.1f}s unsharded vs "
            f"{fleet_day['fleet_wall_s']:.1f}s sharded)"
        )
    if not fleet_day["times_bitequal"]:
        failures.append(
            "fleet day: fast-vs-grid job timestamps diverged"
        )
    for key in ("rel_err_energy", "rel_err_cost"):
        if fleet_day[key] > report["rel_err_budget"]:
            failures.append(
                f"fleet day: {key} {fleet_day[key]:.3e} above the "
                f"{report['rel_err_budget']:.0e} budget"
            )
    if fleet_day["repeat_hit_rate"] <= CACHE_HIT_RATE_GATE:
        failures.append(
            f"repeat fleet day LRU hit rate "
            f"{fleet_day['repeat_hit_rate']:.3f} at or below the "
            f"{CACHE_HIT_RATE_GATE} gate"
        )
    if not fleet_day["tenk"]["completed"]:
        failures.append("10k-job sharded day did not complete every job")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI mode: fewer jobs, shorter day, "
                             "lighter fleet-day contention")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed")
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: exit non-zero unless least-congested beats "
             "random-k, every cell is deterministic, fast-vs-grid "
             "errors stay below 1e-9, single-link is byte-identical, "
             "the sharded fleet day is >= 10x faster than unsharded "
             "with a > 0.9 repeat-day LRU hit rate, and the 10k-job "
             "day completes",
    )
    parser.add_argument(
        "-o", "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_topo.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke, seed=args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"topo benchmark ({report['mode']}) -> {args.output}")
    for row in report["allocator"]:
        print(f"  allocator {row['flows']:>5d} flows: "
              f"{row['allocations_per_sec']:>8.0f} cold alloc/s, "
              f"{row['cached_allocations_per_sec']:>9.0f} cached/s "
              f"({row['cached_speedup']:.0f}x), "
              f"{row['refill_allocations_per_sec']:>7.0f} refill/s")
    fd = report["fleet_day"]
    print(f"  fleet day {fd['jobs']} jobs on {fd['topology']}: "
          f"unsharded {fd['unsharded_wall_s']:.1f}s, "
          f"{fd['shards']} shards {fd['fleet_wall_s']:.1f}s "
          f"({fd['speedup']:.1f}x), grid ref {fd['grid_wall_s']:.1f}s, "
          f"times {'bit-equal' if fd['times_bitequal'] else 'DIVERGED'}, "
          f"worst rel-err "
          f"{max(fd['rel_err_energy'], fd['rel_err_cost']):.1e}")
    print(f"  fleet repeat-day LRU hit rate {fd['repeat_hit_rate']:.3f}; "
          f"10k-job day "
          f"{'completed' if fd['tenk']['completed'] else 'INCOMPLETE'} "
          f"in {fd['tenk']['wall_s']:.1f}s")
    for cell in report["placement_comparison"]:
        det = "ok" if cell["deterministic"] else "DIVERGED"
        seeds = ", ".join(
            f"{row['p95_slowdown']:.2f}" for row in cell["per_seed"]
        )
        print(f"  {cell['placement']:<16s} mean p95 slowdown "
              f"{cell['mean_p95_slowdown']:>6.2f} (seeds: {seeds})  "
              f"det {det}")
    for gate in report["fast_vs_grid"]:
        worst = max(gate["rel_err_cost"], gate["rel_err_energy"],
                    gate["rel_err_makespan"])
        bits = "bit-equal" if gate["times_bitequal"] else "DIVERGED"
        print(f"  fast-vs-grid {gate['topology']:<28s} "
              f"{gate['placement']:<16s} times {bits}, "
              f"worst rel-err {worst:.1e}")
    for driver, identical in report["single_link_byte_identical"].items():
        print(f"  single-link anchor ({driver}): "
              f"{'byte-identical' if identical else 'DIVERGED'}")
    if args.check:
        failures = check_benchmark(report)
        if failures:
            for failure in failures:
                print(f"  CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("  checks passed: placement ordering, determinism, "
              "fast-vs-grid within 1e-9, single-link anchor, "
              ">=10x sharded fleet day, repeat-day hit rate > 0.9, "
              "10k-job completion")
    return 0


if __name__ == "__main__":
    sys.exit(main())
