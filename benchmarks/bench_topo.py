"""Topology subsystem benchmark: allocator throughput + placement gates.

Exercises ``repro.topo`` end to end and writes ``BENCH_topo.json``:

* **allocator throughput** — water-fill allocation rounds/sec at
  64/256/1024 flows on a k=4 fat-tree (the hot loop of every
  topology-backed simulation step);
* **placement-policy comparison** — one congested leaf-spine service
  day per policy; the informed ``least-congested`` policy must beat
  the load-blind ``random-k`` sampler on p95 slowdown;
* **fast vs grid** — topology-backed event-horizon runs must match the
  reference dt-grid loop (bit-equal job timestamps, cost/energy
  relative error at or below 1e-9) across two topologies and two
  placement policies;
* **single-link anchor** — a ``single-link`` topology must reproduce
  the classic point-to-point run byte-identically;
* **determinism** — every topology-backed cell re-run with the same
  seed must produce a byte-identical report.

``--check`` turns all five gates into a CI failure.

Usage::

    PYTHONPATH=src python benchmarks/bench_topo.py            # full
    PYTHONPATH=src python benchmarks/bench_topo.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_topo.py --smoke --check

Not a pytest file on purpose: it is a standalone script so CI can run
it in smoke mode and upload the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.chaos import strip_wall
from repro.service import (
    ServiceSimulator,
    policy_by_name,
    tariff_by_name,
    workload_by_name,
)
from repro.testbeds.specs import testbed_by_name
from repro.topo import FlowDemand, Placer, allocate, build_topology

#: Flow counts for the allocator-throughput sweep.
FLOW_COUNTS = (64, 256, 1024)

#: (topology, placement) grid for the fast-vs-grid gate.
GATE_TOPOLOGIES = ("leaf-spine:s=2,l=4,spine=0.4", "fat-tree:k=4,core=0.3")
GATE_PLACEMENTS = ("least-congested", "ecmp-hash")

#: Congested fabric for the placement-policy comparison: two thin
#: spines force real route choices. Jobs are deliberately large
#: relative to the day (``size_scale=0.3``) so arrivals genuinely
#: overlap — a day of short, serial jobs ties every policy. p95 of a
#: small day is one order statistic, so the comparison averages over
#: three workload seeds.
COMPARE_TOPOLOGY = "leaf-spine:s=2,l=2,spine=0.35"
COMPARE_PLACEMENTS = ("least-congested", "ecmp-hash", "random-k")
COMPARE_SEEDS = (5, 7, 11)
COMPARE_SIZE_SCALE = 0.3

#: Relative-error budget for fast-vs-grid scalar aggregates (same
#: contract as the service/chaos benches: bit-equal times, float
#: accumulation-order equality on energy/cost).
REL_ERR_BUDGET = 1e-9


def _rel_err(a: float, b: float) -> float:
    return abs(a - b) / max(abs(b), 1e-12)


def _bench_allocator(flows: int) -> dict:
    """Time repeated water-fills of ``flows`` full-rate demands on a
    k=4 fat-tree (placements fixed by ecmp round-robin)."""
    bandwidth = testbed_by_name("xsede").path.bandwidth
    topology = build_topology("fat-tree:k=4", bandwidth=bandwidth)
    placer = Placer(topology, "ecmp-hash")
    demands = [
        FlowDemand(f"flow-{i:04d}",
                   placer.place(f"flow-{i:04d}").bottlenecks, bandwidth)
        for i in range(flows)
    ]
    # Warm-up, then time enough repeats for a stable rate.
    result = allocate(topology, demands)
    repeats = max(3, 2048 // flows)
    start = time.perf_counter()
    for _ in range(repeats):
        result = allocate(topology, demands)
    wall = time.perf_counter() - start
    return {
        "flows": flows,
        "rounds_per_allocation": result.rounds,
        "allocations_per_sec": repeats / wall,
        "rounds_per_sec": repeats * result.rounds / wall,
        "wall_s": wall,
    }


def _service_day(*, testbed, tariff, requests, fast=True, topology=None,
                 placement="least-congested", max_concurrent=8):
    simulator = ServiceSimulator(
        testbed, policy=policy_by_name("run-now"), tariff=tariff,
        max_concurrent_jobs=max_concurrent, max_channels=4, fast=fast,
        topology=topology, placement=placement,
    )
    return simulator.run(requests)


def _report_dict(report) -> dict:
    return strip_wall(report.to_dict())


def run_benchmark(*, smoke: bool = False, seed: int = 7) -> dict:
    testbed = testbed_by_name("xsede")
    jobs, day_s = (16, 1200.0) if smoke else (48, 3600.0)
    tariff = tariff_by_name("peak-offpeak", period_s=day_s)
    requests = workload_by_name(
        "steady", jobs, day_s=day_s, seed=seed, size_scale=day_s / 86400.0,
    )

    allocator = [
        _bench_allocator(flows)
        for flows in (FLOW_COUNTS[:1] if smoke else FLOW_COUNTS)
    ]

    # -- placement-policy comparison (congested fabric) -----------------
    compare_jobs, compare_day = (12, 600.0) if smoke else (24, 1200.0)
    compare_tariff = tariff_by_name("peak-offpeak", period_s=compare_day)
    comparison = []
    for placement in COMPARE_PLACEMENTS:
        per_seed = []
        deterministic = True
        start = time.perf_counter()
        for compare_seed in COMPARE_SEEDS:
            contended = workload_by_name(
                "bursty", compare_jobs, day_s=compare_day,
                seed=compare_seed, size_scale=COMPARE_SIZE_SCALE,
            )
            report = _service_day(
                testbed=testbed, tariff=compare_tariff, requests=contended,
                topology=COMPARE_TOPOLOGY, placement=placement,
                max_concurrent=6,
            )
            rerun = _service_day(
                testbed=testbed, tariff=compare_tariff, requests=contended,
                topology=COMPARE_TOPOLOGY, placement=placement,
                max_concurrent=6,
            )
            deterministic = deterministic and json.dumps(
                _report_dict(report), sort_keys=True
            ) == json.dumps(_report_dict(rerun), sort_keys=True)
            per_seed.append({
                "seed": compare_seed,
                "p95_slowdown": report.p95_slowdown,
                "makespan_s": report.makespan_s,
                "kwh": report.total_energy_j / 3.6e6,
                "cost_usd": report.total_cost_usd,
            })
        wall = time.perf_counter() - start
        comparison.append({
            "placement": placement,
            "topology": COMPARE_TOPOLOGY,
            "jobs": compare_jobs,
            "day_s": compare_day,
            "mean_p95_slowdown": sum(
                cell["p95_slowdown"] for cell in per_seed
            ) / len(per_seed),
            "per_seed": per_seed,
            "deterministic": deterministic,
            "wall_s": wall,
        })

    # -- fast vs grid across the (topology, placement) grid -------------
    gates = []
    for topology in GATE_TOPOLOGIES:
        for placement in GATE_PLACEMENTS:
            fast_report = _service_day(
                testbed=testbed, tariff=tariff, requests=requests,
                topology=topology, placement=placement,
            )
            grid_report = _service_day(
                testbed=testbed, tariff=tariff, requests=requests,
                fast=False, topology=topology, placement=placement,
            )
            gates.append({
                "topology": topology,
                "placement": placement,
                "times_bitequal": all(
                    a.admitted_at == b.admitted_at
                    and a.completed_at == b.completed_at
                    for a, b in zip(fast_report.jobs, grid_report.jobs)
                ),
                "rel_err_cost": _rel_err(
                    fast_report.total_cost_usd, grid_report.total_cost_usd
                ),
                "rel_err_energy": _rel_err(
                    fast_report.total_energy_j, grid_report.total_energy_j
                ),
                "rel_err_makespan": _rel_err(
                    fast_report.makespan_s, grid_report.makespan_s
                ),
            })

    # -- single-link anchor: byte-identical to the classic path ---------
    anchor = {}
    for fast in (True, False):
        plain = _report_dict(_service_day(
            testbed=testbed, tariff=tariff, requests=requests, fast=fast,
        ))
        routed = _report_dict(_service_day(
            testbed=testbed, tariff=tariff, requests=requests, fast=fast,
            topology="single-link",
        ))
        # The topology labels themselves are the only legitimate delta.
        for payload in (plain, routed):
            payload.pop("topology", None)
            payload.pop("placement", None)
        anchor["fast" if fast else "grid"] = json.dumps(
            plain, sort_keys=True
        ) == json.dumps(routed, sort_keys=True)

    return {
        "benchmark": "topo",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "mode": "smoke" if smoke else "full",
        "testbed": "xsede",
        "jobs": jobs,
        "day_s": day_s,
        "seed": seed,
        "rel_err_budget": REL_ERR_BUDGET,
        "allocator": allocator,
        "placement_comparison": comparison,
        "fast_vs_grid": gates,
        "single_link_byte_identical": anchor,
    }


def check_benchmark(report: dict) -> list[str]:
    """CI gate: placement ordering, determinism, fast-vs-grid, anchor."""
    failures = []
    p95 = {
        cell["placement"]: cell["mean_p95_slowdown"]
        for cell in report["placement_comparison"]
    }
    if p95["least-congested"] >= p95["random-k"]:
        failures.append(
            "least-congested did not beat random-k on p95 slowdown: "
            f"{p95['least-congested']:.3f} >= {p95['random-k']:.3f}"
        )
    for cell in report["placement_comparison"]:
        if not cell["deterministic"]:
            failures.append(
                f"{cell['placement']}: same-seed rerun was not "
                "byte-identical"
            )
    for gate in report["fast_vs_grid"]:
        tag = f"{gate['topology']}/{gate['placement']}"
        if not gate["times_bitequal"]:
            failures.append(f"{tag}: fast-vs-grid job timestamps diverged")
        for key in ("rel_err_cost", "rel_err_energy", "rel_err_makespan"):
            if gate[key] > report["rel_err_budget"]:
                failures.append(
                    f"{tag}: {key} {gate[key]:.3e} above the "
                    f"{report['rel_err_budget']:.0e} budget"
                )
    for driver, identical in report["single_link_byte_identical"].items():
        if not identical:
            failures.append(
                f"single-link topology diverged from the classic "
                f"point-to-point run ({driver} driver)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI mode: fewer jobs, shorter day, "
                             "64-flow allocator sweep only")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed")
    parser.add_argument(
        "--check", action="store_true",
        help="CI gate: exit non-zero unless least-congested beats "
             "random-k, every cell is deterministic, fast-vs-grid "
             "errors stay below 1e-9, and single-link is byte-identical",
    )
    parser.add_argument(
        "-o", "--output", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_topo.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke, seed=args.seed)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"topo benchmark ({report['mode']}) -> {args.output}")
    for row in report["allocator"]:
        print(f"  allocator {row['flows']:>5d} flows: "
              f"{row['allocations_per_sec']:>8.0f} alloc/s "
              f"({row['rounds_per_sec']:.0f} rounds/s, "
              f"{row['rounds_per_allocation']} rounds each)")
    for cell in report["placement_comparison"]:
        det = "ok" if cell["deterministic"] else "DIVERGED"
        seeds = ", ".join(
            f"{row['p95_slowdown']:.2f}" for row in cell["per_seed"]
        )
        print(f"  {cell['placement']:<16s} mean p95 slowdown "
              f"{cell['mean_p95_slowdown']:>6.2f} (seeds: {seeds})  "
              f"det {det}")
    for gate in report["fast_vs_grid"]:
        worst = max(gate["rel_err_cost"], gate["rel_err_energy"],
                    gate["rel_err_makespan"])
        bits = "bit-equal" if gate["times_bitequal"] else "DIVERGED"
        print(f"  fast-vs-grid {gate['topology']:<28s} "
              f"{gate['placement']:<16s} times {bits}, "
              f"worst rel-err {worst:.1e}")
    for driver, identical in report["single_link_byte_identical"].items():
        print(f"  single-link anchor ({driver}): "
              f"{'byte-identical' if identical else 'DIVERGED'}")
    if args.check:
        failures = check_benchmark(report)
        if failures:
            for failure in failures:
                print(f"  CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("  checks passed: placement ordering, determinism, "
              "fast-vs-grid within 1e-9, single-link anchor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
