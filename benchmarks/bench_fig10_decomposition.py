"""Figure 10 — power consumption of end-systems vs network devices:
the load-dependent energy split of an HTEE transfer on each testbed."""

from conftest import emit, run_once

from repro.harness.figures import render_decomposition
from repro.harness.sweeps import energy_decomposition
from repro.testbeds import DIDCLAB, FUTUREGRID, XSEDE


def test_fig10_end_system_vs_network(benchmark):
    records = run_once(
        benchmark,
        lambda: [energy_decomposition(tb) for tb in (XSEDE, FUTUREGRID, DIDCLAB)],
    )
    text = render_decomposition(records)
    emit("fig10_decomposition", text)

    by_name = {r.testbed: r for r in records}
    # end-systems dominate everywhere (paper: 21 vs 2.2 kJ on XSEDE etc.)
    for rec in records:
        assert rec.end_system_joules > 4 * rec.network_joules
    # the metro-router-heavy FutureGrid path has the largest network share
    assert (
        by_name["FutureGrid"].network_share_pct
        > by_name["XSEDE"].network_share_pct
        > by_name["DIDCLAB"].network_share_pct
    )
