"""Engine-speed microbenchmark: event-horizon fast path vs fixed-dt.

Runs a set of Figure-2 XSEDE cells (algorithm x concurrency on the
Stampede-Gordon testbed) twice — once with the engine's event-horizon
fast path (the default) and once forced onto the pure fixed-``dt``
stepper — and writes ``BENCH_engine.json`` with wall-clock per cell,
the fast/fixed speedup, equivalent simulation steps per second, and
the maximum relative error between the two modes. The JSON is tracked
across PRs so the perf trajectory stays visible.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speed.py            # full
    PYTHONPATH=src python benchmarks/bench_engine_speed.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_engine_speed.py -o out.json

Not a pytest file on purpose: it is a standalone script so CI can run
it in smoke mode and upload the JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.scheduler import engine_options
from repro.harness.runner import dataset_for, run_algorithm
from repro.testbeds.specs import XSEDE

#: The benchmarked Figure-2 cells. The first entry is the headline
#: "fig-2 XSEDE cell" reported at the top level of the JSON.
CELLS: tuple[tuple[str, int], ...] = (
    ("GUC", 1),
    ("GO", 2),
    ("SC", 4),
    ("ProMC", 4),
    ("MinE", 4),
)

SMOKE_CELLS: tuple[tuple[str, int], ...] = (("GUC", 1), ("GO", 2))


def _time_cell(algorithm: str, level: int, dataset, *, repeats: int, fast: bool):
    """Best-of-``repeats`` wall-clock and the final outcome."""
    best = float("inf")
    outcome = None
    with engine_options(fast_path=fast):
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = run_algorithm(XSEDE, algorithm, level, dataset)
            best = min(best, time.perf_counter() - start)
    return best, outcome


def run_benchmark(*, smoke: bool = False, repeats: int = 3) -> dict:
    cells = SMOKE_CELLS if smoke else CELLS
    repeats = 1 if smoke else repeats
    dataset = dataset_for(XSEDE)
    dt = XSEDE.engine_dt

    results = []
    total_fast = 0.0
    total_fixed = 0.0
    for algorithm, level in cells:
        # warm every process-level cache (TCP model, allocation memo)
        _time_cell(algorithm, level, dataset, repeats=1, fast=True)
        fast_s, fast_out = _time_cell(algorithm, level, dataset, repeats=repeats, fast=True)
        fixed_s, fixed_out = _time_cell(algorithm, level, dataset, repeats=repeats, fast=False)
        sim_steps = fixed_out.duration_s / dt
        rel = lambda a, b: abs(a - b) / max(abs(b), 1e-12)
        results.append(
            {
                "algorithm": algorithm,
                "max_channels": level,
                "fast_wall_s": fast_s,
                "fixed_wall_s": fixed_s,
                "speedup": fixed_s / fast_s,
                "sim_duration_s": fixed_out.duration_s,
                "sim_steps": sim_steps,
                "fixed_steps_per_sec": sim_steps / fixed_s,
                "fast_steps_per_sec": sim_steps / fast_s,
                "rel_err_bytes": rel(fast_out.bytes_moved, fixed_out.bytes_moved),
                "rel_err_energy": rel(fast_out.energy_joules, fixed_out.energy_joules),
                "rel_err_duration": rel(fast_out.duration_s, fixed_out.duration_s),
            }
        )
        total_fast += fast_s
        total_fixed += fixed_s

    headline = results[0]
    report = {
        "benchmark": "engine_speed",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": smoke,
        "testbed": XSEDE.name,
        "dt": dt,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "cells": results,
        "fig2_xsede_cell": {
            "algorithm": headline["algorithm"],
            "max_channels": headline["max_channels"],
            "speedup": headline["speedup"],
        },
        "fig2_xsede_aggregate_speedup": total_fixed / total_fast,
        "max_rel_err_bytes": max(r["rel_err_bytes"] for r in results),
        "max_rel_err_energy": max(r["rel_err_energy"] for r in results),
        "max_rel_err_duration": max(r["rel_err_duration"] for r in results),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-horizon CI mode: fewer cells, one repeat",
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_engine.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    report = run_benchmark(smoke=args.smoke, repeats=args.repeats)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"engine-speed benchmark ({'smoke' if args.smoke else 'full'}) -> {args.output}")
    for cell in report["cells"]:
        print(
            f"  {cell['algorithm']:>6s}@cc={cell['max_channels']:<2d} "
            f"fast {cell['fast_wall_s']*1e3:7.1f} ms  fixed {cell['fixed_wall_s']*1e3:7.1f} ms  "
            f"speedup {cell['speedup']:5.1f}x  "
            f"err(bytes {cell['rel_err_bytes']:.1e}, energy {cell['rel_err_energy']:.1e})"
        )
    print(
        f"  headline fig-2 cell {report['fig2_xsede_cell']['algorithm']}"
        f"@cc={report['fig2_xsede_cell']['max_channels']}: "
        f"{report['fig2_xsede_cell']['speedup']:.1f}x; "
        f"aggregate {report['fig2_xsede_aggregate_speedup']:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
