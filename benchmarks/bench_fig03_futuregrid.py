"""Figure 3 — data transfers between Alamo (TACC) and Hotel (UChicago)
@FutureGrid: throughput, energy, efficiency across concurrency, plus
the brute-force reference."""

import pytest
from conftest import emit, run_once

from repro.harness.figures import (
    render_concurrency_charts,
    render_concurrency_figure,
    render_efficiency_panel,
)
from repro.harness.sweeps import brute_force_sweep, concurrency_sweep
from repro.testbeds import FUTUREGRID


@pytest.fixture(scope="module")
def sweep():
    return concurrency_sweep(FUTUREGRID)


def test_fig03ab_throughput_and_energy(benchmark, sweep):
    text = run_once(benchmark, lambda: render_concurrency_figure(sweep))
    text += "\n\n" + render_concurrency_charts(sweep)
    emit("fig03ab_futuregrid", text)
    # GUC is the untuned floor; ProMC approaches the 1 Gbps link
    assert max(sweep.throughputs_mbps("GUC")) <= min(
        max(sweep.throughputs_mbps(a)) for a in ("SC", "MinE", "ProMC", "HTEE")
    )
    assert 650 < max(sweep.throughputs_mbps("ProMC")) < 950


def test_fig03c_efficiency_vs_brute_force(benchmark, sweep):
    bf = run_once(benchmark, lambda: brute_force_sweep(FUTUREGRID))
    text = render_efficiency_panel(sweep, bf)
    emit("fig03c_futuregrid_efficiency", text)
    best_bf = max(o.efficiency for o in bf)
    assert sweep.best_efficiency("HTEE") >= 0.80 * best_bf
