"""Sensitivity of the headline results to the synthetic dataset draw.

The paper's dataset histogram is unpublished, so our generators draw a
seeded mix with the published totals and ranges. A reproduction is only
trustworthy if its conclusions do not hinge on that draw: this bench
re-runs the key XSEDE comparison across five dataset seeds and asserts
the orderings hold for every one of them."""

from conftest import emit, run_once

from repro import units
from repro.core.baselines import ProMCAlgorithm, SingleChunkAlgorithm
from repro.core.htee import HTEEAlgorithm
from repro.core.mine import MinEAlgorithm
from repro.datasets.generators import paper_dataset_10g
from repro.testbeds import XSEDE

SEEDS = (7, 21, 42, 77, 1234)


def test_headline_orderings_robust_to_dataset_seed(benchmark):
    def sweep():
        rows = []
        for seed in SEEDS:
            dataset = paper_dataset_10g(seed=seed)
            mine = MinEAlgorithm().run(XSEDE, dataset, 12)
            promc = ProMCAlgorithm().run(XSEDE, dataset, 12)
            sc = SingleChunkAlgorithm().run(XSEDE, dataset, 12)
            htee = HTEEAlgorithm().run(XSEDE, dataset, 12)
            rows.append((seed, mine, sc, promc, htee))
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        f"{'seed':>6s} {'MinE':>12s} {'SC':>12s} {'ProMC':>12s} {'HTEE':>12s}  (Mbps / kJ)"
    ]
    for seed, mine, sc, promc, htee in rows:
        lines.append(
            f"{seed:>6d} "
            + " ".join(
                f"{o.throughput_mbps:5.0f}/{units.kilojoules(o.energy_joules):4.1f}"
                for o in (mine, sc, promc, htee)
            )
        )
    emit("robustness_seeds", "\n".join(lines))

    for seed, mine, sc, promc, htee in rows:
        # ProMC fastest; MinE cheapest; HTEE saves energy vs ProMC;
        # MinE within 25% of SC throughput — for EVERY seed
        assert promc.throughput >= max(o.throughput for o in (mine, sc, htee)) * 0.99, seed
        assert mine.energy_joules <= min(o.energy_joules for o in (sc, promc)) * 1.02, seed
        assert htee.energy_joules < 0.95 * promc.energy_joules, seed
        assert abs(mine.throughput - sc.throughput) / sc.throughput < 0.25, seed
