"""Figure 2 — data transfers between Stampede (TACC) and Gordon (SDSC)
@XSEDE: throughput, energy consumption, and energy efficiency across
concurrency levels 1-12, plus the brute-force efficiency reference
(cc = 1..20)."""

import pytest
from conftest import emit, run_once

from repro.harness.figures import (
    render_concurrency_charts,
    render_concurrency_figure,
    render_efficiency_panel,
)
from repro.harness.sweeps import brute_force_sweep, concurrency_sweep
from repro.testbeds import XSEDE


@pytest.fixture(scope="module")
def sweep():
    return concurrency_sweep(XSEDE)


def test_fig02ab_throughput_and_energy(benchmark, sweep):
    text = run_once(benchmark, lambda: render_concurrency_figure(sweep))
    text += "\n\n" + render_concurrency_charts(sweep)
    emit("fig02ab_xsede", text)
    # headline shapes: ProMC reaches ~7.5 Gbps; MinE's energy is lowest
    assert max(sweep.throughputs_mbps("ProMC")) > 6500
    idx12 = sweep.levels.index(12)
    mine = sweep.energies_joules("MinE")[idx12]
    assert mine <= min(
        sweep.energies_joules(a)[idx12] for a in ("GUC", "GO", "SC", "ProMC")
    )


def test_fig02c_efficiency_vs_brute_force(benchmark, sweep):
    bf = run_once(benchmark, lambda: brute_force_sweep(XSEDE))
    text = render_efficiency_panel(sweep, bf)
    emit("fig02c_xsede_efficiency", text)
    best_bf = max(o.efficiency for o in bf)
    # HTEE lands near the brute-force optimum (paper: ~95%)
    assert sweep.best_efficiency("HTEE") >= 0.85 * best_bf
    # MinE trails the best possible ratio (paper: ~70%)
    assert sweep.best_efficiency("MinE") < best_bf
