"""Comparison metrics used by the evaluation (Section 3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import TransferOutcome

__all__ = [
    "efficiency_ratio",
    "normalized_efficiencies",
    "deviation_ratio",
    "energy_saving_pct",
    "SlaRecord",
    "DecompositionRecord",
]


def efficiency_ratio(outcome: TransferOutcome) -> float:
    """The paper's throughput/energy ratio (Mbps per joule)."""
    return outcome.efficiency


def normalized_efficiencies(
    outcomes: dict[str, TransferOutcome], reference: float
) -> dict[str, float]:
    """Each algorithm's efficiency normalized by the brute-force best
    (Figures 2-4, panel c)."""
    if reference <= 0:
        raise ValueError("reference efficiency must be > 0")
    return {name: outcome.efficiency / reference for name, outcome in outcomes.items()}


def deviation_ratio(achieved: float, target: float) -> float:
    """SLA deviation percentage (Figures 5-7, panel c).

    Positive = overshoot (delivered more than promised), negative =
    SLA miss. ``(achieved - target) / target * 100``.
    """
    if target <= 0:
        raise ValueError("target must be > 0")
    return 100.0 * (achieved - target) / target


def energy_saving_pct(baseline_joules: float, candidate_joules: float) -> float:
    """Percent energy saved by ``candidate`` relative to ``baseline``."""
    if baseline_joules <= 0:
        raise ValueError("baseline_joules must be > 0")
    return 100.0 * (baseline_joules - candidate_joules) / baseline_joules


@dataclass(frozen=True)
class SlaRecord:
    """One row of the SLA figures (5-7): a target level and what
    SLAEE delivered against the ProMC maximum."""

    target_pct: float
    target_throughput: float
    achieved_throughput: float
    energy_joules: float
    reference_throughput: float
    reference_energy_joules: float
    final_concurrency: int

    @property
    def deviation_pct(self) -> float:
        return deviation_ratio(self.achieved_throughput, self.target_throughput)

    @property
    def energy_saving_vs_reference_pct(self) -> float:
        return energy_saving_pct(self.reference_energy_joules, self.energy_joules)


@dataclass(frozen=True)
class DecompositionRecord:
    """One bar pair of Figure 10: end-system vs network energy."""

    testbed: str
    end_system_joules: float
    network_joules: float

    @property
    def total_joules(self) -> float:
        return self.end_system_joules + self.network_joules

    @property
    def network_share_pct(self) -> float:
        if self.total_joules <= 0:
            return 0.0
        return 100.0 * self.network_joules / self.total_joules
