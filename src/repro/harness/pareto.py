"""Throughput-energy Pareto analysis.

The whole paper is a walk along the throughput/energy frontier: ProMC
sits at the high-throughput end, MinE at the low-energy end, HTEE hunts
the knee and SLAEE picks a point by contract. This module computes the
frontier over any set of runs — which (algorithm, concurrency)
configurations are undominated, which are strictly wasteful, and how
far each sits from the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.scheduler import TransferOutcome

__all__ = ["ParetoPoint", "pareto_frontier", "dominated_by", "render_frontier"]


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration in the throughput/energy plane."""

    outcome: TransferOutcome
    on_frontier: bool
    #: Fractional extra energy vs the cheapest frontier point with at
    #: least this throughput (0 for frontier members).
    energy_excess: float

    @property
    def label(self) -> str:
        return f"{self.outcome.algorithm}@{self.outcome.max_channels}"


def dominated_by(a: TransferOutcome, b: TransferOutcome) -> bool:
    """True if ``b`` dominates ``a``: at least as fast AND at most as
    expensive, strictly better in one dimension."""
    faster_or_equal = b.throughput >= a.throughput
    cheaper_or_equal = b.energy_joules <= a.energy_joules
    strictly_better = b.throughput > a.throughput or b.energy_joules < a.energy_joules
    return faster_or_equal and cheaper_or_equal and strictly_better


def pareto_frontier(outcomes: Sequence[TransferOutcome]) -> list[ParetoPoint]:
    """Classify every outcome; returns points sorted by throughput.

    ``energy_excess`` measures how wasteful a dominated point is: the
    fractional extra energy it spends compared to the cheapest
    undominated configuration that delivers at least its throughput.
    """
    if not outcomes:
        return []
    frontier = [
        o for o in outcomes if not any(dominated_by(o, other) for other in outcomes)
    ]
    points = []
    for outcome in sorted(outcomes, key=lambda o: o.throughput):
        on_frontier = outcome in frontier
        if on_frontier:
            excess = 0.0
        else:
            eligible = [f for f in frontier if f.throughput >= outcome.throughput]
            reference = min(
                (f.energy_joules for f in eligible),
                default=min(f.energy_joules for f in frontier),
            )
            excess = (
                outcome.energy_joules / reference - 1.0 if reference > 0 else 0.0
            )
        points.append(
            ParetoPoint(outcome=outcome, on_frontier=on_frontier, energy_excess=excess)
        )
    return points


def render_frontier(points: Sequence[ParetoPoint]) -> str:
    """A text table of the classification, fastest first."""
    lines = [
        f"{'config':>12s} {'Mbps':>8s} {'joules':>9s} {'frontier':>9s} {'waste':>7s}"
    ]
    for point in sorted(points, key=lambda p: -p.outcome.throughput):
        lines.append(
            f"{point.label:>12s} {point.outcome.throughput_mbps:8.0f} "
            f"{point.outcome.energy_joules:9.0f} "
            f"{'yes' if point.on_frontier else 'no':>9s} "
            f"{100 * point.energy_excess:+6.1f}%"
        )
    return "\n".join(lines)
