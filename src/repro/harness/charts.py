"""Plain-text line charts.

The benchmark harness renders every figure as tables; for quick visual
shape-checking in a terminal (is the parabola a parabola?) this module
draws multi-series ASCII line charts with no plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["line_chart"]

#: Series are marked with these glyphs, in order.
_MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    x_labels: Sequence[object] | None = None,
    height: int = 12,
    width: int = 60,
    y_format: str = "{:>10.0f}",
    title: str = "",
) -> str:
    """Render ``{name: values}`` as an ASCII chart.

    All series must share a length; x positions are spread evenly over
    ``width`` columns, values are scaled into ``height`` rows. Returns
    the chart with a y-axis, an x-axis line, optional x labels, and a
    legend mapping markers to series names.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (n,) = lengths
    if n < 1:
        raise ValueError("series must be non-empty")
    if height < 2 or width < n:
        raise ValueError("chart too small for the data")

    all_values = [v for values in series.values() for v in values]
    low, high = min(all_values), max(all_values)
    span = high - low if high > low else 1.0

    def row_of(value: float) -> int:
        return int(round((value - low) / span * (height - 1)))

    def col_of(index: int) -> int:
        if n == 1:
            return 0
        return int(round(index * (width - 1) / (n - 1)))

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, values) in zip(_MARKERS, series.items(), strict=False):
        for i, value in enumerate(values):
            r = height - 1 - row_of(value)
            c = col_of(i)
            grid[r][c] = marker if grid[r][c] == " " else "*"

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        value = high - r * span / (height - 1)
        lines.append(y_format.format(value) + " |" + "".join(row))
    lines.append(" " * 10 + " +" + "-" * width)
    if x_labels is not None:
        if len(x_labels) != n:
            raise ValueError("x_labels must match series length")
        label_row = [" "] * width
        for i, label in enumerate(x_labels):
            text = str(label)
            c = min(col_of(i), width - len(text))
            for j, ch in enumerate(text):
                if c + j < width:
                    label_row[c + j] = ch
        lines.append(" " * 12 + "".join(label_row))
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series, strict=False)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
