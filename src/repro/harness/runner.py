"""Experiment runner: one place that knows how to run every algorithm
on every testbed with the paper's datasets."""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.core.baselines import (
    GlobusOnlineAlgorithm,
    GucAlgorithm,
    ProMCAlgorithm,
    SingleChunkAlgorithm,
)
from repro.core.htee import BruteForceAlgorithm, HTEEAlgorithm
from repro.core.mine import MinEAlgorithm
from repro.core.scheduler import TransferOutcome
from repro.core.slaee import SLAEEAlgorithm
from repro.datasets.files import Dataset
from repro.testbeds.specs import Testbed

__all__ = ["ALGORITHMS", "CONCURRENCY_INDEPENDENT", "dataset_for", "run_algorithm", "run_slaee"]

#: The comparison set of Figures 2-4. GUC and GO ignore the concurrency
#: axis (flat reference lines in the paper).
ALGORITHMS = {
    "GUC": GucAlgorithm(),
    "GO": GlobusOnlineAlgorithm(),
    "SC": SingleChunkAlgorithm(),
    "MinE": MinEAlgorithm(),
    "ProMC": ProMCAlgorithm(),
    "HTEE": HTEEAlgorithm(),
}

CONCURRENCY_INDEPENDENT = frozenset({"GUC", "GO"})


@lru_cache(maxsize=8)
def _dataset_cache(testbed_name: str) -> Dataset:
    from repro.testbeds.specs import testbed_by_name

    return testbed_by_name(testbed_name).dataset()


def dataset_for(testbed: Testbed) -> Dataset:
    """The testbed's dataset (cached for the built-in testbeds —
    generation is seeded and deterministic either way).

    The cache is keyed by name but only consulted when ``testbed`` *is*
    the registered built-in instance: a custom/JSON testbed that reuses
    a built-in name ("xsede", ...) must get its own dataset, not the
    built-in one (cache poisoning).
    """
    from repro.testbeds.specs import testbed_by_name

    try:
        registered = testbed_by_name(testbed.name)
    except KeyError:
        registered = None
    if registered is not testbed:
        # custom (e.g. JSON-defined) testbed: build directly
        return testbed.dataset()
    return _dataset_cache(testbed.name)


def run_algorithm(
    testbed: Testbed,
    algorithm: str,
    max_channels: int,
    dataset: Optional[Dataset] = None,
) -> TransferOutcome:
    """Run one named algorithm at one concurrency level."""
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}")
    data = dataset if dataset is not None else dataset_for(testbed)
    return ALGORITHMS[algorithm].run(testbed, data, max_channels)


def run_brute_force(
    testbed: Testbed,
    concurrency: int,
    dataset: Optional[Dataset] = None,
) -> TransferOutcome:
    """Run the BF oracle at one fixed concurrency."""
    data = dataset if dataset is not None else dataset_for(testbed)
    return BruteForceAlgorithm().run(testbed, data, concurrency)


def run_slaee(
    testbed: Testbed,
    sla_level: float,
    max_throughput: float,
    max_channels: Optional[int] = None,
    dataset: Optional[Dataset] = None,
) -> TransferOutcome:
    """Run SLAEE against a target fraction of ``max_throughput``."""
    data = dataset if dataset is not None else dataset_for(testbed)
    channels = max_channels if max_channels is not None else testbed.brute_force_max_concurrency
    return SLAEEAlgorithm().run(
        testbed, data, channels, sla_level=sla_level, max_throughput=max_throughput
    )
