"""Append-only experiment store.

Long calibration or comparison campaigns want every run kept and
queryable. :class:`ResultStore` appends one JSON object per line to a
``.jsonl`` file (crash-safe: a torn final line is skipped on load) and
offers simple filtering/aggregation over the history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.core.scheduler import TransferOutcome
from repro.harness.reporting import outcome_from_dict, outcome_to_dict

__all__ = ["ResultStore"]


@dataclass
class ResultStore:
    """A JSONL-backed archive of :class:`TransferOutcome` records."""

    path: Path

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    # ------------------------------------------------------------------

    def append(self, outcome: TransferOutcome, **tags: object) -> None:
        """Append one outcome; ``tags`` (e.g. ``campaign="cal-v2"``) are
        stored alongside and usable in queries."""
        record = outcome_to_dict(outcome)
        record.pop("extra", None)  # traces/probes stay out of the archive
        if tags:
            record["tags"] = {str(k): v for k, v in tags.items()}
        with self.path.open("a") as handle:
            handle.write(json.dumps(record) + "\n")

    def append_many(self, outcomes, **tags: object) -> int:
        """Append several outcomes; returns how many were written."""
        count = 0
        for outcome in outcomes:
            self.append(outcome, **tags)
            count += 1
        return count

    # ------------------------------------------------------------------

    def _records(self) -> Iterator[dict]:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a crash

    def load(
        self,
        *,
        algorithm: Optional[str] = None,
        testbed: Optional[str] = None,
        where: Optional[Callable[[dict], bool]] = None,
    ) -> list[TransferOutcome]:
        """All stored outcomes matching the filters, in append order."""
        results = []
        for record in self._records():
            if algorithm is not None and record.get("algorithm") != algorithm:
                continue
            if testbed is not None and record.get("testbed") != testbed:
                continue
            if where is not None and not where(record):
                continue
            results.append(outcome_from_dict(record))
        return results

    def __len__(self) -> int:
        return sum(1 for _ in self._records())

    # ------------------------------------------------------------------

    def best(self, metric: str = "efficiency", **filters) -> Optional[TransferOutcome]:
        """The stored run maximizing ``metric`` (an outcome attribute)."""
        candidates = self.load(**filters)
        if not candidates:
            return None
        return max(candidates, key=lambda o: getattr(o, metric))

    def summary(self) -> str:
        """Counts per (testbed, algorithm) pair."""
        counts: dict[tuple[str, str], int] = {}
        for record in self._records():
            key = (record.get("testbed", "?"), record.get("algorithm", "?"))
            counts[key] = counts.get(key, 0) + 1
        if not counts:
            return "(empty store)"
        lines = [f"{len(self)} runs in {self.path}"]
        for (testbed, algorithm), n in sorted(counts.items()):
            lines.append(f"  {testbed:<12s} {algorithm:<8s} {n:4d}")
        return "\n".join(lines)
