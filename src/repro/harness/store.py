"""Append-only experiment store.

Long calibration or comparison campaigns want every run kept and
queryable. :class:`ResultStore` appends one JSON object per line to a
``.jsonl`` file (crash-safe: a torn final line is skipped on load) and
offers simple filtering/aggregation over the history.

Appends are **multi-process safe**: each record is written with a
single ``write(2)`` on an ``O_APPEND`` descriptor under an exclusive
``flock`` (where available) and fsync'd before the lock is released,
so concurrent campaign workers can stream results into one archive
without interleaving or losing lines.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterator
from typing import Optional

from repro.core.scheduler import TransferOutcome
from repro.harness.reporting import outcome_from_dict, outcome_to_dict

try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["ResultStore"]


@dataclass
class ResultStore:
    """A JSONL-backed archive of :class:`TransferOutcome` records."""

    path: Path

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    # ------------------------------------------------------------------

    def append(self, outcome: TransferOutcome, **tags: object) -> None:
        """Append one outcome; ``tags`` (e.g. ``campaign="cal-v2"``) are
        stored alongside and usable in queries.

        Safe under concurrent writers: one atomic ``O_APPEND`` write per
        record, serialized by an exclusive ``flock`` and fsync'd so a
        crashed process can lose at most its own in-flight record.
        """
        record = outcome_to_dict(outcome)
        record.pop("extra", None)  # traces/probes stay out of the archive
        if tags:
            record["tags"] = {str(k): v for k, v in tags.items()}
        data = (json.dumps(record) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                os.write(fd, data)
                os.fsync(fd)
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def append_many(self, outcomes, **tags: object) -> int:
        """Append several outcomes; returns how many were written."""
        count = 0
        for outcome in outcomes:
            self.append(outcome, **tags)
            count += 1
        return count

    # ------------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """Every stored record as a raw dict, in append order.

        Torn trailing lines (a writer crashed mid-record) are skipped.
        This is the public iteration surface — prefer it over opening
        the JSONL file directly.
        """
        if not self.path.exists():
            return
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a crash

    # Backwards-compatible alias (pre-1.x callers used the private name).
    def _records(self) -> Iterator[dict]:
        return self.records()

    def load(
        self,
        *,
        algorithm: Optional[str] = None,
        testbed: Optional[str] = None,
        where: Optional[Callable[[dict], bool]] = None,
    ) -> list[TransferOutcome]:
        """All stored outcomes matching the filters, in append order."""
        results = []
        for record in self.records():
            if algorithm is not None and record.get("algorithm") != algorithm:
                continue
            if testbed is not None and record.get("testbed") != testbed:
                continue
            if where is not None and not where(record):
                continue
            results.append(outcome_from_dict(record))
        return results

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # ------------------------------------------------------------------

    def metrics_summaries(self, campaign: Optional[str] = None) -> list[dict]:
        """Every archived per-cell ``metrics`` tag (observed campaign
        cells), optionally restricted to one campaign. Merge them with
        :func:`repro.obs.merge_summaries` for a whole-campaign view."""
        summaries = []
        for record in self.records():
            tags = record.get("tags", {})
            if campaign is not None and tags.get("campaign") != campaign:
                continue
            metrics = tags.get("metrics")
            if metrics is not None:
                summaries.append(metrics)
        return summaries

    def best(self, metric: str = "efficiency", **filters) -> Optional[TransferOutcome]:
        """The stored run maximizing ``metric`` (an outcome attribute)."""
        candidates = self.load(**filters)
        if not candidates:
            return None
        return max(candidates, key=lambda o: getattr(o, metric))

    def summary(self) -> str:
        """Counts per (testbed, algorithm) pair."""
        counts: dict[tuple[str, str], int] = {}
        for record in self.records():
            key = (record.get("testbed", "?"), record.get("algorithm", "?"))
            counts[key] = counts.get(key, 0) + 1
        if not counts:
            return "(empty store)"
        lines = [f"{len(self)} runs in {self.path}"]
        for (testbed, algorithm), n in sorted(counts.items()):
            lines.append(f"  {testbed:<12s} {algorithm:<8s} {n:4d}")
        return "\n".join(lines)
