"""Experiment harness: runners, sweeps, metrics and figure renderers."""

from repro.harness.metrics import (
    DecompositionRecord,
    SlaRecord,
    deviation_ratio,
    efficiency_ratio,
    energy_saving_pct,
    normalized_efficiencies,
)
from repro.harness.runner import (
    ALGORITHMS,
    CONCURRENCY_INDEPENDENT,
    dataset_for,
    run_algorithm,
    run_brute_force,
    run_slaee,
)
from repro.harness.campaign import Campaign, CampaignProgress
from repro.harness.charts import line_chart
from repro.harness.pareto import ParetoPoint, dominated_by, pareto_frontier, render_frontier
from repro.harness.report import generate_report, write_report
from repro.harness.reporting import (
    load_outcomes_json,
    load_trace_csv,
    outcome_from_dict,
    outcome_to_dict,
    render_trace,
    save_outcomes_json,
    save_trace_csv,
    sparkline,
)
from repro.harness.store import ResultStore
from repro.harness.sweeps import (
    PAPER_SLA_TARGETS,
    ConcurrencySweep,
    best_efficiency,
    brute_force_sweep,
    concurrency_sweep,
    energy_decomposition,
    sla_sweep,
)

__all__ = [
    "ALGORITHMS",
    "CONCURRENCY_INDEPENDENT",
    "Campaign",
    "CampaignProgress",
    "ParetoPoint",
    "dominated_by",
    "generate_report",
    "pareto_frontier",
    "render_frontier",
    "write_report",
    "ConcurrencySweep",
    "DecompositionRecord",
    "PAPER_SLA_TARGETS",
    "SlaRecord",
    "best_efficiency",
    "brute_force_sweep",
    "concurrency_sweep",
    "dataset_for",
    "deviation_ratio",
    "efficiency_ratio",
    "energy_decomposition",
    "energy_saving_pct",
    "normalized_efficiencies",
    "ResultStore",
    "line_chart",
    "load_outcomes_json",
    "load_trace_csv",
    "outcome_from_dict",
    "outcome_to_dict",
    "render_trace",
    "run_algorithm",
    "run_brute_force",
    "run_slaee",
    "save_outcomes_json",
    "save_trace_csv",
    "sla_sweep",
    "sparkline",
]
