"""Text renderings of every paper figure/table.

Each ``render_*`` function returns the figure's data as aligned text
(the same rows/series the paper plots), so the benchmark harness can
regenerate and print every figure without a display.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import units
from repro.core.scheduler import TransferOutcome
from repro.harness.metrics import DecompositionRecord, SlaRecord
from repro.harness.sweeps import ConcurrencySweep
from repro.netenergy.devices import TABLE1_DEVICES
from repro.netenergy.models import (
    LinearPowerModel,
    NonLinearPowerModel,
    StateBasedPowerModel,
)
from repro.netenergy.topology import NetworkTopology
from repro.testbeds.specs import ALL_TESTBEDS

__all__ = [
    "render_testbed_specs",
    "render_concurrency_charts",
    "render_concurrency_figure",
    "render_efficiency_panel",
    "render_sla_figure",
    "render_device_model_curves",
    "render_topologies",
    "render_decomposition",
    "render_table1",
]


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cols = [max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
            for i, h in enumerate(headers)]
    def fmt(row: Sequence[object]) -> str:
        return "  ".join(str(v).rjust(w) for v, w in zip(row, cols, strict=True))
    lines = [fmt(headers), fmt(["-" * w for w in cols])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_testbed_specs() -> str:
    """Figure 1: the testbed spec sheet."""
    rows = []
    for tb in ALL_TESTBEDS:
        rows.append(
            [
                tb.name,
                f"{tb.source.name}->{tb.destination.name}",
                f"{units.to_gbps(tb.path.bandwidth):.0f} Gbps",
                f"{units.to_ms(tb.path.rtt):.0f} ms",
                f"{units.to_MB(tb.path.tcp_buffer):.0f} MB",
                f"{units.to_MB(tb.path.bdp):.1f} MB",
                tb.source.server_count,
                tb.source.server.cores,
            ]
        )
    return _table(
        ["testbed", "route", "bandwidth", "RTT", "TCP buf", "BDP", "servers", "cores"], rows
    )


def render_concurrency_charts(sweep: ConcurrencySweep) -> str:
    """ASCII line-chart view of a concurrency sweep (panels a and b) —
    the quick visual check that the curves have the paper's shapes."""
    from repro.harness.charts import line_chart

    throughput = {a: sweep.throughputs_mbps(a) for a in sweep.series}
    energy = {a: sweep.energies_joules(a) for a in sweep.series}
    labels = list(sweep.levels)
    return (
        line_chart(
            throughput, x_labels=labels, height=10, width=56,
            title=f"[{sweep.testbed}] throughput (Mbps) vs concurrency",
        )
        + "\n\n"
        + line_chart(
            energy, x_labels=labels, height=10, width=56,
            title=f"[{sweep.testbed}] energy (J) vs concurrency",
        )
    )


def render_concurrency_figure(sweep: ConcurrencySweep) -> str:
    """Figures 2-4 panels (a) throughput and (b) energy."""
    algorithms = list(sweep.series)
    thr_rows = []
    en_rows = []
    for level_idx, level in enumerate(sweep.levels):
        thr_rows.append(
            [level] + [f"{sweep.series[a][level_idx].throughput_mbps:.0f}" for a in algorithms]
        )
        en_rows.append(
            [level] + [f"{sweep.series[a][level_idx].energy_joules:.0f}" for a in algorithms]
        )
    part_a = _table(["cc"] + [f"{a} Mbps" for a in algorithms], thr_rows)
    part_b = _table(["cc"] + [f"{a} J" for a in algorithms], en_rows)
    return (
        f"[{sweep.testbed}] (a) Throughput vs concurrency\n{part_a}\n\n"
        f"[{sweep.testbed}] (b) Energy vs concurrency\n{part_b}"
    )


def render_efficiency_panel(
    sweep: ConcurrencySweep, brute_force: Sequence[TransferOutcome]
) -> str:
    """Figures 2-4 panel (c): efficiencies normalized by the BF best."""
    reference = max(o.efficiency for o in brute_force)
    rows = [
        [a, f"{sweep.best_efficiency(a) / reference:.3f}"]
        for a in sweep.series
    ]
    bf_rows = [
        [o.max_channels, f"{o.efficiency / reference:.3f}"] for o in brute_force
    ]
    part1 = _table(["algorithm", "best eff / BF best"], rows)
    part2 = _table(["BF cc", "eff / best"], bf_rows)
    return (
        f"[{sweep.testbed}] (c) Normalized throughput/energy ratio\n{part1}\n\n"
        f"Brute-force sweep\n{part2}"
    )


def render_sla_figure(testbed_name: str, records: Sequence[SlaRecord]) -> str:
    """Figures 5-7: SLA throughput / energy / deviation panels."""
    rows = []
    for r in records:
        rows.append(
            [
                f"{r.target_pct:.0f}%",
                f"{units.to_mbps(r.target_throughput):.0f}",
                f"{units.to_mbps(r.achieved_throughput):.0f}",
                f"{units.to_mbps(r.reference_throughput):.0f}",
                f"{r.energy_joules:.0f}",
                f"{r.reference_energy_joules:.0f}",
                f"{r.deviation_pct:+.1f}%",
                f"{r.energy_saving_vs_reference_pct:+.1f}%",
                r.final_concurrency,
            ]
        )
    return f"[{testbed_name}] SLA transfers (target % of ProMC max)\n" + _table(
        [
            "target",
            "target Mbps",
            "achieved Mbps",
            "ProMC Mbps",
            "energy J",
            "ProMC J",
            "deviation",
            "energy saved",
            "cc",
        ],
        rows,
    )


def render_device_model_curves(points: int = 11) -> str:
    """Figure 8: dynamic power vs traffic rate under the three models."""
    nonlinear = NonLinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
    linear = LinearPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
    state = StateBasedPowerModel(idle_watts=0.0, max_dynamic_watts=100.0)
    rows = []
    for u in np.linspace(0.0, 1.0, points):
        rows.append(
            [
                f"{100 * u:.0f}%",
                f"{nonlinear.dynamic_power(float(u)):.1f}",
                f"{linear.dynamic_power(float(u)):.1f}",
                f"{state.dynamic_power(float(u)):.1f}",
            ]
        )
    return "Figure 8: dynamic power (% of max) vs traffic rate\n" + _table(
        ["rate", "non-linear", "linear", "state-based"], rows
    )


def render_topologies(topologies: Sequence[NetworkTopology]) -> str:
    """Figure 9: the device chain of each testbed."""
    return "\n".join(t.describe() for t in topologies)


def render_decomposition(records: Sequence[DecompositionRecord]) -> str:
    """Figure 10: end-system vs network energy shares."""
    rows = [
        [
            r.testbed,
            f"{units.kilojoules(r.end_system_joules):.1f} kJ",
            f"{units.kilojoules(r.network_joules):.2f} kJ",
            f"{r.network_share_pct:.1f}%",
        ]
        for r in records
    ]
    return "Figure 10: end-system vs network load-dependent energy\n" + _table(
        ["testbed", "end-system", "network", "network share"], rows
    )


def render_table1() -> str:
    """Table 1: per-packet power coefficients."""
    rows = [
        [d.name, f"{d.processing_nw:.0f}", f"{d.store_forward_pw:.2f}"]
        for d in TABLE1_DEVICES
    ]
    return "Table 1: per-packet coefficients\n" + _table(
        ["device", "P_p (nW)", "P_s-f (pW)"], rows
    )
