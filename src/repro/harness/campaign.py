"""Resumable experiment campaigns.

A campaign is a grid — testbeds x algorithms x concurrency levels —
run once, archived to a :class:`~repro.harness.store.ResultStore`, and
safely resumable: combinations already in the store are skipped, so an
interrupted overnight sweep continues where it stopped instead of
starting over.

Independent grid cells can be fanned out over worker processes with
``Campaign.run(workers=N)``: each worker simulates its cell and streams
the outcome straight into the (multi-process safe) store, so an
interrupted parallel run resumes exactly like a serial one — every
archived cell is skipped on the next call.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterator, Sequence
from typing import Optional

from repro.core.scheduler import (
    TransferOutcome,
    current_engine_options,
    current_observer,
    engine_options,
)
from repro.datasets.files import Dataset
from repro.harness.runner import ALGORITHMS, CONCURRENCY_INDEPENDENT, dataset_for, run_algorithm
from repro.harness.store import ResultStore
from repro.obs import Observer, merge_summaries
from repro.testbeds.specs import Testbed

__all__ = ["Campaign", "CampaignProgress"]


@dataclass(frozen=True)
class CampaignProgress:
    """A snapshot of how far a campaign has come."""

    total: int
    completed: int
    skipped: int

    @property
    def remaining(self) -> int:
        return self.total - self.completed

    @property
    def fraction_done(self) -> float:
        return self.completed / self.total if self.total else 1.0


@dataclass(frozen=True)
class _FixedDataset:
    """A picklable dataset factory closing over a concrete dataset.

    Built-in testbeds carry module-level factory functions (picklable),
    but ad-hoc testbeds frequently use lambdas, which cannot cross a
    process boundary. Before dispatching a cell to a worker the campaign
    swaps the factory for this wrapper around the already-materialized
    dataset — which also spares every worker from regenerating it.
    """

    dataset: Dataset

    def __call__(self) -> Dataset:
        return self.dataset


def _run_cell(
    testbed: Testbed,
    algorithm: str,
    level: int,
    store_path: str,
    campaign_name: str,
    options: Optional[dict] = None,
) -> tuple[TransferOutcome, Optional[dict]]:
    """Worker entry point: simulate one grid cell and archive it.

    Module-level so it pickles; appends directly to the store (safe
    under concurrency) so a completed cell survives even if the parent
    dies before collecting the future.

    ``options`` is the parent's :func:`current_engine_options` snapshot
    — module-global engine defaults do NOT cross the process boundary,
    so the worker re-applies them explicitly around the run (the fix
    for parallel cells silently ignoring ``with engine_options(...)``
    blocks). When the caller observed (``observe=True``), the worker
    builds a fresh process-local :class:`~repro.obs.Observer`, archives
    its metric summary as the record's ``metrics`` tag, and returns the
    summary for cross-worker merging; the worker's event stream stays
    local (it can be arbitrarily large).
    """
    options = dict(options or {})
    observe = options.pop("observe", False)
    observer = Observer() if observe else None
    with engine_options(**options, observe=observer):
        outcome = run_algorithm(testbed, algorithm, level, dataset_for(testbed))
    summary = observer.summary() if observer is not None else None
    tags: dict = {"campaign": campaign_name}
    if summary is not None:
        tags["metrics"] = summary
    ResultStore(Path(store_path)).append(outcome, **tags)
    return outcome, summary


@dataclass
class Campaign:
    """A named experiment grid with an on-disk archive.

    ``on_result`` (optional) is invoked after every fresh run — e.g.
    for progress logging.
    """

    name: str
    store_path: Path
    testbeds: Sequence[Testbed]
    algorithms: Sequence[str] = ("GUC", "GO", "SC", "MinE", "ProMC", "HTEE")
    levels: Optional[Sequence[int]] = None
    on_result: Optional[Callable[[TransferOutcome], None]] = None

    def __post_init__(self) -> None:
        if not self.testbeds:
            raise ValueError("need at least one testbed")
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ValueError(f"unknown algorithms: {unknown}")
        self.store = ResultStore(Path(self.store_path))
        #: Lazily-built index of archived (testbed, algorithm, level)
        #: keys; kept in sync on append so ``progress()``/``run()``
        #: never re-scan the whole store.
        self._done_index: Optional[set[tuple[str, str, int]]] = None
        #: Merged metric summary of the cells executed by the most
        #: recent ``run()`` call (``None`` unless observing — see
        #: ``engine_options(observe=...)``). Per-cell summaries are
        #: additionally archived as each record's ``metrics`` tag.
        self.last_metrics: Optional[dict] = None

    # ------------------------------------------------------------------

    def cells(self) -> Iterator[tuple[Testbed, str, int]]:
        """Every (testbed, algorithm, level) combination in the grid.

        Concurrency-independent algorithms contribute one cell per
        testbed (at level 1), matching how the paper treats them.
        """
        for testbed in self.testbeds:
            levels = tuple(self.levels) if self.levels is not None else testbed.concurrency_levels
            for algorithm in self.algorithms:
                if algorithm in CONCURRENCY_INDEPENDENT:
                    yield testbed, algorithm, 1
                else:
                    for level in levels:
                        yield testbed, algorithm, level

    def _done_keys(self) -> set[tuple[str, str, int]]:
        """The maintained done-key index (built once per instance from
        the store's public record iterator, then updated in place)."""
        if self._done_index is None:
            done: set[tuple[str, str, int]] = set()
            for record in self.store.records():
                tags = record.get("tags", {})
                if tags.get("campaign") != self.name:
                    continue
                done.add(
                    (record["testbed"], record["algorithm"], int(record["max_channels"]))
                )
            self._done_index = done
        return self._done_index

    def refresh_index(self) -> None:
        """Drop the done-key index so the next query re-reads the store
        (use after another process appended to the same archive)."""
        self._done_index = None

    def progress(self) -> CampaignProgress:
        """How much of the grid the archive already covers."""
        done = self._done_keys()
        cells = list(self.cells())
        completed = sum(
            1 for tb, alg, lvl in cells if (tb.name, alg, lvl) in done
        )
        return CampaignProgress(total=len(cells), completed=completed, skipped=completed)

    # ------------------------------------------------------------------

    def run(
        self,
        *,
        max_cells: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> CampaignProgress:
        """Run every not-yet-archived cell (up to ``max_cells``).

        With ``workers=N`` (N > 1) independent cells are dispatched to a
        :class:`~concurrent.futures.ProcessPoolExecutor`; each worker
        appends its outcome to the store itself, so interrupting a
        parallel run loses at most the in-flight cells and a re-run
        (serial or parallel) skips everything already archived.

        The caller's active :func:`engine_options` — ``fast_path``,
        ``background_traffic`` (must be picklable, e.g.
        :class:`~repro.netsim.engine.PiecewiseTraffic`),
        ``record_trace``, ``observe`` — are captured here and re-applied
        inside every worker, so a parallel run honors a surrounding
        ``with engine_options(...):`` block exactly like a serial one.
        When observing, each cell's metric summary is archived as a
        ``metrics`` tag and the cross-cell merge lands in
        ``self.last_metrics`` (also folded into the caller's observer).
        """
        if workers is not None and workers > 1:
            return self._run_parallel(workers=workers, max_cells=max_cells)
        done = self._done_keys()
        executed = 0
        skipped = 0
        options = current_engine_options()
        summaries: list[dict] = []
        cells = list(self.cells())
        for testbed, algorithm, level in cells:
            key = (testbed.name, algorithm, level)
            if key in done:
                skipped += 1
                continue
            if max_cells is not None and executed >= max_cells:
                break
            outcome, summary = _run_cell(
                testbed, algorithm, level, str(self.store.path), self.name, options
            )
            self._collect_summary(summary, summaries)
            done.add(key)
            executed += 1
            if self.on_result is not None:
                self.on_result(outcome)
        self.last_metrics = merge_summaries(summaries) if summaries else None
        completed = sum(1 for tb, alg, lvl in cells if (tb.name, alg, lvl) in done)
        return CampaignProgress(total=len(cells), completed=completed, skipped=skipped)

    @staticmethod
    def _collect_summary(summary: Optional[dict], summaries: list[dict]) -> None:
        """Gather one cell's metric summary and fold it into the
        caller's observer (if one is active)."""
        if summary is None:
            return
        summaries.append(summary)
        caller = current_observer()
        if caller is not None:
            caller.merge_summary(summary)

    def _run_parallel(self, *, workers: int, max_cells: Optional[int]) -> CampaignProgress:
        done = self._done_keys()
        cells = list(self.cells())
        pending: list[tuple[Testbed, str, int]] = []
        skipped = 0
        for testbed, algorithm, level in cells:
            if (testbed.name, algorithm, level) in done:
                skipped += 1
                continue
            if max_cells is not None and len(pending) >= max_cells:
                break
            pending.append((testbed, algorithm, level))
        options = current_engine_options()
        summaries: list[dict] = []
        if pending:
            # One picklable testbed per distinct spec: the dataset is
            # materialized once here and shipped to the workers.
            picklable: dict[int, Testbed] = {}
            for testbed, _, _ in pending:
                if id(testbed) not in picklable:
                    picklable[id(testbed)] = dataclasses.replace(
                        testbed, dataset_factory=_FixedDataset(dataset_for(testbed))
                    )
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        _run_cell,
                        picklable[id(testbed)],
                        algorithm,
                        level,
                        str(self.store.path),
                        self.name,
                        options,
                    ): (testbed.name, algorithm, level)
                    for testbed, algorithm, level in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    outcome, summary = future.result()  # re-raises worker errors
                    self._collect_summary(summary, summaries)
                    done.add(futures[future])
                    if self.on_result is not None:
                        self.on_result(outcome)
        self.last_metrics = merge_summaries(summaries) if summaries else None
        completed = sum(1 for tb, alg, lvl in cells if (tb.name, alg, lvl) in done)
        return CampaignProgress(total=len(cells), completed=completed, skipped=skipped)

    def results(self, **filters) -> list[TransferOutcome]:
        """Archived outcomes belonging to this campaign."""
        base = self.store.load(
            where=lambda r: r.get("tags", {}).get("campaign") == self.name
        )
        if filters.get("algorithm"):
            base = [o for o in base if o.algorithm == filters["algorithm"]]
        if filters.get("testbed"):
            base = [o for o in base if o.testbed == filters["testbed"]]
        return base
