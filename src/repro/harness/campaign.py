"""Resumable experiment campaigns.

A campaign is a grid — testbeds x algorithms x concurrency levels —
run once, archived to a :class:`~repro.harness.store.ResultStore`, and
safely resumable: combinations already in the store are skipped, so an
interrupted overnight sweep continues where it stopped instead of
starting over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

from repro.core.scheduler import TransferOutcome
from repro.harness.runner import ALGORITHMS, CONCURRENCY_INDEPENDENT, dataset_for, run_algorithm
from repro.harness.store import ResultStore
from repro.testbeds.specs import Testbed

__all__ = ["Campaign", "CampaignProgress"]


@dataclass(frozen=True)
class CampaignProgress:
    """A snapshot of how far a campaign has come."""

    total: int
    completed: int
    skipped: int

    @property
    def remaining(self) -> int:
        return self.total - self.completed

    @property
    def fraction_done(self) -> float:
        return self.completed / self.total if self.total else 1.0


@dataclass
class Campaign:
    """A named experiment grid with an on-disk archive.

    ``on_result`` (optional) is invoked after every fresh run — e.g.
    for progress logging.
    """

    name: str
    store_path: Path
    testbeds: Sequence[Testbed]
    algorithms: Sequence[str] = ("GUC", "GO", "SC", "MinE", "ProMC", "HTEE")
    levels: Optional[Sequence[int]] = None
    on_result: Optional[Callable[[TransferOutcome], None]] = None

    def __post_init__(self) -> None:
        if not self.testbeds:
            raise ValueError("need at least one testbed")
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ValueError(f"unknown algorithms: {unknown}")
        self.store = ResultStore(Path(self.store_path))

    # ------------------------------------------------------------------

    def cells(self) -> Iterator[tuple[Testbed, str, int]]:
        """Every (testbed, algorithm, level) combination in the grid.

        Concurrency-independent algorithms contribute one cell per
        testbed (at level 1), matching how the paper treats them.
        """
        for testbed in self.testbeds:
            levels = tuple(self.levels) if self.levels is not None else testbed.concurrency_levels
            for algorithm in self.algorithms:
                if algorithm in CONCURRENCY_INDEPENDENT:
                    yield testbed, algorithm, 1
                else:
                    for level in levels:
                        yield testbed, algorithm, level

    def _done_keys(self) -> set[tuple[str, str, int]]:
        done = set()
        for record in self.store._records():
            tags = record.get("tags", {})
            if tags.get("campaign") != self.name:
                continue
            done.add(
                (record["testbed"], record["algorithm"], int(record["max_channels"]))
            )
        return done

    def progress(self) -> CampaignProgress:
        """How much of the grid the archive already covers."""
        done = self._done_keys()
        cells = list(self.cells())
        completed = sum(
            1 for tb, alg, lvl in cells if (tb.name, alg, lvl) in done
        )
        return CampaignProgress(total=len(cells), completed=completed, skipped=completed)

    # ------------------------------------------------------------------

    def run(self, *, max_cells: Optional[int] = None) -> CampaignProgress:
        """Run every not-yet-archived cell (up to ``max_cells``)."""
        done = self._done_keys()
        executed = 0
        skipped = 0
        cells = list(self.cells())
        for testbed, algorithm, level in cells:
            key = (testbed.name, algorithm, level)
            if key in done:
                skipped += 1
                continue
            if max_cells is not None and executed >= max_cells:
                break
            outcome = run_algorithm(testbed, algorithm, level, dataset_for(testbed))
            self.store.append(outcome, campaign=self.name)
            done.add(key)
            executed += 1
            if self.on_result is not None:
                self.on_result(outcome)
        completed = sum(1 for tb, alg, lvl in cells if (tb.name, alg, lvl) in done)
        return CampaignProgress(total=len(cells), completed=completed, skipped=skipped)

    def results(self, **filters) -> list[TransferOutcome]:
        """Archived outcomes belonging to this campaign."""
        base = self.store.load(
            where=lambda r: r.get("tags", {}).get("campaign") == self.name
        )
        if filters.get("algorithm"):
            base = [o for o in base if o.algorithm == filters["algorithm"]]
        if filters.get("testbed"):
            base = [o for o in base if o.testbed == filters["testbed"]]
        return base
