"""One-shot evaluation report.

``generate_report()`` re-runs the paper's entire evaluation — the
concurrency sweeps with their brute-force references, the SLA sweeps,
the energy decomposition, the device table and model curves — and
renders everything into a single markdown document. It is the
"regenerate the paper" button; the per-figure benchmarks under
``benchmarks/`` remain the assertion-carrying variants.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Sequence

from repro.harness import figures
from repro.harness.sweeps import (
    PAPER_SLA_TARGETS,
    brute_force_sweep,
    concurrency_sweep,
    energy_decomposition,
    sla_sweep,
)
from repro.netenergy.topology import didclab_topology, futuregrid_topology, xsede_topology
from repro.testbeds.specs import ALL_TESTBEDS, Testbed

__all__ = ["generate_report", "write_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```text\n{body}\n```\n"


def generate_report(
    testbeds: Sequence[Testbed] = ALL_TESTBEDS,
    *,
    quick: bool = False,
    include_sla: bool = True,
) -> str:
    """The full evaluation as markdown.

    ``quick=True`` restricts the concurrency axis and SLA targets to a
    small subset (used by tests and impatient humans); the full report
    takes a couple of minutes.
    """
    levels = (1, 4, 12) if quick else None
    bf_levels = (1, 4, 8, 12) if quick else None
    targets = (80.0, 50.0) if quick else PAPER_SLA_TARGETS

    parts = [
        "# Energy-aware data transfer algorithms — regenerated evaluation",
        "",
        "Every table/figure of Alan, Arslan & Kosar (SC 2015), re-run on",
        "the calibrated simulator. See EXPERIMENTS.md for the",
        "paper-vs-measured comparison and the deviation list.",
        "",
        _section("Figure 1 — testbeds", figures.render_testbed_specs()),
    ]

    for testbed in testbeds:
        sweep = concurrency_sweep(testbed, levels=levels)
        brute = brute_force_sweep(testbed, levels=bf_levels)
        parts.append(
            _section(
                f"Figures 2-4 — {testbed.name} concurrency sweep",
                figures.render_concurrency_figure(sweep)
                + "\n\n"
                + figures.render_efficiency_panel(sweep, brute),
            )
        )
        if include_sla:
            records = sla_sweep(testbed, targets_pct=targets)
            parts.append(
                _section(
                    f"Figures 5-7 — {testbed.name} SLA transfers",
                    figures.render_sla_figure(testbed.name, records),
                )
            )

    parts.append(
        _section("Figure 8 — device power models", figures.render_device_model_curves())
    )
    parts.append(
        _section(
            "Figure 9 — topologies",
            figures.render_topologies(
                [xsede_topology(), futuregrid_topology(), didclab_topology()]
            ),
        )
    )
    decompositions = [energy_decomposition(tb) for tb in testbeds]
    parts.append(
        _section(
            "Figure 10 — end-system vs network energy",
            figures.render_decomposition(decompositions),
        )
    )
    parts.append(_section("Table 1 — device coefficients", figures.render_table1()))
    return "\n".join(parts)


def write_report(
    path: Path | str,
    testbeds: Sequence[Testbed] = ALL_TESTBEDS,
    *,
    quick: bool = False,
) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.write_text(generate_report(testbeds, quick=quick) + "\n")
    return path
