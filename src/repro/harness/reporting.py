"""Result export and lightweight text visualization.

Production users want machine-readable outputs (JSON results, CSV
traces) and a quick look at a transfer's dynamics without a plotting
stack. This module serializes :class:`TransferOutcome` objects and
engine traces, and renders Unicode sparklines for time series.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro import units
from repro.core.scheduler import TransferOutcome
from repro.netsim.engine import StepRecord

__all__ = [
    "outcome_to_dict",
    "outcome_from_dict",
    "save_outcomes_json",
    "load_outcomes_json",
    "save_trace_csv",
    "load_trace_csv",
    "sparkline",
    "render_trace",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def outcome_to_dict(outcome: TransferOutcome) -> dict:
    """A JSON-safe dict of everything a run produced (plus derived
    throughput/efficiency, for spreadsheet convenience)."""
    return {
        "algorithm": outcome.algorithm,
        "testbed": outcome.testbed,
        "max_channels": outcome.max_channels,
        "duration_s": outcome.duration_s,
        "bytes_moved": outcome.bytes_moved,
        "energy_joules": outcome.energy_joules,
        "files_moved": outcome.files_moved,
        "steady_throughput": outcome.steady_throughput,
        "final_concurrency": outcome.final_concurrency,
        "throughput_mbps": outcome.throughput_mbps,
        "efficiency": outcome.efficiency,
        "extra": _jsonable(outcome.extra),
    }


def _jsonable(value):
    """Best-effort conversion of `extra` payloads to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def outcome_from_dict(data: dict) -> TransferOutcome:
    """Rebuild a :class:`TransferOutcome` from :func:`outcome_to_dict`
    output (derived fields are recomputed, not trusted)."""
    return TransferOutcome(
        algorithm=data["algorithm"],
        testbed=data["testbed"],
        max_channels=int(data["max_channels"]),
        duration_s=float(data["duration_s"]),
        bytes_moved=float(data["bytes_moved"]),
        energy_joules=float(data["energy_joules"]),
        files_moved=int(data.get("files_moved", 0)),
        steady_throughput=data.get("steady_throughput"),
        final_concurrency=data.get("final_concurrency"),
        extra=data.get("extra", {}),
    )


def save_outcomes_json(outcomes: Iterable[TransferOutcome], path: Path | str) -> Path:
    """Write a list of outcomes as a JSON array."""
    path = Path(path)
    path.write_text(
        json.dumps([outcome_to_dict(o) for o in outcomes], indent=2) + "\n"
    )
    return path


def load_outcomes_json(path: Path | str) -> list[TransferOutcome]:
    """Read back a JSON array written by :func:`save_outcomes_json`."""
    data = json.loads(Path(path).read_text())
    return [outcome_from_dict(entry) for entry in data]


def save_trace_csv(trace: Sequence[StepRecord], path: Path | str) -> Path:
    """Write an engine step trace as CSV (time, throughput, power,
    active_channels)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "throughput_bytes_per_s", "power_watts", "active_channels"])
        for record in trace:
            writer.writerow(
                [f"{record.time:.6f}", f"{record.throughput:.3f}",
                 f"{record.power:.6f}", record.active_channels]
            )
    return path


def load_trace_csv(path: Path | str) -> list[StepRecord]:
    """Read back a trace written by :func:`save_trace_csv`."""
    records = []
    with Path(path).open() as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            records.append(
                StepRecord(
                    time=float(row["time_s"]),
                    throughput=float(row["throughput_bytes_per_s"]),
                    power=float(row["power_watts"]),
                    active_channels=int(row["active_channels"]),
                )
            )
    return records


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A Unicode sparkline of ``values`` downsampled to ``width`` cells."""
    if not values:
        return ""
    if width < 1:
        raise ValueError("width must be >= 1")
    # bucket-average down to `width` samples
    buckets: list[float] = []
    n = len(values)
    per = max(1, n // width)
    for start in range(0, n, per):
        window = values[start : start + per]
        buckets.append(sum(window) / len(window))
        if len(buckets) == width:
            break
    low, high = min(buckets), max(buckets)
    if high <= low:
        return _SPARK_LEVELS[0] * len(buckets)
    span = high - low
    return "".join(
        _SPARK_LEVELS[min(len(_SPARK_LEVELS) - 1, int((v - low) / span * len(_SPARK_LEVELS)))]
        for v in buckets
    )


def render_trace(trace: Sequence[StepRecord], width: int = 60) -> str:
    """Throughput and power sparklines plus summary stats for one run."""
    if not trace:
        return "(empty trace)"
    throughput = [r.throughput for r in trace]
    power = [r.power for r in trace]
    duration = trace[-1].time
    lines = [
        f"trace: {len(trace)} steps over {duration:.1f} s",
        f"  throughput {sparkline(throughput, width)} "
        f"(peak {units.to_mbps(max(throughput)):.0f} Mbps)",
        f"  power      {sparkline(power, width)} "
        f"(peak {max(power):.1f} W)",
    ]
    return "\n".join(lines)
