"""Parameter sweeps behind every evaluation figure."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.core.scheduler import TransferOutcome
from repro.datasets.files import Dataset
from repro.harness.metrics import DecompositionRecord, SlaRecord
from repro.harness.runner import (
    ALGORITHMS,
    CONCURRENCY_INDEPENDENT,
    dataset_for,
    run_algorithm,
    run_brute_force,
    run_slaee,
)
from repro.netenergy.topology import topology_for
from repro.testbeds.specs import Testbed

__all__ = [
    "ConcurrencySweep",
    "concurrency_sweep",
    "brute_force_sweep",
    "best_efficiency",
    "sla_sweep",
    "energy_decomposition",
    "PAPER_SLA_TARGETS",
]

#: Figure 5-7 target percentages.
PAPER_SLA_TARGETS: tuple[float, ...] = (95.0, 90.0, 80.0, 70.0, 50.0)


@dataclass
class ConcurrencySweep:
    """Results of one Figures 2-4 style sweep.

    ``series[alg]`` is a list aligned with ``levels`` — for the
    concurrency-independent algorithms (GUC, GO) the same outcome is
    repeated at every level, matching the flat lines of the paper's
    plots.
    """

    testbed: str
    levels: tuple[int, ...]
    series: dict[str, list[TransferOutcome]] = field(default_factory=dict)

    def throughputs_mbps(self, algorithm: str) -> list[float]:
        """Throughput series (Mbps) aligned with ``levels``."""
        return [o.throughput_mbps for o in self.series[algorithm]]

    def energies_joules(self, algorithm: str) -> list[float]:
        """Energy series (J) aligned with ``levels``."""
        return [o.energy_joules for o in self.series[algorithm]]

    def efficiencies(self, algorithm: str) -> list[float]:
        """Throughput/energy ratio series aligned with ``levels``."""
        return [o.efficiency for o in self.series[algorithm]]

    def best_efficiency(self, algorithm: str) -> float:
        """The algorithm's best ratio across the swept levels."""
        return max(self.efficiencies(algorithm))


def concurrency_sweep(
    testbed: Testbed,
    *,
    algorithms: Sequence[str] = ("GUC", "GO", "SC", "MinE", "ProMC", "HTEE"),
    levels: Optional[Sequence[int]] = None,
    dataset: Optional[Dataset] = None,
) -> ConcurrencySweep:
    """Run every algorithm across the concurrency axis (Fig. 2-4 a/b)."""
    lv = tuple(levels) if levels is not None else testbed.concurrency_levels
    data = dataset if dataset is not None else dataset_for(testbed)
    sweep = ConcurrencySweep(testbed=testbed.name, levels=lv)
    for name in algorithms:
        if name not in ALGORITHMS:
            raise KeyError(f"unknown algorithm {name!r}")
        if name in CONCURRENCY_INDEPENDENT:
            outcome = run_algorithm(testbed, name, 1, data)
            sweep.series[name] = [outcome] * len(lv)
        else:
            sweep.series[name] = [run_algorithm(testbed, name, c, data) for c in lv]
    return sweep


def brute_force_sweep(
    testbed: Testbed,
    *,
    levels: Optional[Sequence[int]] = None,
    dataset: Optional[Dataset] = None,
) -> list[TransferOutcome]:
    """The BF oracle across cc = 1..maxChannel (Fig. 2-4 panel c)."""
    lv = (
        tuple(levels)
        if levels is not None
        else tuple(range(1, testbed.brute_force_max_concurrency + 1))
    )
    data = dataset if dataset is not None else dataset_for(testbed)
    return [run_brute_force(testbed, c, data) for c in lv]


def best_efficiency(outcomes: Sequence[TransferOutcome]) -> float:
    """The best throughput/energy ratio in a set of runs."""
    if not outcomes:
        raise ValueError("need at least one outcome")
    return max(o.efficiency for o in outcomes)


def sla_sweep(
    testbed: Testbed,
    *,
    targets_pct: Sequence[float] = PAPER_SLA_TARGETS,
    dataset: Optional[Dataset] = None,
    reference: Optional[TransferOutcome] = None,
) -> list[SlaRecord]:
    """Figures 5-7: SLAEE at each target percentage of the ProMC max.

    ``reference`` (ProMC at the testbed's reference concurrency) is
    computed when not supplied.
    """
    data = dataset if dataset is not None else dataset_for(testbed)
    if reference is None:
        reference = run_algorithm(
            testbed, "ProMC", testbed.sla_reference_concurrency, data
        )
    max_throughput = reference.throughput
    records = []
    for pct in targets_pct:
        outcome = run_slaee(testbed, pct / 100.0, max_throughput, dataset=data)
        achieved = (
            outcome.steady_throughput
            if outcome.steady_throughput is not None
            else outcome.throughput
        )
        records.append(
            SlaRecord(
                target_pct=pct,
                target_throughput=max_throughput * pct / 100.0,
                achieved_throughput=achieved,
                energy_joules=outcome.energy_joules,
                reference_throughput=max_throughput,
                reference_energy_joules=reference.energy_joules,
                final_concurrency=outcome.final_concurrency or 0,
            )
        )
    return records


def energy_decomposition(
    testbed: Testbed,
    *,
    algorithm: str = "HTEE",
    max_channels: Optional[int] = None,
    dataset: Optional[Dataset] = None,
) -> DecompositionRecord:
    """Figure 10: end-system vs network load-dependent energy for one
    algorithm's transfer on one testbed."""
    data = dataset if dataset is not None else dataset_for(testbed)
    channels = max_channels if max_channels is not None else testbed.sla_reference_concurrency
    outcome = run_algorithm(testbed, algorithm, channels, data)
    topology = topology_for(testbed.name)
    # the network carries wire bytes (headers + retransmissions), not
    # just the payload
    carried = outcome.extra.get("wire_bytes", outcome.bytes_moved)
    network = topology.dynamic_transfer_energy(carried)
    return DecompositionRecord(
        testbed=testbed.name,
        end_system_joules=outcome.energy_joules,
        network_joules=network,
    )
