"""Transfer planning advisor: closed-form what-if analysis.

Downstream users often want a recommendation *before* moving anything:
which parameters to use on a path, what throughput to expect, what the
transfer will cost in joules. This module answers those questions
analytically from the same first-order model the simulator integrates
— per-channel caps, shared link/disk capacities, pipelining efficiency,
and the Eq. 1 power model — so its predictions can be checked against
engine runs (see ``tests/test_advisor.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro import units
from repro.core.allocation import mine_walk
from repro.core.chunks import Chunk, PartitionPolicy, partition_files
from repro.datasets.files import Dataset
from repro.netsim import tcp
from repro.netsim.disk import SingleDisk
from repro.netsim.engine import ChunkPlan
from repro.netsim.params import TransferParams
from repro.netsim.utilization import compute_utilization
from repro.power.models import FineGrainedPowerModel
from repro.testbeds.specs import Testbed

__all__ = ["ChunkAdvice", "TransferAdvice", "advise", "predict_plan_performance"]


@dataclass(frozen=True)
class ChunkAdvice:
    """Recommendation and first-order prediction for one chunk."""

    name: str
    file_count: int
    total_bytes: int
    params: TransferParams
    per_channel_rate: float
    bottleneck: str
    pipelining_efficiency: float

    @property
    def effective_rate(self) -> float:
        """Aggregate chunk rate after pipelining stalls (bytes/s)."""
        return (
            self.params.concurrency
            * self.per_channel_rate
            * self.pipelining_efficiency
        )


@dataclass(frozen=True)
class TransferAdvice:
    """The full plan: per-chunk advice plus whole-transfer predictions."""

    testbed: str
    chunks: tuple[ChunkAdvice, ...]
    total_bytes: int
    predicted_throughput: float
    predicted_duration_s: float
    predicted_power_w: float
    predicted_energy_j: float
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def predicted_throughput_mbps(self) -> float:
        return units.to_mbps(self.predicted_throughput)

    def render(self) -> str:
        """The plan as an aligned, human-readable block of text."""
        lines = [f"Transfer plan for {self.testbed}:"]
        for advice in self.chunks:
            lines.append(
                f"  {advice.name:<7s} {advice.file_count:>6d} files "
                f"{units.to_GB(advice.total_bytes):7.2f} GB -> "
                f"pp={advice.params.pipelining} p={advice.params.parallelism} "
                f"cc={advice.params.concurrency} "
                f"(~{units.to_mbps(advice.effective_rate):.0f} Mbps, "
                f"{advice.bottleneck}-bound)"
            )
        lines.append(
            f"  predicted: {self.predicted_throughput_mbps:.0f} Mbps, "
            f"{self.predicted_duration_s:.0f} s, "
            f"{self.predicted_power_w:.1f} W, "
            f"{units.kilojoules(self.predicted_energy_j):.1f} kJ"
        )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _channel_cap(testbed: Testbed, parallelism: int) -> tuple[float, str]:
    """One channel's rate cap and the name of the binding constraint."""
    candidates = {
        "network": tcp.channel_network_cap(testbed.path, parallelism),
        "host": min(
            testbed.source.server.per_channel_rate,
            testbed.destination.server.per_channel_rate,
        ),
    }
    bottleneck = min(candidates, key=candidates.get)
    return candidates[bottleneck], bottleneck


def _pipelining_efficiency(testbed: Testbed, avg: float, params: TransferParams,
                           per_channel_rate: float) -> float:
    """Fraction of channel time spent moving payload, given per-file
    control gaps (mirrors Channel.per_file_gap). ``avg`` is the chunk's
    average file size in bytes."""
    if avg <= 0 or per_channel_rate <= 0:
        return 1.0
    transfer_time = avg / per_channel_rate
    gap = (
        2.5 * testbed.path.rtt / params.pipelining
        + testbed.source.server.per_file_overhead
        + testbed.destination.server.per_file_overhead
    )
    return transfer_time / (transfer_time + gap)


def predict_plan_performance(
    testbed: Testbed, plans: Sequence[ChunkPlan]
) -> tuple[float, float]:
    """First-order (throughput bytes/s, power watts) prediction for an
    arbitrary chunk plan on a testbed.

    This is the closed-form counterpart of one engine run: per-channel
    caps with pipelining stalls bound the demand; the shared link,
    per-server disk aggregates and NICs bound the supply; the Eq. 1
    power model is evaluated at the predicted operating point (PACK
    binding — one server per side carries everything). Used by
    :func:`advise` and by the service layer's deadline-feasibility and
    SLA-class plan selection, so all three reason from the same model.
    """
    total_channels = sum(p.params.concurrency for p in plans)
    total_streams = sum(p.params.concurrency * p.params.parallelism for p in plans)
    demand = 0.0
    for plan in plans:
        if plan.params.concurrency <= 0 or plan.file_count == 0:
            continue
        cap, _ = _channel_cap(testbed, plan.params.parallelism)
        avg = plan.total_size / plan.file_count
        efficiency = _pipelining_efficiency(testbed, avg, plan.params, cap)
        demand += plan.params.concurrency * cap * efficiency
    if demand <= 0:
        return 0.0, 0.0

    link = tcp.aggregate_goodput(testbed.path, max(1, total_streams))
    src_disk = testbed.source.server.disk.aggregate_capacity(max(1, total_channels))
    dst_disk = testbed.destination.server.disk.aggregate_capacity(max(1, total_channels))
    nic = min(testbed.source.server.nic_rate, testbed.destination.server.nic_rate)
    aggregate = min(demand, link, src_disk, dst_disk, nic)

    model = FineGrainedPowerModel(testbed.coefficients)
    power = 0.0
    for site in (testbed.source, testbed.destination):
        util = compute_utilization(
            site.server,
            channels=max(1, total_channels),
            streams=max(1, total_streams),
            throughput=aggregate,
        )
        power += model.power(site.server, util)
    return aggregate, power


def advise(
    testbed: Testbed,
    dataset: Dataset,
    max_channels: int,
    *,
    policy: PartitionPolicy = PartitionPolicy(),
) -> TransferAdvice:
    """Recommend parameters and predict the transfer's cost.

    Uses the MinE parameter walk for the per-chunk recommendation (the
    paper's energy-minimal defaults), then bounds the aggregate rate by
    the shared link and per-server disk capacities and evaluates the
    testbed's power model at the predicted operating point.
    """
    if max_channels < 1:
        raise ValueError("max_channels must be >= 1")
    bdp = testbed.path.bdp
    chunks = partition_files(dataset, bdp, policy)
    if not chunks:
        return TransferAdvice(
            testbed=testbed.name,
            chunks=(),
            total_bytes=0,
            predicted_throughput=0.0,
            predicted_duration_s=0.0,
            predicted_power_w=0.0,
            predicted_energy_j=0.0,
            notes=("empty dataset",),
        )
    params = mine_walk(chunks, bdp, testbed.path.tcp_buffer, max_channels)

    advices = []
    for chunk, p in zip(chunks, params, strict=True):
        cap, bottleneck = _channel_cap(testbed, p.parallelism)
        efficiency = _pipelining_efficiency(testbed, chunk.average_file_size, p, cap)
        advices.append(
            ChunkAdvice(
                name=chunk.name,
                file_count=chunk.file_count,
                total_bytes=chunk.total_size,
                params=p,
                per_channel_rate=cap,
                bottleneck=bottleneck,
                pipelining_efficiency=efficiency,
            )
        )

    plans = [
        ChunkPlan(name=chunk.name, files=chunk.files, params=p)
        for chunk, p in zip(chunks, params, strict=True)
    ]
    aggregate, power = predict_plan_performance(testbed, plans)

    total_bytes = sum(a.total_bytes for a in advices)
    duration = total_bytes / aggregate if aggregate > 0 else 0.0

    notes = []
    if isinstance(testbed.source.server.disk, SingleDisk) and max_channels > 1:
        notes.append(
            "single-spindle storage: concurrency above 1 will reduce throughput"
        )
    if testbed.path.tcp_buffer < bdp:
        notes.append(
            f"TCP buffer ({units.to_MB(testbed.path.tcp_buffer):.0f} MB) below BDP "
            f"({units.to_MB(bdp):.0f} MB): parallelism recommended on large files"
        )
    small = [a for a in advices if a.name == "small"]
    if small and small[0].pipelining_efficiency < 0.8:
        notes.append(
            "small files dominate: expect control-channel overhead even with "
            f"pipelining {small[0].params.pipelining}"
        )

    return TransferAdvice(
        testbed=testbed.name,
        chunks=tuple(advices),
        total_bytes=total_bytes,
        predicted_throughput=aggregate,
        predicted_duration_s=duration,
        predicted_power_w=power,
        predicted_energy_j=power * duration,
        notes=tuple(notes),
    )
