"""Algorithm 1 — Minimum Energy (MinE) transfer.

MinE minimizes transfer energy with no throughput objective: it
partitions the dataset around the BDP, gives small chunks deep
pipelines and most of the channel pool (idle-free channels are
energy-cheap throughput), starves large chunks down to a single
channel (extra channels on large files buy throughput at
disproportionate energy cost), and transfers all chunks concurrently —
the "Multi-Chunk" mechanism that recovers most of the throughput
deficit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import mine_walk
from repro.core.chunks import PartitionPolicy, partition_files
from repro.core.scheduler import (
    TransferOutcome,
    current_observer,
    make_engine,
    make_plans,
    run_to_completion,
)
from repro.datasets.files import Dataset
from repro.netsim.engine import Binding, ChunkPlan
from repro.testbeds.specs import Testbed

__all__ = ["MinEAlgorithm"]


@dataclass(frozen=True)
class MinEAlgorithm:
    """Minimum Energy transfer (Algorithm 1)."""

    policy: PartitionPolicy = PartitionPolicy()
    name: str = "MinE"

    def plan(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> list[ChunkPlan]:
        """Lines 2-12: partition, then walk chunks small -> large
        computing (pipelining, parallelism, concurrency) per chunk."""
        if max_channels < 1:
            raise ValueError("max_channels must be >= 1")
        bdp = testbed.path.bdp
        chunks = partition_files(dataset, bdp, self.policy)
        params = mine_walk(chunks, bdp, testbed.path.tcp_buffer, max_channels)
        return make_plans(chunks, params)

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> TransferOutcome:
        """Line 13: start all chunks concurrently, run to completion."""
        plans = self.plan(testbed, dataset, max_channels)
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=True)
        for plan in plans:
            engine.add_chunk(plan)
        observer = current_observer()
        if observer is not None:
            # MinE tunes once up front: record its planned allocation so
            # the event stream shows the starting point work stealing
            # later reshuffles.
            observer.allocation_change(
                engine.time, {p.name: p.params.concurrency for p in plans}
            )
        outcome = run_to_completion(
            engine,
            algorithm=self.name,
            testbed=testbed.name,
            max_channels=max_channels,
        )
        outcome.final_concurrency = sum(p.params.concurrency for p in plans)
        outcome.extra["plans"] = [
            (p.name, p.params.pipelining, p.params.parallelism, p.params.concurrency)
            for p in plans
        ]
        return outcome
