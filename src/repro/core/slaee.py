"""Algorithm 3 — SLA-based Energy-Efficient (SLAEE) transfer.

The user promises to tolerate a throughput of ``SLA_level`` times the
maximum achievable on the path (e.g. 0.9 = "at most 10% slower than
the best possible"); SLAEE delivers that floor with the minimum energy
it can manage. It starts from a single channel, jumps straight to the
proportionally estimated concurrency (line 11: ``concurrency =
target/actual``), then climbs one channel at a time — measuring
five-second windows — until the target is met. Channel assignment
favors small chunks and pins Large chunks at one channel; only when
the concurrency cap is hit without meeting the SLA does
``reArrangeChannels`` start feeding extra channels to the Large chunk
(lines 14-22).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import chunk_params, htee_weights
from repro.core.chunks import Chunk, ChunkClass, PartitionPolicy, partition_files
from repro.core.scheduler import (
    PROBE_INTERVAL_S,
    TransferOutcome,
    current_observer,
    make_engine,
    make_plans,
    run_to_completion,
)
from repro.datasets.files import Dataset
from repro.netsim.engine import Binding
from repro.testbeds.specs import Testbed
from repro import units

__all__ = ["SLAEEAlgorithm", "sla_allocation", "sla_met"]


def sla_met(actual: float, target: float) -> bool:
    """Whether a measured window rate satisfies the SLA target.

    The paper's Algorithm 3 climbs "until it reaches target", so a
    window that *equals* the target meets the SLA — the boundary is
    inclusive (``actual >= target``). Pinned here (and tested) so the
    jump and climb loops cannot drift apart on the boundary again.
    """
    return actual >= target


def sla_allocation(chunks: list[Chunk], total_channels: int, extra_large: int = 0) -> list[int]:
    """SLAEE's channel assignment at a given total concurrency.

    Small chunks first (they are energy-cheap throughput), Large chunks
    capped at ``1 + extra_large`` channels (``extra_large > 0`` only
    after ``reArrangeChannels`` fires). Totals always sum to
    ``total_channels`` (when at least one channel per chunk fits).
    """
    if total_channels < 0:
        raise ValueError("total_channels must be >= 0")
    if extra_large < 0:
        raise ValueError("extra_large must be >= 0")
    n = len(chunks)
    if n == 0:
        return []
    allocation = [0] * n
    order = sorted(range(n), key=lambda i: int(chunks[i].chunk_class))
    remaining = total_channels
    # one channel each, smallest class first
    for i in order:
        if remaining <= 0:
            break
        allocation[i] = 1
        remaining -= 1
    # large chunks may take their rearranged extras
    for i in order:
        if chunks[i].chunk_class is ChunkClass.LARGE and allocation[i] > 0:
            take = min(extra_large, remaining)
            allocation[i] += take
            remaining -= take
    # the rest goes to non-large chunks by HTEE-style weights
    non_large = [i for i in order if chunks[i].chunk_class is not ChunkClass.LARGE]
    if not non_large:
        non_large = order
    weights = htee_weights([chunks[i] for i in non_large])
    # Weighted round-robin: repeatedly give the next channel to the
    # most underweighted chunk. The pool total only changes by the
    # channel just granted, so it is maintained as a running sum
    # instead of being recomputed inside the deficit comprehension
    # (which made each grant O(n^2) in the chunk count).
    pool_total = sum(allocation[j] for j in non_large)
    while remaining > 0:
        deficits = [
            weights[k] * (pool_total + 1) - allocation[non_large[k]]
            for k in range(len(non_large))
        ]
        target = non_large[max(range(len(non_large)), key=lambda k: deficits[k])]
        allocation[target] += 1
        pool_total += 1
        remaining -= 1
    return allocation


@dataclass(frozen=True)
class SLAEEAlgorithm:
    """SLA-based Energy-Efficient transfer (Algorithm 3).

    ``adaptive_monitoring`` enables the extension the paper's critique
    of Globus Online motivates ("the protocol tuning Globus Online
    performs is non-adaptive; it does not change depending on network
    conditions"): after converging on a concurrency level, SLAEE keeps
    measuring five-second windows for the rest of the transfer and
    re-adjusts — adding channels when competing traffic pushes the
    delivered rate below the SLA, and *shedding* channels (saving
    energy) when the window rate overshoots the target by more than the
    tolerance. The published Algorithm 3 (default) tunes once and runs
    the remainder open-loop.
    """

    policy: PartitionPolicy = PartitionPolicy()
    probe_interval: float = PROBE_INTERVAL_S
    adaptive_monitoring: bool = False
    tolerance: float = 0.05
    name: str = "SLAEE"

    def run(
        self,
        testbed: Testbed,
        dataset: Dataset,
        max_channels: int,
        *,
        sla_level: float,
        max_throughput: float,
    ) -> TransferOutcome:
        """Deliver ``sla_level * max_throughput`` bytes/s at minimum energy.

        ``max_throughput`` is the maximum achievable rate on this path
        (the paper uses ProMC's best observed throughput).
        """
        if not (0 < sla_level <= 1):
            raise ValueError("sla_level must be in (0, 1]")
        if max_throughput <= 0:
            raise ValueError("max_throughput must be > 0")
        if max_channels < 1:
            raise ValueError("max_channels must be >= 1")

        target = sla_level * max_throughput
        bdp = testbed.path.bdp
        chunks = partition_files(dataset, bdp, self.policy)
        plans = make_plans(
            chunks,
            [chunk_params(c, bdp, testbed.path.tcp_buffer, 1) for c in chunks],
        )
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=True)
        for plan in plans:
            engine.add_chunk(plan, open_channels=False)
        names = [p.name for p in plans]

        observer = current_observer()

        def apply(concurrency: int, extra_large: int) -> None:
            engine.set_allocation(
                dict(zip(names, sla_allocation(chunks, concurrency, extra_large), strict=True))
            )

        def probe() -> float:
            before = engine.snapshot()
            engine.run(self.probe_interval)
            after = engine.snapshot()
            throughput = after.throughput_since(before)
            if observer is not None:
                joules = after.energy_since(before)
                mbps = units.to_mbps(throughput)
                score = mbps * mbps / joules if joules > 0 else 0.0
                observer.probe_window(
                    engine.time, self.name, concurrency, throughput, joules, score
                )
            return throughput

        # Lines 7-9: start at one channel and measure. A one-second
        # warmup lets the channel finish its control-channel setup so
        # the first five-second window reflects steady throughput.
        concurrency, extra_large = 1, 0
        apply(concurrency, extra_large)
        engine.run(1.0)
        actual = probe()

        # Line 10-13: proportional jump toward the target (a window
        # already *at* the target meets the SLA — see sla_met).
        if not sla_met(actual, target) and not engine.finished and actual > 0:
            concurrency = max(1, min(max_channels, math.ceil(target / actual)))
            apply(concurrency, extra_large)
            actual = probe()

        # Lines 14-22: incremental climb / channel rearrangement.
        max_extra = max(0, max_channels - len(chunks))
        adjustments = 0
        while not sla_met(actual, target) and not engine.finished:
            if concurrency < max_channels:
                concurrency += 1
            elif extra_large < max_extra:
                extra_large += 1  # reArrangeChannels()
                if observer is not None:
                    observer.rearrange_channels(engine.time, self.name, extra_large)
            else:
                break  # SLA unreachable on this path; do our best
            apply(concurrency, extra_large)
            actual = probe()
            adjustments += 1
            if adjustments > 4 * max_channels:  # pragma: no cover - safety
                break

        converged = engine.snapshot()
        adjustments_up = adjustments_down = 0
        if self.adaptive_monitoring:
            # Closed-loop tail: keep the SLA under changing conditions
            # and shed channels the moment they stop being needed.
            while not engine.finished:
                window = probe()
                if engine.finished:
                    break
                if window < target * (1.0 - self.tolerance):
                    if concurrency < max_channels:
                        concurrency += 1
                        adjustments_up += 1
                    elif extra_large < max_extra:
                        extra_large += 1
                        adjustments_up += 1
                    else:
                        continue  # at capacity; keep doing our best
                    apply(concurrency, extra_large)
                elif window > target * (1.0 + 2.0 * self.tolerance) and concurrency > 1:
                    concurrency -= 1
                    adjustments_down += 1
                    apply(concurrency, extra_large)
        outcome = run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=max_channels
        )
        end = engine.snapshot()
        if end.time > converged.time:
            outcome.steady_throughput = end.throughput_since(converged)
        else:
            # transfer ended during the search; the last window is the
            # best steady estimate available
            outcome.steady_throughput = actual if actual > 0 else outcome.throughput
        outcome.final_concurrency = concurrency
        outcome.extra.update(
            {
                "target_throughput": target,
                "sla_level": sla_level,
                "extra_large": extra_large,
            }
        )
        if self.adaptive_monitoring:
            outcome.extra["monitor_adjustments"] = {
                "up": adjustments_up,
                "down": adjustments_down,
            }
        return outcome
