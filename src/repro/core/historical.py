"""History-informed tuning.

HTEE pays a live search on every transfer. A service that moves similar
datasets over the same path every day can skip it: pick the concurrency
that maximized the throughput/energy ratio in its *archive* of past
runs and go straight there. This is the "tune from historical data"
strategy of the optimization literature the paper builds on (and of the
authors' own follow-up work); it trades HTEE's adaptivity for zero
probe overhead, and falls back to a live HTEE search when the archive
has nothing relevant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import chunk_params, htee_weights
from repro.core.chunks import PartitionPolicy, partition_files
from repro.core.htee import HTEEAlgorithm, scaled_allocation
from repro.core.scheduler import TransferOutcome, make_engine, make_plans, run_to_completion
from repro.datasets.files import Dataset
from repro.harness.store import ResultStore
from repro.netsim.engine import Binding
from repro.testbeds.specs import Testbed

__all__ = ["HistoricalTuner"]


@dataclass(frozen=True)
class HistoricalTuner:
    """Concurrency choice from archived runs; live HTEE as fallback.

    ``min_history`` past runs on the same testbed are required before
    the archive is trusted. Every run (historical or fallback) is
    appended back to the store, so the tuner improves with use.
    """

    store: ResultStore
    policy: PartitionPolicy = PartitionPolicy()
    min_history: int = 3
    name: str = "HistTune"

    def best_known_concurrency(self, testbed: Testbed) -> int | None:
        """The archived concurrency with the best efficiency, or None
        when the archive is too thin."""
        history = self.store.load(testbed=testbed.name)
        usable = [o for o in history if o.final_concurrency]
        if len(usable) < self.min_history:
            return None
        best = max(usable, key=lambda o: o.efficiency)
        return best.final_concurrency

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> TransferOutcome:
        """Transfer at the archive's best-known concurrency (or run a
        live HTEE search on a cold archive), then archive the result."""
        if max_channels < 1:
            raise ValueError("max_channels must be >= 1")
        level = self.best_known_concurrency(testbed)
        if level is None:
            # cold start: do the live search, archive its findings
            outcome = HTEEAlgorithm(policy=self.policy).run(testbed, dataset, max_channels)
            outcome.extra["history_used"] = False
        else:
            level = max(1, min(level, max_channels))
            outcome = self._run_at(testbed, dataset, level, max_channels)
            outcome.extra["history_used"] = True
        self.store.append(outcome, tuner=self.name)
        return outcome

    def _run_at(
        self, testbed: Testbed, dataset: Dataset, level: int, max_channels: int
    ) -> TransferOutcome:
        """One straight run at the archived level (no probes)."""
        bdp = testbed.path.bdp
        chunks = partition_files(dataset, bdp, self.policy)
        weights = htee_weights(chunks)
        allocation = scaled_allocation(weights, level)
        plans = make_plans(
            chunks,
            [
                chunk_params(c, bdp, testbed.path.tcp_buffer, max(0, cc))
                for c, cc in zip(chunks, allocation, strict=True)
            ],
        )
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=True)
        for plan, cc in zip(plans, allocation, strict=True):
            engine.add_chunk(plan, open_channels=False)
            engine.set_chunk_channels(plan.name, cc)
        outcome = run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=max_channels
        )
        outcome.final_concurrency = level
        return outcome
