"""Dataset partitioning (the ``partitionFiles`` / ``mergeChunks``
subroutines shared by Algorithms 1-3).

Files are classified into **Small / Medium / Large** chunks relative to
the path's bandwidth-delay product: pipelining only pays for files
smaller than the BDP (Section 2.1), and parallelism only pays once
files are large against the TCP buffer, so the BDP is the natural
boundary scale. Undersized chunks are merged into their neighbor so no
chunk is "too small to be treated separately" (``mergeChunks``).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.datasets.files import Dataset, FileInfo

__all__ = ["ChunkClass", "Chunk", "PartitionPolicy", "partition_files", "merge_chunks"]


class ChunkClass(enum.IntEnum):
    """Chunk classes ordered small -> large (the walk order of Alg. 1)."""

    SMALL = 0
    MEDIUM = 1
    LARGE = 2


@dataclass(frozen=True)
class Chunk:
    """A homogeneous group of files transferred with one parameter set."""

    chunk_class: ChunkClass
    files: tuple[FileInfo, ...]

    @property
    def name(self) -> str:
        return self.chunk_class.name.lower()

    @property
    def total_size(self) -> int:
        return sum(f.size for f in self.files)

    @property
    def file_count(self) -> int:
        return len(self.files)

    @property
    def average_file_size(self) -> float:
        if not self.files:
            return 0.0
        return self.total_size / len(self.files)


@dataclass(frozen=True)
class PartitionPolicy:
    """Chunk boundaries and merge thresholds.

    A file is *Small* when ``size < small_factor * BDP`` (it benefits
    from pipelining), *Large* when ``size >= large_factor * BDP``, and
    *Medium* in between. A chunk is merged away when it holds fewer
    than ``min_files`` files **and** less than ``min_bytes_fraction``
    of the dataset's bytes.
    """

    small_factor: float = 1.0
    large_factor: float = 20.0
    min_files: int = 2
    min_bytes_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.small_factor <= 0 or self.large_factor <= self.small_factor:
            raise ValueError("need 0 < small_factor < large_factor")
        if self.min_files < 0:
            raise ValueError("min_files must be >= 0")
        if not (0 <= self.min_bytes_fraction < 1):
            raise ValueError("min_bytes_fraction must be in [0, 1)")

    def classify(self, size: float, bdp: float) -> ChunkClass:
        """The chunk class of a file of ``size`` bytes on a ``bdp`` path."""
        if size < self.small_factor * bdp:
            return ChunkClass.SMALL
        if size < self.large_factor * bdp:
            return ChunkClass.MEDIUM
        return ChunkClass.LARGE


def partition_files(
    dataset: Dataset,
    bdp: float,
    policy: PartitionPolicy = PartitionPolicy(),
) -> list[Chunk]:
    """``partitionFiles``: split a dataset into Small/Medium/Large
    chunks around the BDP, then merge undersized chunks.

    Returns non-empty chunks ordered small -> large (the iteration
    order of Algorithm 1's channel-assignment walk).
    """
    if bdp < 0:
        raise ValueError(f"bdp must be >= 0, got {bdp}")
    buckets: dict[ChunkClass, list[FileInfo]] = {c: [] for c in ChunkClass}
    for file in dataset:
        buckets[policy.classify(file.size, bdp)].append(file)
    chunks = [
        Chunk(chunk_class=c, files=tuple(buckets[c]))
        for c in sorted(ChunkClass)
        if buckets[c]
    ]
    return merge_chunks(chunks, dataset.total_size, policy)


def merge_chunks(
    chunks: list[Chunk],
    dataset_total: int,
    policy: PartitionPolicy = PartitionPolicy(),
) -> list[Chunk]:
    """``mergeChunks``: fold chunks too small to treat separately into
    their nearest (by class distance) surviving neighbor.

    A single remaining chunk is never merged away; order and class
    labels of survivors are preserved.
    """
    if dataset_total < 0:
        raise ValueError("dataset_total must be >= 0")
    survivors = list(chunks)

    def undersized(chunk: Chunk) -> bool:
        small_count = chunk.file_count < policy.min_files
        small_bytes = (
            dataset_total > 0
            and chunk.total_size < policy.min_bytes_fraction * dataset_total
        )
        return small_count and small_bytes if policy.min_files else small_bytes

    changed = True
    while changed and len(survivors) > 1:
        changed = False
        for i, chunk in enumerate(survivors):
            if not undersized(chunk):
                continue
            neighbors = [j for j in range(len(survivors)) if j != i]
            target = min(
                neighbors,
                key=lambda j: (
                    abs(int(survivors[j].chunk_class) - int(chunk.chunk_class)),
                    -survivors[j].total_size,
                ),
            )
            merged = Chunk(
                chunk_class=survivors[target].chunk_class,
                files=survivors[target].files + chunk.files,
            )
            survivors[target] = merged
            del survivors[i]
            changed = True
            break
    return survivors


def ceil_div_positive(numerator: float, denominator: float) -> int:
    """``ceil(numerator / denominator)`` floored at 1 — the paper's
    parameter formulas never go below one."""
    if denominator <= 0:
        return 1
    return max(1, math.ceil(numerator / denominator))
