"""The paper's contribution: energy-aware transfer algorithms and the
baselines they are evaluated against."""

from repro.core.allocation import (
    chunk_params,
    htee_channel_allocation,
    htee_weights,
    mine_concurrency,
    mine_walk,
    parallelism_level,
    pipelining_level,
    proportional_allocation,
)
from repro.core.baselines import (
    GlobusOnlineAlgorithm,
    GucAlgorithm,
    ProMCAlgorithm,
    SingleChunkAlgorithm,
)
from repro.core.advisor import ChunkAdvice, TransferAdvice, advise
from repro.core.chunks import Chunk, ChunkClass, PartitionPolicy, merge_chunks, partition_files
from repro.core.historical import HistoricalTuner
from repro.core.htee import BruteForceAlgorithm, HTEEAlgorithm, scaled_allocation
from repro.core.mine import MinEAlgorithm
from repro.core.related import BufferTuningAlgorithm, PCPAlgorithm
from repro.core.scheduler import (
    PROBE_INTERVAL_S,
    TransferOutcome,
    make_engine,
    make_plans,
    run_to_completion,
)
from repro.core.slaee import SLAEEAlgorithm, sla_allocation

__all__ = [
    "BruteForceAlgorithm",
    "BufferTuningAlgorithm",
    "Chunk",
    "ChunkAdvice",
    "ChunkClass",
    "PCPAlgorithm",
    "TransferAdvice",
    "advise",
    "GlobusOnlineAlgorithm",
    "GucAlgorithm",
    "HTEEAlgorithm",
    "HistoricalTuner",
    "MinEAlgorithm",
    "PROBE_INTERVAL_S",
    "PartitionPolicy",
    "ProMCAlgorithm",
    "SLAEEAlgorithm",
    "SingleChunkAlgorithm",
    "TransferOutcome",
    "chunk_params",
    "htee_channel_allocation",
    "htee_weights",
    "make_engine",
    "make_plans",
    "merge_chunks",
    "mine_concurrency",
    "mine_walk",
    "parallelism_level",
    "partition_files",
    "pipelining_level",
    "proportional_allocation",
    "run_to_completion",
    "scaled_allocation",
    "sla_allocation",
]
