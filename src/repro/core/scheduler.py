"""Shared algorithm driver: engine construction, probe windows, and the
result record every algorithm returns."""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Optional, Union

from repro import units
from repro.core.chunks import Chunk
from repro.netsim.engine import Binding, ChunkPlan, TransferEngine
from repro.netsim.params import TransferParams
from repro.obs import Observer
from repro.power.models import FineGrainedPowerModel
from repro.testbeds.specs import Testbed
from repro.units import Bytes, BytesPerSecond, Joules, Seconds

__all__ = [
    "TransferOutcome",
    "engine_options",
    "current_engine_options",
    "current_observer",
    "make_engine",
    "make_plans",
    "run_to_completion",
    "PROBE_INTERVAL_S",
]

#: Process-wide defaults applied by :func:`make_engine`; mutated only
#: through :func:`engine_options`.
_ENGINE_DEFAULTS: dict = {
    "record_trace": False,
    "background_traffic": None,
    "fast_path": True,
    "observer": None,
}


@contextlib.contextmanager
def engine_options(
    *,
    record_trace: bool = False,
    background_traffic=None,
    fast_path: bool = True,
    observe: Union[Observer, bool, None] = None,
) -> Iterator[None]:
    """Temporarily change how :func:`make_engine` builds engines.

    Algorithms construct their engines internally; wrapping a run in
    ``with engine_options(record_trace=True):`` makes every engine
    record its per-step trace, which :func:`run_to_completion` then
    attaches to the outcome as ``extra["trace"]``. Passing
    ``background_traffic`` (time -> competing bytes/s) subjects every
    engine to changing network conditions — the scenario the adaptive
    algorithms are designed for. ``fast_path=False`` forces every
    engine onto the pure fixed-``dt`` stepper (used by the equivalence
    tests and the benchmark's baseline arm).

    ``observe`` attaches an observability layer (metrics + structured
    events, see ``repro.obs``): pass an :class:`~repro.obs.Observer`
    to collect into, or ``True`` to create a fresh one — retrieve it
    with :func:`current_observer` inside the block. ``None``/``False``
    (the default) keeps every instrumented call site on its zero-cost
    disabled path.
    """
    previous = dict(_ENGINE_DEFAULTS)
    if observe is True:
        observer: Optional[Observer] = Observer()
    elif isinstance(observe, Observer):
        observer = observe
    else:
        observer = None
    _ENGINE_DEFAULTS["record_trace"] = record_trace
    _ENGINE_DEFAULTS["background_traffic"] = background_traffic
    _ENGINE_DEFAULTS["fast_path"] = fast_path
    _ENGINE_DEFAULTS["observer"] = observer
    try:
        yield
    finally:
        _ENGINE_DEFAULTS.update(previous)


def current_engine_options() -> dict:
    """The active :func:`engine_options` as a picklable dict.

    ``observe`` is reduced to a bool (observers hold process-local
    state and never cross a process boundary); ``background_traffic``
    must itself be picklable to ship to campaign workers —
    :class:`~repro.netsim.engine.PiecewiseTraffic` is, lambdas are not.
    Used by ``Campaign.run(workers=N)`` to re-apply the caller's
    options inside every worker process.
    """
    return {
        "record_trace": _ENGINE_DEFAULTS["record_trace"],
        "background_traffic": _ENGINE_DEFAULTS["background_traffic"],
        "fast_path": _ENGINE_DEFAULTS["fast_path"],
        "observe": _ENGINE_DEFAULTS["observer"] is not None,
    }


def current_observer() -> Optional[Observer]:
    """The active observer (``None`` unless inside an
    ``engine_options(observe=...)`` block)."""
    return _ENGINE_DEFAULTS["observer"]

#: The paper's probe window: "Each concurrency level is executed for
#: five second time intervals" (HTEE), "calculates the throughput in
#: every five seconds" (SLAEE).
PROBE_INTERVAL_S = 5.0


@dataclass
class TransferOutcome:
    """What one algorithm run produced on one testbed.

    ``throughput`` is the whole-transfer average payload rate in
    bytes/s; ``steady_throughput`` excludes any adaptive search phase
    (equal to ``throughput`` for non-adaptive algorithms).
    ``efficiency`` is the paper's throughput/energy ratio, in
    Mbps per joule — comparable within a testbed, normalized by the
    brute-force best when plotted.
    """

    algorithm: str
    testbed: str
    max_channels: int
    duration_s: Seconds
    bytes_moved: Bytes
    energy_joules: Joules
    files_moved: int = 0
    steady_throughput: Optional[BytesPerSecond] = None
    final_concurrency: Optional[int] = None
    extra: dict = field(default_factory=dict)

    @property
    def throughput(self) -> BytesPerSecond:
        """Average payload rate over the whole transfer (bytes/s)."""
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_moved / self.duration_s

    @property
    def throughput_mbps(self) -> float:
        """Average payload rate in Mbps (decimal megabits/second)."""
        return units.to_mbps(self.throughput)

    @property
    def efficiency(self) -> float:
        """Throughput/energy ratio (Mbps per joule)."""
        if self.energy_joules <= 0:
            return 0.0
        return self.throughput_mbps / self.energy_joules

    def summary(self) -> str:
        """One human-readable line: algorithm, testbed, rate, joules."""
        return (
            f"{self.algorithm:>7s} @cc={self.max_channels:<3d} on {self.testbed}: "
            f"{self.throughput_mbps:8.1f} Mbps, {self.energy_joules:9.1f} J, "
            f"{self.duration_s:7.1f} s"
        )


def make_engine(
    testbed: Testbed,
    *,
    binding: Binding = Binding.PACK,
    work_stealing: bool = True,
    record_trace: bool = False,
) -> TransferEngine:
    """A transfer engine wired to the testbed's path, endpoints and
    calibrated fine-grained power model."""
    model = FineGrainedPowerModel(testbed.coefficients)
    return TransferEngine(
        testbed.path,
        testbed.source,
        testbed.destination,
        model.power,
        dt=testbed.engine_dt,
        binding=binding,
        work_stealing=work_stealing,
        record_trace=record_trace or _ENGINE_DEFAULTS["record_trace"],
        background_traffic=_ENGINE_DEFAULTS["background_traffic"],
        fast_path=_ENGINE_DEFAULTS["fast_path"],
        observer=_ENGINE_DEFAULTS["observer"],
    )


def make_plans(chunks: list[Chunk], params: list[TransferParams]) -> list[ChunkPlan]:
    """Zip chunks with their parameter sets into engine chunk plans."""
    if len(chunks) != len(params):
        raise ValueError("chunks and params must align")
    return [
        ChunkPlan(name=chunk.name, files=chunk.files, params=p)
        for chunk, p in zip(chunks, params, strict=True)
    ]


def run_to_completion(
    engine: TransferEngine,
    *,
    algorithm: str,
    testbed: str,
    max_channels: int,
    max_time: Seconds = 1e7,
) -> TransferOutcome:
    """Drive ``engine`` to the end (bounded by ``max_time`` seconds of
    simulated time) and package the outcome."""
    engine.run(max_time=max_time)
    outcome = TransferOutcome(
        algorithm=algorithm,
        testbed=testbed,
        max_channels=max_channels,
        duration_s=engine.time,
        bytes_moved=engine.total_bytes,
        energy_joules=engine.total_energy,
        files_moved=engine.total_files,
    )
    if engine.record_trace and engine.trace:
        outcome.extra["trace"] = engine.trace
    if engine.component_energy:
        outcome.extra["component_energy"] = dict(engine.component_energy)
    outcome.extra["wire_bytes"] = engine.total_wire_bytes
    return outcome
