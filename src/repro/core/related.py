"""Related-work baselines (Section 5 of the paper).

The paper positions its contribution against two older lines of
throughput-optimization work, both energy-agnostic:

* **TCP buffer tuning** [29, 37, 40] — "The first attempts to improve
  the data transfer throughput at the application layer were made
  through buffer size tuning." A single stream with its buffer sized to
  the BDP (subject to the OS maximum).
* **PCP-style staged probing** [47] — "PCP algorithm is proposed to
  find optimal values for transfer parameters such as pipelining,
  concurrency and parallelism." A throughput-only online search: set
  per-chunk pipelining/parallelism by formula, then climb concurrency
  (doubling) while the measured throughput keeps improving — no energy
  term anywhere.

Implementing them makes the paper's §5 claims testable: parallel
streams beat buffer tuning once the OS buffer ceiling is below the BDP
(Lu et al. [33]), and throughput-only tuning lands near ProMC's energy
bill rather than HTEE's.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.core.allocation import chunk_params, htee_weights
from repro.core.chunks import PartitionPolicy, partition_files
from repro.core.htee import scaled_allocation
from repro.core.scheduler import (
    PROBE_INTERVAL_S,
    TransferOutcome,
    make_engine,
    make_plans,
    run_to_completion,
)
from repro.datasets.files import Dataset
from repro.netsim.engine import Binding, ChunkPlan, TransferEngine
from repro.netsim.params import TransferParams
from repro.power.models import FineGrainedPowerModel
from repro.testbeds.specs import Testbed

__all__ = ["BufferTuningAlgorithm", "PCPAlgorithm"]


@dataclass(frozen=True)
class BufferTuningAlgorithm:
    """Single-stream transfer with an auto-tuned TCP buffer.

    The classic recipe: size the socket buffer to the bandwidth-delay
    product, clamped by the OS-configurable maximum (``os_max_buffer``;
    the testbed's configured TCP buffer is treated as that maximum).
    Everything else stays untuned — one channel, one stream, no
    pipelining.
    """

    os_max_buffer: Optional[float] = None  # default: the testbed's max
    name: str = "BufTune"

    def tuned_buffer(self, testbed: Testbed) -> float:
        """BDP-sized buffer, clamped by the OS-configurable maximum."""
        ceiling = self.os_max_buffer if self.os_max_buffer is not None else testbed.path.tcp_buffer
        return min(testbed.path.bdp, ceiling) if testbed.path.bdp > 0 else ceiling

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int = 1) -> TransferOutcome:
        """One single-stream transfer with the auto-tuned buffer."""
        buffer = self.tuned_buffer(testbed)
        tuned_path = dataclasses.replace(testbed.path, tcp_buffer=buffer)
        model = FineGrainedPowerModel(testbed.coefficients)
        engine = TransferEngine(
            tuned_path,
            testbed.source,
            testbed.destination,
            model.power,
            dt=testbed.engine_dt,
            binding=Binding.SPREAD,
            work_stealing=False,
        )
        engine.add_chunk(
            ChunkPlan("all-files", tuple(dataset), TransferParams(1, 1, 1))
        )
        outcome = run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=1
        )
        outcome.extra["tuned_buffer"] = buffer
        return outcome


@dataclass(frozen=True)
class PCPAlgorithm:
    """Throughput-only staged parameter search (after Yildirim et al.).

    Per-chunk pipelining and parallelism come from the same formulas as
    the energy-aware algorithms (they are throughput formulas); the
    concurrency search doubles the channel count every probe window as
    long as throughput improves by at least ``improvement_threshold``,
    then settles on the best-throughput level — energy never enters the
    decision.
    """

    policy: PartitionPolicy = PartitionPolicy()
    probe_interval: float = PROBE_INTERVAL_S
    improvement_threshold: float = 0.05
    name: str = "PCP"

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> TransferOutcome:
        """Double the concurrency each probe while throughput improves,
        then finish at the best-throughput level (energy-blind)."""
        if max_channels < 1:
            raise ValueError("max_channels must be >= 1")
        bdp = testbed.path.bdp
        chunks = partition_files(dataset, bdp, self.policy)
        weights = htee_weights(chunks)
        plans = make_plans(
            chunks, [chunk_params(c, bdp, testbed.path.tcp_buffer, 1) for c in chunks]
        )
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=True)
        for plan in plans:
            engine.add_chunk(plan, open_channels=False)
        names = [p.name for p in plans]

        probes: list[tuple[int, float]] = []
        level = 1
        best_throughput = 0.0
        while level <= max_channels and not engine.finished:
            engine.set_allocation(dict(zip(names, scaled_allocation(weights, level), strict=True)))
            before = engine.snapshot()
            engine.run(self.probe_interval)
            throughput = engine.snapshot().throughput_since(before)
            probes.append((level, throughput))
            if throughput < best_throughput * (1.0 + self.improvement_threshold):
                break  # stopped improving
            best_throughput = max(best_throughput, throughput)
            level = min(level * 2, max_channels) if level != max_channels else max_channels + 1

        best_level = max(probes, key=lambda p: p[1])[0] if probes else 1
        engine.set_allocation(dict(zip(names, scaled_allocation(weights, best_level), strict=True)))
        outcome = run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=max_channels
        )
        outcome.final_concurrency = best_level
        outcome.extra["probes"] = probes
        return outcome
