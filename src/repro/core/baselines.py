"""Energy-agnostic baselines the paper compares against (Section 3).

* **GUC** (globus-url-copy) — no tuning at all: one chunk, pipelining,
  parallelism and concurrency all 1. "A use case in which a user
  without much experience on GridFTP wants to transfer his/her files."
* **GO** (Globus Online) — fixed file-size buckets (<50 MB, 50-250 MB,
  >250 MB), fixed per-bucket parameters (e.g. pipelining 20 /
  parallelism 2 for small files), concurrency fixed at 2, chunks
  transferred one by one, and channels spread over every available
  transfer server (the energy-expensive implementation detail the
  paper highlights).
* **SC** (Single Chunk) — network-aware per-chunk parameters (same
  formulas as MinE) but chunks transferred *sequentially*, the whole
  user-chosen channel budget pointed at the current chunk.
* **ProMC** (Pro-active Multi Chunk) — same partitioning, all chunks
  transferred *simultaneously*, the channel budget spread across
  chunks proportional to bytes; the throughput champion.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro import units
from repro.core.allocation import chunk_params, proportional_allocation
from repro.core.chunks import Chunk, PartitionPolicy, partition_files
from repro.core.scheduler import TransferOutcome, make_engine, make_plans, run_to_completion
from repro.datasets.files import Dataset, FileInfo
from repro.netsim.engine import Binding, ChunkPlan, TransferEngine
from repro.netsim.params import TransferParams
from repro.testbeds.specs import Testbed

__all__ = ["GucAlgorithm", "GlobusOnlineAlgorithm", "SingleChunkAlgorithm", "ProMCAlgorithm"]


def _run_sequential(
    engine: TransferEngine,
    plans: list[ChunkPlan],
    *,
    algorithm: str,
    testbed: str,
    max_channels: int,
) -> TransferOutcome:
    """Divide-and-transfer: chunks one by one, each with its own
    channel set (the SC / GO schedule)."""
    for plan in plans:
        engine.add_chunk(plan, open_channels=False)
    for plan in plans:
        engine.set_chunk_channels(plan.name, plan.params.concurrency)
        state = engine.chunks[plan.name]

        def chunk_done(state=state, name=plan.name) -> bool:
            return state.exhausted and all(
                not c.busy for c in engine.channels_for(name)
            )

        engine.run(until=chunk_done, max_time=1e7)
        if not chunk_done():  # pragma: no cover - safety net
            raise RuntimeError("sequential transfer failed to converge")
        engine.set_chunk_channels(plan.name, 0)
    outcome = TransferOutcome(
        algorithm=algorithm,
        testbed=testbed,
        max_channels=max_channels,
        duration_s=engine.time,
        bytes_moved=engine.total_bytes,
        energy_joules=engine.total_energy,
        files_moved=engine.total_files,
    )
    if engine.record_trace and engine.trace:
        outcome.extra["trace"] = engine.trace
    if engine.component_energy:
        outcome.extra["component_energy"] = dict(engine.component_energy)
    outcome.extra["wire_bytes"] = engine.total_wire_bytes
    return outcome


@dataclass(frozen=True)
class GucAlgorithm:
    """globus-url-copy with default parameters (the untuned floor)."""

    pipelining: int = 1
    parallelism: int = 1
    concurrency: int = 1
    name: str = "GUC"

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int = 1) -> TransferOutcome:
        """One untuned transfer: a single channel, stream and pipeline."""
        # GUC ignores max_channels: its performance is concurrency-
        # independent in the paper's figures (a flat reference line).
        plan = ChunkPlan(
            name="all-files",
            files=tuple(dataset),
            params=TransferParams(
                pipelining=self.pipelining,
                parallelism=self.parallelism,
                concurrency=self.concurrency,
            ),
        )
        engine = make_engine(testbed, binding=Binding.SPREAD, work_stealing=False)
        engine.add_chunk(plan)
        return run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=self.concurrency
        )


@dataclass(frozen=True)
class GlobusOnlineAlgorithm:
    """The cloud-hosted Globus Online tuning profile.

    Fixed size buckets and fixed parameters; concurrency is always 2
    and channels are spread over every data-transfer node of the site.

    ``verify_checksums`` models GO's integrity feature, which the paper
    disabled for a fair comparison because it "causes significant
    slowdowns in average transfer throughput": every byte is hashed on
    both ends, costing extra CPU work per byte and capping per-channel
    rate at the hash pipeline's speed.
    """

    small_threshold: float = 50 * units.MB
    large_threshold: float = 250 * units.MB
    concurrency: int = 2
    verify_checksums: bool = False
    #: MD5-class hash pipeline rate on 2015 server cores, bytes/s.
    checksum_rate: float = 60 * units.MB
    #: Extra payload-CPU work factor while checksumming.
    checksum_cpu_factor: float = 1.6
    name: str = "GO"

    #: Fixed per-bucket (pipelining, parallelism): the paper quotes
    #: pipelining 20 / parallelism 2 for small files; medium and large
    #: buckets keep parallelism 2 with shallower pipelines.
    small_params: tuple[int, int] = (20, 2)
    medium_params: tuple[int, int] = (5, 2)
    large_params: tuple[int, int] = (1, 2)

    def buckets(self, dataset: Dataset) -> list[tuple[str, tuple[FileInfo, ...], tuple[int, int]]]:
        """GO's fixed size buckets: (name, files, (pipelining, parallelism))."""
        small = tuple(f for f in dataset if f.size < self.small_threshold)
        medium = tuple(
            f for f in dataset if self.small_threshold <= f.size <= self.large_threshold
        )
        large = tuple(f for f in dataset if f.size > self.large_threshold)
        out = []
        for name, files, fixed in (
            ("go-small", small, self.small_params),
            ("go-medium", medium, self.medium_params),
            ("go-large", large, self.large_params),
        ):
            if files:
                out.append((name, files, fixed))
        return out

    def _checksum_testbed(self, testbed: Testbed) -> Testbed:
        """A copy of the testbed whose servers pay the hashing tax."""
        server = testbed.source.server
        slowed = dataclasses.replace(
            server,
            per_channel_rate=min(server.per_channel_rate, self.checksum_rate),
            core_rate=server.core_rate / self.checksum_cpu_factor,
        )
        return dataclasses.replace(
            testbed,
            source=dataclasses.replace(testbed.source, server=slowed),
            destination=dataclasses.replace(testbed.destination, server=slowed),
        )

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int = 2) -> TransferOutcome:
        """Transfer the fixed buckets one by one at concurrency 2,
        channels spread over every transfer node."""
        # GO's concurrency is fixed at 2; max_channels is ignored, as in
        # the paper ("its performance is independent of user-defined
        # maximum value of concurrency").
        if self.verify_checksums:
            testbed = self._checksum_testbed(testbed)
        plans = [
            ChunkPlan(
                name=name,
                files=files,
                params=TransferParams(
                    pipelining=pp, parallelism=p, concurrency=self.concurrency
                ),
            )
            for name, files, (pp, p) in self.buckets(dataset)
        ]
        engine = make_engine(testbed, binding=Binding.SPREAD, work_stealing=False)
        outcome = _run_sequential(
            engine,
            plans,
            algorithm=self.name,
            testbed=testbed.name,
            max_channels=self.concurrency,
        )
        outcome.extra["verify_checksums"] = self.verify_checksums
        return outcome


@dataclass(frozen=True)
class SingleChunkAlgorithm:
    """SC: network-aware divide-and-transfer, chunks one at a time."""

    policy: PartitionPolicy = PartitionPolicy()
    name: str = "SC"

    def plan(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> list[ChunkPlan]:
        """Per-chunk parameters with the whole budget given to each chunk
        (chunks run one at a time)."""
        bdp = testbed.path.bdp
        chunks = partition_files(dataset, bdp, self.policy)
        params = [
            chunk_params(chunk, bdp, testbed.path.tcp_buffer, max_channels)
            for chunk in chunks
        ]
        return make_plans(chunks, params)

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> TransferOutcome:
        """Divide and transfer: each chunk sequentially with its own
        network-aware parameter set."""
        if max_channels < 1:
            raise ValueError("max_channels must be >= 1")
        plans = self.plan(testbed, dataset, max_channels)
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=False)
        return _run_sequential(
            engine, plans, algorithm=self.name, testbed=testbed.name, max_channels=max_channels
        )


@dataclass(frozen=True)
class ProMCAlgorithm:
    """ProMC: all chunks at once, aggressive channel usage."""

    policy: PartitionPolicy = PartitionPolicy()
    name: str = "ProMC"

    def plan(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> list[ChunkPlan]:
        """Per-chunk parameters with the channel budget spread across
        chunks proportional to their bytes."""
        bdp = testbed.path.bdp
        chunks = partition_files(dataset, bdp, self.policy)
        allocation = proportional_allocation(chunks, max_channels)
        params = [
            chunk_params(chunk, bdp, testbed.path.tcp_buffer, cc)
            for chunk, cc in zip(chunks, allocation, strict=True)
        ]
        return make_plans(chunks, params)

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> TransferOutcome:
        """Transfer every chunk simultaneously with aggressive channel
        use (the throughput-first schedule)."""
        if max_channels < 1:
            raise ValueError("max_channels must be >= 1")
        plans = self.plan(testbed, dataset, max_channels)
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=True)
        for plan in plans:
            engine.add_chunk(plan)
        outcome = run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=max_channels
        )
        outcome.final_concurrency = sum(p.params.concurrency for p in plans)
        return outcome
