"""Algorithm 2 — High Throughput Energy-Efficient (HTEE) transfer,
plus the brute-force (BF) oracle used as its upper reference.

HTEE hunts the concurrency sweet spot where *throughput per joule* is
maximized: it weights chunks by ``log(size) * log(fileCount)``, then
probes concurrency levels 1, 3, 5, ... maxChannel for five seconds
each — halving the search space by stepping in twos — measuring the
throughput/energy ratio of every probe window, and finishes the
transfer at the argmax level. The probes move real payload, so the
search cost is bounded (and visible on the LAN testbed, exactly as the
paper reports).

BF is "a revised version of the HTEE algorithm in a way that it skips
the search phase and runs the transfer with pre-defined concurrency
levels": running it across cc = 1..20 yields the best possible
throughput/energy ratio that Figures 2-4(c) normalize against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import chunk_params, htee_weights
from repro.core.chunks import Chunk, PartitionPolicy, partition_files
from repro.core.scheduler import (
    PROBE_INTERVAL_S,
    TransferOutcome,
    current_observer,
    make_engine,
    make_plans,
    run_to_completion,
)
from repro.datasets.files import Dataset
from repro.netsim.engine import Binding
from repro.testbeds.specs import Testbed
from repro import units

__all__ = ["HTEEAlgorithm", "BruteForceAlgorithm", "probe_ladder", "scaled_allocation"]


def probe_ladder(max_channels: int) -> list[int]:
    """The paper's search ladder: "1, 3, 5, ... maxChannel".

    Stepping in twos halves the search cost, but a literal
    ``range(1, max+1, 2)`` silently skips ``maxChannel`` whenever it is
    even (cap 8 would probe only 1/3/5/7, so the cap could never win
    the argmax — contradicting the quoted ladder). A final probe at
    ``max_channels`` is appended whenever the stride skips it.
    """
    if max_channels < 1:
        raise ValueError("max_channels must be >= 1")
    levels = list(range(1, max_channels + 1, 2))
    if levels[-1] != max_channels:
        levels.append(max_channels)
    return levels


def scaled_allocation(weights: list[float], total_channels: int) -> list[int]:
    """Distribute ``total_channels`` across chunks by weight (largest
    remainder). Weights are normalized internally, so the result sums
    to exactly ``total_channels`` for *any* non-negative weight list —
    not just pre-normalized ones. Zeros are allowed when there are
    fewer channels than chunks — work stealing keeps the starved
    chunk's files reachable."""
    if total_channels < 0:
        raise ValueError("total_channels must be >= 0")
    if not weights:
        return []
    if any(w < 0 for w in weights):
        raise ValueError("weights must be >= 0")
    total_weight = sum(weights)
    if total_weight <= 0:
        weights = [1.0] * len(weights)
        total_weight = float(len(weights))
    shares = [total_channels * w / total_weight for w in weights]
    allocation = [math.floor(s) for s in shares]
    order = sorted(range(len(weights)), key=lambda i: shares[i] - allocation[i], reverse=True)
    idx = 0
    while sum(allocation) < total_channels:
        allocation[order[idx % len(order)]] += 1
        idx += 1
    return allocation


@dataclass(frozen=True)
class HTEEAlgorithm:
    """High Throughput Energy-Efficient transfer (Algorithm 2)."""

    policy: PartitionPolicy = PartitionPolicy()
    probe_interval: float = PROBE_INTERVAL_S
    name: str = "HTEE"

    def plan(self, testbed: Testbed, dataset: Dataset) -> tuple[list[Chunk], list[float]]:
        """Partition and weight the chunks (lines 2-13)."""
        chunks = partition_files(dataset, testbed.path.bdp, self.policy)
        return chunks, htee_weights(chunks)

    def run(self, testbed: Testbed, dataset: Dataset, max_channels: int) -> TransferOutcome:
        """Probe concurrency levels 1, 3, 5, ... ``max_channels`` for five
        seconds each, then finish at the most efficient level."""
        if max_channels < 1:
            raise ValueError("max_channels must be >= 1")
        chunks, weights = self.plan(testbed, dataset)
        bdp = testbed.path.bdp
        plans = make_plans(
            chunks,
            [chunk_params(c, bdp, testbed.path.tcp_buffer, 1) for c in chunks],
        )
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=True)
        for plan in plans:
            engine.add_chunk(plan, open_channels=False)

        # --- search phase (lines 14-22): probe cc = 1, 3, 5, ...
        # maxChannel (the ladder includes the cap even when the stride
        # of two would skip it — see probe_ladder). Each probe estimates
        # the *whole-transfer* throughput/energy ratio the figure plots:
        # at window rate R and window power P, finishing the dataset
        # would take D/R seconds and cost P*D/R joules, so the projected
        # ratio is R / (P*D/R) = R^2/(P*D). D is common to every level,
        # so the score is R^2 / E_window.
        observer = current_observer()
        probes: list[tuple[int, float, float, float]] = []  # (cc, thr, joules, score)
        for level in probe_ladder(max_channels):
            if engine.finished:
                break
            allocation = scaled_allocation(weights, level)
            engine.set_allocation(dict(zip((p.name for p in plans), allocation, strict=True)))
            before = engine.snapshot()
            engine.run(self.probe_interval)
            after = engine.snapshot()
            throughput = after.throughput_since(before)
            joules = after.energy_since(before)
            mbps = units.to_mbps(throughput)
            score = mbps * mbps / joules if joules > 0 else 0.0
            probes.append((level, throughput, joules, score))
            if observer is not None:
                observer.probe_window(
                    engine.time, self.name, level, throughput, joules, score
                )

        # --- line 23-24: run the rest at the most efficient level.
        # Among levels whose ratios are within measurement noise of the
        # best (5%), prefer the highest concurrency: HTEE's objective is
        # maximum throughput subject to the energy-efficiency constraint.
        if probes:
            best_ratio = max(p[3] for p in probes)
            best_level = max(p[0] for p in probes if p[3] >= 0.95 * best_ratio)
        else:  # transfer finished before the first probe (tiny dataset)
            best_level = 1
        allocation = scaled_allocation(weights, best_level)
        engine.set_allocation(dict(zip((p.name for p in plans), allocation, strict=True)))

        steady_start = engine.snapshot()
        outcome = run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=max_channels
        )
        steady_end = engine.snapshot()
        if steady_end.time > steady_start.time:
            outcome.steady_throughput = steady_end.throughput_since(steady_start)
        else:
            outcome.steady_throughput = outcome.throughput
        outcome.final_concurrency = best_level
        outcome.extra["probes"] = probes
        return outcome


@dataclass(frozen=True)
class BruteForceAlgorithm:
    """BF: HTEE's allocation at one fixed concurrency, no search."""

    policy: PartitionPolicy = PartitionPolicy()
    name: str = "BF"

    def run(self, testbed: Testbed, dataset: Dataset, concurrency: int) -> TransferOutcome:
        """One full transfer at a fixed concurrency, no search phase."""
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        chunks = partition_files(dataset, testbed.path.bdp, self.policy)
        weights = htee_weights(chunks)
        allocation = scaled_allocation(weights, concurrency)
        bdp = testbed.path.bdp
        plans = make_plans(
            chunks,
            [
                chunk_params(c, bdp, testbed.path.tcp_buffer, max(1, cc))
                for c, cc in zip(chunks, allocation, strict=True)
            ],
        )
        engine = make_engine(testbed, binding=Binding.PACK, work_stealing=True)
        for plan, cc in zip(plans, allocation, strict=True):
            engine.add_chunk(plan, open_channels=False)
            engine.set_chunk_channels(plan.name, cc)
        outcome = run_to_completion(
            engine, algorithm=self.name, testbed=testbed.name, max_channels=concurrency
        )
        outcome.final_concurrency = concurrency
        return outcome
