"""Per-chunk parameter formulas and channel-allocation strategies.

These are the arithmetic hearts of Algorithms 1 and 2:

* Algorithm 1 (MinE), lines 8-10::

      pipelining  = ceil(BDP / avgFileSize)
      parallelism = max(min(ceil(BDP/bufSize), ceil(avgFileSize/bufSize)), 1)
      concurrency = min(ceil(BDP/avgFileSize), ceil((availChannel+1)/2))

  walked small -> large with ``availChannel`` decremented as channels
  are claimed — small chunks grab up to half the remaining pool, large
  chunks land at a single channel.

* Algorithm 2 (HTEE), lines 6-13::

      weight_i = log(chunk_i.size) * log(chunk_i.fileCount)
      channelAllocation_i = floor(maxChannel * weight_i / totalWeight)
"""

from __future__ import annotations

import math

from repro.core.chunks import Chunk
from repro.netsim.params import TransferParams

__all__ = [
    "pipelining_level",
    "parallelism_level",
    "mine_concurrency",
    "chunk_params",
    "htee_weights",
    "htee_channel_allocation",
    "mine_walk",
    "proportional_allocation",
]


def pipelining_level(bdp: float, avg_file_size: float) -> int:
    """Line 8: ``ceil(BDP / avgFileSize)``, at least 1.

    Many small files (avg << BDP) get deep pipelines; large files get 1.
    """
    if avg_file_size <= 0:
        return 1
    return max(1, math.ceil(bdp / avg_file_size))


def parallelism_level(bdp: float, avg_file_size: float, buffer_size: float) -> int:
    """Line 9: ``max(min(ceil(BDP/buf), ceil(avgFileSize/buf)), 1)``.

    Streams are only added when the buffer is the binding constraint
    (``buf < BDP``) *and* files are big enough to split (``avg > buf``).
    """
    if buffer_size <= 0:
        raise ValueError(f"buffer_size must be > 0, got {buffer_size}")
    by_bdp = math.ceil(bdp / buffer_size)
    by_file = math.ceil(avg_file_size / buffer_size) if avg_file_size > 0 else 1
    return max(min(by_bdp, by_file), 1)


def mine_concurrency(bdp: float, avg_file_size: float, available_channels: int) -> int:
    """Line 10: ``min(ceil(BDP/avgFileSize), ceil((availChannel+1)/2))``,
    additionally capped by the channels actually left in the pool.

    The published formula returns 1 even with an empty pool
    (``ceil(1/2)``); we cap at ``available_channels`` so the user's
    channel budget is honored (the paper's Figures 2-4 evaluate MinE
    *at* each concurrency level, which implies the budget binds). A
    chunk allotted zero channels is reached later via the multi-chunk
    work-stealing mechanism.
    """
    if available_channels < 0:
        raise ValueError("available_channels must be >= 0")
    if available_channels == 0:
        return 0
    by_size = max(1, math.ceil(bdp / avg_file_size)) if avg_file_size > 0 else 1
    by_pool = math.ceil((available_channels + 1) / 2)
    return min(by_size, by_pool, available_channels)


def chunk_params(chunk: Chunk, bdp: float, buffer_size: float, concurrency: int) -> TransferParams:
    """The full parameter set of one chunk under the MinE formulas."""
    avg = chunk.average_file_size
    return TransferParams(
        pipelining=pipelining_level(bdp, avg),
        parallelism=parallelism_level(bdp, avg, buffer_size),
        concurrency=concurrency,
    )


def mine_walk(chunks: list[Chunk], bdp: float, buffer_size: float, max_channels: int) -> list[TransferParams]:
    """Algorithm 1's small->large walk: returns one parameter set per
    chunk (same order), decrementing the channel pool as it goes."""
    if max_channels < 1:
        raise ValueError("max_channels must be >= 1")
    available = max_channels
    params: list[TransferParams] = []
    for chunk in chunks:
        concurrency = mine_concurrency(bdp, chunk.average_file_size, available)
        params.append(chunk_params(chunk, bdp, buffer_size, concurrency))
        available = max(0, available - concurrency)
    return params


def htee_weights(chunks: list[Chunk]) -> list[float]:
    """Lines 6-11 of Algorithm 2: normalized ``log(size)*log(count)``
    weights. Degenerate chunks (a single tiny file) get a floor weight
    so they are never starved."""
    if not chunks:
        return []
    raw = []
    for chunk in chunks:
        weight = math.log(max(chunk.total_size, 2)) * math.log(max(chunk.file_count, 2))
        raw.append(max(weight, 1e-9))
    total = sum(raw)
    return [w / total for w in raw]


def htee_channel_allocation(chunks: list[Chunk], max_channels: int) -> list[int]:
    """Line 12: ``floor(maxChannel * weight_i)`` with two practical
    guards — every non-empty chunk keeps at least one channel, and the
    total never exceeds ``max_channels`` (channels are reclaimed from
    the heaviest chunks first when the +1 floors overflow)."""
    if max_channels < 1:
        raise ValueError("max_channels must be >= 1")
    weights = htee_weights(chunks)
    if max_channels < len(chunks):
        allocation = [0] * len(chunks)
        heaviest = sorted(range(len(chunks)), key=lambda i: weights[i], reverse=True)
        for i in heaviest[:max_channels]:
            allocation[i] = 1
        return allocation
    allocation = [max(1, math.floor(max_channels * w)) for w in weights]
    while sum(allocation) > max_channels and any(a > 1 for a in allocation):
        richest = max(range(len(allocation)), key=lambda i: allocation[i])
        allocation[richest] -= 1
    return allocation


def proportional_allocation(chunks: list[Chunk], max_channels: int) -> list[int]:
    """ProMC-style aggressive allocation: spread the entire channel
    budget across chunks proportional to their bytes (largest-remainder
    rounding). Every non-empty chunk keeps at least one channel when
    the budget allows; with fewer channels than chunks, the largest
    chunks are served first (the rest drain via work stealing). The
    result always sums to exactly ``max_channels``."""
    if max_channels < 1:
        raise ValueError("max_channels must be >= 1")
    if not chunks:
        return []
    n = len(chunks)
    if max_channels <= n:
        allocation = [0] * n
        by_size = sorted(range(n), key=lambda i: chunks[i].total_size, reverse=True)
        for i in by_size[:max_channels]:
            allocation[i] = 1
        return allocation
    total = sum(c.total_size for c in chunks)
    if total <= 0:
        allocation = [1] * n
        allocation[0] += max_channels - n
        return allocation
    shares = [max_channels * c.total_size / total for c in chunks]
    allocation = [max(1, math.floor(s)) for s in shares]
    remainders = sorted(range(n), key=lambda i: shares[i] - math.floor(shares[i]), reverse=True)
    idx = 0
    while sum(allocation) < max_channels:
        allocation[remainders[idx % n]] += 1
        idx += 1
    while sum(allocation) > max_channels and any(a > 1 for a in allocation):
        richest = max(range(n), key=lambda i: allocation[i])
        allocation[richest] -= 1
    return allocation
