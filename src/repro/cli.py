"""Command-line interface.

::

    python -m repro testbeds
    python -m repro dataset   -t xsede
    python -m repro transfer  -t xsede -a HTEE -c 12 --sparkline
    python -m repro sweep     -t futuregrid -l 1 2 4 8
    python -m repro sla       -t xsede --targets 95 80 50
    python -m repro figures   fig02 fig10
    python -m repro validate

Every command prints human-readable tables; ``--json`` writes the raw
results for downstream tooling.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence
from typing import Optional

from repro.core.scheduler import engine_options
from repro.harness import figures as figure_renderers
from repro.harness.reporting import (
    render_trace,
    save_outcomes_json,
    save_trace_csv,
)
from repro.harness.runner import ALGORITHMS, run_algorithm
from repro.harness.sweeps import (
    PAPER_SLA_TARGETS,
    brute_force_sweep,
    concurrency_sweep,
    energy_decomposition,
    sla_sweep,
)
from repro.netenergy.topology import didclab_topology, futuregrid_topology, xsede_topology
from repro.testbeds import ALL_TESTBEDS, testbed_by_name

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Energy-aware data transfer algorithms (SC'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("testbeds", help="list the evaluation testbeds")

    p = sub.add_parser("dataset", help="describe a testbed's paper dataset")
    _add_testbed(p)

    p = sub.add_parser("transfer", help="run one algorithm on one testbed")
    _add_testbed(p)
    p.add_argument("-a", "--algorithm", default="HTEE", choices=sorted(ALGORITHMS),
                   help="transfer algorithm (default HTEE)")
    p.add_argument("-c", "--max-channels", type=int, default=12,
                   help="channel budget (default 12)")
    p.add_argument("--json", type=Path, default=None, help="write the outcome as JSON")
    p.add_argument("--trace", type=Path, default=None,
                   help="write the per-step engine trace as CSV")
    p.add_argument("--sparkline", action="store_true",
                   help="print throughput/power sparklines")

    p = sub.add_parser("sweep", help="concurrency sweep (Figures 2-4 panels a/b)")
    _add_testbed(p)
    p.add_argument("-a", "--algorithms", nargs="+", default=None,
                   help="algorithms to sweep (default: the paper's six)")
    p.add_argument("-l", "--levels", nargs="+", type=int, default=None,
                   help="concurrency levels (default: 1 2 4 6 8 10 12)")
    p.add_argument("--json", type=Path, default=None)

    p = sub.add_parser("sla", help="SLAEE target sweep (Figures 5-7)")
    _add_testbed(p)
    p.add_argument("--targets", nargs="+", type=float, default=list(PAPER_SLA_TARGETS),
                   help="target percentages of the ProMC maximum")

    p = sub.add_parser("figures", help="regenerate paper figures/tables as text")
    p.add_argument("names", nargs="*", default=["all"],
                   help="fig01 fig02 ... fig10 table1 (default: all)")

    p = sub.add_parser("advise", help="closed-form plan: parameters + predictions")
    _add_testbed(p)
    p.add_argument("-c", "--max-channels", type=int, default=12)
    p.add_argument("-w", "--workload", default=None,
                   help="workload preset (default: the testbed's paper dataset); "
                        "one of: genomics climate video logs vm-images")

    p = sub.add_parser("fleet", help="annual provider-scale policy comparison")
    _add_testbed(p)
    p.add_argument("--jobs-per-day", type=float, default=4.0,
                   help="daily runs of the testbed's paper dataset (default 4)")
    p.add_argument("--sla", type=float, default=0.8,
                   help="SLA level for the slaee policy (default 0.8)")
    p.add_argument("--tariff", default="flat",
                   help="time-of-use tariff preset: flat | peak-offpeak | "
                        "green-midday (default flat)")
    p.add_argument("--start-hour", type=float, default=None,
                   help="anchor the daily runs at this hour on the tariff "
                        "clock (0-24); default: mean-rate pricing")

    p = sub.add_parser(
        "service",
        help="run a day of tenant traffic through the scheduling service",
    )
    _add_testbed(p)
    p.add_argument("-w", "--workload", default="diurnal",
                   help="workload preset: steady | diurnal | bursty "
                        "(default diurnal)")
    p.add_argument("-p", "--policy", default="price-threshold",
                   help="deferral policy: run-now | deadline-edf | "
                        "price-threshold | carbon-aware (default "
                        "price-threshold)")
    p.add_argument("--tariff", default="peak-offpeak",
                   help="tariff preset: flat | peak-offpeak | green-midday "
                        "(default peak-offpeak)")
    p.add_argument("--jobs", type=int, default=24,
                   help="tenant requests over the day (default 24)")
    p.add_argument("--day", type=float, default=3600.0,
                   help="length of the simulated day in seconds; job sizes "
                        "scale proportionally (default 3600)")
    p.add_argument("--seed", type=int, default=7,
                   help="workload seed (default 7)")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="admission concurrency cap (default 4)")
    p.add_argument("--max-per-tenant", type=int, default=None,
                   help="per-tenant running-job cap (default: none)")
    p.add_argument("-c", "--max-channels", type=int, default=4,
                   help="channel budget per ENERGY/BALANCED job (default 4)")
    p.add_argument("--events", action="store_true",
                   help="also print the job lifecycle event stream")
    p.add_argument("--grid", action="store_true",
                   help="run the reference dt-grid loop instead of the "
                        "event-horizon fast path (slow; identical results)")
    p.add_argument("--dataset-pool", type=int, default=None, metavar="N",
                   help="pre-draw N datasets per tenant and reuse them "
                        "across arrivals (exercises plan memoization; "
                        "default: fresh draw per job)")
    _add_topology(p)
    p.add_argument("--json", type=Path, nargs="?", const=Path("-"),
                   default=None, metavar="PATH",
                   help="emit the full report as JSON (to PATH, or stdout "
                        "when no path is given)")

    p = sub.add_parser(
        "fleet-service",
        help="run a day of tenant traffic across a sharded fleet of links",
    )
    _add_testbed(p)
    p.add_argument("-w", "--workload", default="diurnal",
                   help="workload preset: steady | diurnal | bursty "
                        "(default diurnal)")
    p.add_argument("-p", "--policy", default="price-threshold",
                   help="deferral policy: run-now | deadline-edf | "
                        "price-threshold | carbon-aware (default "
                        "price-threshold)")
    p.add_argument("--tariff", default="peak-offpeak",
                   help="tariff preset: flat | peak-offpeak | green-midday "
                        "(default peak-offpeak)")
    p.add_argument("--shards", type=int, default=8,
                   help="identical-link shards to run (default 8)")
    p.add_argument("--routing", default="tenant-hash",
                   help="dispatch heuristic: tenant-hash | least-loaded | "
                        "weighted | round-robin | topology-aware "
                        "(needs --topology; shards become leaf/pod "
                        "pairs) (default tenant-hash)")
    p.add_argument("--steal-threshold", type=float, default=4.0,
                   help="work-stealing saturation factor over the fleet's "
                        "mean relative backlog; 0 disables (default 4.0)")
    p.add_argument("--workers", type=int, default=None,
                   help="real process parallelism across shards "
                        "(default: min(shards, cpu count); 1 = inline)")
    p.add_argument("--jobs", type=int, default=96,
                   help="tenant requests over the day (default 96)")
    p.add_argument("--day", type=float, default=3600.0,
                   help="length of the simulated day in seconds; job sizes "
                        "scale proportionally (default 3600)")
    p.add_argument("--seed", type=int, default=7,
                   help="workload seed (default 7)")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="per-shard admission concurrency cap (default 4)")
    p.add_argument("--max-per-tenant", type=int, default=None,
                   help="per-shard per-tenant running-job cap (default: none)")
    p.add_argument("-c", "--max-channels", type=int, default=4,
                   help="channel budget per ENERGY/BALANCED job (default 4)")
    p.add_argument("--dataset-pool", type=int, default=None, metavar="N",
                   help="pre-draw N datasets per tenant and reuse them "
                        "across arrivals (exercises plan memoization; "
                        "default: fresh draw per job)")
    p.add_argument("--context", type=Path, default=None, metavar="PATH",
                   help="warm-start plan context file: loaded before the "
                        "run if it exists, updated after (GContext-style)")
    _add_topology(p)
    p.add_argument("--events", action="store_true",
                   help="also print the fleet dispatch event stream")
    p.add_argument("--grid", action="store_true",
                   help="run every shard on the reference dt-grid loop "
                        "instead of the fast path (slow; identical results)")
    p.add_argument("--json", type=Path, nargs="?", const=Path("-"),
                   default=None, metavar="PATH",
                   help="emit the fleet report as JSON (to PATH, or stdout "
                        "when no path is given)")

    p = sub.add_parser(
        "chaos",
        help="replay fault scenarios against the service and judge the "
             "day against SLO budgets",
    )
    _add_testbed(p)
    p.add_argument("-s", "--scenario", default="all",
                   help="scenario preset: brownout | crash-storm | "
                        "tariff-spike | flash-crowd | traffic-surge | "
                        "spine-congestion | all (default all)")
    p.add_argument("-p", "--policy", default="all",
                   help="deferral policy: run-now | deadline-edf | "
                        "price-threshold | carbon-aware | all (default all)")
    p.add_argument("-w", "--workload", default="steady",
                   help="base workload preset: steady | diurnal | bursty "
                        "(default steady)")
    p.add_argument("--tariff", default="peak-offpeak",
                   help="tariff preset: flat | peak-offpeak | green-midday "
                        "(default peak-offpeak)")
    p.add_argument("--jobs", type=int, default=24,
                   help="tenant requests over the day (default 24)")
    p.add_argument("--day", type=float, default=3600.0,
                   help="length of the simulated day in seconds; job sizes "
                        "and fault timings scale proportionally "
                        "(default 3600)")
    p.add_argument("--seed", type=int, default=7,
                   help="workload + scenario seed (default 7)")
    p.add_argument("--shards", type=int, default=1,
                   help="run the scenario against a fleet of this many "
                        "shards instead of one service (default 1)")
    p.add_argument("--workers", type=int, default=1,
                   help="real process parallelism across shards "
                        "(default 1 = inline)")
    p.add_argument("--max-concurrent", type=int, default=4,
                   help="admission concurrency cap (default 4)")
    p.add_argument("-c", "--max-channels", type=int, default=4,
                   help="channel budget per ENERGY/BALANCED job (default 4)")
    p.add_argument("--dataset-pool", type=int, default=None, metavar="N",
                   help="pre-draw N datasets per tenant and reuse them "
                        "across arrivals (default: fresh draw per job)")
    _add_topology(p)
    p.add_argument("--grid", action="store_true",
                   help="run the reference dt-grid loop instead of the "
                        "event-horizon fast path (slow; identical results)")
    p.add_argument("--events", action="store_true",
                   help="also print the fault/SLO event stream")
    p.add_argument("--check", action="store_true",
                   help="determinism self-check: run the pack twice and "
                        "fail unless the reports are byte-identical")
    p.add_argument("--json", type=Path, nargs="?", const=Path("-"),
                   default=None, metavar="PATH",
                   help="emit the pack (reports + SLO verdicts) as JSON "
                        "(to PATH, or stdout when no path is given)")

    p = sub.add_parser(
        "topo",
        help="describe a network topology and water-fill a synthetic "
             "flow set across it",
    )
    _add_testbed(p)
    p.add_argument("--topology", default="fat-tree:k=4", metavar="SPEC",
                   help="topology spec (default fat-tree:k=4); see "
                        "'service --topology' for the syntax")
    p.add_argument("--placement", default="least-congested",
                   help="placement policy: least-congested | ecmp-hash | "
                        "random-k (default least-congested)")
    p.add_argument("--flows", type=int, default=16,
                   help="synthetic flows to place and allocate (default 16)")
    p.add_argument("--seed", type=int, default=0,
                   help="placement seed (default 0)")
    p.add_argument("--check", action="store_true",
                   help="self-check: rerun with the same seed and fail "
                        "unless placements and rates are byte-identical, "
                        "and verify no bottleneck is over-subscribed")
    p.add_argument("--json", type=Path, nargs="?", const=Path("-"),
                   default=None, metavar="PATH",
                   help="emit topology + allocation as JSON (to PATH, or "
                        "stdout when no path is given)")

    sub.add_parser("workloads", help="list the workload presets")

    p = sub.add_parser("pareto", help="throughput/energy frontier of a sweep")
    _add_testbed(p)
    p.add_argument("-l", "--levels", nargs="+", type=int, default=None)

    p = sub.add_parser("history", help="inspect a result store (.jsonl)")
    p.add_argument("store", type=Path, help="path to the result store")
    p.add_argument("--best", default=None, metavar="METRIC",
                   help="print the best run by this outcome metric "
                        "(e.g. efficiency, throughput)")

    p = sub.add_parser(
        "report",
        help="regenerate the evaluation as markdown, or inspect the "
             "observability layer (--events / --metrics)",
    )
    p.add_argument("-o", "--output", type=Path, default=Path("evaluation_report.md"))
    p.add_argument("--quick", action="store_true",
                   help="restricted concurrency axis and SLA targets")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--events", action="store_true",
                      help="run one observed transfer and print its "
                           "structured event stream")
    mode.add_argument("--metrics", action="store_true",
                      help="run one observed transfer and print its metric "
                           "summary (or merge archived summaries with --store)")
    p.add_argument("-t", "--testbed", default="xsede",
                   help="testbed for the observed transfer (default xsede)")
    p.add_argument("-a", "--algorithm", default="HTEE", choices=sorted(ALGORITHMS),
                   help="algorithm for the observed transfer (default HTEE)")
    p.add_argument("-c", "--max-channels", type=int, default=8,
                   help="channel budget for the observed transfer (default 8)")
    p.add_argument("--kind", default=None,
                   help="only print events of this kind (e.g. probe_window)")
    p.add_argument("--store", type=Path, default=None,
                   help="with --metrics: merge the archived per-cell metrics "
                        "tags of this result store instead of running")
    p.add_argument("--campaign", default=None,
                   help="with --store: restrict to one campaign name")
    p.add_argument("--json", type=Path, default=None,
                   help="also write the events/metrics as JSON")

    p = sub.add_parser(
        "lint",
        help="domain-aware static analysis (unit literals, determinism, "
             "float ==, observer guards, event kinds, API hygiene)",
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(p)

    sub.add_parser("validate", help="quick self-check: Eq. 2 + device table")
    return parser


def _add_testbed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-t", "--testbed", default="xsede",
        help="xsede | futuregrid | didclab, or a path to a testbed "
             "definition JSON file (default xsede)",
    )


def _add_topology(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", default=None, metavar="SPEC",
        help="run topology-backed: single-link | "
             "leaf-spine:s=2,l=4[,spine=f][,leaf=f] | "
             "fat-tree:k=4[,core=f][,edge=f] (capacity factors are "
             "fractions of the link bandwidth; default: the classic "
             "point-to-point path, or the scenario's pinned topology "
             "for chaos)",
    )
    parser.add_argument(
        "--placement", default="least-congested",
        help="placement policy over the topology's candidate routes: "
             "least-congested | ecmp-hash | random-k "
             "(default least-congested)",
    )
    parser.add_argument(
        "--placement-seed", type=int, default=0,
        help="seed for the random-k placement sampler (default 0)",
    )


def _resolve_testbed(name: str):
    """A built-in testbed by name, or a JSON definition by path."""
    candidate = Path(name)
    if candidate.suffix == ".json" or candidate.is_file():
        from repro.testbeds.io import load_testbed

        return load_testbed(candidate)
    return testbed_by_name(name)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "testbeds": _cmd_testbeds,
        "dataset": _cmd_dataset,
        "transfer": _cmd_transfer,
        "sweep": _cmd_sweep,
        "sla": _cmd_sla,
        "figures": _cmd_figures,
        "advise": _cmd_advise,
        "fleet": _cmd_fleet,
        "service": _cmd_service,
        "fleet-service": _cmd_fleet_service,
        "chaos": _cmd_chaos,
        "topo": _cmd_topo,
        "workloads": _cmd_workloads,
        "pareto": _cmd_pareto,
        "history": _cmd_history,
        "report": _cmd_report,
        "lint": _cmd_lint,
        "validate": _cmd_validate,
    }[args.command]
    return handler(args)


def _cmd_testbeds(args: argparse.Namespace) -> int:
    print(figure_renderers.render_testbed_specs())
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    testbed = _resolve_testbed(args.testbed)
    print(testbed.dataset().describe())
    return 0


def _cmd_transfer(args: argparse.Namespace) -> int:
    testbed = _resolve_testbed(args.testbed)
    want_trace = args.trace is not None or args.sparkline
    with engine_options(record_trace=want_trace):
        outcome = run_algorithm(testbed, args.algorithm, args.max_channels)
    print(outcome.summary())
    if outcome.final_concurrency is not None:
        print(f"  final concurrency: {outcome.final_concurrency}")
    print(f"  efficiency: {outcome.efficiency:.4f} Mbps/J")
    trace = outcome.extra.get("trace", [])
    if args.sparkline and trace:
        print(render_trace(trace))
    if args.trace is not None and trace:
        save_trace_csv(trace, args.trace)
        print(f"  trace written to {args.trace}")
    if args.json is not None:
        outcome.extra.pop("trace", None)  # traces go to CSV, not JSON
        save_outcomes_json([outcome], args.json)
        print(f"  outcome written to {args.json}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    testbed = _resolve_testbed(args.testbed)
    kwargs = {}
    if args.algorithms:
        kwargs["algorithms"] = args.algorithms
    if args.levels:
        kwargs["levels"] = args.levels
    sweep = concurrency_sweep(testbed, **kwargs)
    print(figure_renderers.render_concurrency_figure(sweep))
    if args.json is not None:
        outcomes = [o for series in sweep.series.values() for o in series]
        save_outcomes_json(outcomes, args.json)
        print(f"\nresults written to {args.json}")
    return 0


def _cmd_sla(args: argparse.Namespace) -> int:
    testbed = _resolve_testbed(args.testbed)
    records = sla_sweep(testbed, targets_pct=args.targets)
    print(figure_renderers.render_sla_figure(testbed.name, records))
    return 0


_FIGURES = {
    "fig01": lambda: figure_renderers.render_testbed_specs(),
    "fig02": lambda: _concurrency_figure("xsede"),
    "fig03": lambda: _concurrency_figure("futuregrid"),
    "fig04": lambda: _concurrency_figure("didclab"),
    "fig05": lambda: _sla_figure("xsede"),
    "fig06": lambda: _sla_figure("futuregrid"),
    "fig07": lambda: _sla_figure("didclab"),
    "fig08": lambda: figure_renderers.render_device_model_curves(),
    "fig09": lambda: figure_renderers.render_topologies(
        [xsede_topology(), futuregrid_topology(), didclab_topology()]
    ),
    "fig10": lambda: figure_renderers.render_decomposition(
        [energy_decomposition(tb) for tb in ALL_TESTBEDS]
    ),
    "table1": lambda: figure_renderers.render_table1(),
}


def _concurrency_figure(name: str) -> str:
    testbed = testbed_by_name(name)
    sweep = concurrency_sweep(testbed)
    brute = brute_force_sweep(testbed)
    return (
        figure_renderers.render_concurrency_figure(sweep)
        + "\n\n"
        + figure_renderers.render_efficiency_panel(sweep, brute)
    )


def _sla_figure(name: str) -> str:
    testbed = testbed_by_name(name)
    return figure_renderers.render_sla_figure(testbed.name, sla_sweep(testbed))


def _cmd_figures(args: argparse.Namespace) -> int:
    names = list(args.names)
    if not names or names == ["all"]:
        names = list(_FIGURES)
    unknown = [n for n in names if n not in _FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"known: {', '.join(_FIGURES)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"===== {name} =====")
        print(_FIGURES[name]())
        print()
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import advise
    from repro.datasets.presets import WORKLOAD_PRESETS

    testbed = _resolve_testbed(args.testbed)
    if args.workload is not None:
        if args.workload not in WORKLOAD_PRESETS:
            print(f"unknown workload {args.workload!r}; "
                  f"known: {', '.join(sorted(WORKLOAD_PRESETS))}", file=sys.stderr)
            return 2
        dataset = WORKLOAD_PRESETS[args.workload]()
    else:
        dataset = testbed.dataset()
    print(dataset.describe())
    print(advise(testbed, dataset, args.max_channels).render())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetModel, JobClass, TariffModel
    from repro.service.tariff import TARIFF_PRESETS, tariff_by_name

    testbed = _resolve_testbed(args.testbed)
    if args.tariff != "flat" and args.tariff not in TARIFF_PRESETS:
        print(f"unknown tariff {args.tariff!r}; "
              f"known: {', '.join(sorted(TARIFF_PRESETS))}", file=sys.stderr)
        return 2
    tariff = (
        TariffModel()
        if args.tariff == "flat"
        else TariffModel.from_trace(tariff_by_name(args.tariff))
    )
    fleet = FleetModel(
        testbed,
        [
            JobClass(
                "paper-dataset",
                testbed.dataset_factory,
                jobs_per_day=args.jobs_per_day,
                sla_level=args.sla,
                start_hour=args.start_hour,
            )
        ],
        tariff=tariff,
    )
    clock = (
        f", starting {args.start_hour:g}:00 on the {args.tariff} tariff"
        if args.start_hour is not None
        else f" ({args.tariff} tariff)"
    )
    print(f"{args.jobs_per_day:g} jobs/day of {testbed.dataset().describe()}{clock}")
    print(fleet.render_comparison())
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    """One day of tenant traffic through the scheduling service."""
    import json as _json

    from repro.obs.observer import Observer, render_events
    from repro.service import (
        POLICY_PRESETS,
        ServiceSimulator,
        TARIFF_PRESETS,
        WORKLOAD_PRESETS,
        policy_by_name,
        tariff_by_name,
        workload_by_name,
    )
    from repro.topo import PLACEMENT_POLICIES

    for value, known, what in (
        (args.workload, WORKLOAD_PRESETS, "workload"),
        (args.policy, POLICY_PRESETS, "policy"),
        (args.tariff, TARIFF_PRESETS, "tariff"),
        (args.placement, PLACEMENT_POLICIES, "placement"),
    ):
        if value not in known:
            print(f"unknown {what} {value!r}; known: "
                  f"{', '.join(sorted(known))}", file=sys.stderr)
            return 2
    testbed = _resolve_testbed(args.testbed)
    requests = workload_by_name(
        args.workload, args.jobs, day_s=args.day, seed=args.seed,
        size_scale=args.day / 86400.0, dataset_pool=args.dataset_pool,
    )
    tariff = tariff_by_name(args.tariff, period_s=args.day)
    observer = Observer()
    simulator = ServiceSimulator(
        testbed,
        policy=policy_by_name(args.policy),
        tariff=tariff,
        max_concurrent_jobs=args.max_concurrent,
        max_per_tenant=args.max_per_tenant,
        max_channels=args.max_channels,
        observer=observer,
        fast=not args.grid,
        topology=args.topology,
        placement=args.placement,
        placement_seed=args.placement_seed,
    )
    report = simulator.run(requests)
    print(report.render())
    if args.events:
        print()
        print(render_events(observer.events))
    if args.json is not None:
        payload = _json.dumps(report.to_dict(), indent=2) + "\n"
        if str(args.json) == "-":
            sys.stdout.write(payload)
        else:
            args.json.write_text(payload)
            print(f"report written to {args.json}")
    return 0


def _cmd_fleet_service(args: argparse.Namespace) -> int:
    """One day of tenant traffic across a sharded fleet of links."""
    import json as _json

    from repro.obs.observer import Observer, render_events
    from repro.service import (
        FleetContext,
        FleetSimulator,
        POLICY_PRESETS,
        ROUTING_POLICIES,
        TARIFF_PRESETS,
        WORKLOAD_PRESETS,
        policy_by_name,
        tariff_by_name,
        workload_by_name,
    )
    from repro.topo import PLACEMENT_POLICIES

    for value, known, what in (
        (args.workload, WORKLOAD_PRESETS, "workload"),
        (args.policy, POLICY_PRESETS, "policy"),
        (args.tariff, TARIFF_PRESETS, "tariff"),
        (args.routing, ROUTING_POLICIES, "routing"),
        (args.placement, PLACEMENT_POLICIES, "placement"),
    ):
        if value not in known:
            print(f"unknown {what} {value!r}; known: "
                  f"{', '.join(sorted(known))}", file=sys.stderr)
            return 2
    testbed = _resolve_testbed(args.testbed)
    requests = workload_by_name(
        args.workload, args.jobs, day_s=args.day, seed=args.seed,
        size_scale=args.day / 86400.0, dataset_pool=args.dataset_pool,
    )
    tariff = tariff_by_name(args.tariff, period_s=args.day)
    warm = None
    if args.context is not None and args.context.exists():
        warm = FleetContext.load(args.context)
        print(f"warm-start context loaded: {len(warm)} plan entries "
              f"({warm.source or 'unlabelled'})")
    observer = Observer()
    fleet = FleetSimulator(
        testbed,
        policy=policy_by_name(args.policy),
        tariff=tariff,
        shards=args.shards,
        routing=args.routing,
        steal_threshold=args.steal_threshold if args.steal_threshold > 0 else None,
        max_concurrent_jobs=args.max_concurrent,
        max_per_tenant=args.max_per_tenant,
        max_channels=args.max_channels,
        observer=observer,
        fast=not args.grid,
        workers=args.workers,
        warm_context=warm,
        topology=args.topology,
        placement=args.placement,
        placement_seed=args.placement_seed,
    )
    report = fleet.run(requests)
    print(report.render())
    if args.context is not None and fleet.last_context is not None:
        fleet.last_context.save(args.context)
        print(f"warm-start context saved to {args.context} "
              f"({len(fleet.last_context)} plan entries)")
    if args.events:
        print()
        print(render_events(observer.events))
    if args.json is not None:
        payload = _json.dumps(report.to_dict(), indent=2) + "\n"
        if str(args.json) == "-":
            sys.stdout.write(payload)
        else:
            args.json.write_text(payload)
            print(f"report written to {args.json}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault scenarios against the service layer + SLO verdicts."""
    import json as _json

    from repro.chaos import SCENARIO_PRESETS, run_pack, strip_wall
    from repro.obs.observer import Observer, render_events
    from repro.service import (
        POLICY_PRESETS,
        TARIFF_PRESETS,
        WORKLOAD_PRESETS,
        tariff_by_name,
    )
    from repro.topo import PLACEMENT_POLICIES

    for value, known, what in (
        (args.workload, WORKLOAD_PRESETS, "workload"),
        (args.tariff, TARIFF_PRESETS, "tariff"),
        (args.placement, PLACEMENT_POLICIES, "placement"),
    ):
        if value not in known:
            print(f"unknown {what} {value!r}; known: "
                  f"{', '.join(sorted(known))}", file=sys.stderr)
            return 2
    scenarios = (
        sorted(SCENARIO_PRESETS) if args.scenario == "all"
        else [args.scenario]
    )
    policies = (
        sorted(POLICY_PRESETS) if args.policy == "all" else [args.policy]
    )
    for scenario in scenarios:
        if scenario not in SCENARIO_PRESETS:
            print(f"unknown scenario {scenario!r}; known: "
                  f"{', '.join(sorted(SCENARIO_PRESETS))}", file=sys.stderr)
            return 2
    for policy in policies:
        if policy not in POLICY_PRESETS:
            print(f"unknown policy {policy!r}; known: "
                  f"{', '.join(sorted(POLICY_PRESETS))}", file=sys.stderr)
            return 2
    testbed = _resolve_testbed(args.testbed)
    tariff = tariff_by_name(args.tariff, period_s=args.day)
    observer = Observer()
    config = dict(
        scenarios=scenarios, policies=policies,
        jobs=args.jobs, day_s=args.day, seed=args.seed,
        workload=args.workload, max_concurrent_jobs=args.max_concurrent,
        max_channels=args.max_channels, shards=args.shards,
        workers=args.workers, fast=not args.grid,
        dataset_pool=args.dataset_pool,
        topology=args.topology, placement=args.placement,
        placement_seed=args.placement_seed,
    )
    results = run_pack(
        testbed=testbed, tariff=tariff, observer=observer, **config
    )
    if args.check:
        first = [strip_wall(result.to_dict()) for result in results]
        rerun = run_pack(testbed=testbed, tariff=tariff, **config)
        second = [strip_wall(result.to_dict()) for result in rerun]
        if _json.dumps(first, sort_keys=True) != _json.dumps(
            second, sort_keys=True
        ):
            print("DETERMINISM CHECK FAILED: same-seed rerun diverged",
                  file=sys.stderr)
            return 1
        print(f"determinism check passed: {len(results)} cells "
              "byte-identical on rerun")
    for result in results:
        print(result.render())
        print()
    failed = [result for result in results if not result.passed]
    print(f"pack verdict: {len(results) - len(failed)}/{len(results)} "
          f"cells passed"
          + (f" ({', '.join(f'{r.scenario.name}/{r.policy}' for r in failed)}"
             " breached)" if failed else ""))
    if args.events:
        print()
        print(render_events(observer.events))
    if args.json is not None:
        payload = _json.dumps(
            {
                "results": [strip_wall(r.to_dict()) for r in results],
                "passed": not failed,
            },
            indent=2,
        ) + "\n"
        if str(args.json) == "-":
            sys.stdout.write(payload)
        else:
            args.json.write_text(payload)
            print(f"pack written to {args.json}")
    return 0


def _cmd_topo(args: argparse.Namespace) -> int:
    """Describe a topology and water-fill a synthetic flow set."""
    import json as _json

    from repro import units
    from repro.topo import (
        FlowDemand,
        PLACEMENT_POLICIES,
        Placer,
        allocate,
        build_topology,
    )

    if args.placement not in PLACEMENT_POLICIES:
        print(f"unknown placement {args.placement!r}; known: "
              f"{', '.join(PLACEMENT_POLICIES)}", file=sys.stderr)
        return 2
    if args.flows < 1:
        print("--flows must be >= 1", file=sys.stderr)
        return 2
    testbed = _resolve_testbed(args.testbed)
    bandwidth = testbed.path.bandwidth

    def run_once() -> dict:
        """One placement + allocation round (fresh seeded state)."""
        topology = build_topology(args.topology, bandwidth=bandwidth)
        placer = Placer(topology, args.placement, seed=args.seed)
        demands = []
        placements = {}
        for i in range(args.flows):
            flow = f"flow-{i:03d}"
            path = placer.place(flow)
            placements[flow] = path.name
            demands.append(FlowDemand(flow, path.bottlenecks, bandwidth))
        result = allocate(topology, demands)
        return {
            "topology": topology.to_dict(),
            "placement": args.placement,
            "seed": args.seed,
            "flows": {
                demand.flow: {
                    "path": placements[demand.flow],
                    "demand": demand.demand,
                    "rate": result.rates[demand.flow],
                    "bound_by": result.binding[demand.flow],
                }
                for demand in demands
            },
            "bottlenecks": {
                name: {
                    "capacity": topology.capacity(name),
                    "load": result.bottleneck_load.get(name, 0.0),
                    "flows": result.bottleneck_flows.get(name, 0),
                }
                for name in topology.bottlenecks
            },
            "rounds": result.rounds,
        }

    payload = run_once()
    if args.check:
        rerun = run_once()
        if _json.dumps(payload, sort_keys=True) != _json.dumps(
            rerun, sort_keys=True
        ):
            print("DETERMINISM CHECK FAILED: same-seed rerun diverged",
                  file=sys.stderr)
            return 1
        over = [
            name
            for name, cell in payload["bottlenecks"].items()
            if cell["load"] > cell["capacity"] * (1 + 1e-9)
        ]
        if over:
            print("CAPACITY CHECK FAILED: over-subscribed bottlenecks: "
                  f"{', '.join(over)}", file=sys.stderr)
            return 1
        print("checks passed: deterministic rerun, no bottleneck "
              "over-subscribed")

    topology = build_topology(args.topology, bandwidth=bandwidth)
    print(topology.render())
    print(f"\n{args.flows} flows placed by {args.placement} "
          f"(seed {args.seed}), each demanding "
          f"{units.to_gbps(bandwidth):.2f} Gbps; water-fill converged in "
          f"{payload['rounds']} round(s)")
    print(f"  {'flow':<10s} {'path':<22s} {'rate Gbps':>10s}  bound by")
    for flow, cell in payload["flows"].items():
        print(f"  {flow:<10s} {cell['path']:<22s} "
              f"{units.to_gbps(cell['rate']):>10.2f}  "
              f"{cell['bound_by'] or '-'}")
    print("  bottleneck load:")
    for name, cell in payload["bottlenecks"].items():
        if cell["flows"] == 0:
            continue
        print(f"  {name:<14s} {units.to_gbps(cell['load']):7.2f} / "
              f"{units.to_gbps(cell['capacity']):.2f} Gbps "
              f"({cell['flows']} flows)")
    if args.json is not None:
        text = _json.dumps(payload, indent=2) + "\n"
        if str(args.json) == "-":
            sys.stdout.write(text)
        else:
            args.json.write_text(text)
            print(f"allocation written to {args.json}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.datasets.presets import WORKLOAD_PRESETS

    for name, factory in WORKLOAD_PRESETS.items():
        print(f"{name:<10s} {factory().describe()}")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    """Sweep the testbed, then classify every configuration."""
    from repro.harness.pareto import pareto_frontier, render_frontier

    testbed = _resolve_testbed(args.testbed)
    kwargs = {"levels": args.levels} if args.levels else {}
    sweep = concurrency_sweep(testbed, **kwargs)
    outcomes, seen = [], set()
    for algorithm, series in sweep.series.items():
        for outcome in series:
            key = (algorithm, outcome.max_channels)
            if key not in seen:
                seen.add(key)
                outcomes.append(outcome)
    print(render_frontier(pareto_frontier(outcomes)))
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    """Summarize (or query) a JSONL result store."""
    from repro.harness.store import ResultStore

    store = ResultStore(args.store)
    if args.best is not None:
        best = store.best(args.best)
        if best is None:
            print("(empty store)")
            return 1
        print(best.summary())
        return 0
    print(store.summary())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Write the evaluation report, or inspect the observability layer."""
    if args.events or args.metrics:
        return _cmd_report_observe(args)
    from repro.harness.report import write_report

    path = write_report(args.output, quick=args.quick)
    print(f"report written to {path}")
    return 0


def _cmd_report_observe(args: argparse.Namespace) -> int:
    """``report --events`` / ``report --metrics``: run one observed
    transfer (or, with ``--metrics --store``, merge the archived
    per-cell metric summaries) and print the result."""
    import json as _json

    from repro.obs import Observer, merge_summaries, render_events, render_metrics

    if args.store is not None:
        if args.events:
            print("--events cannot be read from a store: event streams "
                  "stay process-local; only metric summaries are archived "
                  "(use --metrics --store)", file=sys.stderr)
            return 2
        from repro.harness.store import ResultStore

        summaries = ResultStore(args.store).metrics_summaries(args.campaign)
        if not summaries:
            print("(no archived metrics tags"
                  + (f" for campaign {args.campaign!r}" if args.campaign else "")
                  + f" in {args.store})")
            return 1
        merged = merge_summaries(summaries)
        print(f"{len(summaries)} archived cell summaries from {args.store}")
        print(render_metrics(merged))
        if args.json is not None:
            args.json.write_text(_json.dumps(merged, indent=2) + "\n")
            print(f"metrics written to {args.json}")
        return 0

    testbed = _resolve_testbed(args.testbed)
    observer = Observer()
    with engine_options(observe=observer):
        outcome = run_algorithm(testbed, args.algorithm, args.max_channels)
    print(outcome.summary())
    print()
    if args.events:
        print(render_events(observer.events, kind=args.kind))
        if args.json is not None:
            args.json.write_text(
                _json.dumps(observer.events.to_dicts(), indent=2) + "\n"
            )
            print(f"\nevents written to {args.json}")
    else:
        print(render_metrics(observer.summary()))
        if args.json is not None:
            args.json.write_text(_json.dumps(observer.summary(), indent=2) + "\n")
            print(f"\nmetrics written to {args.json}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the domain linter (see :mod:`repro.lint`)."""
    from repro.lint.cli import run as run_lint

    return run_lint(args)


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.power.coefficients import cpu_coefficient

    ok = True
    expected = {1: 0.273, 2: 0.224, 4: 0.192}
    for n, value in expected.items():
        got = cpu_coefficient(n)
        status = "ok" if abs(got - value) < 1e-9 else "MISMATCH"
        if status != "ok":
            ok = False
        print(f"Eq.2 C_cpu,{n} = {got:.3f} (expected {value:.3f}) {status}")
    print(figure_renderers.render_table1())
    print("validate:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
