"""RAPL / powercap-style energy counters.

Real deployments of the paper's algorithms read CPU package energy from
Intel RAPL through the Linux *powercap* sysfs tree
(``/sys/class/powercap/intel-rapl:*/energy_uj``). This module provides

* :class:`SimulatedRaplDomain` — a RAPL domain fed by the simulator's
  power model, with the authentic microjoule counter semantics
  (monotone, wrapping at ``max_energy_range_uj``);
* :class:`SimulatedPowercapTree` — writes those domains out as an
  actual powercap-shaped directory tree, so tooling written against
  sysfs paths runs unmodified against the simulation;
* :class:`PowercapReader` — reads any powercap-shaped tree (the real
  ``/sys/class/powercap`` when present, or a simulated one) and turns
  raw wrapping counters into joule deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro import units
from repro.units import Joules, Seconds, Watts

__all__ = [
    "DEFAULT_MAX_ENERGY_RANGE_UJ",
    "SimulatedRaplDomain",
    "SimulatedPowercapTree",
    "PowercapReader",
    "EnergyDelta",
]

#: Typical max_energy_range_uj of an Intel package domain (~262 kJ).
DEFAULT_MAX_ENERGY_RANGE_UJ = 262_143_328_850


@dataclass
class SimulatedRaplDomain:
    """One RAPL domain (e.g. ``package-0``) with a wrapping uJ counter."""

    name: str
    max_energy_range_uj: int = DEFAULT_MAX_ENERGY_RANGE_UJ
    energy_uj: int = 0

    def __post_init__(self) -> None:
        if self.max_energy_range_uj <= 0:
            raise ValueError("max_energy_range_uj must be > 0")
        if not (0 <= self.energy_uj <= self.max_energy_range_uj):
            raise ValueError("energy_uj out of counter range")

    def feed(self, power_watts: Watts, dt: Seconds) -> None:
        """Advance the counter by ``power * dt`` — watts over ``dt``
        seconds, accumulated in microjoules (wrapping like hardware)."""
        if power_watts < 0 or dt < 0:
            raise ValueError("power and dt must be >= 0")
        increment = int(round(units.to_microjoules(power_watts * dt)))
        self.energy_uj = (self.energy_uj + increment) % (self.max_energy_range_uj + 1)


@dataclass
class SimulatedPowercapTree:
    """A powercap-shaped sysfs tree backed by simulated domains.

    Layout (mirroring Linux)::

        <root>/intel-rapl:0/name                 "package-0"
        <root>/intel-rapl:0/energy_uj            wrapping counter
        <root>/intel-rapl:0/max_energy_range_uj  counter modulus
    """

    root: Path
    domains: list[SimulatedRaplDomain] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def add_domain(self, domain: SimulatedRaplDomain) -> SimulatedRaplDomain:
        """Register one simulated domain in the tree."""
        self.domains.append(domain)
        return domain

    def domain_dir(self, index: int) -> Path:
        """Filesystem directory of the index-th domain."""
        return self.root / f"intel-rapl:{index}"

    def sync(self) -> None:
        """Write all domain counters out to the filesystem tree."""
        for index, domain in enumerate(self.domains):
            directory = self.domain_dir(index)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / "name").write_text(domain.name + "\n")
            (directory / "energy_uj").write_text(f"{domain.energy_uj}\n")
            (directory / "max_energy_range_uj").write_text(f"{domain.max_energy_range_uj}\n")

    def feed_all(self, power_watts: Watts, dt: Seconds) -> None:
        """Feed every domain ``power_watts`` watts for ``dt`` seconds
        and sync to disk."""
        for domain in self.domains:
            domain.feed(power_watts, dt)
        self.sync()


@dataclass(frozen=True)
class EnergyDelta:
    """A joule reading between two counter samples of one domain."""

    domain: str
    joules: float
    wrapped: bool


class PowercapReader:
    """Reads powercap-shaped trees and computes wrap-safe deltas."""

    def __init__(self, root: Path | str = "/sys/class/powercap") -> None:
        self.root = Path(root)
        self._last: dict[str, int] = {}

    def available(self) -> bool:
        """True if the tree exists and exposes at least one domain."""
        return bool(self.domain_paths())

    def domain_paths(self) -> list[Path]:
        """Directories of every readable RAPL domain under the root."""
        if not self.root.is_dir():
            return []
        return sorted(
            p
            for p in self.root.iterdir()
            if p.is_dir() and (p / "energy_uj").is_file()
        )

    def read_domain(self, path: Path) -> tuple[str, int, int]:
        """(name, energy_uj, max_energy_range_uj) of one domain dir."""
        name_file = path / "name"
        name = name_file.read_text().strip() if name_file.is_file() else path.name
        energy = int((path / "energy_uj").read_text().strip())
        max_file = path / "max_energy_range_uj"
        max_range = (
            int(max_file.read_text().strip())
            if max_file.is_file()
            else DEFAULT_MAX_ENERGY_RANGE_UJ
        )
        return name, energy, max_range

    def sample(self) -> list[EnergyDelta]:
        """Joules per domain since the previous :meth:`sample` call.

        The first call primes the baselines and returns an empty list.
        Counter wraparound (the counter is modular) is detected and
        corrected — a *decrease* means exactly one wrap for any sane
        sampling interval.
        """
        deltas: list[EnergyDelta] = []
        primed = bool(self._last)
        for path in self.domain_paths():
            name, energy, max_range = self.read_domain(path)
            key = str(path)
            if key in self._last:
                previous = self._last[key]
                raw = energy - previous
                wrapped = raw < 0
                if wrapped:
                    raw += max_range + 1
                deltas.append(
                    EnergyDelta(
                        domain=name,
                        joules=units.microjoules(raw),
                        wrapped=wrapped,
                    )
                )
            self._last[key] = energy
        return deltas if primed else []

    def total_joules(self, deltas: Optional[list[EnergyDelta]] = None) -> Joules:
        """Convenience: sum of a sample's joules (0.0 for the priming call)."""
        if deltas is None:
            deltas = self.sample()
        return sum(d.joules for d in deltas)
