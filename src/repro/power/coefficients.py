"""Power-model coefficient sets.

Section 2.2 of the paper: a one-time model-building phase measures each
component (CPU, memory, disk, NIC) at varying load levels and fits a
linear regression; the fitted coefficients then predict full-system
transfer power from OS utilization metrics.

The CPU coefficient is special — it depends on the number of active
cores ``n`` (Eq. 2)::

    C_cpu,n = 0.011 n^2 - 0.082 n + 0.344

a parabola whose vertex sits near n = 3.7: per-core power *decreases*
as cores 1-4 come online, then rises again — the published explanation
for ProMC's energy minimum at concurrency 4 on 4-core servers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CPU_QUAD_A",
    "CPU_QUAD_B",
    "CPU_QUAD_C",
    "cpu_coefficient",
    "CoefficientSet",
    "PAPER_COEFFICIENTS",
]

#: Eq. 2 constants, straight from the paper.
CPU_QUAD_A = 0.011
CPU_QUAD_B = -0.082
CPU_QUAD_C = 0.344


def cpu_coefficient(active_cores: int, a: float = CPU_QUAD_A, b: float = CPU_QUAD_B, c: float = CPU_QUAD_C) -> float:
    """Per-core-percentage CPU power coefficient (Eq. 2), W per CPU-%.

    ``active_cores`` is the number of cores running transfer work.
    """
    if active_cores < 1:
        raise ValueError(f"active_cores must be >= 1, got {active_cores}")
    n = active_cores
    return a * n * n + b * n + c


@dataclass(frozen=True, slots=True)
class CoefficientSet:
    """Fitted component coefficients of the fine-grained model (Eq. 1).

    ``cpu_a/b/c`` parameterize Eq. 2; ``memory``, ``disk`` and ``nic``
    are watts per utilization-percent of the respective component.
    ``scale`` is a whole-model multiplier used when porting the set to
    hardware with a different power envelope (the per-testbed
    calibration documented in DESIGN.md).
    """

    cpu_a: float = CPU_QUAD_A
    cpu_b: float = CPU_QUAD_B
    cpu_c: float = CPU_QUAD_C
    memory: float = 0.01
    disk: float = 0.08
    nic: float = 0.05
    scale: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("memory", "disk", "nic", "scale"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    def cpu(self, active_cores: int) -> float:
        """Eq. 2 evaluated with this set's quadratic."""
        return cpu_coefficient(active_cores, self.cpu_a, self.cpu_b, self.cpu_c)

    def scaled(self, scale: float) -> "CoefficientSet":
        """A copy with a different whole-model scale."""
        return replace(self, scale=scale)


#: The coefficient set published in / implied by the paper (Intel
#: reference server, Eq. 2 CPU quadratic, modest mem/disk/NIC terms).
PAPER_COEFFICIENTS = CoefficientSet()
