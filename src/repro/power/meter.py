"""Energy metering.

:class:`EnergyMeter` integrates instantaneous power samples into joules
(left-rectangle rule over the sampling grid, matching the fluid
engine's fixed step), and supports windowed readings so the adaptive
algorithms can ask "how much energy did the last five seconds cost?" —
the quantity HTEE's throughput/energy probe and SLAEE's accounting are
built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyMeter"]


@dataclass
class EnergyMeter:
    """Accumulates ``P * dt`` and exposes window deltas."""

    total_joules: float = 0.0
    elapsed: float = 0.0
    _marks: dict[str, tuple[float, float]] = field(default_factory=dict)

    def record(self, power_watts: float, dt: float) -> None:
        """Add one sample of ``power_watts`` held for ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if power_watts < 0:
            raise ValueError(f"power must be >= 0, got {power_watts}")
        self.total_joules += power_watts * dt
        self.elapsed += dt

    def mark(self, name: str = "default") -> None:
        """Remember the current reading under ``name``."""
        self._marks[name] = (self.total_joules, self.elapsed)

    def since_mark(self, name: str = "default") -> tuple[float, float]:
        """(joules, seconds) accumulated since :meth:`mark` was called."""
        if name not in self._marks:
            raise KeyError(f"no mark named {name!r}")
        joules, elapsed = self._marks[name]
        return self.total_joules - joules, self.elapsed - elapsed

    @property
    def average_power(self) -> float:
        """Mean watts over the metered interval (0 before any sample)."""
        if self.elapsed <= 0:
            return 0.0
        return self.total_joules / self.elapsed
