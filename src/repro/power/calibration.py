"""Power-model building (the paper's one-time calibration phase).

Section 2.2: "It requires a one time model building phase to extract
power consumption characteristics of the system components. For each
system component (i.e. CPU, memory, disk and NIC), we measure the power
consumption values for varying load levels. Then, linear regression is
applied to derive the coefficients for each component metric."

This module reproduces that phase end-to-end against a *simulated*
power meter: generate component load sweeps, "measure" power (ground
truth + meter noise), fit the component coefficients with least
squares, and quantify model error the same way the paper does
(percentage error against measured power).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.netsim.endpoint import ServerSpec
from repro.netsim.utilization import Utilization
from repro.power.coefficients import CoefficientSet, cpu_coefficient

__all__ = [
    "CalibrationSample",
    "generate_load_sweep",
    "fit_coefficients",
    "fit_cpu_quadratic",
    "mean_absolute_percentage_error",
]


@dataclass(frozen=True)
class CalibrationSample:
    """One calibration observation: utilizations + measured watts."""

    utilization: Utilization
    measured_watts: float


def generate_load_sweep(
    spec: ServerSpec,
    true_coefficients: CoefficientSet,
    *,
    active_cores: int = 1,
    levels: Sequence[float] = tuple(np.linspace(5, 100, 20)),
    noise_fraction: float = 0.02,
    seed: int = 0,
) -> list[CalibrationSample]:
    """Synthetic calibration run: sweep each component across ``levels``.

    Mirrors the paper's methodology: one component is exercised at a
    time (with a small correlated background on the others, as real
    load generators cause), and a power meter records watts with
    ``noise_fraction`` relative noise.
    """
    if active_cores < 1 or active_cores > spec.cores:
        raise ValueError("active_cores must be in [1, spec.cores]")
    rng = np.random.default_rng(seed)
    samples: list[CalibrationSample] = []
    for component in ("cpu", "mem", "disk", "nic"):
        for level in levels:
            background = float(rng.uniform(1.0, 4.0))
            util = Utilization(
                cpu_pct=(level * active_cores if component == "cpu" else background),
                mem_pct=(level if component == "mem" else background),
                disk_pct=(level if component == "disk" else background),
                nic_pct=(level if component == "nic" else background),
                active_cores=active_cores,
                channels=max(1, active_cores),
                streams=max(1, active_cores),
                throughput=0.0,
            )
            true_watts = true_coefficients.scale * (
                true_coefficients.cpu(active_cores) * util.cpu_pct
                + true_coefficients.memory * util.mem_pct
                + true_coefficients.disk * util.disk_pct
                + true_coefficients.nic * util.nic_pct
            )
            measured = true_watts * (1.0 + float(rng.normal(0.0, noise_fraction)))
            samples.append(CalibrationSample(util, max(0.0, measured)))
    return samples


def fit_coefficients(
    samples: Iterable[CalibrationSample],
    *,
    active_cores: int = 1,
) -> tuple[float, CoefficientSet]:
    """Least-squares fit of Eq. 1 coefficients from calibration samples.

    All samples must come from runs with the same ``active_cores``.
    Returns ``(cpu_coefficient_at_n, CoefficientSet)`` where the
    returned set's quadratic is degenerate (constant at the fitted CPU
    coefficient); use :func:`fit_cpu_quadratic` across several core
    counts to recover Eq. 2 itself.
    """
    samples = list(samples)
    if not samples:
        raise ValueError("need at least one calibration sample")
    design = np.array(
        [
            [s.utilization.cpu_pct, s.utilization.mem_pct, s.utilization.disk_pct, s.utilization.nic_pct]
            for s in samples
        ]
    )
    target = np.array([s.measured_watts for s in samples])
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    cpu_at_n, mem, disk, nic = (float(v) for v in solution)
    fitted = CoefficientSet(
        cpu_a=0.0,
        cpu_b=0.0,
        cpu_c=cpu_at_n,
        memory=max(0.0, mem),
        disk=max(0.0, disk),
        nic=max(0.0, nic),
        scale=1.0,
    )
    return cpu_at_n, fitted


def fit_cpu_quadratic(per_core_coefficients: dict[int, float]) -> tuple[float, float, float]:
    """Fit Eq. 2's quadratic ``a n^2 + b n + c`` through per-core-count
    CPU coefficients obtained from separate calibration runs."""
    if len(per_core_coefficients) < 3:
        raise ValueError("need coefficients for at least 3 core counts")
    ns = np.array(sorted(per_core_coefficients))
    cs = np.array([per_core_coefficients[int(n)] for n in ns])
    a, b, c = np.polyfit(ns, cs, deg=2)
    return float(a), float(b), float(c)


def mean_absolute_percentage_error(
    predict: Callable[[Utilization], float],
    samples: Iterable[CalibrationSample],
) -> float:
    """MAPE (%) of ``predict`` against measured watts — the error metric
    of the paper's validation tables."""
    errors = []
    for sample in samples:
        if sample.measured_watts <= 0:
            continue
        predicted = predict(sample.utilization)
        errors.append(abs(predicted - sample.measured_watts) / sample.measured_watts)
    if not errors:
        raise ValueError("no usable samples")
    return 100.0 * float(np.mean(errors))


# Make the default sweep reproducible regardless of numpy version quirks.
def _selftest() -> None:  # pragma: no cover - import-time sanity
    assert cpu_coefficient(1) > 0
