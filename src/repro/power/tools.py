"""Synthetic transfer-tool workload profiles (Section 2.2 validation).

The paper validates its power models "on Intel and AMD servers while
transferring datasets using various application-layer transfer tools
such as scp, rsync, ftp, bbcp and gridftp". We cannot ship the authors'
testbed, so each tool is modeled as a characteristic utilization
signature — scp burns CPU on encryption, rsync mixes CPU and disk
(delta computation), ftp is light everywhere, bbcp and gridftp drive
multiple streams hard — plus tool-specific *unmodeled* power behaviour
(cache effects, interrupt load) that the linear models cannot capture.
That unmodeled residue is what produces the published per-tool error
rates, so it is part of the substrate, not noise for its own sake.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.utilization import Utilization
from repro.power.calibration import CalibrationSample
from repro.power.coefficients import CoefficientSet

__all__ = ["ToolProfile", "TOOL_PROFILES", "generate_tool_run"]


@dataclass(frozen=True)
class ToolProfile:
    """Mean utilization signature of one transfer tool at full tilt.

    ``cpu`` is per-core percent (multiplied by active cores at
    generation time); the rest are 0-100 component percents.
    ``unmodeled_fraction`` is the share of true power that does not
    follow the linear utilization model (the model's irreducible error
    for this tool), and ``burstiness`` scales the sample-to-sample load
    variation.
    """

    name: str
    cpu: float
    memory: float
    disk: float
    nic: float
    unmodeled_fraction: float
    burstiness: float
    active_cores: int = 1


#: Signatures chosen so the validation lands where the paper reports:
#: fine-grained error is smallest for ftp/bbcp/gridftp (<5%) and larger
#: for scp/rsync (encryption/delta behaviour is less linear).
TOOL_PROFILES: dict[str, ToolProfile] = {
    "scp": ToolProfile("scp", cpu=85.0, memory=20.0, disk=45.0, nic=30.0,
                       unmodeled_fraction=0.055, burstiness=0.18, active_cores=1),
    "rsync": ToolProfile("rsync", cpu=70.0, memory=35.0, disk=65.0, nic=25.0,
                         unmodeled_fraction=0.050, burstiness=0.22, active_cores=1),
    "ftp": ToolProfile("ftp", cpu=25.0, memory=10.0, disk=40.0, nic=45.0,
                       unmodeled_fraction=0.025, burstiness=0.10, active_cores=1),
    "bbcp": ToolProfile("bbcp", cpu=55.0, memory=15.0, disk=55.0, nic=70.0,
                        unmodeled_fraction=0.030, burstiness=0.14, active_cores=2),
    "gridftp": ToolProfile("gridftp", cpu=60.0, memory=18.0, disk=60.0, nic=80.0,
                           unmodeled_fraction=0.028, burstiness=0.12, active_cores=2),
}


def generate_tool_run(
    profile: ToolProfile,
    true_coefficients: CoefficientSet,
    *,
    duration_steps: int = 240,
    meter_noise: float = 0.015,
    seed: int = 0,
) -> list[CalibrationSample]:
    """A measured transfer run: per-second utilizations + metered watts.

    True power = linear model of the *true* coefficients, inflated by
    the tool's ``unmodeled_fraction`` (modulated slowly over the run so
    it cannot be absorbed by a constant), plus meter noise.
    """
    if duration_steps < 1:
        raise ValueError("duration_steps must be >= 1")
    rng = np.random.default_rng(seed)
    samples: list[CalibrationSample] = []
    n = profile.active_cores
    for step in range(duration_steps):
        wobble = 1.0 + profile.burstiness * float(rng.standard_normal()) * 0.5
        wobble = max(0.2, wobble)
        util = Utilization(
            cpu_pct=min(100.0 * n, profile.cpu * n * wobble),
            mem_pct=min(100.0, profile.memory * wobble),
            disk_pct=min(100.0, profile.disk * wobble),
            nic_pct=min(100.0, profile.nic * wobble),
            active_cores=n,
            channels=n,
            streams=max(n, 2),
            throughput=0.0,
        )
        linear_watts = true_coefficients.scale * (
            true_coefficients.cpu(n) * util.cpu_pct
            + true_coefficients.memory * util.mem_pct
            + true_coefficients.disk * util.disk_pct
            + true_coefficients.nic * util.nic_pct
        )
        # Slow multiplicative drift the linear model cannot express.
        phase = 2.0 * np.pi * step / max(duration_steps, 1)
        unmodeled = 1.0 + profile.unmodeled_fraction * float(np.sin(phase) + 0.4)
        measured = linear_watts * unmodeled * (1.0 + float(rng.normal(0.0, meter_noise)))
        samples.append(CalibrationSample(util, max(0.0, measured)))
    return samples
