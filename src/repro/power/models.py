"""End-system power models (Section 2.2).

Two models, mirroring the two access-privilege cases of the paper:

* :class:`FineGrainedPowerModel` — Eq. 1: needs utilization of all four
  components (CPU, memory, disk, NIC). Lowest error (<6% in the paper's
  validation).
* :class:`CpuTdpPowerModel` — Eq. 3: needs only CPU utilization, and
  ports across machines by scaling with the ratio of CPU Thermal Design
  Power values. 2-3% worse than fine-grained when extended to a foreign
  server, still <8% in the paper's validation.

Both satisfy the :data:`repro.netsim.engine.PowerFn` protocol so they
plug straight into the transfer engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.endpoint import ServerSpec
from repro.netsim.utilization import Utilization
from repro.power.coefficients import PAPER_COEFFICIENTS, CoefficientSet

__all__ = ["FineGrainedPowerModel", "CpuTdpPowerModel"]


@dataclass(frozen=True)
class FineGrainedPowerModel:
    """Eq. 1: ``P_t = C_cpu,n u_cpu + C_mem u_mem + C_disk u_disk + C_nic u_nic``.

    ``u_cpu`` is total CPU percent summed over cores (``top``
    convention); the per-core coefficient comes from Eq. 2 with the
    server's active core count.
    """

    coefficients: CoefficientSet = PAPER_COEFFICIENTS

    def power_components(self, spec: ServerSpec, util: Utilization) -> dict[str, float]:
        """Per-component watts — the Eq. 1 terms individually.

        Keys: ``cpu``, ``memory``, ``disk``, ``nic``. This is the
        fine-grained model's raison d'etre: attributing the bill to
        the component that ran it up.
        """
        if util.is_idle:
            return {"cpu": 0.0, "memory": 0.0, "disk": 0.0, "nic": 0.0}
        coeff = self.coefficients
        return {
            "cpu": coeff.scale * coeff.cpu(util.active_cores) * util.cpu_pct,
            "memory": coeff.scale * coeff.memory * util.mem_pct,
            "disk": coeff.scale * coeff.disk * util.disk_pct,
            "nic": coeff.scale * coeff.nic * util.nic_pct,
        }

    def power(self, spec: ServerSpec, util: Utilization) -> float:
        """Load-dependent watts for one server at one utilization point."""
        return max(0.0, sum(self.power_components(spec, util).values()))

    # PowerFn protocol
    __call__ = power


@dataclass(frozen=True)
class CpuTdpPowerModel:
    """Eq. 3: ``P_t = (C_cpu,n u_cpu) * TDP_remote / TDP_local``.

    ``local_tdp_watts`` identifies the server the coefficients were
    fitted on; a transfer node with a beefier (or weaker) CPU is scaled
    by its nameplate TDP ratio. ``cpu_share`` inflates the CPU-only
    estimate to approximate full-system power, since the paper's
    regression found CPU utilization explains ~89.7% of consumed power.
    """

    local_tdp_watts: float
    coefficients: CoefficientSet = PAPER_COEFFICIENTS
    cpu_share: float = 0.897

    def __post_init__(self) -> None:
        if self.local_tdp_watts <= 0:
            raise ValueError("local_tdp_watts must be > 0")
        if not (0 < self.cpu_share <= 1):
            raise ValueError("cpu_share must be in (0, 1]")

    def power(self, spec: ServerSpec, util: Utilization) -> float:
        """Eq. 3 watts: CPU-only estimate scaled by the TDP ratio and
        inflated to full-system power by ``cpu_share``."""
        if util.is_idle:
            return 0.0
        coeff = self.coefficients
        cpu_watts = coeff.cpu(util.active_cores) * util.cpu_pct
        tdp_ratio = spec.tdp_watts / self.local_tdp_watts
        return coeff.scale * max(0.0, cpu_watts) * tdp_ratio / self.cpu_share

    __call__ = power
