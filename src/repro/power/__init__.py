"""End-system power substrate: Eq. 1-3 models, metering, calibration,
and a RAPL/powercap-style counter interface."""

from repro.power.calibration import (
    CalibrationSample,
    fit_coefficients,
    fit_cpu_quadratic,
    generate_load_sweep,
    mean_absolute_percentage_error,
)
from repro.power.coefficients import (
    PAPER_COEFFICIENTS,
    CoefficientSet,
    cpu_coefficient,
)
from repro.power.meter import EnergyMeter
from repro.power.models import CpuTdpPowerModel, FineGrainedPowerModel
from repro.power.rapl import (
    DEFAULT_MAX_ENERGY_RANGE_UJ,
    EnergyDelta,
    PowercapReader,
    SimulatedPowercapTree,
    SimulatedRaplDomain,
)
from repro.power.tools import TOOL_PROFILES, ToolProfile, generate_tool_run

__all__ = [
    "CalibrationSample",
    "CoefficientSet",
    "CpuTdpPowerModel",
    "DEFAULT_MAX_ENERGY_RANGE_UJ",
    "EnergyDelta",
    "EnergyMeter",
    "FineGrainedPowerModel",
    "PAPER_COEFFICIENTS",
    "PowercapReader",
    "SimulatedPowercapTree",
    "SimulatedRaplDomain",
    "TOOL_PROFILES",
    "ToolProfile",
    "cpu_coefficient",
    "fit_coefficients",
    "fit_cpu_quadratic",
    "generate_load_sweep",
    "generate_tool_run",
    "mean_absolute_percentage_error",
]
