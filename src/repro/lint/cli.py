"""``repro lint`` / ``python -m repro.lint`` — run the domain linter.

Exit codes: 0 clean (modulo the baseline), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from collections.abc import Sequence
from typing import Optional

from repro.lint.baseline import (
    BaselineResult,
    apply_baseline,
    compare_baselines,
    load_baseline,
    save_baseline,
)
from repro.lint.framework import Finding, all_rules, lint_paths, rules_by_code

__all__ = ["main", "add_arguments", "run", "changed_python_files"]

#: the committed ratchet file, looked up in the current directory.
DEFAULT_BASELINE = Path(".repro-lint-baseline.json")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared by the standalone entry point
    and the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="ratchet file of tolerated pre-existing findings "
             f"(default: {DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--fix-baseline", action="store_true",
        help="rewrite the baseline to the current findings (ratchet "
             "down stale buckets / record new debt explicitly)",
    )
    parser.add_argument(
        "--json", type=Path, nargs="?", const=Path("-"), default=None,
        metavar="PATH",
        help="emit the machine-readable report as JSON (to PATH, or "
             "stdout when no path is given)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files changed vs git HEAD (staged, unstaged and "
             "untracked), intersected with PATH arguments — the fast "
             "pre-commit mode; analysis per file is identical to a "
             "full run, so scoping never hides a finding",
    )
    parser.add_argument(
        "--compare-baseline", type=Path, default=None, metavar="OLD",
        help="compare the current baseline file against OLD and fail "
             "if any bucket grew or appeared (the CI ratchet gate); "
             "no linting is performed",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-aware static analysis for the energy pipeline "
                    "(unit literals, sim determinism, float ==, observer "
                    "guards, event kinds, __all__/docstring hygiene).",
    )
    add_arguments(parser)
    return parser


def changed_python_files(roots: Sequence[str]) -> Optional[list[str]]:
    """Python files changed vs ``HEAD`` (staged, unstaged, untracked)
    that live under one of ``roots``; ``None`` when git is unavailable
    (the caller falls back to a full run — scoping must fail open,
    never silently hide findings)."""
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    root_dirs = [Path(root).resolve() for root in roots]
    selected: list[str] = []
    for line in {*diff.splitlines(), *untracked.splitlines()}:
        if not line.endswith(".py"):
            continue
        path = Path(top, line)
        if not path.is_file():
            continue  # deleted files have nothing to lint
        resolved = path.resolve()
        if any(
            resolved == base or base in resolved.parents
            for base in root_dirs
        ):
            selected.append(str(path))
    return sorted(selected)


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.compare_baseline is not None:
        current = args.baseline or DEFAULT_BASELINE
        try:
            old = load_baseline(args.compare_baseline)
            new = load_baseline(current)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        violations = compare_baselines(old, new)
        for violation in violations:
            print(f"baseline ratchet violation: {violation}")
        if violations:
            print(
                f"repro lint: {current} grew relative to "
                f"{args.compare_baseline} — fix the findings instead of "
                "recording new debt"
            )
            return 1
        print("repro lint: baseline ratchet holds (no bucket grew)")
        return 0

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.packages) if rule.packages else "everywhere"
            print(f"{rule.code}  {rule.name:<24s} [{scope}]")
            print(f"        {rule.summary}")
        return 0

    if args.select:
        try:
            rules = rules_by_code(
                code.strip() for code in args.select.split(",") if code.strip()
            )
        except KeyError as exc:
            print(f"repro lint: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        rules = all_rules()

    paths = list(args.paths)
    if args.changed:
        changed = changed_python_files(paths)
        if changed is None:
            print(
                "repro lint: --changed needs git; linting everything",
                file=sys.stderr,
            )
        elif not changed:
            print("repro lint: no changed files under "
                  f"{', '.join(paths)}; clean")
            return 0
        else:
            paths = changed

    findings = lint_paths(paths, rules=rules)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        if DEFAULT_BASELINE.is_file():
            baseline_path = DEFAULT_BASELINE
    if args.no_baseline:
        baseline_path = None

    if args.fix_baseline:
        target = baseline_path or DEFAULT_BASELINE
        entries = save_baseline(target, findings)
        print(
            f"baseline written to {target}: {len(entries)} bucket(s), "
            f"{sum(entries.values())} finding(s) recorded"
        )
        return 0

    baseline: dict[str, int] = {}
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    result = apply_baseline(findings, baseline)

    if args.json is not None:
        payload = _json_report(findings, result, baseline_path)
        text = json.dumps(payload, indent=2) + "\n"
        if str(args.json) == "-":
            sys.stdout.write(text)
        else:
            args.json.write_text(text, encoding="utf-8")
            print(f"lint report written to {args.json}")
    else:
        _print_human(findings, result, baseline_path)

    return 0 if result.ok else 1


def _print_human(
    findings: list[Finding], result: BaselineResult, baseline_path: Optional[Path]
) -> None:
    for finding in result.new:
        print(finding.render())
    bits = []
    if result.new:
        bits.append(f"{len(result.new)} finding(s)")
    if result.suppressed:
        bits.append(
            f"{result.suppressed} suppressed by baseline {baseline_path}"
        )
    if result.stale:
        bits.append(
            f"{len(result.stale)} stale baseline bucket(s) — debt shrank; "
            "run --fix-baseline to ratchet down"
        )
    if not findings and not bits:
        bits.append("clean")
    print(f"repro lint: {'; '.join(bits) if bits else 'clean'}")


def _json_report(
    findings: list[Finding], result: BaselineResult, baseline_path: Optional[Path]
) -> dict:
    counts: dict[str, int] = {}
    for finding in result.new:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return {
        "ok": result.ok,
        "findings": [f.to_dict() for f in result.new],
        "counts_by_code": counts,
        "total_before_baseline": len(findings),
        "suppressed_by_baseline": result.suppressed,
        "stale_baseline_buckets": dict(sorted(result.stale.items())),
        "baseline": str(baseline_path) if baseline_path else None,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    return run(build_parser().parse_args(argv))
