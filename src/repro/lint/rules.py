"""The RPL rule catalogue.

Every rule encodes an invariant of the energy pipeline that a silent
violation would corrupt: the headline numbers are energy integrals
(watts x seconds over modeled rate vectors), so a Mbps/MBps mix-up, an
unseeded RNG in a simulation path, or a float ``==`` on a chunk
boundary is a results bug, not a style nit. Rules are scoped to the
packages where the invariant holds (see each rule's ``packages``), and
suppressible per line with ``# repro: noqa[RPLxxx]``.

=======  ==============================================================
code     invariant
=======  ==============================================================
RPL001   unit conversions go through :mod:`repro.units`, never raw
         ``1e6`` / ``* 1024`` / ``/ 8`` literals
RPL002   simulation paths are deterministic: no unseeded
         ``default_rng()``, no ``random.*``, no wall-clock reads
RPL003   no float ``==`` / ``!=`` in the energy/boundary math
RPL004   observer hook calls are guarded by ``is not None``
         (the zero-cost disabled idiom)
RPL005   ``emit(..., "kind", ...)`` kinds resolve against
         ``repro.obs.events.EVENT_SCHEMA``
RPL006   no mutable default arguments
RPL007   ``__all__`` hygiene: listed names exist; package
         ``__init__`` re-exports are declared
RPL008   public params with unit suffixes (``_s``/``_bytes``/``_w``/
         ``_j``/``_bps``) document their units in the docstring
RPL009   ``+``/``-``/``%``/comparisons/``min``/``max`` never mix
         dimensions (seconds vs bytes, W vs J, day-fraction vs s)
RPL010   assignment never changes a unit-suffixed (or alias-annotated)
         name's dimension
RPL011   call-site argument dimensions match the callee's
         annotation/suffix summary
RPL012   return value dimensions match the annotated
         :mod:`repro.units` alias
=======  ==============================================================

RPL009–RPL012 share one flow-sensitive dimensional pass (see
:mod:`repro.lint.dim` for the lattice, seeding and transfer
functions); the four codes are views over its findings, individually
selectable and suppressible like every other rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from collections.abc import Iterator
from typing import Optional

from repro.lint.dim import DIM_PACKAGES, DimFinding, SummaryTable, analyze
from repro.lint.framework import Finding, ModuleContext, Rule, register

__all__ = [
    "RawUnitLiterals",
    "SimulationNondeterminism",
    "FloatEquality",
    "UnguardedObserver",
    "UnknownEventKind",
    "MutableDefaults",
    "DunderAllHygiene",
    "UndocumentedUnits",
    "MixedDimensionArithmetic",
    "DimensionChangingAssignment",
    "ArgumentDimensionMismatch",
    "ReturnDimensionMismatch",
]

#: Packages whose numbers feed the paper's energy integrals directly.
_ENERGY_MATH = ("repro.core", "repro.netsim", "repro.netenergy", "repro.analysis")
#: Packages that must replay bit-identically under a fixed seed.
_SIMULATION = ("repro.netsim", "repro.core", "repro.service")
#: Packages covered by the typed-units/docstring contract.
_UNIT_SURFACE = _ENERGY_MATH + ("repro.obs", "repro.service", "repro.units")


def _is_number(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class RawUnitLiterals(Rule):
    """RPL001 — raw unit-conversion literals outside ``repro.units``.

    Flags ``*``/``/`` arithmetic against the classic conversion
    constants (1e3/1e6/1e9/1e12, the 1024 powers, and the 3.6e6
    joules-per-kWh factor) anywhere in the package, plus ``* 8`` /
    ``/ 8`` when the other operand smells like a rate (its
    subexpression names mention bps/bit/rate/bandwidth/throughput).
    ``repro.units`` itself is the one sanctioned home for these
    constants, and the named energy constants
    (``repro.service.tariff.JOULES_PER_KWH``) for theirs.
    """

    code = "RPL001"
    name = "raw-unit-literal"
    summary = "unit conversion bypasses repro.units helpers"
    packages = ("repro",)
    excluded = ("repro.units", "repro.lint")

    _CONSTANTS = frozenset(
        {1_000, 1_000_000, 1_000_000_000, 1_000_000_000_000,
         1024, 1024**2, 1024**3, 3_600_000}
    )
    _RATE_TOKENS = ("bps", "bit", "rate", "bandwidth", "throughput", "_bw")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            for operand, other in ((node.left, node.right), (node.right, node.left)):
                if not _is_number(operand):
                    continue
                value = operand.value  # type: ignore[attr-defined]
                if value in self._CONSTANTS:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"raw unit literal {value:g} in arithmetic; use a "
                        "repro.units helper (MB, mbps(), to_mbps(), ...)",
                    )
                    break
                if value == 8 and self._smells_like_rate(other):
                    yield ctx.finding(
                        node,
                        self.code,
                        "bits<->bytes factor 8 applied to a rate; use "
                        "repro.units mbps()/to_mbps() instead",
                    )
                    break

    def _smells_like_rate(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name and any(tok in name.lower() for tok in self._RATE_TOKENS):
                return True
        return False


@register
class SimulationNondeterminism(Rule):
    """RPL002 — nondeterminism in simulation paths.

    The engine, the algorithms, and the service layer must replay
    bit-identically under a fixed seed: flags unseeded
    ``np.random.default_rng()``, any use of the stdlib ``random``
    module, and wall-clock reads (``time.time``/``datetime.now``/...),
    which would couple simulated results to the host clock.
    """

    code = "RPL002"
    name = "sim-nondeterminism"
    summary = "nondeterministic call in a simulation path"
    packages = _SIMULATION

    _CLOCK_ATTRS = {
        "time": {"time", "time_ns", "monotonic", "perf_counter"},
        "datetime": {"now", "utcnow", "today"},
        "date": {"today"},
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_import(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    yield ctx.finding(
                        node,
                        self.code,
                        "stdlib random in a simulation path; use a seeded "
                        "np.random.default_rng(seed) threaded from the caller",
                    )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            yield ctx.finding(
                node,
                self.code,
                "stdlib random in a simulation path; use a seeded "
                "np.random.default_rng(seed) threaded from the caller",
            )

    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf == "default_rng" and not node.args and not node.keywords:
            yield ctx.finding(
                node,
                self.code,
                "unseeded default_rng() in a simulation path; thread an "
                "explicit seed (or rng) through the caller",
            )
            return
        head = dotted.split(".", 1)[0]
        if head == "random" and "." in dotted:
            yield ctx.finding(
                node,
                self.code,
                f"{dotted}() is process-seeded global state; use a seeded "
                "np.random.default_rng(seed)",
            )
            return
        parts = dotted.split(".")
        if len(parts) >= 2:
            mod, attr = parts[-2], parts[-1]
            if attr in self._CLOCK_ATTRS.get(mod, ()):
                yield ctx.finding(
                    node,
                    self.code,
                    f"wall-clock read {dotted}() in a simulation path; "
                    "simulated time must come from the engine clock",
                )


@register
class FloatEquality(Rule):
    """RPL003 — float ``==`` / ``!=`` in the energy/boundary math.

    A float-literal equality on a chunk-partition or SLA boundary
    silently flips on round-off (exactly the class of bug fixed by hand
    in the HTEE probe ladder and ``sla_met``). Compare with an explicit
    tolerance, or document an exact sentinel comparison with
    ``# repro: noqa[RPL003]``.
    """

    code = "RPL003"
    name = "float-equality"
    summary = "float equality comparison in energy/boundary math"
    packages = _ENERGY_MATH

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                for side in (left, right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                    ):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield ctx.finding(
                            node,
                            self.code,
                            f"float {symbol} {side.value!r}; use an explicit "
                            "tolerance (abs(x - y) <= tol) or document the "
                            "exact comparison with # repro: noqa[RPL003]",
                        )
                        break


@register
class UnguardedObserver(Rule):
    """RPL004 — observer hook calls without the ``is not None`` guard.

    Instrumented code holds an ``Optional[Observer]``; PR 2's zero-cost
    contract is one ``is not None`` attribute check per disabled site.
    Flags ``observer.<hook>(...)`` / ``self.observer.<hook>(...)``
    calls not enclosed in an ``if <receiver> is not None:`` branch (or
    the ``else`` of an ``is None`` test). A receiver assigned directly
    from an ``Observer(...)`` constructor in the same function scope is
    statically non-None and exempt.
    """

    code = "RPL004"
    name = "unguarded-observer"
    summary = "observer call site missing the 'is not None' guard"
    packages = ("repro",)
    excluded = ("repro.obs", "repro.lint")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            if not self._is_observer_expr(receiver):
                continue
            if self._guarded(ctx, node, receiver):
                continue
            yield ctx.finding(
                node,
                self.code,
                f"call to {_dotted(func) or 'observer hook'}() is not "
                "guarded by 'if <observer> is not None'; the disabled "
                "path must stay zero-cost",
            )

    @staticmethod
    def _is_observer_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in {"observer", "obs"}
        if isinstance(node, ast.Attribute):
            return node.attr == "observer"
        return False

    def _guarded(self, ctx: ModuleContext, call: ast.Call, receiver: ast.AST) -> bool:
        if self._constructed_locally(ctx, call, receiver):
            return True
        target = ast.dump(receiver)
        child: ast.AST = call
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, ast.If):
                in_body = any(child is stmt or self._contains(stmt, child)
                              for stmt in ancestor.body)
                polarity = self._none_test(ancestor.test, target)
                if polarity == "not-none" and in_body:
                    return True
                if polarity == "none" and not in_body:
                    return True
            elif isinstance(ancestor, ast.IfExp):
                polarity = self._none_test(ancestor.test, target)
                if polarity == "not-none" and self._contains(ancestor.body, call):
                    return True
                if polarity == "none" and self._contains(ancestor.orelse, call):
                    return True
            elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                       ast.ClassDef)):
                break
            child = ancestor
        return False

    @staticmethod
    def _contains(root: ast.AST, node: ast.AST) -> bool:
        return any(sub is node for sub in ast.walk(root))

    @staticmethod
    def _constructed_locally(
        ctx: ModuleContext, call: ast.Call, receiver: ast.AST
    ) -> bool:
        """True when the receiver is a plain name assigned from an
        ``Observer(...)`` constructor inside the enclosing function, so
        it cannot be ``None``."""
        if not isinstance(receiver, ast.Name):
            return False
        scope: Optional[ast.AST] = None
        for ancestor in ctx.ancestors(call):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = ancestor
                break
        if scope is None:
            scope = ctx.tree
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == receiver.id
                for t in node.targets
            ):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted is not None and dotted.rsplit(".", 1)[-1] == "Observer":
                    return True
        return False

    @staticmethod
    def _none_test(test: ast.AST, target: str) -> Optional[str]:
        """Classify a condition: 'not-none' if it asserts the receiver
        is not None (possibly inside an ``and``), 'none' for the
        inverse, else ``None``."""
        for sub in ast.walk(test):
            if not isinstance(sub, ast.Compare) or len(sub.ops) != 1:
                continue
            op = sub.ops[0]
            if not isinstance(op, (ast.Is, ast.IsNot)):
                continue
            left, right = sub.left, sub.comparators[0]
            none_side = (
                isinstance(right, ast.Constant) and right.value is None
            ) or (isinstance(left, ast.Constant) and left.value is None)
            expr_side = left if not isinstance(left, ast.Constant) else right
            if none_side and ast.dump(expr_side) == target:
                return "not-none" if isinstance(op, ast.IsNot) else "none"
        return None


@register
class UnknownEventKind(Rule):
    """RPL005 — ``emit()`` kinds must resolve against ``EVENT_SCHEMA``.

    The observability schema is enforced at runtime, but an unknown
    kind only explodes when the instrumented branch actually runs;
    this rule resolves every literal ``emit(time, "kind", ...)`` kind
    against ``repro.obs.events.EVENT_SCHEMA`` statically (by parsing
    the schema module's AST, so the linter needs no numeric stack).
    """

    code = "RPL005"
    name = "unknown-event-kind"
    summary = "emit() kind not present in obs.events.EVENT_SCHEMA"
    packages = ("repro",)
    excluded = ("repro.lint",)

    _schema_cache: Optional[frozenset[str]] = None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        kinds = self._schema_kinds(ctx)
        if kinds is None:  # schema module unavailable: stay silent
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                continue
            kind = self._kind_arg(node)
            if kind is None:
                continue
            if kind not in kinds:
                yield ctx.finding(
                    node,
                    self.code,
                    f"event kind {kind!r} is not in "
                    "repro.obs.events.EVENT_SCHEMA; add it to the schema "
                    "or fix the call site",
                )

    @staticmethod
    def _kind_arg(node: ast.Call) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "kind":
                if isinstance(kw.value, ast.Constant) and isinstance(
                    kw.value.value, str
                ):
                    return kw.value.value
                return None
        if len(node.args) >= 2:
            arg = node.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        return None

    @classmethod
    def _schema_kinds(cls, ctx: ModuleContext) -> Optional[frozenset[str]]:
        if cls._schema_cache is not None:
            return cls._schema_cache
        kinds = cls._kinds_from_ast(ctx) or cls._kinds_from_import()
        if kinds:
            cls._schema_cache = kinds
        return kinds

    @staticmethod
    def _kinds_from_ast(ctx: ModuleContext) -> Optional[frozenset[str]]:
        """Locate ``obs/events.py`` next to the linted tree and pull the
        literal keys of ``EVENT_SCHEMA`` out of its AST."""
        parts = Path(ctx.path).parts
        if "repro" not in parts:
            return None
        root = Path(*parts[: parts.index("repro") + 1])
        candidate = root / "obs" / "events.py"
        if not candidate.is_file():
            return None
        try:
            tree = ast.parse(candidate.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            return None
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "EVENT_SCHEMA":
                    if isinstance(value, ast.Dict):
                        return frozenset(
                            k.value
                            for k in value.keys
                            if isinstance(k, ast.Constant)
                            and isinstance(k.value, str)
                        )
        return None

    @staticmethod
    def _kinds_from_import() -> Optional[frozenset[str]]:
        try:
            from repro.obs.events import EVENT_SCHEMA
        except Exception:
            return None
        return frozenset(EVENT_SCHEMA)


@register
class MutableDefaults(Rule):
    """RPL006 — mutable default arguments.

    A ``[]`` / ``{}`` / ``set()`` default is shared across calls; in a
    harness that replays campaigns in one process this turns into
    cross-run state leakage (the ``dataset_for`` cache-poisoning bug
    was the same disease in cache form).
    """

    code = "RPL006"
    name = "mutable-default"
    summary = "mutable default argument"
    packages = None  # everywhere

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        default,
                        self.code,
                        f"mutable default argument in {label}(); default to "
                        "None and create the container inside the function",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._MUTABLE_CALLS
        return False


@register
class DunderAllHygiene(Rule):
    """RPL007 — ``__all__`` hygiene.

    Two checks: every name listed in ``__all__`` is actually bound at
    module top level, and every public name a package ``__init__``
    re-exports via a relative import is declared in its ``__all__``
    (so the public API surface is explicit, not accidental).
    """

    code = "RPL007"
    name = "dunder-all-hygiene"
    summary = "__all__ out of sync with module bindings"
    packages = ("repro",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        declared, all_node = self._declared_all(ctx.tree)
        if declared is None:
            return
        bound = self._top_level_bindings(ctx.tree)
        star_import = "*" in bound
        for name in sorted(declared):
            if not star_import and name not in bound:
                yield ctx.finding(
                    all_node,
                    self.code,
                    f"__all__ lists {name!r} but the module never binds it",
                )
        if Path(ctx.path).name == "__init__.py":
            yield from self._check_reexports(ctx, declared)

    @staticmethod
    def _declared_all(
        tree: ast.Module,
    ) -> tuple[Optional[set[str]], Optional[ast.AST]]:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            names = {
                                e.value
                                for e in node.value.elts
                                if isinstance(e, ast.Constant)
                                and isinstance(e.value, str)
                            }
                            return names, node
        return None, None

    @classmethod
    def _top_level_bindings(cls, tree: ast.Module) -> set[str]:
        bound: set[str] = set()
        cls._collect_bindings(tree.body, bound)
        return bound

    @classmethod
    def _collect_bindings(cls, body: list[ast.stmt], bound: set[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    cls._collect_target(target, bound)
            elif isinstance(node, ast.AnnAssign):
                cls._collect_target(node.target, bound)
            elif isinstance(node, ast.AugAssign):
                cls._collect_target(node.target, bound)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.If):
                cls._collect_bindings(node.body, bound)
                cls._collect_bindings(node.orelse, bound)
            elif isinstance(node, ast.Try):
                cls._collect_bindings(node.body, bound)
                for handler in node.handlers:
                    cls._collect_bindings(handler.body, bound)
                cls._collect_bindings(node.orelse, bound)
                cls._collect_bindings(node.finalbody, bound)

    @staticmethod
    def _collect_target(target: ast.expr, bound: set[str]) -> None:
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                DunderAllHygiene._collect_target(elt, bound)
        elif isinstance(target, ast.Starred):
            DunderAllHygiene._collect_target(target.value, bound)

    def _check_reexports(
        self, ctx: ModuleContext, declared: set[str]
    ) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ImportFrom) or node.level < 1:
                continue
            for alias in node.names:
                name = alias.asname or alias.name
                if name == "*" or name.startswith("_"):
                    continue
                if name not in declared:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"package __init__ re-exports {name!r} without "
                        "declaring it in __all__",
                    )


@register
class UndocumentedUnits(Rule):
    """RPL008 — unit-suffixed public parameters must document units.

    A parameter named ``deadline_s`` or ``rate_bps`` is a contract;
    the docstring of a public function must say what the unit means
    (seconds, bytes, bytes/s, watts, joules) so call sites never have
    to reverse-engineer the internal unit system.
    """

    code = "RPL008"
    name = "undocumented-units"
    summary = "unit-suffixed parameter lacks a unit mention in the docstring"
    packages = _UNIT_SURFACE

    #: suffix -> docstring tokens that count as documenting it
    #: (checked longest-suffix-first so ``_per_s``/``_bps`` win over ``_s``).
    _SUFFIXES: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("_bytes_per_s", ("bytes/s", "bytes per second", "rate")),
        ("_per_s", ("per second", "/s", "rate")),
        ("_bps", ("bytes/s", "bytes per second", "bits per second",
                  "bps", "rate")),
        ("_bytes", ("byte",)),
        ("_joules", ("joule",)),
        ("_watts", ("watt",)),
        ("_seconds", ("second",)),
        ("_s", ("second",)),
        ("_w", ("watt",)),
        ("_j", ("joule",)),
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            doc = ast.get_docstring(node) or ""
            doc_lower = doc.lower()
            args = [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]
            for arg in args:
                if arg.arg in {"self", "cls"}:
                    continue
                tokens = self._tokens_for(arg.arg)
                if tokens is None:
                    continue
                if not doc:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"public function {node.name}() takes unit-suffixed "
                        f"parameter {arg.arg!r} but has no docstring",
                    )
                    break
                if not any(tok in doc_lower for tok in tokens):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"{node.name}() docstring does not state the unit of "
                        f"{arg.arg!r} (expected a mention of "
                        f"{' / '.join(tokens[:2])})",
                    )

    def _tokens_for(self, name: str) -> Optional[tuple[str, ...]]:
        for suffix, tokens in self._SUFFIXES:
            if name.endswith(suffix):
                return tokens
        return None


class _DimensionalRule(Rule):
    """Shared machinery for RPL009–RPL012.

    The four dimensional rules are views over one flow-sensitive pass
    (:func:`repro.lint.dim.analyze`); the analysis runs once per module
    and is cached on the :class:`ModuleContext`, so selecting all four
    costs the same as selecting one.
    """

    packages = DIM_PACKAGES
    excluded = ("repro.units", "repro.lint")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for finding in self._dim_findings(ctx):
            if finding.code == self.code:
                yield ctx.finding(finding.node, finding.code, finding.message)

    @staticmethod
    def _dim_findings(ctx: ModuleContext) -> list[DimFinding]:
        cached = getattr(ctx, "_dim_findings", None)
        if cached is None:
            cached = analyze(ctx.tree, ctx.path, SummaryTable(ctx.path))
            ctx._dim_findings = cached  # type: ignore[attr-defined]
        return cached


@register
class MixedDimensionArithmetic(_DimensionalRule):
    """RPL009 — ``+``/``-``/``%``/comparison/``min``/``max`` over
    operands of different dimensions.

    ``Watts * Seconds`` is joules and composes fine; ``Watts +
    Seconds`` is a results bug. The day-fraction class lives here too:
    a provably dimensionless ratio (two durations divided, a seeded
    ``rng.uniform(0.2, 0.3)``) added to wall seconds flags, while bare
    numeric literals stay polymorphic (``t_s + 1.0`` is fine).
    """

    code = "RPL009"
    name = "mixed-dimension-arithmetic"
    summary = "additive arithmetic or comparison mixes dimensions"


@register
class DimensionChangingAssignment(_DimensionalRule):
    """RPL010 — assignment changes a unit-suffixed name's dimension.

    A name like ``duration_s`` or ``total_bytes`` (or one annotated
    with a :mod:`repro.units` alias) declares its dimension; binding
    it to a value of a different dimension — ``duration_s = size_bytes``
    — silently corrupts every downstream use.
    """

    code = "RPL010"
    name = "dimension-changing-assignment"
    summary = "assignment contradicts the dimension the name declares"


@register
class ArgumentDimensionMismatch(_DimensionalRule):
    """RPL011 — call-site argument dimension contradicts the callee.

    Callee contracts come from the interprocedural summary pass
    (annotations + unit suffixes over the whole tree, including
    dataclass constructors), so ``bdp_bytes(rtt_s, bandwidth)`` —
    swapped arguments, each individually well-formed — flags at the
    call site.
    """

    code = "RPL011"
    name = "argument-dimension-mismatch"
    summary = "argument dimension contradicts the callee's summary"


@register
class ReturnDimensionMismatch(_DimensionalRule):
    """RPL012 — return dimension contradicts the annotated alias.

    A function annotated ``-> Joules`` returning ``power_w`` (watts)
    breaks every caller that trusts the signature; the flow-sensitive
    pass checks each ``return`` against the declared alias.
    """

    code = "RPL012"
    name = "return-dimension-mismatch"
    summary = "return value dimension contradicts the annotated alias"
