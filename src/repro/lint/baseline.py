"""Baseline (ratchet) support.

Existing debt is recorded in a committed JSON file as *counts per
(file, code) bucket* — line numbers churn too much to pin. The policy
is a one-way ratchet:

* a bucket at or under its baselined count is **suppressed** (old debt,
  tolerated),
* a bucket over its count **fails the run** (new debt, rejected) and
  every finding in the bucket is reported so the offender is visible,
* a bucket under its count is **stale** — the run still passes, but
  the linter nags until ``--fix-baseline`` re-records the smaller
  number, so debt can only shrink.

An empty ``entries`` map is a perfectly good baseline: it simply means
the tree is clean and must stay clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.framework import Finding

__all__ = [
    "BASELINE_VERSION",
    "BaselineResult",
    "load_baseline",
    "save_baseline",
    "baseline_counts",
    "apply_baseline",
    "compare_baselines",
]

BASELINE_VERSION = 1


def load_baseline(path: Path | str) -> dict[str, int]:
    """Read a baseline file into its ``"path::CODE" -> count`` map."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path} is not a repro-lint baseline file")
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = data["entries"]
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: baseline entries must be an object")
    return {str(k): int(v) for k, v in entries.items()}


def save_baseline(path: Path | str, findings: list[Finding]) -> dict[str, int]:
    """Write the current findings as the new baseline; returns the map."""
    entries = baseline_counts(findings)
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "repro-lint ratchet: counts of tolerated pre-existing findings "
            "per file::code bucket. Regenerate with 'repro lint --fix-baseline'. "
            "Counts may only go down."
        ),
        "entries": {k: entries[k] for k in sorted(entries)},
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entries


def baseline_counts(findings: list[Finding]) -> dict[str, int]:
    """Findings folded into their ``"path::CODE" -> count`` buckets."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.key] = counts.get(finding.key, 0) + 1
    return counts


@dataclass
class BaselineResult:
    """Outcome of folding a finding list against a baseline."""

    #: findings that must be reported (buckets over their allowance).
    new: list[Finding] = field(default_factory=list)
    #: number of findings suppressed as known debt.
    suppressed: int = 0
    #: baseline buckets whose debt shrank (or vanished): ratchet down.
    stale: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new


def compare_baselines(
    old: dict[str, int], new: dict[str, int]
) -> list[str]:
    """Growth violations of ``new`` relative to ``old``, as messages.

    The ratchet is one-way: a bucket may shrink or vanish, but any
    bucket that *appears* or *grows* in ``new`` is a violation — this
    is the CI gate that keeps ``.repro-lint-baseline.json`` from
    quietly accumulating debt. An empty list means ``new`` is at or
    below ``old`` everywhere.
    """
    violations = []
    for key in sorted(new):
        allowed = old.get(key, 0)
        if new[key] > allowed:
            if allowed:
                violations.append(
                    f"{key}: baseline grew {allowed} -> {new[key]}"
                )
            else:
                violations.append(
                    f"{key}: new baseline bucket ({new[key]} finding(s))"
                )
    return violations


def apply_baseline(
    findings: list[Finding], baseline: dict[str, int]
) -> BaselineResult:
    """Split findings into new-vs-known against the baseline map."""
    result = BaselineResult()
    counts = baseline_counts(findings)
    for key, allowed in baseline.items():
        found = counts.get(key, 0)
        if found < allowed:
            result.stale[key] = allowed - found
    by_key: dict[str, list[Finding]] = {}
    for finding in findings:
        by_key.setdefault(finding.key, []).append(finding)
    for key, group in by_key.items():
        allowed = baseline.get(key, 0)
        if len(group) > allowed:
            result.new.extend(group)
        else:
            result.suppressed += len(group)
    result.new.sort()
    return result
