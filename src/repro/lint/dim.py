"""Flow-sensitive dimensional analysis over the energy math.

Every headline number the reproduction produces is arithmetic over
seconds, bytes, watts, joules, dollars and kgCO2. The typed-unit
aliases (:mod:`repro.units`) *label* those quantities; this module
*checks* them: a small abstract interpreter assigns each expression a
**dimension vector** — rational exponents over the base axes time,
data, energy, currency and carbon — and propagates it through
assignments, arithmetic, augmented assigns, ternaries and calls.

Derived dimensions fall out of the algebra: power is energy/time, so
``Watts * Seconds -> Joules`` and ``Joules / Seconds -> Watts``
compose exactly; a data rate is data/time, so
``Bytes / BytesPerSecond -> Seconds``. Addition, subtraction and
comparison require *equal* dimensions — ``day_fraction + wall_seconds``
is the canonical bug this pass exists to catch.

Dimension facts are seeded from three sources, in priority order:

1. **annotations** using the :mod:`repro.units` aliases
   (``Seconds``/``Bytes``/``BytesPerSecond``/``Watts``/``Joules``),
2. **unit-suffixed names** (``_s``/``_bytes``/``_w``/``_j``/``_bps``
   and friends, the RPL008 vocabulary, plus compound ``a_per_b``
   forms like ``dollars_per_kwh``),
3. **call summaries**: a first interprocedural pass over the whole
   ``src/repro`` tree records every function's (and dataclass
   constructor's) parameter/return dimensions from its annotations
   and suffixes, so a call site is checked against the callee's
   contract without inlining anything.

Numeric literals are *polymorphic* (``t + 1.0`` is fine; the literal
adopts the other operand's dimension), but a value that is *provably*
dimensionless — e.g. the ratio of two durations, or a seeded
``rng.uniform(0.2, 0.3)`` day fraction — does **not** unify with a
dimensioned operand. The analysis is scale-blind by design: ``ms`` and
``s`` share the time dimension, ``GB`` and bytes the data dimension —
magnitude conversions are RPL001's business, not this pass's.

Four rules surface the findings (see :mod:`repro.lint.rules`):

=======  ==============================================================
RPL009   mixed dimensions in ``+``/``-``/``%``/comparison/``min``/``max``
RPL010   assignment gives a unit-suffixed (or alias-annotated) name a
         value of a different dimension
RPL011   call-site argument dimension contradicts the callee summary
RPL012   return value dimension contradicts the annotated alias
=======  ==============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import Optional

__all__ = [
    "Dim",
    "DIMENSIONLESS",
    "NUMERIC",
    "SECONDS",
    "BYTES",
    "BYTES_PER_S",
    "WATTS",
    "JOULES",
    "DOLLARS",
    "KG_CO2",
    "dim_of_name",
    "dim_of_annotation",
    "FunctionSummary",
    "summarize_module",
    "SummaryTable",
    "DimFinding",
    "analyze",
    "DIM_PACKAGES",
]

#: Packages the dimensional pass runs over — the modules whose
#: arithmetic lands in the paper's tables.
DIM_PACKAGES = (
    "repro.core",
    "repro.netsim",
    "repro.power",
    "repro.netenergy",
    "repro.analysis",
    "repro.service",
    "repro.chaos",
    "repro.topo",
)

# ----------------------------------------------------------------------
# the dimension lattice
# ----------------------------------------------------------------------

#: Base axes of the dimension vector. Power is *derived* (energy/time)
#: so that W·s → J and J/s → W hold by construction; likewise a data
#: rate is data/time.
_AXES = ("time", "data", "energy", "currency", "carbon")
_ZERO = (Fraction(0),) * len(_AXES)


@dataclass(frozen=True)
class Dim:
    """A dimension vector: rational exponents over the base axes.

    ``poly=True`` marks the dimension of a bare numeric literal — it
    multiplies as a dimensionless scalar but *unifies* with any
    operand in additive positions (``t_s + 1.0`` carries seconds).
    A non-poly all-zero vector is **provably dimensionless** (a ratio
    of like quantities) and does not unify with dimensioned operands.
    """

    exps: tuple[Fraction, ...] = _ZERO
    poly: bool = False

    def __mul__(self, other: "Dim") -> "Dim":
        return Dim(
            tuple(a + b for a, b in zip(self.exps, other.exps)),
            poly=self.poly and other.poly,
        )

    def __truediv__(self, other: "Dim") -> "Dim":
        return Dim(
            tuple(a - b for a, b in zip(self.exps, other.exps)),
            poly=self.poly and other.poly,
        )

    def __pow__(self, exponent: Fraction) -> "Dim":
        return Dim(tuple(a * exponent for a in self.exps), poly=self.poly)

    @property
    def is_dimensionless(self) -> bool:
        return all(e == 0 for e in self.exps)

    def label(self) -> str:
        """A human-readable unit name: ``s``, ``J``, ``bytes/s``,
        ``$/J`` … falling back to an exponent product."""
        if self.poly:
            return "number"
        known = _LABELS.get(self.exps)
        if known is not None:
            return known
        num, den = [], []
        for axis, exp in zip(_AXES, self.exps):
            symbol = _AXIS_SYMBOLS[axis]
            if exp == 0:
                continue
            target = num if exp > 0 else den
            magnitude = abs(exp)
            target.append(
                symbol if magnitude == 1 else f"{symbol}^{magnitude}"
            )
        head = "*".join(num) if num else "1"
        return head + ("/" + "/".join(den) if den else "")


def _base(axis: str) -> Dim:
    exps = list(_ZERO)
    exps[_AXES.index(axis)] = Fraction(1)
    return Dim(tuple(exps))


DIMENSIONLESS = Dim()
#: A numeric literal: polymorphic in additive positions.
NUMERIC = Dim(poly=True)
SECONDS = _base("time")
BYTES = _base("data")
JOULES = _base("energy")
DOLLARS = _base("currency")
KG_CO2 = _base("carbon")
WATTS = JOULES / SECONDS
BYTES_PER_S = BYTES / SECONDS

_AXIS_SYMBOLS = {
    "time": "s",
    "data": "bytes",
    "energy": "J",
    "currency": "$",
    "carbon": "kgCO2",
}

_LABELS: dict[tuple[Fraction, ...], str] = {
    DIMENSIONLESS.exps: "dimensionless",
    SECONDS.exps: "s",
    BYTES.exps: "bytes",
    JOULES.exps: "J",
    WATTS.exps: "W",
    BYTES_PER_S.exps: "bytes/s",
    DOLLARS.exps: "$",
    KG_CO2.exps: "kgCO2",
    (DOLLARS / JOULES).exps: "$/J",
    (KG_CO2 / JOULES).exps: "kgCO2/J",
    (DOLLARS / BYTES).exps: "$/bytes",
}


def _unify(a: Optional[Dim], b: Optional[Dim]) -> tuple[Optional[Dim], bool]:
    """Additive unification: ``(result, conflict)``. Unknown or
    polymorphic operands never conflict; two known, non-poly,
    *different* vectors do."""
    if a is None:
        return b, False
    if b is None:
        return a, False
    if a.poly:
        return b, False
    if b.poly:
        return a, False
    if a.exps == b.exps:
        return a, False
    return None, True


# ----------------------------------------------------------------------
# seeding: aliases, suffixes
# ----------------------------------------------------------------------

#: :mod:`repro.units` alias name -> dimension (annotation seeding).
_ALIAS_DIMS = {
    "Seconds": SECONDS,
    "Bytes": BYTES,
    "BytesPerSecond": BYTES_PER_S,
    "Watts": WATTS,
    "Joules": JOULES,
}

#: Atomic suffix tokens -> dimension. Scale-blind: ``ms`` is still
#: time, ``gb`` still data, ``kwh`` still energy.
_ATOMS = {
    "s": SECONDS,
    "seconds": SECONDS,
    "sec": SECONDS,
    "ms": SECONDS,
    "bytes": BYTES,
    "kb": BYTES,
    "mb": BYTES,
    "gb": BYTES,
    "tb": BYTES,
    "j": JOULES,
    "joules": JOULES,
    "uj": JOULES,
    "kj": JOULES,
    "kwh": JOULES,
    "w": WATTS,
    "watts": WATTS,
    "kw": WATTS,
    "bps": BYTES_PER_S,
    "kbps": BYTES_PER_S,
    "mbps": BYTES_PER_S,
    "gbps": BYTES_PER_S,
    "usd": DOLLARS,
    "dollars": DOLLARS,
    "cost": DOLLARS,
    "kg_co2": KG_CO2,
    "co2": KG_CO2,
}


def dim_of_name(name: str) -> Optional[Dim]:
    """The dimension a unit-suffixed identifier declares, or ``None``.

    Handles the RPL008 suffix vocabulary (``duration_s``,
    ``total_bytes``, ``idle_watts``, ``rate_bps`` …) plus compound
    ``a_per_b`` forms (``rate_bytes_per_s`` → bytes/s,
    ``dollars_per_kwh`` → $/J). ``per_packet_joules``-style names (no
    leading part before ``per``) resolve through the plain suffix.
    """
    name = name.lower()
    if "_per_" in name:
        left, _, right = name.rpartition("_per_")
        denominator = _ATOMS.get(right)
        numerator = dim_of_name(left)
        if numerator is not None and denominator is not None:
            return numerator / denominator
        return None
    atom = _ATOMS.get(name)
    if atom is not None:
        return atom
    for token in _SUFFIXES_LONGEST_FIRST:
        if name.endswith("_" + token):
            return _ATOMS[token]
    return None


_SUFFIXES_LONGEST_FIRST = sorted(_ATOMS, key=len, reverse=True)


def dim_of_annotation(node: Optional[ast.expr]) -> Optional[Dim]:
    """The dimension an annotation expression declares, or ``None``.

    Recognizes the bare aliases (``Seconds``), dotted forms
    (``units.Seconds``), ``Optional[Seconds]``, and PEP 604 unions
    (``Seconds | None``); everything else — ``float``, containers,
    protocols — is dimension-unknown.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return _ALIAS_DIMS.get(node.id)
    if isinstance(node, ast.Attribute):
        return _ALIAS_DIMS.get(node.attr)
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if head_name == "Optional":
            return dim_of_annotation(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = dim_of_annotation(node.left)
        right = dim_of_annotation(node.right)
        sides = [d for d in (left, right) if d is not None]
        nones = [
            s
            for s in (node.left, node.right)
            if isinstance(s, ast.Constant) and s.value is None
        ]
        if len(sides) == 1 and (nones or left is None or right is None):
            return sides[0]
        return None
    return None


# ----------------------------------------------------------------------
# interprocedural summaries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionSummary:
    """One callable's dimensional contract, from annotations + suffixes."""

    qualname: str
    #: positional parameter names, in order (``self``/``cls`` dropped).
    positional: tuple[str, ...]
    #: parameter name -> declared dimension (only dimensioned params).
    param_dims: dict[str, Dim] = field(default_factory=dict)
    return_dim: Optional[Dim] = None


def _summarize_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str, *,
    drop_self: bool,
) -> FunctionSummary:
    args = [*node.args.posonlyargs, *node.args.args]
    if drop_self and args and args[0].arg in ("self", "cls"):
        args = args[1:]
    param_dims: dict[str, Dim] = {}
    for arg in [*args, *node.args.kwonlyargs]:
        dim = dim_of_annotation(arg.annotation) or dim_of_name(arg.arg)
        if dim is not None:
            param_dims[arg.arg] = dim
    return FunctionSummary(
        qualname=qualname,
        positional=tuple(arg.arg for arg in args),
        param_dims=param_dims,
        return_dim=dim_of_annotation(node.returns),
    )


def _summarize_class(node: ast.ClassDef) -> Optional[FunctionSummary]:
    """A class's constructor contract: its ``__init__`` when present,
    else its dataclass-style annotated fields (``ClassVar`` skipped)."""
    for stmt in node.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ):
            return _summarize_function(stmt, node.name, drop_self=True)
    positional: list[str] = []
    param_dims: dict[str, Dim] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if not isinstance(target, ast.Name):
            continue
        annotation = stmt.annotation
        head = annotation.value if isinstance(annotation, ast.Subscript) else None
        head_name = (
            head.attr if isinstance(head, ast.Attribute)
            else head.id if isinstance(head, ast.Name) else None
        )
        if head_name == "ClassVar":
            continue
        positional.append(target.id)
        dim = dim_of_annotation(annotation) or dim_of_name(target.id)
        if dim is not None:
            param_dims[target.id] = dim
    if not positional:
        return None
    return FunctionSummary(
        qualname=node.name,
        positional=tuple(positional),
        param_dims=param_dims,
    )


def summarize_module(tree: ast.Module) -> dict[str, FunctionSummary]:
    """Every top-level callable's contract, keyed by name
    (``func``, ``Class`` for constructors, ``Class.method``)."""
    table: dict[str, FunctionSummary] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = _summarize_function(
                node, node.name, drop_self=False
            )
        elif isinstance(node, ast.ClassDef):
            ctor = _summarize_class(node)
            if ctor is not None:
                table[node.name] = ctor
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    table[f"{node.name}.{stmt.name}"] = _summarize_function(
                        stmt, f"{node.name}.{stmt.name}", drop_self=True
                    )
    return table


def _units_overrides() -> dict[str, FunctionSummary]:
    """Hand-written contracts for the :mod:`repro.units` converters
    whose *surface-unit* parameters annotations cannot express (the
    input to ``mbps()`` is a megabit figure, the output bytes/s)."""

    def s(name: str, params: Sequence[tuple[str, Optional[Dim]]],
          ret: Optional[Dim]) -> FunctionSummary:
        return FunctionSummary(
            qualname=name,
            positional=tuple(p for p, _ in params),
            param_dims={p: d for p, d in params if d is not None},
            return_dim=ret,
        )

    return {
        "kbps": s("kbps", [("value", None)], BYTES_PER_S),
        "mbps": s("mbps", [("value", None)], BYTES_PER_S),
        "gbps": s("gbps", [("value", None)], BYTES_PER_S),
        "ms": s("ms", [("value", None)], SECONDS),
        "to_ms": s("to_ms", [("time_s", SECONDS)], SECONDS),
        "to_mbps": s(
            "to_mbps", [("rate_bytes_per_s", BYTES_PER_S)], BYTES_PER_S
        ),
        "to_gbps": s(
            "to_gbps", [("rate_bytes_per_s", BYTES_PER_S)], BYTES_PER_S
        ),
        "to_MB": s("to_MB", [("size_bytes", BYTES)], BYTES),
        "to_GB": s("to_GB", [("size_bytes", BYTES)], BYTES),
        "microjoules": s("microjoules", [("energy_uj", JOULES)], JOULES),
        "to_microjoules": s(
            "to_microjoules", [("energy_joules", JOULES)], JOULES
        ),
        "kilojoules": s("kilojoules", [("energy_joules", JOULES)], JOULES),
        "bdp_bytes": s(
            "bdp_bytes",
            [("bandwidth_bytes_per_s", BYTES_PER_S), ("rtt_s", SECONDS)],
            BYTES,
        ),
    }


class SummaryTable:
    """Cross-module summary resolution for one lint invocation.

    The table lazily scans the ``src/repro`` tree that contains the
    linted file (the same root-location trick RPL005 uses for the
    event schema) and parses every module's annotations into
    :class:`FunctionSummary` rows; the :mod:`repro.units` converter
    overrides are layered on top. Results are cached per root, so a
    full-tree lint parses each file for summaries exactly once.
    """

    _cache: dict[str, dict[str, dict[str, FunctionSummary]]] = {}

    def __init__(self, path: str) -> None:
        self._modules = self._tree_summaries(path)

    def module(self, dotted: str) -> dict[str, FunctionSummary]:
        """Summaries of one module (``repro.units`` always resolves)."""
        table = self._modules.get(dotted, {})
        if dotted == "repro.units":
            table = {**table, **_units_overrides()}
        return table

    @classmethod
    def _tree_summaries(
        cls, path: str
    ) -> dict[str, dict[str, dict[str, FunctionSummary]]]:
        parts = Path(path).parts
        if "repro" not in parts:
            return {}
        root = Path(*parts[: parts.index("repro") + 1])
        key = str(root.resolve()) if root.is_dir() else str(root)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        modules: dict[str, dict[str, FunctionSummary]] = {}
        if root.is_dir():
            for file in sorted(root.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                try:
                    tree = ast.parse(file.read_text(encoding="utf-8"))
                except (OSError, SyntaxError):
                    continue
                rel = file.relative_to(root).with_suffix("")
                dotted_parts = ["repro", *rel.parts]
                if dotted_parts[-1] == "__init__":
                    dotted_parts = dotted_parts[:-1]
                modules[".".join(dotted_parts)] = summarize_module(tree)
        cls._cache[key] = modules
        return modules


# ----------------------------------------------------------------------
# the abstract interpreter
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DimFinding:
    """One dimensional inconsistency, pre-:class:`~repro.lint.framework.Finding`."""

    node: ast.AST
    code: str
    message: str


#: builtins (and numpy/math leaves) that pass their operand's
#: dimension through unchanged.
_PASSTHROUGH = frozenset({
    "float", "int", "abs", "round", "sorted", "sum", "fabs", "floor",
    "ceil", "trunc", "copysign", "max", "min",
})

#: RNG sampler leaves: the sample's dimension is the unified dimension
#: of the distribution parameters (``rng.uniform(0.2, 0.3)`` is a
#: provably dimensionless fraction; ``rng.uniform(lo_s, hi_s)`` is
#: seconds).
_RNG_SAMPLERS = frozenset({
    "uniform", "integers", "normal", "exponential", "random", "poisson",
    "lognormal", "triangular",
})

_ADDITIVE_OPS = (ast.Add, ast.Sub, ast.Mod)


class _Analyzer:
    """One module's dimensional pass; collects :class:`DimFinding`."""

    def __init__(
        self,
        tree: ast.Module,
        path: str,
        summaries: Optional[SummaryTable] = None,
    ) -> None:
        self.tree = tree
        self.path = path
        self.table = summaries if summaries is not None else SummaryTable(path)
        self.local = summarize_module(tree)
        self.imports = self._import_map(tree)
        self.findings: list[DimFinding] = []
        self._class_stack: list[str] = []

    # -- import resolution ---------------------------------------------

    @staticmethod
    def _import_map(tree: ast.Module) -> dict[str, tuple[str, str]]:
        """local name -> (module, remote name). A module alias maps to
        ``(module, "")``; an imported function/class to its home."""
        mapping: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mapping[alias.asname or alias.name.split(".")[0]] = (
                        alias.name, ""
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mapping[alias.asname or alias.name] = (
                        node.module, alias.name
                    )
        return mapping

    def _resolve_call(self, func: ast.expr) -> Optional[FunctionSummary]:
        if isinstance(func, ast.Name):
            local = self.local.get(func.id)
            if local is not None:
                return local
            home = self.imports.get(func.id)
            if home is not None:
                module, remote = home
                if remote == "":
                    return None
                found = self.table.module(module).get(remote)
                if found is not None:
                    return found
                if remote in _units_overrides() and module.endswith("units"):
                    return _units_overrides()[remote]
            return None
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id in ("self", "cls") and self._class_stack:
                    return self.local.get(
                        f"{self._class_stack[-1]}.{func.attr}"
                    )
                home = self.imports.get(receiver.id)
                if home is not None and home[1] == "":
                    return self.table.module(home[0]).get(func.attr)
        return None

    # -- entry point ----------------------------------------------------

    def run(self) -> list[DimFinding]:
        self._exec(self.tree.body, {}, return_dim=None)
        return self.findings

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(DimFinding(node=node, code=code, message=message))

    # -- statements -----------------------------------------------------

    def _exec(
        self,
        stmts: Iterable[ast.stmt],
        env: dict[str, Dim],
        return_dim: Optional[Dim],
    ) -> None:
        for stmt in stmts:
            self._stmt(stmt, env, return_dim)

    def _stmt(
        self, stmt: ast.stmt, env: dict[str, Dim], return_dim: Optional[Dim]
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._function(stmt)
        elif isinstance(stmt, ast.ClassDef):
            self._class_stack.append(stmt.name)
            try:
                self._exec(stmt.body, {}, return_dim=None)
            finally:
                self._class_stack.pop()
        elif isinstance(stmt, ast.Assign):
            value = self.infer(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = dim_of_annotation(stmt.annotation)
            value = self.infer(stmt.value, env) if stmt.value else None
            if isinstance(stmt.target, ast.Name):
                expected = declared or dim_of_name(stmt.target.id)
                self._check_assign(stmt, stmt.target.id, expected, value)
                self._bind(env, stmt.target.id, expected or value)
        elif isinstance(stmt, ast.AugAssign):
            self._augassign(stmt, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                got = self.infer(stmt.value, env)
                if (
                    return_dim is not None
                    and got is not None
                    and not got.poly
                    and got.exps != return_dim.exps
                ):
                    self._emit(
                        stmt,
                        "RPL012",
                        f"return value has dimension {got.label()} but the "
                        f"function is annotated {return_dim.label()}",
                    )
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test, env)
            body_env = dict(env)
            else_env = dict(env)
            self._exec(stmt.body, body_env, return_dim)
            self._exec(stmt.orelse, else_env, return_dim)
            self._merge_into(env, body_env, else_env)
        elif isinstance(stmt, (ast.While,)):
            self.infer(stmt.test, env)
            body_env = dict(env)
            self._exec(stmt.body, body_env, return_dim)
            self._exec(stmt.orelse, dict(env), return_dim)
            self._merge_into(env, env, body_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.infer(stmt.iter, env)
            body_env = dict(env)
            self._assign(stmt.target, None, None, body_env)
            self._exec(stmt.body, body_env, return_dim)
            self._exec(stmt.orelse, dict(env), return_dim)
            self._merge_into(env, env, body_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.infer(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, None, value, env)
            self._exec(stmt.body, env, return_dim)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec(stmt.body, body_env, return_dim)
            branches = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                self._exec(handler.body, handler_env, return_dim)
                branches.append(handler_env)
            self._merge_into(env, *branches)
            self._exec(stmt.orelse, env, return_dim)
            self._exec(stmt.finalbody, env, return_dim)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self.infer(value, env)
        # Import/Pass/Break/Continue/Global/Nonlocal: no dimension flow.

    @staticmethod
    def _merge_into(env: dict[str, Dim], *branches: dict[str, Dim]) -> None:
        """Join point: keep a binding only when every branch agrees."""
        merged = {
            name: dim
            for name, dim in branches[0].items()
            if all(other.get(name) == dim for other in branches[1:])
        }
        env.clear()
        env.update(merged)

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        env: dict[str, Dim] = {}
        args = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        for arg in args:
            if arg.arg in ("self", "cls"):
                continue
            dim = dim_of_annotation(arg.annotation) or dim_of_name(arg.arg)
            if dim is not None:
                env[arg.arg] = dim
        for default in [
            *node.args.defaults,
            *[d for d in node.args.kw_defaults if d is not None],
        ]:
            self.infer(default, {})
        self._exec(node.body, env, return_dim=dim_of_annotation(node.returns))

    # -- assignment -----------------------------------------------------

    def _assign(
        self,
        target: ast.expr,
        value_node: Optional[ast.expr],
        value: Optional[Dim],
        env: dict[str, Dim],
    ) -> None:
        if isinstance(target, ast.Name):
            expected = dim_of_name(target.id)
            self._check_assign(target, target.id, expected, value)
            self._bind(env, target.id, expected or value)
        elif isinstance(target, ast.Attribute):
            expected = dim_of_name(target.attr)
            self._check_assign(target, target.attr, expected, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Sequence[Optional[ast.expr]]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                elements = value_node.elts
            else:
                elements = [None] * len(target.elts)
            for sub_target, sub_value in zip(target.elts, elements):
                if isinstance(sub_target, ast.Starred):
                    sub_target = sub_target.value
                    sub_value = None
                sub_dim = (
                    self.infer(sub_value, env) if sub_value is not None
                    else None
                )
                self._assign(sub_target, sub_value, sub_dim, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, None, None, env)
        # Subscript targets carry no name to seed from.

    def _check_assign(
        self,
        node: ast.AST,
        name: str,
        expected: Optional[Dim],
        value: Optional[Dim],
    ) -> None:
        if (
            expected is not None
            and value is not None
            and not value.poly
            and value.exps != expected.exps
        ):
            self._emit(
                node,
                "RPL010",
                f"assignment changes the dimension of {name!r}: the name "
                f"declares {expected.label()} but the value is "
                f"{value.label()}",
            )

    @staticmethod
    def _bind(env: dict[str, Dim], name: str, dim: Optional[Dim]) -> None:
        if dim is not None and not dim.poly:
            env[name] = dim
        else:
            env.pop(name, None)

    def _augassign(self, stmt: ast.AugAssign, env: dict[str, Dim]) -> None:
        target_dim = self.infer(stmt.target, env, reading=True)
        value = self.infer(stmt.value, env)
        if isinstance(stmt.op, _ADDITIVE_OPS):
            merged, conflict = _unify(target_dim, value)
            if conflict:
                assert target_dim is not None and value is not None
                self._emit(
                    stmt,
                    "RPL009",
                    "augmented assignment mixes dimensions: "
                    f"{target_dim.label()} {_OP_SYMBOLS.get(type(stmt.op), 'op')}= "
                    f"{value.label()}",
                )
            result = merged
        elif isinstance(stmt.op, ast.Mult) and target_dim and value:
            result = target_dim * value
        elif (
            isinstance(stmt.op, (ast.Div, ast.FloorDiv))
            and target_dim
            and value
        ):
            result = target_dim / value
        else:
            result = None
        if isinstance(stmt.target, ast.Name):
            expected = dim_of_name(stmt.target.id)
            if not isinstance(stmt.op, _ADDITIVE_OPS):
                self._check_assign(stmt, stmt.target.id, expected, result)
            self._bind(env, stmt.target.id, expected or result)

    # -- expressions ----------------------------------------------------

    def infer(
        self,
        node: Optional[ast.expr],
        env: dict[str, Dim],
        *,
        reading: bool = False,
    ) -> Optional[Dim]:
        """The dimension of one expression (``None`` = unknown),
        emitting findings for the conflicts found along the way."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float, complex)
            ):
                return None
            return NUMERIC
        if isinstance(node, ast.Name):
            known = env.get(node.id)
            if known is not None:
                return known
            return dim_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value, env)
            return dim_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.UnaryOp):
            operand = self.infer(node.operand, env)
            if isinstance(node.op, (ast.UAdd, ast.USub)):
                return operand
            return None
        if isinstance(node, ast.Compare):
            self._compare(node, env)
            return None
        if isinstance(node, ast.BoolOp):
            dims = [self.infer(value, env) for value in node.values]
            return self._fold(dims)
        if isinstance(node, ast.IfExp):
            self.infer(node.test, env)
            return self._fold(
                [self.infer(node.body, env), self.infer(node.orelse, env)]
            )
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.NamedExpr):
            value = self.infer(node.value, env)
            self._assign(node.target, node.value, value, env)
            return value
        if isinstance(node, ast.Subscript):
            container = self.infer(node.value, env)
            self.infer(node.slice, env) if isinstance(
                node.slice, ast.expr
            ) else None
            return container
        if isinstance(node, ast.Starred):
            return self.infer(node.value, env)
        if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
            for elt in node.elts:
                self.infer(elt, env)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.infer(key, env)
            for value in node.values:
                self.infer(value, env)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension(node, node.elt, env)
        if isinstance(node, ast.DictComp):
            self._comprehension(node, node.value, env)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.infer(value.value, env)
            return None
        if isinstance(node, ast.FormattedValue):
            self.infer(node.value, env)
            return None
        if isinstance(node, ast.Lambda):
            lambda_env: dict[str, Dim] = {}
            for arg in [*node.args.args, *node.args.kwonlyargs]:
                dim = dim_of_name(arg.arg)
                if dim is not None:
                    lambda_env[arg.arg] = dim
            self.infer(node.body, lambda_env)
            return None
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.infer(
                node.value, env
            )
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.infer(node.value, env)
            return None
        return None

    def _comprehension(
        self, node: ast.expr, elt: ast.expr, env: dict[str, Dim]
    ) -> Optional[Dim]:
        comp_env = dict(env)
        for generator in node.generators:  # type: ignore[attr-defined]
            self.infer(generator.iter, comp_env)
            self._assign(generator.target, None, None, comp_env)
            for condition in generator.ifs:
                self.infer(condition, comp_env)
        element = self.infer(elt, comp_env)
        if isinstance(node, ast.DictComp):
            self.infer(node.key, comp_env)
        return element

    def _fold(self, dims: list[Optional[Dim]]) -> Optional[Dim]:
        """Join of parallel branches: known and equal, else unknown
        (polymorphic literals defer to the other branches)."""
        result: Optional[Dim] = None
        for dim in dims:
            if dim is None:
                return None
            if dim.poly:
                continue
            if result is None:
                result = dim
            elif result.exps != dim.exps:
                return None
        if result is None and dims and all(
            d is not None and d.poly for d in dims
        ):
            return NUMERIC
        return result

    _OP_NAMES = {
        ast.Add: "+", ast.Sub: "-", ast.Mod: "%",
    }

    def _binop(self, node: ast.BinOp, env: dict[str, Dim]) -> Optional[Dim]:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        if isinstance(node.op, _ADDITIVE_OPS):
            merged, conflict = _unify(left, right)
            if conflict:
                assert left is not None and right is not None
                symbol = self._OP_NAMES.get(type(node.op), "?")
                self._emit(
                    node,
                    "RPL009",
                    f"mixed dimensions: {left.label()} {symbol} "
                    f"{right.label()}",
                )
            return merged
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return left / right
        if isinstance(node.op, ast.Pow):
            exponent = self._constant_fraction(node.right)
            if exponent is None:
                return NUMERIC if left.poly else None
            return left ** exponent
        return None

    @staticmethod
    def _constant_fraction(node: ast.expr) -> Optional[Fraction]:
        factor = 1
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
            factor = -1
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        ) and not isinstance(node.value, bool):
            try:
                return factor * Fraction(node.value).limit_denominator(16)
            except (OverflowError, ValueError):
                return None
        return None

    _CMP_SYMBOLS = {
        ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
        ast.Gt: ">", ast.GtE: ">=",
    }
    _OP_SYMBOLS = _CMP_SYMBOLS | {ast.Add: "+", ast.Sub: "-", ast.Mod: "%"}

    def _compare(self, node: ast.Compare, env: dict[str, Dim]) -> None:
        operands = [node.left, *node.comparators]
        dims = [self.infer(operand, env) for operand in operands]
        for i, op in enumerate(node.ops):
            if type(op) not in self._CMP_SYMBOLS:
                continue
            left, right = dims[i], dims[i + 1]
            _, conflict = _unify(left, right)
            if conflict:
                assert left is not None and right is not None
                self._emit(
                    node,
                    "RPL009",
                    f"comparison mixes dimensions: {left.label()} "
                    f"{self._CMP_SYMBOLS[type(op)]} {right.label()}",
                )

    # -- calls ----------------------------------------------------------

    def _call(self, node: ast.Call, env: dict[str, Dim]) -> Optional[Dim]:
        arg_dims = [self.infer(arg, env) for arg in node.args]
        kw_dims = {
            kw.arg: self.infer(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.infer(kw.value, env)

        leaf = None
        if isinstance(node.func, ast.Name):
            leaf = node.func.id
        elif isinstance(node.func, ast.Attribute):
            leaf = node.func.attr

        summary = self._resolve_call(node.func)
        if summary is not None:
            self._check_call(node, summary, arg_dims, kw_dims)
            if summary.return_dim is not None:
                return summary.return_dim
            # A summary with no return annotation still ends the
            # inference (the callee's body is opaque here).
            if leaf not in _PASSTHROUGH:
                return None

        if leaf in ("min", "max") and len(node.args) >= 2:
            folded = self._fold(arg_dims)
            if folded is None:
                known = [
                    d for d in arg_dims if d is not None and not d.poly
                ]
                if known and any(
                    d.exps != known[0].exps for d in known[1:]
                ):
                    self._emit(
                        node,
                        "RPL009",
                        f"{leaf}() mixes dimensions: "
                        + ", ".join(d.label() for d in known),
                    )
            return folded
        if leaf in ("float", "int", "abs", "round", "sorted", "sum",
                    "fabs", "floor", "ceil", "trunc"):
            return arg_dims[0] if arg_dims else None
        if leaf == "sqrt" and arg_dims:
            base = arg_dims[0]
            return None if base is None else base ** Fraction(1, 2)
        if leaf in _RNG_SAMPLERS and isinstance(node.func, ast.Attribute):
            known = [d for d in arg_dims if d is not None]
            if known and len(known) == len(arg_dims):
                if all(d.poly for d in known):
                    return DIMENSIONLESS
                folded = self._fold(arg_dims)
                if folded is not None and folded.poly:
                    return DIMENSIONLESS
                return folded
            return None
        if summary is not None:
            return summary.return_dim
        return None

    def _check_call(
        self,
        node: ast.Call,
        summary: FunctionSummary,
        arg_dims: list[Optional[Dim]],
        kw_dims: dict[str, Optional[Dim]],
    ) -> None:
        for index, (arg_node, got) in enumerate(zip(node.args, arg_dims)):
            if isinstance(arg_node, ast.Starred):
                break
            if index >= len(summary.positional):
                break
            name = summary.positional[index]
            self._check_arg(node, summary, name, got)
        for name, got in kw_dims.items():
            self._check_arg(node, summary, name, got)

    def _check_arg(
        self,
        node: ast.Call,
        summary: FunctionSummary,
        name: str,
        got: Optional[Dim],
    ) -> None:
        expected = summary.param_dims.get(name)
        if (
            expected is not None
            and got is not None
            and not got.poly
            and got.exps != expected.exps
        ):
            self._emit(
                node,
                "RPL011",
                f"argument {name!r} of {summary.qualname}() has dimension "
                f"{got.label()}, expected {expected.label()}",
            )


_OP_SYMBOLS = _Analyzer._OP_SYMBOLS


def analyze(
    tree: ast.Module, path: str, summaries: Optional[SummaryTable] = None
) -> list[DimFinding]:
    """Run the dimensional pass over one parsed module."""
    return _Analyzer(tree, path, summaries).run()
