"""Domain-aware static analysis for the energy pipeline.

``repro.lint`` checks the invariants that keep the paper's numbers
trustworthy — unit conversions through :mod:`repro.units`, determinism
in simulation paths, no float ``==`` in the energy math, the zero-cost
observer guard idiom, schema-resolved event kinds, and API hygiene
(``__all__``, unit-suffix docstrings, mutable defaults). See
:mod:`repro.lint.rules` for the catalogue and ``repro lint --list-rules``
for a live summary.

Run it as ``repro lint [PATH ...]`` or ``python -m repro.lint``; debt
is ratcheted through the committed ``.repro-lint-baseline.json``
(:mod:`repro.lint.baseline`).
"""

from repro.lint.baseline import (
    BaselineResult,
    apply_baseline,
    baseline_counts,
    load_baseline,
    save_baseline,
)
from repro.lint.framework import (
    Finding,
    ModuleContext,
    Rule,
    RULE_REGISTRY,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    parse_noqa,
    register,
    rules_by_code,
)

__all__ = [
    "BaselineResult",
    "apply_baseline",
    "baseline_counts",
    "load_baseline",
    "save_baseline",
    "Finding",
    "ModuleContext",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_noqa",
    "register",
    "rules_by_code",
]
