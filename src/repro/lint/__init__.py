"""Domain-aware static analysis for the energy pipeline.

``repro.lint`` checks the invariants that keep the paper's numbers
trustworthy — unit conversions through :mod:`repro.units`, determinism
in simulation paths, no float ``==`` in the energy math, the zero-cost
observer guard idiom, schema-resolved event kinds, API hygiene
(``__all__``, unit-suffix docstrings, mutable defaults), and — through
the flow-sensitive dimensional pass in :mod:`repro.lint.dim`
(RPL009–RPL012) — that the energy arithmetic itself is dimensionally
consistent (``W·s → J``, never ``s + bytes``). See
:mod:`repro.lint.rules` for the catalogue and ``repro lint --list-rules``
for a live summary.

Run it as ``repro lint [PATH ...]`` or ``python -m repro.lint``
(``--changed`` scopes to git-modified files for pre-commit speed);
debt is ratcheted through the committed ``.repro-lint-baseline.json``
(:mod:`repro.lint.baseline`, growth-gated in CI via
``--compare-baseline``).
"""

from repro.lint.baseline import (
    BaselineResult,
    apply_baseline,
    baseline_counts,
    compare_baselines,
    load_baseline,
    save_baseline,
)
from repro.lint.dim import (
    Dim,
    dim_of_annotation,
    dim_of_name,
)
from repro.lint.framework import (
    Finding,
    ModuleContext,
    Rule,
    RULE_REGISTRY,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    parse_noqa,
    register,
    rules_by_code,
)

__all__ = [
    "BaselineResult",
    "apply_baseline",
    "baseline_counts",
    "compare_baselines",
    "load_baseline",
    "save_baseline",
    "Dim",
    "dim_of_annotation",
    "dim_of_name",
    "Finding",
    "ModuleContext",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_noqa",
    "register",
    "rules_by_code",
]
