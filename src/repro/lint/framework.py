"""Core machinery of the domain linter: findings, rule registry,
module contexts, ``# repro: noqa[...]`` suppression, and the file/source
entry points.

The linter is deliberately dependency-free (stdlib ``ast`` only) so it
can run in CI images, pre-commit hooks, and the test suite without the
numeric stack. Rules are small classes registered by decorating with
:func:`register`; each declares the dotted-package prefixes it applies
to so domain rules (float ``==`` in the energy math, unseeded RNGs in
simulation paths) stay scoped to the layers where they are invariants
rather than style preferences.

Suppression is per-line and per-code: ``# repro: noqa[RPL003]`` on the
offending line silences exactly that code there and nothing else —
there is intentionally no blanket ``noqa`` form, so every suppression
documents which invariant is being waived.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator
from typing import Optional

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RULE_REGISTRY",
    "register",
    "all_rules",
    "rules_by_code",
    "lint_source",
    "lint_file",
    "lint_paths",
    "parse_noqa",
]

#: ``# repro: noqa[RPL001]`` / ``# repro: noqa[RPL001, RPL003]``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9_,\s]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-relative posix path of the module
    line: int  #: 1-based source line
    col: int  #: 0-based column
    code: str  #: rule code, e.g. ``RPL003``
    message: str

    @property
    def key(self) -> str:
        """The baseline bucket this finding counts against (per file,
        per code — line numbers churn too much to pin)."""
        return f"{self.path}::{self.code}"

    def render(self) -> str:
        """The finding as a one-line ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """The finding as a JSON-safe dict (``--json`` output)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class ModuleContext:
    """Everything a rule may want to know about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.module = module_name_for(path)
        self._parents: Optional[dict[int, ast.AST]] = None

    # -- structure ------------------------------------------------------

    @property
    def parents(self) -> dict[int, ast.AST]:
        """``id(node) -> parent node`` for every node in the tree."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        parents = self.parents
        current = parents.get(id(node))
        while current is not None:
            yield current
            current = parents.get(id(current))

    def in_package(self, *prefixes: str) -> bool:
        """Does this module live under any of the dotted prefixes?"""
        return any(
            self.module == p or self.module.startswith(p + ".") for p in prefixes
        )

    # -- findings -------------------------------------------------------

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """A :class:`Finding` at ``node``'s source location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


def module_name_for(path: str) -> str:
    """Dotted module name of a file path, anchored at the ``repro``
    package (``src/repro/netsim/engine.py`` -> ``repro.netsim.engine``).
    Paths outside the package fall back to their stem."""
    parts = Path(path).with_suffix("").parts
    for anchor in ("repro",):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else Path(path).stem


class Rule:
    """Base class for one lint rule.

    Subclasses set ``code``/``name``/``summary``, optionally restrict
    themselves with ``packages`` (dotted prefixes; ``None`` = every
    module) and ``excluded`` (dotted prefixes that are exempt even
    inside ``packages``), and implement :meth:`check`.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    packages: Optional[tuple[str, ...]] = None
    excluded: tuple[str, ...] = ()

    def applies(self, ctx: ModuleContext) -> bool:
        """Whether the rule is in scope for the module (its ``packages``
        minus its ``excluded`` prefixes)."""
        if self.excluded and ctx.in_package(*self.excluded):
            return False
        if self.packages is None:
            return True
        return ctx.in_package(*self.packages)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule found in the module."""
        raise NotImplementedError


#: code -> rule class, in registration order.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """One instance of every registered rule."""
    _ensure_rules_loaded()
    return [cls() for cls in RULE_REGISTRY.values()]


def rules_by_code(codes: Iterable[str]) -> list[Rule]:
    """Instances for a code selection (raises on unknown codes)."""
    _ensure_rules_loaded()
    rules = []
    for code in codes:
        if code not in RULE_REGISTRY:
            raise KeyError(
                f"unknown rule {code!r}; known: {', '.join(sorted(RULE_REGISTRY))}"
            )
        rules.append(RULE_REGISTRY[code]())
    return rules


def _ensure_rules_loaded() -> None:
    """Import the built-in rule module exactly once (registration is an
    import side effect)."""
    from repro.lint import rules  # noqa: F401  (imported for registration)


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------


def parse_noqa(lines: list[str]) -> dict[int, frozenset[str]]:
    """``line -> suppressed codes`` from ``# repro: noqa[...]`` comments
    (1-based line numbers, matching ``Finding.line``)."""
    suppressed: dict[int, frozenset[str]] = {}
    for i, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match:
            codes = frozenset(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            if codes:
                suppressed[i] = codes
    return suppressed


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[Rule]] = None,
) -> list[Finding]:
    """Lint one module given as text. ``path`` controls which
    package-scoped rules apply (pass e.g. ``src/repro/netsim/x.py`` in
    fixtures to exercise simulation-path rules)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="RPL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path=path, source=source, tree=tree)
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        if rule.applies(ctx):
            findings.extend(rule.check(ctx))
    noqa = parse_noqa(ctx.lines)
    if noqa:
        findings = [
            f for f in findings if f.code not in noqa.get(f.line, frozenset())
        ]
    findings.sort()
    return findings


def lint_file(
    path: Path,
    rules: Optional[Iterable[Rule]] = None,
    relative_to: Optional[Path] = None,
) -> list[Finding]:
    """Lint one file on disk."""
    display = _display_path(path, relative_to)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=display, rules=rules)


def lint_paths(
    paths: Iterable[Path | str],
    rules: Optional[Iterable[Rule]] = None,
    relative_to: Optional[Path] = None,
) -> list[Finding]:
    """Lint files and/or directory trees (``*.py``, sorted, hidden and
    ``__pycache__`` entries skipped)."""
    if rules is not None:
        rules = list(rules)
    if relative_to is None:
        relative_to = Path.cwd()
    findings: list[Finding] = []
    for target in paths:
        target = Path(target)
        if target.is_dir():
            files = sorted(
                p
                for p in target.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        else:
            files = [target]
        for file in files:
            findings.extend(lint_file(file, rules=rules, relative_to=relative_to))
    findings.sort()
    return findings


def _display_path(path: Path, relative_to: Optional[Path]) -> str:
    """Repo-relative posix path when possible (stable baseline keys)."""
    resolved = path.resolve()
    for base in filter(None, (relative_to, Path.cwd())):
        try:
            return resolved.relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


#: Convenience alias used by the CLI's ``--select``.
RuleFactory = Callable[[], Rule]
