"""The :class:`Observer` facade: one object that instrumented code
talks to.

An observer couples a :class:`~repro.obs.metrics.MetricsRegistry` with
an :class:`~repro.obs.events.EventStream` and exposes intent-named
hooks (``probe_window``, ``allocation_change``, ``macro_step``, ...)
so call sites never build event dicts by hand. Instrumented code holds
an ``Optional[Observer]`` and guards every call with ``is not None``
— the *disabled* cost is one attribute check, the *enabled* cost is a
couple of dict operations.

Observers are process-local. Parallel campaign workers each create a
fresh one and ship only its :meth:`summary` (pure dicts) back across
the process boundary; worker event streams stay in the worker (they
can be arbitrarily large), while metric summaries are merged by the
parent — see ``repro.harness.campaign``.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.obs.events import EventStream
from repro.obs.metrics import MetricsRegistry
from repro.units import BytesPerSecond, Joules, Seconds

__all__ = ["Observer", "render_events", "render_metrics"]

#: Engine event-log kinds mirrored into the observer's event stream
#: (the rest — channel opens/closes, per-file completions — are
#: high-volume and tracked as counters only).
_FORWARDED_ENGINE_KINDS = frozenset(
    {"channel_reassigned", "channel_failed", "server_failed", "server_recovered"}
)

#: Probe scores are Mbps^2/J; macro-step spans are seconds.
_SCORE_BUCKETS = (0.01, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6)
_SPAN_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0)
#: Queue waits span seconds (compressed test days) to many hours.
_QUEUE_WAIT_BUCKETS = (1.0, 10.0, 60.0, 300.0, 1800.0, 3600.0, 4 * 3600.0,
                       12 * 3600.0, 86400.0)


class Observer:
    """Couples metrics and events for one observed scope (a transfer,
    a campaign cell, a CLI invocation)."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.events = EventStream()

    # -- algorithm-level hooks -----------------------------------------

    def probe_window(
        self,
        time: Seconds,
        algorithm: str,
        cc: int,
        throughput_bps: BytesPerSecond,
        joules: Joules,
        score: float,
    ) -> None:
        """One HTEE/SLAEE measurement window at concurrency ``cc``:
        measured rate in bytes/s, window energy in joules, and the
        algorithm's ranking score."""
        self.metrics.counter("algo.probe_windows").inc()
        self.metrics.gauge("algo.last_probe_cc").set(cc)
        self.metrics.histogram("algo.probe_score", _SCORE_BUCKETS).observe(score)
        self.events.emit(
            time,
            "probe_window",
            algorithm=algorithm,
            cc=cc,
            throughput_bps=throughput_bps,
            joules=joules,
            score=score,
        )

    def allocation_change(self, time: Seconds, allocation: dict[str, int]) -> None:
        """The engine applied a full chunk -> channel-count allocation."""
        self.metrics.counter("engine.allocation_changes").inc()
        self.metrics.gauge("engine.last_allocation_total").set(
            sum(allocation.values())
        )
        self.events.emit(time, "allocation_change", allocation=dict(allocation))

    def rearrange_channels(self, time: Seconds, algorithm: str, extra_large: int) -> None:
        """SLAEE's ``reArrangeChannels`` fired (large chunks get extras)."""
        self.metrics.counter("algo.rearrange_firings").inc()
        self.events.emit(
            time, "rearrange_channels", algorithm=algorithm, extra_large=extra_large
        )

    # -- engine stepping hooks -----------------------------------------

    def macro_step(self, time: Seconds, steps: int, span_s: Seconds) -> None:
        """The fast path advanced ``steps`` whole dt-steps analytically,
        covering ``span_s`` seconds of simulated time."""
        self.metrics.counter("engine.macro_steps").inc()
        self.metrics.counter("engine.macro_stepped_dts").inc(steps)
        self.metrics.histogram("engine.macro_span_s", _SPAN_BUCKETS).observe(span_s)
        self.events.emit(time, "macro_step", steps=steps, span_s=span_s)

    def fixed_fallback(self, time: Seconds, steps: int) -> None:
        """A stretch of ``steps`` fixed-``dt`` fallback steps ended.

        Fallback stretches are coalesced: one event per stretch (not
        per step), so the stream stays bounded even for dt-dominated
        configurations. Per-step totals live in the
        ``engine.fixed_steps`` counter.
        """
        self.metrics.counter("engine.fallback_stretches").inc()
        self.events.emit(time, "fixed_dt_fallback", steps=steps)

    def note_steps(self, fixed_steps: int) -> None:
        """Accumulate a finished ``run()``'s fixed-``dt`` step total
        (macro-step totals are counted per :meth:`macro_step` call)."""
        if fixed_steps:
            self.metrics.counter("engine.fixed_steps").inc(fixed_steps)

    # -- service stepping hooks ----------------------------------------

    def service_macro_step(
        self, time: Seconds, steps: int, span_s: Seconds, rounds: int
    ) -> None:
        """One event-driven service jump ended: ``rounds`` macro rounds
        advanced ``steps`` whole shared ``dt`` steps, covering
        ``span_s`` seconds. Coalesced per jump (one event, like the
        engine's ``macro_step``), so the stream stays bounded for
        100k-job days."""
        self.metrics.counter("service.macro_steps").inc(rounds)
        self.metrics.counter("service.macro_stepped_dts").inc(steps)
        self.metrics.histogram("service.macro_span_s", _SPAN_BUCKETS).observe(span_s)
        self.events.emit(
            time, "service_macro_step", steps=steps, span_s=span_s, rounds=rounds
        )

    def plan_cache(self, hits: int, misses: int) -> None:
        """Account a planning round's :func:`repro.service.policies.plan_for`
        cache traffic (counters only — no event; cache hits are not
        decision-relevant moments)."""
        if hits:
            self.metrics.counter("service.plan_cache_hits").inc(hits)
        if misses:
            self.metrics.counter("service.plan_cache_misses").inc(misses)

    # -- service-layer job lifecycle -----------------------------------

    def job_submitted(self, time: Seconds, job: str, tenant: str, sla: str) -> None:
        """A tenant request entered the service queue."""
        self.metrics.counter("service.jobs_submitted").inc()
        self.events.emit(time, "job_submitted", job=job, tenant=tenant, sla=sla)

    def job_deferred(self, time: Seconds, job: str, until: Seconds, reason: str) -> None:
        """A deferral policy pushed a job's release time past *now*."""
        self.metrics.counter("service.jobs_deferred").inc()
        self.metrics.counter(f"service.deferrals.{reason}").inc()
        self.events.emit(time, "job_deferred", job=job, until=until, reason=reason)

    def job_admitted(self, time: Seconds, job: str, queue_wait_s: Seconds) -> None:
        """A job got a slot; ``queue_wait_s`` is the submit -> admit
        wait in seconds."""
        self.metrics.counter("service.jobs_admitted").inc()
        self.metrics.histogram(
            "service.queue_wait_s", _QUEUE_WAIT_BUCKETS
        ).observe(queue_wait_s)
        self.events.emit(time, "job_admitted", job=job, queue_wait_s=queue_wait_s)

    def job_completed(
        self, time: Seconds, job: str, duration_s: Seconds, energy_j: Joules,
        cost_usd: float,
    ) -> None:
        """A job drained its last byte: admit -> done duration in
        seconds, transfer energy in joules, and its billed cost."""
        self.metrics.counter("service.jobs_completed").inc()
        self.events.emit(
            time, "job_completed", job=job, duration_s=duration_s,
            energy_j=energy_j, cost_usd=cost_usd,
        )

    def deadline_missed(
        self, time: Seconds, job: str, deadline: Seconds, completion: Seconds
    ) -> None:
        """A job finished after its completion deadline."""
        self.metrics.counter("service.deadline_misses").inc()
        self.events.emit(
            time, "deadline_missed", job=job, deadline=deadline,
            completion=completion,
        )

    # -- fleet-layer sharded dispatch ----------------------------------

    def job_routed(self, time: Seconds, job: str, shard: str) -> None:
        """The fleet dispatcher assigned a request to a shard."""
        self.metrics.counter("fleet.jobs_routed").inc()
        self.metrics.counter(f"fleet.shard_jobs.{shard}").inc()
        self.events.emit(time, "job_routed", job=job, shard=shard)

    def work_stolen(
        self, time: Seconds, job: str, from_shard: str, to_shard: str
    ) -> None:
        """A saturated shard's job was rerouted to the least-loaded one."""
        self.metrics.counter("fleet.work_steals").inc()
        self.events.emit(
            time, "work_stolen", job=job, from_shard=from_shard,
            to_shard=to_shard,
        )

    def shard_started(self, time: Seconds, shard: str, jobs: int) -> None:
        """One shard's service day began executing ``jobs`` routed jobs."""
        self.metrics.counter("fleet.shard_starts").inc()
        self.events.emit(time, "shard_started", shard=shard, jobs=jobs)

    def shard_completed(
        self, time: Seconds, shard: str, jobs: int, wall_s: float
    ) -> None:
        """One shard's service day finished; ``wall_s`` is real
        (wall-clock) execution time, not simulated seconds."""
        self.metrics.counter("fleet.shard_completions").inc()
        self.metrics.histogram("fleet.shard_wall_s", _SPAN_BUCKETS).observe(wall_s)
        self.events.emit(
            time, "shard_completed", shard=shard, jobs=jobs, wall_s=wall_s
        )

    # -- chaos harness (repro.chaos) -----------------------------------

    def fault_injected(self, time: Seconds, fault: str, detail: dict) -> None:
        """A chaos intervention fired mid-day. ``fault`` is the action
        kind (``link_brownout``, ``server_outage``, ``channel_cut``,
        ``tariff_swap``, ``traffic_surge``); ``detail`` carries its
        action-specific facts."""
        self.metrics.counter("chaos.faults_injected").inc()
        self.metrics.counter(f"chaos.faults.{fault}").inc()
        self.events.emit(time, "fault_injected", fault=fault, detail=detail)

    def jobs_readmitted(self, time: Seconds, count: int) -> None:
        """The recovery hook re-opened transport for ``count`` jobs
        stranded by a fault (counter only — the re-opened channels
        already log their own engine events)."""
        self.metrics.counter("chaos.jobs_readmitted").inc(count)

    def slo_breach(
        self, time: Seconds, metric: str, value: Optional[float],
        budget: float, burn: float,
    ) -> None:
        """An SLO oracle rule failed: ``value`` exceeded ``budget``
        (``burn`` = value/budget; ``value=None`` means the metric was
        unmeasurable — e.g. a slowdown percentile with zero finished
        jobs — which counts as an infinite burn)."""
        self.metrics.counter("chaos.slo_breaches").inc()
        self.metrics.counter(f"chaos.slo_breaches.{metric}").inc()
        self.events.emit(
            time, "slo_breach", metric=metric, value=value, budget=budget,
            burn=burn,
        )

    # -- topology layer (repro.topo via repro.netsim.multi) ------------

    def job_placed(
        self, time: Seconds, job: str, path: str, policy: str
    ) -> None:
        """The placer routed an admitted job onto a topology path."""
        self.metrics.counter("topo.placements").inc()
        self.metrics.counter(f"topo.placements.{policy}").inc()
        self.events.emit(time, "job_placed", job=job, path=path, policy=policy)

    def bottleneck_allocated(
        self, time: Seconds, bottleneck: str, capacity: float, flows: int,
        rate: float,
    ) -> None:
        """A bottleneck's water-filled load changed: ``rate`` bytes/s
        now allocated across ``flows`` flows of ``capacity`` bytes/s.
        Change-detected at the emitting side, so the stream records
        load transitions rather than one event per round."""
        self.metrics.counter("topo.allocations").inc()
        self.metrics.gauge(f"topo.bottleneck_load.{bottleneck}").set(rate)
        self.events.emit(
            time, "bottleneck_allocated", bottleneck=bottleneck,
            capacity=capacity, flows=flows, rate=rate,
        )

    def path_congested(
        self, time: Seconds, job: str, path: str, bottleneck: str,
        demand: float, rate: float,
    ) -> None:
        """A flow was throttled below its demand: the water-fill capped
        ``job`` at ``rate`` bytes/s (wanted ``demand``) at its path's
        most-utilized hop. Emitted on the uncongested -> congested
        transition only."""
        self.metrics.counter("topo.congestion_events").inc()
        self.events.emit(
            time, "path_congested", job=job, path=path,
            bottleneck=bottleneck, demand=demand, rate=rate,
        )

    def alloc_cache(self, hits: int, misses: int, incremental: int) -> None:
        """Account one topology allocation round's cache traffic
        (counters only — the decision-relevant stretches are emitted
        by :meth:`allocation_cached`). A *hit* round was served without
        solving (frozen busy signature or allocation-memo hit); a
        *miss* round ran the water-fill; ``incremental`` flags miss
        rounds that re-solved through
        :func:`repro.topo.alloc.refill` with a previous fixed point to
        splice from."""
        if hits:
            self.metrics.counter("topo.alloc_cache_hits").inc(hits)
        if misses:
            self.metrics.counter("topo.alloc_cache_misses").inc(misses)
        if incremental:
            self.metrics.counter("topo.alloc_incremental_rounds").inc(
                incremental
            )

    def allocation_cached(
        self, time: Seconds, rounds: int, span_s: Seconds
    ) -> None:
        """A stretch of ``rounds`` consecutive allocation rounds was
        served entirely from cache, covering ``span_s`` simulated
        seconds. Coalesced per stretch (one event, like
        ``fixed_dt_fallback``), so topology days stay bounded."""
        self.metrics.counter("topo.alloc_cached_stretches").inc()
        self.events.emit(
            time, "allocation_cached", rounds=rounds, span_s=span_s
        )

    # -- engine event-log forwarding -----------------------------------

    def engine_event(self, time: Seconds, kind: str, detail: dict) -> None:
        """Receive one engine event-log entry (always counted; the
        structurally interesting kinds are mirrored into the stream)."""
        if kind == "file_completed":
            self.metrics.counter("engine.files_completed").inc(
                detail.get("count", 1)
            )
        else:
            self.metrics.counter(f"engine.events.{kind}").inc()
        if kind == "channel_reassigned":
            self.metrics.counter("engine.work_steals").inc()
        if kind in _FORWARDED_ENGINE_KINDS:
            self.events.emit(time, kind, **detail)

    # -- aggregation ----------------------------------------------------

    def summary(self) -> dict:
        """A JSON-safe, picklable summary (metrics snapshot plus event
        counts — the full event stream stays local)."""
        return {
            "metrics": self.metrics.snapshot(),
            "event_counts": self.events.kinds(),
            "events_total": len(self.events),
        }

    def merge_summary(self, summary: dict) -> None:
        """Fold a worker's :meth:`summary` into this observer's metrics."""
        self.metrics.merge_snapshot(summary.get("metrics", {}))


# ----------------------------------------------------------------------
# text rendering (CLI)
# ----------------------------------------------------------------------


def _fmt_detail(kind: str, detail: dict) -> str:
    if kind == "probe_window":
        return (
            f"{detail['algorithm']} cc={detail['cc']} "
            f"{units.to_mbps(detail['throughput_bps']):8.1f} Mbps "
            f"{detail['joules']:9.1f} J  score={detail['score']:.3f}"
        )
    if kind == "allocation_change":
        alloc = detail["allocation"]
        body = ", ".join(f"{k}={v}" for k, v in alloc.items())
        return f"total={sum(alloc.values())} ({body})"
    if kind == "macro_step":
        return f"{detail['steps']} steps ({detail['span_s']:.2f} s)"
    if kind == "fixed_dt_fallback":
        return f"{detail['steps']} fixed steps"
    if kind == "service_macro_step":
        return (
            f"{detail['steps']} steps in {detail['rounds']} rounds "
            f"({detail['span_s']:.2f} s)"
        )
    if kind == "job_submitted":
        return f"{detail['job']} tenant={detail['tenant']} sla={detail['sla']}"
    if kind == "job_deferred":
        return f"{detail['job']} until={detail['until']:.0f}s ({detail['reason']})"
    if kind == "job_admitted":
        return f"{detail['job']} waited {detail['queue_wait_s']:.1f} s"
    if kind == "job_completed":
        return (
            f"{detail['job']} in {detail['duration_s']:.1f} s, "
            f"{detail['energy_j']:.0f} J, ${detail['cost_usd']:.4f}"
        )
    if kind == "deadline_missed":
        return (
            f"{detail['job']} deadline={detail['deadline']:.0f}s "
            f"finished={detail['completion']:.0f}s"
        )
    if kind == "job_routed":
        return f"{detail['job']} -> {detail['shard']}"
    if kind == "work_stolen":
        return f"{detail['job']} {detail['from_shard']} -> {detail['to_shard']}"
    if kind == "shard_started":
        return f"{detail['shard']} with {detail['jobs']} jobs"
    if kind == "shard_completed":
        return (
            f"{detail['shard']} {detail['jobs']} jobs in "
            f"{detail['wall_s']:.2f} s wall"
        )
    if kind == "fault_injected":
        facts = ", ".join(f"{k}={v}" for k, v in detail["detail"].items())
        return f"{detail['fault']}" + (f" ({facts})" if facts else "")
    if kind == "job_placed":
        return f"{detail['job']} -> {detail['path']} ({detail['policy']})"
    if kind == "bottleneck_allocated":
        return (
            f"{detail['bottleneck']} {units.to_mbps(detail['rate']):.1f}/"
            f"{units.to_mbps(detail['capacity']):.1f} Mbps "
            f"across {detail['flows']} flow(s)"
        )
    if kind == "path_congested":
        return (
            f"{detail['job']} on {detail['path']} capped at "
            f"{units.to_mbps(detail['rate']):.1f} Mbps by "
            f"{detail['bottleneck']} (wanted "
            f"{units.to_mbps(detail['demand']):.1f})"
        )
    if kind == "allocation_cached":
        return (
            f"{detail['rounds']} cached round(s) "
            f"({detail['span_s']:.2f} s)"
        )
    if kind == "slo_breach":
        value = detail["value"]
        shown = "n/a" if value is None else f"{value:.4g}"
        return (
            f"{detail['metric']} {shown} > budget {detail['budget']:.4g} "
            f"(burn {detail['burn']:.2f}x)"
        )
    return ", ".join(f"{k}={v}" for k, v in detail.items())


def render_events(stream: EventStream, kind: Optional[str] = None) -> str:
    """The event stream as an aligned text table."""
    events = stream.filter(kind=kind)
    if not events:
        return "(no events)"
    lines = [f"{'seq':>5s}  {'time_s':>10s}  {'kind':<20s}  detail"]
    for event in events:
        lines.append(
            f"{event.seq:5d}  {event.time:10.2f}  {event.kind:<20s}  "
            f"{_fmt_detail(event.kind, event.detail)}"
        )
    counts = stream.kinds() if kind is None else {kind: len(events)}
    tally = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    lines.append(f"({len(events)} events: {tally})")
    return "\n".join(lines)


def render_metrics(summary: dict) -> str:
    """A metrics summary (one observer or a merged campaign) as text."""
    metrics = summary.get("metrics", summary)
    lines = []
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<32s} {value:>14.10g}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<32s} {value:>14.10g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, data in sorted(histograms.items()):
            count = data["count"]
            mean = data["sum"] / count if count else 0.0
            lines.append(
                f"  {name:<32s} count={count:<8d} mean={mean:.4g}"
            )
    if "events_total" in summary:
        lines.append(f"events_total: {summary['events_total']}")
    return "\n".join(lines) if lines else "(no metrics)"
